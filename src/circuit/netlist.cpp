#include "circuit/netlist.h"

#include <utility>

#include "util/error.h"

namespace nanoleak::circuit {

NodeId Netlist::addNode(std::string name) {
  node_names_.push_back(std::move(name));
  fixed_.push_back(false);
  fixed_voltage_.push_back(0.0);
  return node_names_.size() - 1;
}

void Netlist::checkNode(NodeId node, const char* context) const {
  require(node < node_names_.size(),
          std::string(context) + ": node id out of range");
}

void Netlist::fixVoltage(NodeId node, double volts) {
  checkNode(node, "Netlist::fixVoltage");
  fixed_[node] = true;
  fixed_voltage_[node] = volts;
}

bool Netlist::isFixed(NodeId node) const {
  checkNode(node, "Netlist::isFixed");
  return fixed_[node];
}

double Netlist::fixedVoltage(NodeId node) const {
  checkNode(node, "Netlist::fixedVoltage");
  require(fixed_[node], "Netlist::fixedVoltage: node is not fixed");
  return fixed_voltage_[node];
}

DeviceId Netlist::addMosfet(device::Mosfet mosfet, NodeId gate, NodeId drain,
                            NodeId source, NodeId bulk, int owner) {
  checkNode(gate, "Netlist::addMosfet(gate)");
  checkNode(drain, "Netlist::addMosfet(drain)");
  checkNode(source, "Netlist::addMosfet(source)");
  checkNode(bulk, "Netlist::addMosfet(bulk)");
  devices_.push_back(
      DeviceInstance{std::move(mosfet), gate, drain, source, bulk, owner});
  return devices_.size() - 1;
}

SourceId Netlist::addCurrentSource(NodeId node, double amps) {
  checkNode(node, "Netlist::addCurrentSource");
  sources_.push_back(CurrentSource{node, amps});
  return sources_.size() - 1;
}

void Netlist::setCurrentSource(SourceId source, double amps) {
  require(source < sources_.size(),
          "Netlist::setCurrentSource: source id out of range");
  sources_[source].amps = amps;
}

const std::string& Netlist::nodeName(NodeId node) const {
  checkNode(node, "Netlist::nodeName");
  return node_names_[node];
}

double Netlist::injectedCurrent(NodeId node) const {
  checkNode(node, "Netlist::injectedCurrent");
  double total = 0.0;
  for (const CurrentSource& source : sources_) {
    if (source.node == node) {
      total += source.amps;
    }
  }
  return total;
}

}  // namespace nanoleak::circuit
