#include "circuit/solver_stats.h"

#include "obs/metrics.h"

namespace nanoleak::circuit {

namespace {

struct SolverMetrics {
  obs::Counter solves = obs::counter("solver.solves");
  obs::Counter node_solves = obs::counter("solver.node_solves");
  obs::Counter converged = obs::counter("solver.converged");
  obs::Counter non_converged = obs::counter("solver.non_converged");
  obs::Histogram sweeps =
      obs::histogram("solver.sweeps", {1, 2, 4, 8, 16, 32, 64});
};

const SolverMetrics& metrics() {
  static const SolverMetrics m;
  return m;
}

}  // namespace

SolveStats solveStats() {
  return {obs::counterValue("solver.solves"),
          obs::counterValue("solver.node_solves")};
}

namespace detail {
void recordSolve(std::uint64_t node_solves, bool converged,
                 std::uint64_t sweeps) {
  const SolverMetrics& m = metrics();
  m.solves.increment();
  m.node_solves.add(node_solves);
  (converged ? m.converged : m.non_converged).increment();
  m.sweeps.observe(static_cast<double>(sweeps));
}
}  // namespace detail

}  // namespace nanoleak::circuit
