#include "circuit/solver_stats.h"

#include <atomic>

namespace nanoleak::circuit {

namespace {
std::atomic<std::uint64_t> g_solves{0};
std::atomic<std::uint64_t> g_node_solves{0};
}  // namespace

SolveStats solveStats() {
  return {g_solves.load(std::memory_order_relaxed),
          g_node_solves.load(std::memory_order_relaxed)};
}

namespace detail {
void recordSolve(std::uint64_t node_solves) {
  g_solves.fetch_add(1, std::memory_order_relaxed);
  g_node_solves.fetch_add(node_solves, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace nanoleak::circuit
