#include "circuit/batch_solver_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "circuit/solver_core.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/linalg.h"

namespace nanoleak::circuit {

using util::LaneMask;
using util::Lanes;

/// Adapts one lane of a BatchSolverKernel to the solver_core Evaluator
/// concept: the scalar fallback path runs the exact scalar driver over the
/// shared compiled topology with this lane's bindings, which is what makes
/// fallback (and width-1) results bit-identical to SolverKernel::solve.
struct LaneViewEvaluator {
  const BatchSolverKernel& kernel;
  std::size_t lane;

  std::size_t nodeCount() const { return kernel.nodeCount(); }
  bool isFixed(NodeId node) const { return kernel.nodeIsFixed(node); }
  double fixedVoltage(NodeId node) const {
    return kernel.lane_fixed_voltage_[lane][node];
  }
  double residual(const std::vector<double>& voltages, NodeId node) const {
    return kernel.laneScalarResidual(lane, voltages, node);
  }
  template <typename F>
  void forOnPairs(const std::vector<double>& voltages, F&& f) const {
    kernel.forOnPairsLane(lane, voltages, std::forward<F>(f));
  }
};

BatchSolverKernel::BatchSolverKernel(const Netlist& netlist,
                                     SolverOptions options)
    : base_(netlist, options) {
  std::vector<double> amps(base_.sources_.size());
  for (std::size_t s = 0; s < base_.sources_.size(); ++s) {
    amps[s] = base_.sources_[s].amps;
  }
  for (std::size_t lane = 0; lane < W; ++lane) {
    lane_options_[lane] = base_.options_;
    lane_fixed_voltage_[lane] = base_.fixed_voltage_;
    lane_injected_[lane] = base_.injected_;
    lane_source_amps_[lane] = amps;
    lane_coeffs_[lane] = base_.coeffs_;
    lane_mosfets_[lane] = base_.mosfets_;
  }
}

void BatchSolverKernel::recomputeLaneInjected(std::size_t lane, NodeId node) {
  double total = 0.0;
  for (std::size_t k = base_.source_offset_[node];
       k < base_.source_offset_[node + 1]; ++k) {
    total += lane_source_amps_[lane][base_.source_index_[k]];
  }
  lane_injected_[lane][node] = total;
}

void BatchSolverKernel::setSource(std::size_t lane, SourceId source,
                                  double amps) {
  require(lane < W, "BatchSolverKernel::setSource: lane out of range");
  require(source < base_.sources_.size(),
          "BatchSolverKernel::setSource: source out of range");
  lane_source_amps_[lane][source] = amps;
  recomputeLaneInjected(lane, base_.sources_[source].node);
}

void BatchSolverKernel::setFixedVoltage(std::size_t lane, NodeId node,
                                        double volts) {
  require(lane < W, "BatchSolverKernel::setFixedVoltage: lane out of range");
  require(node < base_.fixed_.size() && base_.fixed_[node],
          "BatchSolverKernel::setFixedVoltage: node is not fixed");
  lane_fixed_voltage_[lane][node] = volts;
}

void BatchSolverKernel::setLaneOptions(std::size_t lane,
                                       const SolverOptions& options) {
  require(lane < W, "BatchSolverKernel::setLaneOptions: lane out of range");
  require(options.bracket_hi > options.bracket_lo,
          "BatchSolverKernel::setLaneOptions: bracket_hi must exceed "
          "bracket_lo");
  const bool retemper =
      options.temperature_k != lane_options_[lane].temperature_k;
  lane_options_[lane] = options;
  if (retemper) {
    const device::Environment env{options.temperature_k};
    auto& coeffs = lane_coeffs_[lane];
    const auto& mosfets = lane_mosfets_[lane];
    for (std::size_t i = 0; i < mosfets.size(); ++i) {
      coeffs[i] = device::compileDevice(mosfets[i], env);
    }
    lane_soa_dirty_ = true;
  }
}

void BatchSolverKernel::rebindVariations(
    std::size_t lane, std::span<const device::DeviceVariation> variations) {
  require(lane < W, "BatchSolverKernel::rebindVariations: lane out of range");
  auto& mosfets = lane_mosfets_[lane];
  require(variations.size() == mosfets.size(),
          "BatchSolverKernel::rebindVariations: variation count mismatch");
  const device::Environment env{lane_options_[lane].temperature_k};
  auto& coeffs = lane_coeffs_[lane];
  for (std::size_t i = 0; i < mosfets.size(); ++i) {
    mosfets[i].setVariation(variations[i]);
    coeffs[i] = device::compileDevice(mosfets[i], env);
  }
  lane_soa_dirty_ = true;
}

double BatchSolverKernel::laneScalarResidual(std::size_t lane,
                                             const std::vector<double>& v,
                                             NodeId node) const {
  double residual = lane_options_[lane].gmin * v[node];
  const auto& coeffs = lane_coeffs_[lane];
  for (std::size_t k = base_.incidence_offset_[node];
       k < base_.incidence_offset_[node + 1]; ++k) {
    const SolverKernel::IncidenceEntry entry = base_.incidence_[k];
    const std::size_t d = entry.device;
    const device::BiasPoint bias{v[base_.gate_[d]], v[base_.drain_[d]],
                                 v[base_.source_[d]], v[base_.bulk_[d]]};
    residual += device::compiledTerminalCurrent(
        coeffs[d], bias, static_cast<device::CompiledTerminal>(entry.terminal));
  }
  return residual - lane_injected_[lane][node];
}

std::vector<device::LeakageBreakdown> BatchSolverKernel::laneLeakageByOwner(
    std::size_t lane, const std::vector<double>& voltages,
    std::size_t owner_count) const {
  require(lane < W && voltages.size() == nodeCount(),
          "BatchSolverKernel::laneLeakageByOwner: bad lane or voltages");
  const auto& coeffs = lane_coeffs_[lane];
  std::vector<device::LeakageBreakdown> by_owner(owner_count + 1);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const device::BiasPoint bias{
        voltages[base_.gate_[i]], voltages[base_.drain_[i]],
        voltages[base_.source_[i]], voltages[base_.bulk_[i]]};
    const std::size_t slot =
        (base_.owner_[i] >= 0 &&
         static_cast<std::size_t>(base_.owner_[i]) < owner_count)
            ? static_cast<std::size_t>(base_.owner_[i])
            : owner_count;
    by_owner[slot] += device::compiledLeakage(coeffs[i], bias);
  }
  return by_owner;
}

void BatchSolverKernel::refreshLaneSoaCoeffs() {
  if (!lane_soa_dirty_ && !lane_soa_coeffs_.empty()) {
    return;
  }
  const std::size_t devices = deviceCount();
  lane_soa_coeffs_.resize(devices);
  device::DeviceCoeffs per_lane[W];
  for (std::size_t i = 0; i < devices; ++i) {
    for (std::size_t lane = 0; lane < W; ++lane) {
      per_lane[lane] = lane_coeffs_[lane][i];
    }
    lane_soa_coeffs_[i] = device::makeLaneCoeffs<W>(per_lane);
  }
  lane_soa_dirty_ = false;
}

Solution BatchSolverKernel::solveLaneScalar(
    std::size_t lane, const LaneRequest& request,
    const std::vector<NodeId>& sweep_order) const {
  static const std::vector<double> kEmpty;
  return detail::gaussSeidelSolve(
      LaneViewEvaluator{*this, lane}, lane_options_[lane],
      request.initial_guess != nullptr ? *request.initial_guess : kEmpty,
      sweep_order, request.cluster_guess);
}

std::vector<Solution> BatchSolverKernel::solve(
    std::span<const LaneRequest> requests,
    const std::vector<NodeId>& sweep_order) {
  const std::size_t count = requests.size();
  require(count >= 1 && count <= W,
          "BatchSolverKernel::solve: need 1..kLaneWidth lane requests");
  static const obs::Counter batch_solves = obs::counter("solver.batch_solves");
  static const obs::Counter batch_lane_solves =
      obs::counter("solver.batch_lane_solves");
  static const obs::Counter batch_fallbacks =
      obs::counter("solver.batch_fallbacks");
  static const obs::Histogram lane_occupancy = obs::histogram(
      "solver.batch_lane_occupancy", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  batch_solves.increment();
  batch_lane_solves.add(count);
  lane_occupancy.observe(static_cast<double>(count));

  std::vector<Solution> results(count);
  std::array<bool, W> pending{};
  for (std::size_t lane = 0; lane < count; ++lane) {
    pending[lane] = true;
  }

  if constexpr (W > 1) {
    const std::size_t budget =
        std::min(max_lockstep_sweeps_, lane_options_[0].max_sweeps);
    if (budget > 0) {
      solveLockstep(requests, sweep_order, budget, results, pending);
    }
    std::uint64_t fallbacks = 0;
    for (std::size_t lane = 0; lane < count; ++lane) {
      if (pending[lane]) {
        ++fallbacks;
      }
    }
    batch_fallbacks.add(fallbacks);
  }

  for (std::size_t lane = 0; lane < count; ++lane) {
    if (pending[lane]) {
      results[lane] = solveLaneScalar(lane, requests[lane], sweep_order);
    }
  }
  return results;
}

void BatchSolverKernel::solveLockstep(std::span<const LaneRequest> requests,
                                      const std::vector<NodeId>& sweep_order,
                                      std::size_t sweep_budget,
                                      std::vector<Solution>& results,
                                      std::array<bool, W>& pending) {
  const std::size_t count = requests.size();
  const std::size_t n = nodeCount();
  constexpr NodeId kNoNode = static_cast<NodeId>(-1);
  refreshLaneSoaCoeffs();

  const SolverOptions& shared = lane_options_[0];
  const double f_exit = 0.1 * shared.tol_current;

  Lanes<W> gmin_l;
  Lanes<W> lo_l;
  Lanes<W> hi_l;
  for (std::size_t lane = 0; lane < W; ++lane) {
    gmin_l.setLane(lane, lane_options_[lane].gmin);
    lo_l.setLane(lane, lane_options_[lane].bracket_lo);
    hi_l.setLane(lane, lane_options_[lane].bracket_hi);
  }

  // Node voltages and injected currents, lane-SoA: [node * W + lane].
  std::vector<double> vsoa(n * W);
  std::vector<double> injsoa(n * W);
  for (std::size_t lane = 0; lane < count; ++lane) {
    const std::vector<double>* guess = requests[lane].initial_guess;
    require(guess == nullptr || guess->empty() || guess->size() == n,
            "BatchSolverKernel::solve: initial guess size mismatch");
  }
  for (NodeId node = 0; node < n; ++node) {
    for (std::size_t lane = 0; lane < W; ++lane) {
      const SolverOptions& o = lane_options_[lane];
      double v = 0.5 * (o.bracket_lo + o.bracket_hi);
      if (base_.fixed_[node]) {
        v = lane_fixed_voltage_[lane][node];
      } else if (lane < count && requests[lane].initial_guess != nullptr &&
                 !requests[lane].initial_guess->empty()) {
        v = std::clamp((*requests[lane].initial_guess)[node], o.bracket_lo,
                       o.bracket_hi);
      }
      vsoa[node * W + lane] = v;
      injsoa[node * W + lane] = lane_injected_[lane][node];
    }
  }

  // Relaxation order: identical to the scalar driver (fixedness is shared
  // across lanes, so the order is too).
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> scheduled(n, false);
  for (NodeId node : sweep_order) {
    require(node < n, "BatchSolverKernel::solve: sweep_order node out of range");
    if (!base_.fixed_[node] && !scheduled[node]) {
      order.push_back(node);
      scheduled[node] = true;
    }
  }
  for (NodeId node = 0; node < n; ++node) {
    if (!base_.fixed_[node] && !scheduled[node]) {
      order.push_back(node);
    }
  }
  if (order.empty()) {
    for (std::size_t lane = 0; lane < count; ++lane) {
      Solution s;
      s.voltages.resize(n);
      for (NodeId node = 0; node < n; ++node) {
        s.voltages[node] = vsoa[node * W + lane];
      }
      s.converged = true;
      detail::recordSolve(s.node_solves, true, s.sweeps);
      results[lane] = std::move(s);
      pending[lane] = false;
    }
    return;
  }

  // One vectorized KCL residual: every lane of `node` at once.
  auto laneResidual = [&](NodeId node) -> Lanes<W> {
    Lanes<W> r = gmin_l * Lanes<W>::load(&vsoa[node * W]);
    for (std::size_t k = base_.incidence_offset_[node];
         k < base_.incidence_offset_[node + 1]; ++k) {
      const SolverKernel::IncidenceEntry entry = base_.incidence_[k];
      const std::size_t d = entry.device;
      const device::LaneBias<W> bias{
          Lanes<W>::load(&vsoa[base_.gate_[d] * W]),
          Lanes<W>::load(&vsoa[base_.drain_[d] * W]),
          Lanes<W>::load(&vsoa[base_.source_[d] * W]),
          Lanes<W>::load(&vsoa[base_.bulk_[d] * W])};
      r = r + device::laneTerminalCurrent(
                  lane_soa_coeffs_[d], bias,
                  static_cast<device::CompiledTerminal>(entry.terminal));
    }
    return r - Lanes<W>::load(&injsoa[node * W]);
  };

  LaneMask<W> dormant = LaneMask<W>::none();
  for (std::size_t lane = count; lane < W; ++lane) {
    dormant.setLane(lane, true);
  }
  LaneMask<W> converged = LaneMask<W>::none();
  std::array<std::uint64_t, W> node_solves{};
  std::array<std::size_t, W> sweeps_at_convergence{};
  std::array<double, W> lane_max_residual{};
  std::array<NodeId, W> lane_max_residual_node;
  lane_max_residual_node.fill(kNoNode);

  auto chargeNodeSolve = [&](LaneMask<W> skip) {
    for (std::size_t lane = 0; lane < count; ++lane) {
      if (!skip.lane(lane)) {
        ++node_solves[lane];
      }
    }
  };

  const Lanes<W> zero(0.0);
  const Lanes<W> half(0.5);
  const Lanes<W> hstep(1e-7);
  auto clampLanes = [&](Lanes<W> x) { return laneMin(laneMax(x, lo_l), hi_l); };

  // Masked safeguarded Newton at one node; lanes in `skip` never move.
  // Mirrors solver_core's solveScalar step for step, with frozen lanes
  // blended back to their current value at every update.
  auto solveScalarLanes = [&](NodeId node, LaneMask<W> skip) -> Lanes<W> {
    Lanes<W> lo = lo_l;
    Lanes<W> hi = hi_l;
    const Lanes<W> start = Lanes<W>::load(&vsoa[node * W]);
    Lanes<W> x = start;
    Lanes<W> fx = laneResidual(node);
    chargeNodeSolve(skip);
    LaneMask<W> done = skip;
    for (std::size_t iter = 0; iter < shared.max_node_iterations; ++iter) {
      done = maskOr(done, laneLT(laneAbs(fx), Lanes<W>(f_exit)));
      if (maskAll(done)) {
        break;
      }
      const LaneMask<W> live = maskNot(done);
      const LaneMask<W> fx_pos = laneGT(fx, zero);
      hi = laneSelect(maskAnd(live, fx_pos), laneMin(hi, x), hi);
      lo = laneSelect(maskAnd(live, maskNot(fx_pos)), laneMax(lo, x), lo);
      laneSelect(done, x, x + hstep).store(&vsoa[node * W]);
      const Lanes<W> fxh = laneResidual(node);
      const Lanes<W> dfdx = (fxh - fx) / hstep;
      const Lanes<W> mid = half * (lo + hi);
      // Frozen lanes produce dfdx == 0 here (their voltage did not move);
      // the Newton step then divides by zero, and the blends below discard
      // the resulting inf without contaminating live lanes.
      const Lanes<W> newton = x - fx / dfdx;
      const LaneMask<W> good =
          maskAnd(laneGT(dfdx, zero), laneLT(laneAbs(dfdx), Lanes<W>(1e308)));
      Lanes<W> next = laneSelect(good, newton, mid);
      const LaneMask<W> in_bracket =
          maskAnd(laneGT(next, lo), laneLT(next, hi));
      next = laneSelect(in_bracket, next, mid);
      const LaneMask<W> tiny =
          laneLT(laneAbs(next - x), Lanes<W>(1e-15));
      done = maskOr(done, tiny);
      x = laneSelect(done, x, next);
      x.store(&vsoa[node * W]);
      fx = laneResidual(node);
    }
    x.store(&vsoa[node * W]);
    return laneAbs(x - start);
  };

  // Masked dense-Newton over one strongly-coupled cluster: lane-parallel
  // residuals and Jacobian columns, per-lane k-by-k dense solves, and an
  // accept-masked damped line search; lanes whose step is rejected take
  // the coordinate-descent fallback, all under the frozen-lane mask.
  auto solveClusterLanes = [&](const std::vector<NodeId>& members,
                               LaneMask<W> skip) -> Lanes<W> {
    const std::size_t k = members.size();
    std::vector<Lanes<W>> f(k);
    std::vector<Lanes<W>> start(k);
    for (std::size_t i = 0; i < k; ++i) {
      start[i] = Lanes<W>::load(&vsoa[members[i] * W]);
      f[i] = laneResidual(members[i]);
    }
    chargeNodeSolve(skip);
    LaneMask<W> done = skip;
    std::vector<Lanes<W>> jac(k * k);
    std::vector<Lanes<W>> step(k);
    std::vector<Lanes<W>> backup(k);
    std::vector<Lanes<W>> f_new(k);
    std::vector<double> mat(k * k);
    std::vector<double> rhs(k);
    auto maxAbsLanes = [&](const std::vector<Lanes<W>>& values) {
      Lanes<W> m(0.0);
      for (const Lanes<W>& value : values) {
        m = laneMax(m, laneAbs(value));
      }
      return m;
    };
    for (std::size_t iter = 0; iter < shared.max_node_iterations; ++iter) {
      done = maskOr(done, laneLT(maxAbsLanes(f), Lanes<W>(f_exit)));
      if (maskAll(done)) {
        break;
      }
      // Lane-parallel numeric Jacobian, column by column.
      for (std::size_t j = 0; j < k; ++j) {
        const Lanes<W> saved = Lanes<W>::load(&vsoa[members[j] * W]);
        (saved + hstep).store(&vsoa[members[j] * W]);
        for (std::size_t i = 0; i < k; ++i) {
          jac[i * k + j] = (laneResidual(members[i]) - f[i]) / hstep;
        }
        saved.store(&vsoa[members[j] * W]);
      }
      // Per-lane dense solves of the k-by-k Newton systems.
      LaneMask<W> solved = LaneMask<W>::none();
      for (std::size_t lane = 0; lane < count; ++lane) {
        if (done.lane(lane)) {
          continue;
        }
        for (std::size_t idx = 0; idx < k * k; ++idx) {
          mat[idx] = jac[idx][lane];
        }
        for (std::size_t i = 0; i < k; ++i) {
          rhs[i] = -f[i][lane];
        }
        if (nanoleak::solveDense(mat, rhs, k)) {
          solved.setLane(lane, true);
          for (std::size_t i = 0; i < k; ++i) {
            step[i].setLane(lane, rhs[i]);
          }
        }
      }
      // Accept-masked damped line search on the residual norm.
      const Lanes<W> f_norm = maxAbsLanes(f);
      LaneMask<W> accepted = done;
      for (std::size_t i = 0; i < k; ++i) {
        backup[i] = Lanes<W>::load(&vsoa[members[i] * W]);
      }
      Lanes<W> alpha(1.0);
      for (int attempt = 0; attempt < 6; ++attempt) {
        const LaneMask<W> attempting = maskAnd(maskNot(accepted), solved);
        if (!maskAny(attempting)) {
          break;
        }
        for (std::size_t i = 0; i < k; ++i) {
          const Lanes<W> trial = clampLanes(backup[i] + alpha * step[i]);
          const Lanes<W> current = Lanes<W>::load(&vsoa[members[i] * W]);
          laneSelect(attempting, trial, current).store(&vsoa[members[i] * W]);
        }
        for (std::size_t i = 0; i < k; ++i) {
          f_new[i] = laneResidual(members[i]);
        }
        const Lanes<W> f_new_norm = maxAbsLanes(f_new);
        const LaneMask<W> ok = maskOr(laneLT(f_new_norm, f_norm),
                                      laneLT(f_new_norm, Lanes<W>(f_exit)));
        const LaneMask<W> newly = maskAnd(attempting, ok);
        for (std::size_t i = 0; i < k; ++i) {
          f[i] = laneSelect(newly, f_new[i], f[i]);
        }
        accepted = maskOr(accepted, newly);
        const LaneMask<W> rejected = maskAnd(attempting, maskNot(ok));
        for (std::size_t i = 0; i < k; ++i) {
          const Lanes<W> current = Lanes<W>::load(&vsoa[members[i] * W]);
          laneSelect(rejected, backup[i], current).store(&vsoa[members[i] * W]);
        }
        alpha = laneSelect(rejected, alpha * half, alpha);
      }
      const LaneMask<W> need_fallback =
          maskAnd(maskNot(accepted), maskNot(dormant));
      if (maskAny(need_fallback)) {
        static const obs::Counter cluster_fallbacks =
            obs::counter("solver.cluster_fallbacks");
        std::uint64_t lanes_falling = 0;
        for (std::size_t lane = 0; lane < count; ++lane) {
          if (need_fallback.lane(lane)) {
            ++lanes_falling;
          }
        }
        cluster_fallbacks.add(lanes_falling);
        for (NodeId node : members) {
          solveScalarLanes(node, maskNot(need_fallback));
        }
        for (std::size_t i = 0; i < k; ++i) {
          f[i] = laneResidual(members[i]);
        }
      }
    }
    Lanes<W> max_dv(0.0);
    for (std::size_t i = 0; i < k; ++i) {
      max_dv = laneMax(
          max_dv, laneAbs(Lanes<W>::load(&vsoa[members[i] * W]) - start[i]));
    }
    return max_dv;
  };

  // Clusters from the UNION of ON drain-source pairs across the live
  // lanes: a pair strongly coupled in any lane is dense-solved in all, so
  // no lane is left relaxing a stiff pair scalar-wise.
  std::vector<double> scratch(n);
  auto buildLockstepClusters = [&](bool initial) {
    detail::UnionFind uf(n);
    for (std::size_t lane = 0; lane < count; ++lane) {
      if (converged.lane(lane)) {
        continue;
      }
      const std::vector<double>* cv = nullptr;
      if (initial && requests[lane].cluster_guess != nullptr &&
          requests[lane].cluster_guess->size() == n) {
        cv = requests[lane].cluster_guess;
      } else {
        for (NodeId node = 0; node < n; ++node) {
          scratch[node] = vsoa[node * W + lane];
        }
        cv = &scratch;
      }
      forOnPairsLane(lane, *cv,
                     [&](NodeId d, NodeId s) { uf.unite(d, s); });
    }
    std::vector<std::vector<NodeId>> clusters;
    std::vector<std::ptrdiff_t> cluster_of(n, -1);
    for (NodeId node : order) {
      const std::size_t root = uf.find(node);
      if (cluster_of[root] < 0) {
        cluster_of[root] = static_cast<std::ptrdiff_t>(clusters.size());
        clusters.emplace_back();
      }
      clusters[static_cast<std::size_t>(cluster_of[root])].push_back(node);
    }
    return clusters;
  };
  auto clusters = buildLockstepClusters(true);
  bool reclustered = false;

  for (std::size_t sweep = 1; sweep <= sweep_budget; ++sweep) {
    const LaneMask<W> skip = maskOr(dormant, converged);
    Lanes<W> max_dv(0.0);
    for (const std::vector<NodeId>& cluster : clusters) {
      const Lanes<W> dv = cluster.size() == 1
                              ? solveScalarLanes(cluster[0], skip)
                              : solveClusterLanes(cluster, skip);
      max_dv = laneMax(max_dv, dv);
    }
    const LaneMask<W> settled =
        maskAnd(maskNot(skip), laneLT(max_dv, Lanes<W>(shared.tol_voltage)));
    if (maskAny(settled)) {
      // Voltages settled in some lanes; verify their KCL residuals.
      std::array<double, W> max_r{};
      std::array<NodeId, W> arg_r;
      arg_r.fill(kNoNode);
      for (NodeId node : order) {
        const Lanes<W> r = laneAbs(laneResidual(node));
        for (std::size_t lane = 0; lane < count; ++lane) {
          if (settled.lane(lane) && r[lane] > max_r[lane]) {
            max_r[lane] = r[lane];
            arg_r[lane] = node;
          }
        }
      }
      bool settled_unconverged = false;
      for (std::size_t lane = 0; lane < count; ++lane) {
        if (!settled.lane(lane)) {
          continue;
        }
        lane_max_residual[lane] = max_r[lane];
        lane_max_residual_node[lane] = arg_r[lane];
        if (max_r[lane] < shared.tol_current) {
          converged.setLane(lane, true);
          sweeps_at_convergence[lane] = sweep;
        } else {
          settled_unconverged = true;
        }
      }
      if (settled_unconverged && !reclustered) {
        // Device on/off states may have shifted; recluster once from the
        // live lanes' current voltages and keep sweeping.
        clusters = buildLockstepClusters(false);
        reclustered = true;
      }
    }
    if (maskAll(maskOr(dormant, converged))) {
      break;
    }
  }

  for (std::size_t lane = 0; lane < count; ++lane) {
    if (!converged.lane(lane)) {
      continue;  // stays pending -> scalar fallback
    }
    Solution s;
    s.voltages.resize(n);
    for (NodeId node = 0; node < n; ++node) {
      s.voltages[node] = vsoa[node * W + lane];
    }
    s.converged = true;
    s.sweeps = sweeps_at_convergence[lane];
    s.max_residual = lane_max_residual[lane];
    s.max_residual_node = lane_max_residual_node[lane];
    s.node_solves = node_solves[lane];
    detail::recordSolve(s.node_solves, true, s.sweeps);
    results[lane] = std::move(s);
    pending[lane] = false;
  }
}

}  // namespace nanoleak::circuit
