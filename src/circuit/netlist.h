// Transistor-level circuit representation for DC leakage analysis.
//
// A Netlist is a set of nodes connected by MOSFETs, ideal voltage bindings
// (rails / primary inputs) and ideal current sources (used to model loading
// currents during characterization, per the paper's IL-IN / IL-OUT sweeps).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "device/mosfet.h"

namespace nanoleak::circuit {

/// Index of a node within a Netlist.
using NodeId = std::size_t;
/// Index of a device within a Netlist.
using DeviceId = std::size_t;
/// Index of a current source within a Netlist.
using SourceId = std::size_t;

/// Sentinel owner for devices not attributed to any logic gate.
inline constexpr int kNoOwner = -1;

/// One MOSFET instance and its four terminal nodes.
struct DeviceInstance {
  device::Mosfet mosfet;
  NodeId gate;
  NodeId drain;
  NodeId source;
  NodeId bulk;
  /// Owner tag (e.g. logic-gate index) for per-gate leakage attribution.
  int owner = kNoOwner;
};

/// Ideal current source injecting `amps` INTO `node`.
struct CurrentSource {
  NodeId node;
  double amps = 0.0;
};

/// Mutable transistor-level netlist.
class Netlist {
 public:
  /// Adds a named node; names are for diagnostics and need not be unique.
  NodeId addNode(std::string name);

  /// Binds a node to a fixed potential (ideal voltage source to ground).
  void fixVoltage(NodeId node, double volts);

  /// True if `node` is bound to a fixed potential.
  bool isFixed(NodeId node) const;

  /// Fixed potential of a bound node; requires isFixed(node).
  double fixedVoltage(NodeId node) const;

  /// Adds a MOSFET between the four nodes.
  DeviceId addMosfet(device::Mosfet mosfet, NodeId gate, NodeId drain,
                     NodeId source, NodeId bulk, int owner = kNoOwner);

  /// Adds an ideal current source injecting `amps` into `node`.
  SourceId addCurrentSource(NodeId node, double amps);

  /// Re-targets an existing current source (used by loading sweeps).
  void setCurrentSource(SourceId source, double amps);

  std::size_t nodeCount() const { return node_names_.size(); }
  std::size_t deviceCount() const { return devices_.size(); }
  std::size_t sourceCount() const { return sources_.size(); }

  const std::string& nodeName(NodeId node) const;
  const std::vector<DeviceInstance>& devices() const { return devices_; }
  std::vector<DeviceInstance>& devices() { return devices_; }
  const std::vector<CurrentSource>& sources() const { return sources_; }

  /// Total source current injected into `node`.
  double injectedCurrent(NodeId node) const;

 private:
  void checkNode(NodeId node, const char* context) const;

  std::vector<std::string> node_names_;
  std::vector<bool> fixed_;
  std::vector<double> fixed_voltage_;
  std::vector<DeviceInstance> devices_;
  std::vector<CurrentSource> sources_;
};

}  // namespace nanoleak::circuit
