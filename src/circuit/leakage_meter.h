// Leakage extraction at a solved DC operating point.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "device/leakage_breakdown.h"

namespace nanoleak::circuit {

/// Total leakage decomposition of the whole netlist at `voltages`.
device::LeakageBreakdown totalLeakage(const Netlist& netlist,
                                      const std::vector<double>& voltages,
                                      const device::Environment& env);

/// Per-owner leakage decomposition. Index = owner tag; devices tagged
/// kNoOwner are accumulated into the extra last slot.
std::vector<device::LeakageBreakdown> leakageByOwner(
    const Netlist& netlist, const std::vector<double>& voltages,
    const device::Environment& env, std::size_t owner_count);

/// Current delivered by the ideal source binding `fixed_node` (IDDQ when
/// the node is the VDD rail). Positive = the source pushes current into
/// the circuit.
double sourceCurrent(const Netlist& netlist,
                     const std::vector<double>& voltages, NodeId fixed_node,
                     const device::Environment& env);

}  // namespace nanoleak::circuit
