// Process-wide solver work counters, backed by the obs metrics registry.
//
// Every DC solve (DcSolver or SolverKernel) records how many scalar node
// solves it performed. The counters are cumulative, monotone and
// thread-safe; callers snapshot before/after a workload and report the
// delta (the `nanoleak run --time` flag and the solver benches do this).
// The same totals are visible to obs::snapshot() under the names
// "solver.solves", "solver.node_solves", "solver.converged" and
// "solver.non_converged" - this header is a thin circuit-facing view over
// those registry counters, kept so solver code does not need to know the
// metric names.
#pragma once

#include <cstdint>

namespace nanoleak::circuit {

/// Snapshot of the cumulative solver work counters.
struct SolveStats {
  /// DC solves completed (converged or not).
  std::uint64_t solves = 0;
  /// Scalar node solves performed across all DC solves (the work metric
  /// Solution::node_solves reports per solve).
  std::uint64_t node_solves = 0;
};

/// Current cumulative counters.
SolveStats solveStats();

/// Scoped window over the solver counters: captures a baseline at
/// construction, and delta() reports the work recorded since. This is
/// the supported "reset" - the underlying registry counters stay
/// monotone, so concurrent windows (nested scopes, other threads'
/// measurements) never clobber each other.
class ScopedSolveStats {
 public:
  /// Captures the current counters as the window baseline.
  ScopedSolveStats() : baseline_(solveStats()) {}

  /// Work recorded since construction (clamped at 0 if the registry was
  /// explicitly reset inside the window).
  SolveStats delta() const {
    const SolveStats now = solveStats();
    SolveStats d;
    d.solves = now.solves >= baseline_.solves ? now.solves - baseline_.solves
                                              : 0;
    d.node_solves = now.node_solves >= baseline_.node_solves
                        ? now.node_solves - baseline_.node_solves
                        : 0;
    return d;
  }

 private:
  SolveStats baseline_;
};

namespace detail {
/// Called by the solve driver at the end of every solve. `sweeps` is the
/// number of Gauss-Seidel sweeps the solve ran; `converged` whether it
/// met tolerance within the sweep budget.
void recordSolve(std::uint64_t node_solves, bool converged,
                 std::uint64_t sweeps);
}  // namespace detail

}  // namespace nanoleak::circuit
