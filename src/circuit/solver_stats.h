// Process-wide solver work counters.
//
// Every DC solve (DcSolver or SolverKernel) records how many scalar node
// solves it performed. The counters are cumulative, monotone and
// thread-safe; callers snapshot before/after a workload and report the
// delta (the `nanoleak run --time` flag and the solver benches do this).
#pragma once

#include <cstdint>

namespace nanoleak::circuit {

/// Snapshot of the cumulative solver work counters.
struct SolveStats {
  /// DC solves completed (converged or not).
  std::uint64_t solves = 0;
  /// Scalar node solves performed across all DC solves (the work metric
  /// Solution::node_solves reports per solve).
  std::uint64_t node_solves = 0;
};

/// Current cumulative counters.
SolveStats solveStats();

namespace detail {
/// Called by the solve driver at the end of every solve.
void recordSolve(std::uint64_t node_solves);
}  // namespace detail

}  // namespace nanoleak::circuit
