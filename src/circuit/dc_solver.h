// Nonlinear DC operating-point solver.
//
// Plays the role HSPICE played in the paper: it solves the full coupled
// KCL system (the paper's Eq. 1-2 generalized to every free node) to
// convergence, so the "golden" leakage numbers every approximation is
// judged against come from here.
//
// Method: nonlinear Gauss-Seidel. Leakage-mode CMOS circuits are strongly
// diagonally dominant - every net is held near a rail through an ON
// transistor whose conductance dwarfs the tunneling currents coupling it
// to other nets - so per-node scalar solves (safeguarded Newton with a
// maintained bisection bracket) swept repeatedly over the nodes converge
// in a handful of sweeps without any sparse-matrix machinery, and scale
// to the s13207-size netlist expansions of Fig. 12. Convergence is checked
// on both voltage deltas and KCL residuals.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace nanoleak::circuit {

/// Solver tuning knobs. Defaults suit 1 V leakage-mode circuits.
struct SolverOptions {
  /// Node voltages are bracketed to [bracket_lo, bracket_hi].
  double bracket_lo = -0.3;
  double bracket_hi = 1.3;
  /// Convergence: max |dV| over a sweep [V].
  double tol_voltage = 1e-10;
  /// Convergence: max |KCL residual| at any free node [A].
  double tol_current = 1e-16;
  /// Maximum Gauss-Seidel sweeps before giving up.
  std::size_t max_sweeps = 200;
  /// Maximum Newton/bisection iterations per scalar node solve.
  std::size_t max_node_iterations = 60;
  /// Minimum conductance from every free node to ground [S] (SPICE gmin);
  /// keeps genuinely floating nodes well-posed without disturbing nA-scale
  /// results.
  double gmin = 1e-12;
  /// Ambient temperature [K].
  double temperature_k = 300.0;
};

/// Result of a DC solve.
struct Solution {
  /// Node potentials, indexed by NodeId (fixed nodes hold their binding).
  std::vector<double> voltages;
  bool converged = false;
  std::size_t sweeps = 0;
  /// Max |KCL residual| over free nodes at exit [A].
  double max_residual = 0.0;
  /// Free node carrying max_residual (so non-converging solves can name
  /// the offending net); npos when the netlist has no free nodes.
  NodeId max_residual_node = static_cast<NodeId>(-1);
  /// Total scalar node solves performed (work metric for the speedup bench).
  std::size_t node_solves = 0;
};

/// Diagnostic fragment for ConvergenceError messages: "node <name>,
/// |residual| = <r> A" naming the worst free node of a failed solve, or
/// empty when the solution carries no valid max_residual_node. Shared by
/// every solve wrapper so non-converging corners read the same in CI logs.
std::string nonConvergenceDetail(const Netlist& netlist,
                                 const Solution& solution);

/// DC operating-point solver over a Netlist.
class DcSolver {
 public:
  explicit DcSolver(SolverOptions options = SolverOptions{});

  /// Solves the netlist. `initial_guess` (optional) seeds free-node
  /// voltages - pass expected logic levels for fast convergence; when
  /// empty, free nodes start mid-bracket.
  ///
  /// `sweep_order` (optional) gives the order free nodes are relaxed in;
  /// a topological order makes Gauss-Seidel converge in O(1) sweeps.
  Solution solve(const Netlist& netlist,
                 const std::vector<double>& initial_guess = {},
                 const std::vector<NodeId>& sweep_order = {}) const;

  /// KCL residual (net current leaving `node`) at the given voltages.
  /// Exposed so tests can verify solutions independently.
  static double nodeResidual(const Netlist& netlist,
                             const std::vector<double>& voltages, NodeId node,
                             const SolverOptions& options);

  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace nanoleak::circuit
