// Shared nonlinear Gauss-Seidel solve driver.
//
// DcSolver (interpreting a Netlist directly) and SolverKernel (running on
// compiled SoA device arrays) differ only in how a node's KCL residual is
// evaluated; the sweep/cluster/safeguarded-Newton machinery is this one
// template, instantiated over an Evaluator. A single driver is what makes
// the two paths bit-identical by construction: given equal residual values
// they perform the exact same floating-point operation sequence.
//
// Evaluator concept:
//   std::size_t nodeCount() const;
//   bool isFixed(NodeId node) const;
//   double fixedVoltage(NodeId node) const;            // requires isFixed
//   double residual(const std::vector<double>& v, NodeId node) const;
//   template <typename F>                              // f(drain, source)
//   void forOnPairs(const std::vector<double>& v, F&& f) const;
//     // every device whose drain AND source are free and whose channel is
//     // ON at v, in device order
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "circuit/dc_solver.h"
#include "circuit/solver_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/linalg.h"

namespace nanoleak::circuit::detail {

/// Minimal union-find for clustering strongly coupled nodes.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Groups free nodes connected drain-to-source through an ON transistor.
/// Such pairs are so strongly coupled that scalar relaxation crawls; each
/// cluster is solved as one dense Newton block instead.
template <typename Evaluator>
std::vector<std::vector<NodeId>> buildClusters(
    const Evaluator& eval, const std::vector<double>& voltages,
    const std::vector<NodeId>& order) {
  UnionFind uf(eval.nodeCount());
  eval.forOnPairs(voltages,
                  [&](NodeId drain, NodeId source) { uf.unite(drain, source); });
  // Emit clusters in sweep order, members ordered by sweep position.
  std::vector<std::vector<NodeId>> clusters;
  std::vector<std::ptrdiff_t> cluster_of(eval.nodeCount(), -1);
  for (NodeId node : order) {
    const std::size_t root = uf.find(node);
    if (cluster_of[root] < 0) {
      cluster_of[root] = static_cast<std::ptrdiff_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(cluster_of[root])].push_back(node);
  }
  return clusters;
}

/// `cluster_guess` (optional) supplies the voltages ON/OFF devices are
/// classified from when forming the initial strongly-coupled clusters.
/// Warm starts pass the cold logic-level seed here: at a near-solved warm
/// seed, series-stack devices sit at marginal Vgs and read as OFF, which
/// would dissolve exactly the dense-Newton blocks that make the solve
/// fast. Null = classify from the initial voltages (the legacy behavior).
template <typename Evaluator>
Solution gaussSeidelSolve(const Evaluator& eval, const SolverOptions& options,
                          const std::vector<double>& initial_guess,
                          const std::vector<NodeId>& sweep_order,
                          const std::vector<double>* cluster_guess = nullptr) {
  const std::size_t n = eval.nodeCount();
  require(initial_guess.empty() || initial_guess.size() == n,
          "DC solve: initial guess size mismatch");
  OBS_SPAN("solve.gauss_seidel", ::nanoleak::obs::TraceLevel::kDetail);

  Solution solution;
  solution.voltages.assign(n,
                           0.5 * (options.bracket_lo + options.bracket_hi));
  for (NodeId node = 0; node < n; ++node) {
    if (eval.isFixed(node)) {
      solution.voltages[node] = eval.fixedVoltage(node);
    } else if (!initial_guess.empty()) {
      solution.voltages[node] = std::clamp(
          initial_guess[node], options.bracket_lo, options.bracket_hi);
    }
  }

  // Relaxation order: caller-provided free nodes first (topological order
  // gives near-one-sweep convergence), then any free nodes not mentioned.
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> scheduled(n, false);
  for (NodeId node : sweep_order) {
    require(node < n, "DC solve: sweep_order node out of range");
    if (!eval.isFixed(node) && !scheduled[node]) {
      order.push_back(node);
      scheduled[node] = true;
    }
  }
  for (NodeId node = 0; node < n; ++node) {
    if (!eval.isFixed(node) && !scheduled[node]) {
      order.push_back(node);
    }
  }
  if (order.empty()) {
    solution.converged = true;
    detail::recordSolve(solution.node_solves, true, solution.sweeps);
    return solution;
  }

  auto& v = solution.voltages;
  const double f_exit = 0.1 * options.tol_current;

  // Scalar solve at one node: safeguarded Newton on the (monotone in v)
  // residual, with a maintained bisection bracket as fallback. Returns the
  // voltage change magnitude.
  auto solveScalar = [&](NodeId node) -> double {
    double lo = options.bracket_lo;
    double hi = options.bracket_hi;
    const double start = v[node];
    double x = start;
    double fx = eval.residual(v, node);
    ++solution.node_solves;
    for (std::size_t iter = 0; iter < options.max_node_iterations; ++iter) {
      if (std::abs(fx) < f_exit) {
        break;
      }
      if (fx > 0.0) {
        hi = std::min(hi, x);
      } else {
        lo = std::max(lo, x);
      }
      // Forward-difference derivative; h small vs. voltage scale, large vs.
      // double rounding on ~1 V values.
      const double h = 1e-7;
      v[node] = x + h;
      const double fxh = eval.residual(v, node);
      const double dfdx = (fxh - fx) / h;
      double next;
      if (dfdx > 0.0 && std::isfinite(dfdx)) {
        next = x - fx / dfdx;
      } else {
        next = 0.5 * (lo + hi);
      }
      if (!(next > lo && next < hi)) {
        next = 0.5 * (lo + hi);
      }
      if (std::abs(next - x) < 1e-15) {
        break;
      }
      x = next;
      v[node] = x;
      fx = eval.residual(v, node);
    }
    v[node] = x;
    return std::abs(x - start);
  };

  // Dense Newton over one strongly-coupled cluster (a few unknowns).
  auto solveCluster = [&](const std::vector<NodeId>& members) -> double {
    const std::size_t k = members.size();
    std::vector<double> f(k);
    std::vector<double> start(k);
    for (std::size_t i = 0; i < k; ++i) {
      start[i] = v[members[i]];
      f[i] = eval.residual(v, members[i]);
    }
    ++solution.node_solves;
    std::vector<double> jac(k * k);
    std::vector<double> rhs(k);
    std::vector<double> trial(k);
    auto maxAbs = [](const std::vector<double>& values) {
      double m = 0.0;
      for (double value : values) {
        m = std::max(m, std::abs(value));
      }
      return m;
    };
    for (std::size_t iter = 0; iter < options.max_node_iterations; ++iter) {
      if (maxAbs(f) < f_exit) {
        break;
      }
      // Numeric Jacobian, column by column.
      const double h = 1e-7;
      for (std::size_t j = 0; j < k; ++j) {
        const double saved = v[members[j]];
        v[members[j]] = saved + h;
        for (std::size_t i = 0; i < k; ++i) {
          const double fi = eval.residual(v, members[i]);
          jac[i * k + j] = (fi - f[i]) / h;
        }
        v[members[j]] = saved;
      }
      for (std::size_t i = 0; i < k; ++i) {
        rhs[i] = -f[i];
      }
      std::vector<double> jac_copy = jac;
      bool solved = solveDense(jac_copy, rhs, k);
      bool accepted = false;
      if (solved) {
        // Damped, bracket-clamped line search on the residual norm.
        double alpha = 1.0;
        const double f_norm = maxAbs(f);
        for (int attempt = 0; attempt < 6; ++attempt) {
          for (std::size_t i = 0; i < k; ++i) {
            trial[i] = std::clamp(v[members[i]] + alpha * rhs[i],
                                  options.bracket_lo, options.bracket_hi);
          }
          std::vector<double> backup(k);
          for (std::size_t i = 0; i < k; ++i) {
            backup[i] = v[members[i]];
            v[members[i]] = trial[i];
          }
          std::vector<double> f_new(k);
          for (std::size_t i = 0; i < k; ++i) {
            f_new[i] = eval.residual(v, members[i]);
          }
          if (maxAbs(f_new) < f_norm || maxAbs(f_new) < f_exit) {
            f = f_new;
            accepted = true;
            break;
          }
          for (std::size_t i = 0; i < k; ++i) {
            v[members[i]] = backup[i];
          }
          alpha *= 0.5;
        }
      }
      if (!accepted) {
        // Fallback: one coordinate-descent pass through the cluster.
        static const obs::Counter cluster_fallbacks =
            obs::counter("solver.cluster_fallbacks");
        cluster_fallbacks.increment();
        for (NodeId node : members) {
          solveScalar(node);
        }
        for (std::size_t i = 0; i < k; ++i) {
          f[i] = eval.residual(v, members[i]);
        }
      }
    }
    double max_dv = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      max_dv = std::max(max_dv, std::abs(v[members[i]] - start[i]));
    }
    return max_dv;
  };

  // Max |residual| over the free nodes, remembering the offending node so
  // ConvergenceError messages can name it.
  auto residualCheck = [&]() {
    double max_residual = 0.0;
    for (NodeId node : order) {
      const double r = std::abs(eval.residual(v, node));
      if (r > max_residual) {
        max_residual = r;
        solution.max_residual_node = node;
      }
    }
    solution.max_residual = max_residual;
  };

  auto clusters = buildClusters(
      eval,
      cluster_guess != nullptr && cluster_guess->size() == n ? *cluster_guess
                                                             : v,
      order);
  bool reclustered = false;

  for (solution.sweeps = 1; solution.sweeps <= options.max_sweeps;
       ++solution.sweeps) {
    // Sweep boundaries are the solver's cancellation safe points: no
    // shared state is mid-update, so a deadline unwind here leaves only
    // this (discarded) Solution partially filled.
    util::pollCancel();
    double max_dv = 0.0;
    for (const std::vector<NodeId>& cluster : clusters) {
      const double dv = cluster.size() == 1 ? solveScalar(cluster[0])
                                            : solveCluster(cluster);
      max_dv = std::max(max_dv, dv);
    }
    if (max_dv < options.tol_voltage) {
      // Voltages settled; verify KCL everywhere before declaring victory.
      residualCheck();
      if (solution.max_residual < options.tol_current) {
        solution.converged = true;
        detail::recordSolve(solution.node_solves, true, solution.sweeps);
        return solution;
      }
      if (!reclustered) {
        // Device on/off states may have shifted since the initial guess;
        // recluster once from the current voltages and keep sweeping.
        clusters = buildClusters(eval, v, order);
        reclustered = true;
      }
    }
  }
  solution.sweeps = options.max_sweeps;
  residualCheck();
  detail::recordSolve(solution.node_solves, false, solution.sweeps);
  return solution;
}

}  // namespace nanoleak::circuit::detail
