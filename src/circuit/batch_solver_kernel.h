/// \file
/// Lane-parallel batch DC solver: N independent operating points of one
/// compiled topology solved in lockstep.
///
/// A BatchSolverKernel wraps a SolverKernel (whose compiled CSR incidence
/// and SoA terminal arrays it shares read-only) and adds per-lane state:
/// fixed-node bindings, injected source currents, device coefficients and
/// solver options may all differ lane by lane. That makes one batch cover
/// the three natural producers — adjacent loading-grid points
/// (Characterizer), Monte-Carlo trials with per-lane process variations
/// (MonteCarloEngine), and the same grid point at adjacent temperatures
/// (ThermalCharacterizer).
///
/// Solve strategy (see batch_solver_kernel.cpp for the driver):
///  * **Lockstep sweeps** — the Gauss-Seidel/cluster-Newton machinery of
///    solver_core.h re-expressed over `util::Lanes`: one vectorized
///    residual evaluation walks the shared CSR incidence and evaluates
///    every lane's device currents at once (device/lane_model.h).
///  * **Convergence masking** — lanes that meet tolerance freeze (their
///    voltages stop moving and their work counters stop) while straggler
///    lanes keep iterating; masked blends keep frozen lanes' values exact.
///  * **Scalar fallback** — any lane the lockstep path fails to converge
///    is re-solved from its original request through the scalar
///    solver_core driver on a per-lane evaluator view. That fallback is
///    bit-identical to a never-batched SolverKernel solve of the same
///    bindings; on the width-1 scalar backend every lane takes it, making
///    the whole batch path bit-exact against the scalar reference.
///
/// Equivalence contract (gated by bench_solver_kernel and
/// tests/circuit/batch_solver_kernel_test.cpp): scalar backend and
/// fallback lanes are bit-identical to SolverKernel::solve; vectorized
/// lockstep lanes agree within 1e-6 (the warm-start drift bound).
///
/// The batch kernel never throws on non-convergence — each returned
/// Solution carries its own `converged` flag so producers can attach the
/// failing lane's scenario identity (trial index, grid point,
/// temperature) to the ConvergenceError they raise.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "circuit/dc_solver.h"
#include "circuit/netlist.h"
#include "circuit/solver_kernel.h"
#include "device/lane_model.h"
#include "device/leakage_breakdown.h"
#include "util/simd.h"

namespace nanoleak::circuit {

struct LaneViewEvaluator;

/// Lane-parallel wrapper around SolverKernel: evaluates up to kLaneWidth
/// independent operating points of the same compiled netlist in lockstep,
/// one SIMD lane each. Lanes that converge early go dormant behind a mask;
/// lanes that exhaust the lockstep budget fall back to the scalar kernel.
/// At kLaneWidth == 1 every code path degenerates to the scalar kernel and
/// results are bit-identical to SolverKernel::solve.
class BatchSolverKernel {
 public:
  /// Lanes per batch on the configured backend (1 scalar, 2 NEON, 4 AVX2).
  static constexpr std::size_t kLaneWidth = util::kNativeLaneWidth;

  /// Compiles `netlist` once and replicates its bound state (fixed
  /// voltages, source currents, device coefficients at
  /// options.temperature_k) into every lane.
  explicit BatchSolverKernel(const Netlist& netlist,
                             SolverOptions options = SolverOptions{});

  /// One lane's solve request. Null `initial_guess` starts mid-bracket
  /// (a cold solve); `cluster_guess` has the same role as in
  /// SolverKernel::solve (logic-level voltages for ON/OFF classification).
  struct LaneRequest {
    /// Starting node voltages; null means a cold (mid-bracket) start.
    const std::vector<double>* initial_guess = nullptr;
    /// Logic-level voltages for ON/OFF cluster classification; may be null.
    const std::vector<double>* cluster_guess = nullptr;
  };

  /// Solves lanes 0..requests.size()-1 (at most kLaneWidth) in lockstep
  /// against their currently bound per-lane state. Returns one Solution
  /// per request; non-convergence is reported through
  /// Solution::converged, never thrown.
  std::vector<Solution> solve(std::span<const LaneRequest> requests,
                              const std::vector<NodeId>& sweep_order = {});

  /// Re-targets a current source in one lane (SolverKernel::setSource).
  void setSource(std::size_t lane, SourceId source, double amps);

  /// Re-binds a compile-time-fixed node's potential in one lane.
  void setFixedVoltage(std::size_t lane, NodeId node, double volts);

  /// Replaces one lane's solver options; recompiles that lane's device
  /// coefficients only when its temperature changed. Tolerances, sweep
  /// budgets and gmin are shared knobs read from lane 0 during lockstep
  /// solves (per-lane brackets and temperatures are fully honored).
  void setLaneOptions(std::size_t lane, const SolverOptions& options);

  /// The options currently bound to `lane` (as set by setLaneOptions).
  const SolverOptions& laneOptions(std::size_t lane) const {
    return lane_options_[lane];
  }

  /// Re-binds one lane's per-device process variations
  /// (SolverKernel::rebindVariations, per lane).
  void rebindVariations(std::size_t lane,
                        std::span<const device::DeviceVariation> variations);

  /// Per-owner leakage decomposition at `voltages` using one lane's
  /// coefficients; matches SolverKernel::leakageByOwner for that lane's
  /// bound state.
  std::vector<device::LeakageBreakdown> laneLeakageByOwner(
      std::size_t lane, const std::vector<double>& voltages,
      std::size_t owner_count) const;

  /// Number of unknown nodes in the compiled netlist.
  std::size_t nodeCount() const { return base_.nodeCount(); }
  /// Number of compiled device instances.
  std::size_t deviceCount() const { return base_.deviceCount(); }

  /// Test knob: caps the lockstep sweep budget (default: the lane-0
  /// max_sweeps). setMaxLockstepSweeps(0) forces every lane straight to
  /// the scalar fallback, which the fallback bit-identity test uses.
  void setMaxLockstepSweeps(std::size_t sweeps) {
    max_lockstep_sweeps_ = sweeps;
  }

 private:
  friend struct LaneViewEvaluator;
  static constexpr std::size_t W = kLaneWidth;

  /// Scalar KCL residual of one lane (same accumulation order as
  /// SolverKernel::residual, reading this lane's coefficients/state).
  double laneScalarResidual(std::size_t lane,
                            const std::vector<double>& voltages,
                            NodeId node) const;

  /// Per-lane analog of KernelEvaluator::forOnPairs.
  template <typename F>
  void forOnPairsLane(std::size_t lane, const std::vector<double>& voltages,
                      F&& f) const {
    const auto& coeffs = lane_coeffs_[lane];
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      if (base_.fixed_[base_.drain_[i]] || base_.fixed_[base_.source_[i]]) {
        continue;
      }
      const device::BiasPoint bias{
          voltages[base_.gate_[i]], voltages[base_.drain_[i]],
          voltages[base_.source_[i]], voltages[base_.bulk_[i]]};
      if (!device::compiledIsOff(coeffs[i], bias)) {
        f(base_.drain_[i], base_.source_[i]);
      }
    }
  }

  /// Fixedness is topology, shared by all lanes (LaneViewEvaluator cannot
  /// reach base_'s privates itself — friendship is not transitive).
  bool nodeIsFixed(NodeId node) const { return base_.fixed_[node]; }

  void recomputeLaneInjected(std::size_t lane, NodeId node);
  void refreshLaneSoaCoeffs();

  /// Masked lockstep Gauss-Seidel over the active lanes. Fills `results`
  /// and clears `pending` for lanes that converged; lanes still pending
  /// afterwards take the scalar fallback.
  void solveLockstep(std::span<const LaneRequest> requests,
                     const std::vector<NodeId>& sweep_order,
                     std::size_t sweep_budget, std::vector<Solution>& results,
                     std::array<bool, W>& pending);

  /// Scalar-path solve of one lane via the solver_core driver
  /// (bit-identical to SolverKernel::solve on this lane's bindings).
  Solution solveLaneScalar(std::size_t lane, const LaneRequest& request,
                           const std::vector<NodeId>& sweep_order) const;

  SolverKernel base_;
  std::array<SolverOptions, W> lane_options_;
  std::array<std::vector<double>, W> lane_fixed_voltage_;
  std::array<std::vector<double>, W> lane_injected_;
  std::array<std::vector<double>, W> lane_source_amps_;
  std::array<std::vector<device::DeviceCoeffs>, W> lane_coeffs_;
  std::array<std::vector<device::Mosfet>, W> lane_mosfets_;

  /// Lane-transposed coefficients for the lockstep driver, rebuilt lazily
  /// after any per-lane rebind.
  std::vector<device::LaneCoeffs<W>> lane_soa_coeffs_;
  bool lane_soa_dirty_ = true;

  std::size_t max_lockstep_sweeps_ = static_cast<std::size_t>(-1);
};

}  // namespace nanoleak::circuit
