#include "circuit/dc_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/linalg.h"

namespace nanoleak::circuit {
namespace {

/// Which terminal of a device touches a node.
enum class Terminal { kGate, kDrain, kSource, kBulk };

struct Incidence {
  std::size_t device;
  Terminal terminal;
};

/// Per-node incidence lists, built once per solve.
std::vector<std::vector<Incidence>> buildIncidence(const Netlist& netlist) {
  std::vector<std::vector<Incidence>> incidence(netlist.nodeCount());
  const auto& devices = netlist.devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    incidence[devices[i].gate].push_back({i, Terminal::kGate});
    incidence[devices[i].drain].push_back({i, Terminal::kDrain});
    incidence[devices[i].source].push_back({i, Terminal::kSource});
    incidence[devices[i].bulk].push_back({i, Terminal::kBulk});
  }
  return incidence;
}

double terminalCurrent(const device::TerminalCurrents& currents,
                       Terminal terminal) {
  switch (terminal) {
    case Terminal::kGate:
      return currents.gate;
    case Terminal::kDrain:
      return currents.drain;
    case Terminal::kSource:
      return currents.source;
    case Terminal::kBulk:
      return currents.bulk;
  }
  return 0.0;
}

/// Net current leaving `node` given the voltage vector.
double residualAt(const Netlist& netlist,
                  const std::vector<std::vector<Incidence>>& incidence,
                  const std::vector<double>& voltages, NodeId node,
                  const SolverOptions& options) {
  const device::Environment env{options.temperature_k};
  double residual = options.gmin * voltages[node];
  for (const Incidence& inc : incidence[node]) {
    const DeviceInstance& dev = netlist.devices()[inc.device];
    const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                 voltages[dev.source], voltages[dev.bulk]};
    residual += terminalCurrent(dev.mosfet.currents(bias, env), inc.terminal);
  }
  return residual - netlist.injectedCurrent(node);
}

/// Minimal union-find for clustering strongly coupled nodes.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Groups free nodes connected drain-to-source through an ON transistor.
/// Such pairs are so strongly coupled that scalar relaxation crawls; each
/// cluster is solved as one dense Newton block instead.
std::vector<std::vector<NodeId>> buildClusters(
    const Netlist& netlist, const std::vector<double>& voltages,
    const std::vector<NodeId>& order, const SolverOptions& options) {
  const device::Environment env{options.temperature_k};
  UnionFind uf(netlist.nodeCount());
  for (const DeviceInstance& dev : netlist.devices()) {
    if (netlist.isFixed(dev.drain) || netlist.isFixed(dev.source)) {
      continue;
    }
    const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                 voltages[dev.source], voltages[dev.bulk]};
    if (!dev.mosfet.isOff(bias, env)) {
      uf.unite(dev.drain, dev.source);
    }
  }
  // Emit clusters in sweep order, members ordered by sweep position.
  std::vector<std::vector<NodeId>> clusters;
  std::vector<std::ptrdiff_t> cluster_of(netlist.nodeCount(), -1);
  for (NodeId node : order) {
    const std::size_t root = uf.find(node);
    if (cluster_of[root] < 0) {
      cluster_of[root] = static_cast<std::ptrdiff_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(cluster_of[root])].push_back(node);
  }
  return clusters;
}

}  // namespace

DcSolver::DcSolver(SolverOptions options) : options_(options) {
  require(options_.bracket_hi > options_.bracket_lo,
          "DcSolver: bracket_hi must exceed bracket_lo");
}

double DcSolver::nodeResidual(const Netlist& netlist,
                              const std::vector<double>& voltages, NodeId node,
                              const SolverOptions& options) {
  const auto incidence = buildIncidence(netlist);
  return residualAt(netlist, incidence, voltages, node, options);
}

Solution DcSolver::solve(const Netlist& netlist,
                         const std::vector<double>& initial_guess,
                         const std::vector<NodeId>& sweep_order) const {
  const std::size_t n = netlist.nodeCount();
  require(initial_guess.empty() || initial_guess.size() == n,
          "DcSolver::solve: initial guess size mismatch");

  Solution solution;
  solution.voltages.assign(n,
                           0.5 * (options_.bracket_lo + options_.bracket_hi));
  for (NodeId node = 0; node < n; ++node) {
    if (netlist.isFixed(node)) {
      solution.voltages[node] = netlist.fixedVoltage(node);
    } else if (!initial_guess.empty()) {
      solution.voltages[node] = std::clamp(
          initial_guess[node], options_.bracket_lo, options_.bracket_hi);
    }
  }

  // Relaxation order: caller-provided free nodes first (topological order
  // gives near-one-sweep convergence), then any free nodes not mentioned.
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> scheduled(n, false);
  for (NodeId node : sweep_order) {
    require(node < n, "DcSolver::solve: sweep_order node out of range");
    if (!netlist.isFixed(node) && !scheduled[node]) {
      order.push_back(node);
      scheduled[node] = true;
    }
  }
  for (NodeId node = 0; node < n; ++node) {
    if (!netlist.isFixed(node) && !scheduled[node]) {
      order.push_back(node);
    }
  }
  if (order.empty()) {
    solution.converged = true;
    return solution;
  }

  const auto incidence = buildIncidence(netlist);
  auto& v = solution.voltages;
  const double f_exit = 0.1 * options_.tol_current;

  // Scalar solve at one node: safeguarded Newton on the (monotone in v)
  // residual, with a maintained bisection bracket as fallback. Returns the
  // voltage change magnitude.
  auto solveScalar = [&](NodeId node) -> double {
    double lo = options_.bracket_lo;
    double hi = options_.bracket_hi;
    const double start = v[node];
    double x = start;
    double fx = residualAt(netlist, incidence, v, node, options_);
    ++solution.node_solves;
    for (std::size_t iter = 0; iter < options_.max_node_iterations; ++iter) {
      if (std::abs(fx) < f_exit) {
        break;
      }
      if (fx > 0.0) {
        hi = std::min(hi, x);
      } else {
        lo = std::max(lo, x);
      }
      // Forward-difference derivative; h small vs. voltage scale, large vs.
      // double rounding on ~1 V values.
      const double h = 1e-7;
      v[node] = x + h;
      const double fxh = residualAt(netlist, incidence, v, node, options_);
      const double dfdx = (fxh - fx) / h;
      double next;
      if (dfdx > 0.0 && std::isfinite(dfdx)) {
        next = x - fx / dfdx;
      } else {
        next = 0.5 * (lo + hi);
      }
      if (!(next > lo && next < hi)) {
        next = 0.5 * (lo + hi);
      }
      if (std::abs(next - x) < 1e-15) {
        break;
      }
      x = next;
      v[node] = x;
      fx = residualAt(netlist, incidence, v, node, options_);
    }
    v[node] = x;
    return std::abs(x - start);
  };

  // Dense Newton over one strongly-coupled cluster (a few unknowns).
  auto solveCluster = [&](const std::vector<NodeId>& members) -> double {
    const std::size_t k = members.size();
    std::vector<double> f(k);
    std::vector<double> start(k);
    for (std::size_t i = 0; i < k; ++i) {
      start[i] = v[members[i]];
      f[i] = residualAt(netlist, incidence, v, members[i], options_);
    }
    ++solution.node_solves;
    std::vector<double> jac(k * k);
    std::vector<double> rhs(k);
    std::vector<double> trial(k);
    auto maxAbs = [](const std::vector<double>& values) {
      double m = 0.0;
      for (double value : values) {
        m = std::max(m, std::abs(value));
      }
      return m;
    };
    for (std::size_t iter = 0; iter < options_.max_node_iterations; ++iter) {
      if (maxAbs(f) < f_exit) {
        break;
      }
      // Numeric Jacobian, column by column.
      const double h = 1e-7;
      for (std::size_t j = 0; j < k; ++j) {
        const double saved = v[members[j]];
        v[members[j]] = saved + h;
        for (std::size_t i = 0; i < k; ++i) {
          const double fi =
              residualAt(netlist, incidence, v, members[i], options_);
          jac[i * k + j] = (fi - f[i]) / h;
        }
        v[members[j]] = saved;
      }
      for (std::size_t i = 0; i < k; ++i) {
        rhs[i] = -f[i];
      }
      std::vector<double> jac_copy = jac;
      bool solved = solveDense(jac_copy, rhs, k);
      bool accepted = false;
      if (solved) {
        // Damped, bracket-clamped line search on the residual norm.
        double alpha = 1.0;
        const double f_norm = maxAbs(f);
        for (int attempt = 0; attempt < 6; ++attempt) {
          for (std::size_t i = 0; i < k; ++i) {
            trial[i] = std::clamp(v[members[i]] + alpha * rhs[i],
                                  options_.bracket_lo, options_.bracket_hi);
          }
          std::vector<double> backup(k);
          for (std::size_t i = 0; i < k; ++i) {
            backup[i] = v[members[i]];
            v[members[i]] = trial[i];
          }
          std::vector<double> f_new(k);
          for (std::size_t i = 0; i < k; ++i) {
            f_new[i] = residualAt(netlist, incidence, v, members[i], options_);
          }
          if (maxAbs(f_new) < f_norm || maxAbs(f_new) < f_exit) {
            f = f_new;
            accepted = true;
            break;
          }
          for (std::size_t i = 0; i < k; ++i) {
            v[members[i]] = backup[i];
          }
          alpha *= 0.5;
        }
      }
      if (!accepted) {
        // Fallback: one coordinate-descent pass through the cluster.
        for (NodeId node : members) {
          solveScalar(node);
        }
        for (std::size_t i = 0; i < k; ++i) {
          f[i] = residualAt(netlist, incidence, v, members[i], options_);
        }
      }
    }
    double max_dv = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      max_dv = std::max(max_dv, std::abs(v[members[i]] - start[i]));
    }
    return max_dv;
  };

  auto clusters = buildClusters(netlist, v, order, options_);
  bool reclustered = false;

  for (solution.sweeps = 1; solution.sweeps <= options_.max_sweeps;
       ++solution.sweeps) {
    double max_dv = 0.0;
    for (const std::vector<NodeId>& cluster : clusters) {
      const double dv = cluster.size() == 1 ? solveScalar(cluster[0])
                                            : solveCluster(cluster);
      max_dv = std::max(max_dv, dv);
    }
    if (max_dv < options_.tol_voltage) {
      // Voltages settled; verify KCL everywhere before declaring victory.
      double max_residual = 0.0;
      for (NodeId node : order) {
        max_residual = std::max(
            max_residual,
            std::abs(residualAt(netlist, incidence, v, node, options_)));
      }
      solution.max_residual = max_residual;
      if (max_residual < options_.tol_current) {
        solution.converged = true;
        return solution;
      }
      if (!reclustered) {
        // Device on/off states may have shifted since the initial guess;
        // recluster once from the current voltages and keep sweeping.
        clusters = buildClusters(netlist, v, order, options_);
        reclustered = true;
      }
    }
  }
  solution.sweeps = options_.max_sweeps;
  double max_residual = 0.0;
  for (NodeId node : order) {
    max_residual = std::max(
        max_residual,
        std::abs(residualAt(netlist, incidence, v, node, options_)));
  }
  solution.max_residual = max_residual;
  return solution;
}

}  // namespace nanoleak::circuit
