#include "circuit/dc_solver.h"

#include <cstddef>
#include <vector>

#include "circuit/solver_core.h"
#include "util/error.h"

namespace nanoleak::circuit {
namespace {

/// Which terminal of a device touches a node.
enum class Terminal { kGate, kDrain, kSource, kBulk };

struct Incidence {
  std::size_t device;
  Terminal terminal;
};

/// Per-node incidence lists, built once per solve.
std::vector<std::vector<Incidence>> buildIncidence(const Netlist& netlist) {
  std::vector<std::vector<Incidence>> incidence(netlist.nodeCount());
  const auto& devices = netlist.devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    incidence[devices[i].gate].push_back({i, Terminal::kGate});
    incidence[devices[i].drain].push_back({i, Terminal::kDrain});
    incidence[devices[i].source].push_back({i, Terminal::kSource});
    incidence[devices[i].bulk].push_back({i, Terminal::kBulk});
  }
  return incidence;
}

double terminalCurrent(const device::TerminalCurrents& currents,
                       Terminal terminal) {
  switch (terminal) {
    case Terminal::kGate:
      return currents.gate;
    case Terminal::kDrain:
      return currents.drain;
    case Terminal::kSource:
      return currents.source;
    case Terminal::kBulk:
      return currents.bulk;
  }
  return 0.0;
}

/// Adapts a Netlist (devices evaluated through Mosfet on every call) to
/// the solver_core Evaluator concept.
struct NetlistEvaluator {
  const Netlist& netlist;
  const std::vector<std::vector<Incidence>>& incidence;
  const SolverOptions& options;

  std::size_t nodeCount() const { return netlist.nodeCount(); }
  bool isFixed(NodeId node) const { return netlist.isFixed(node); }
  double fixedVoltage(NodeId node) const { return netlist.fixedVoltage(node); }

  /// Net current leaving `node` given the voltage vector.
  double residual(const std::vector<double>& voltages, NodeId node) const {
    const device::Environment env{options.temperature_k};
    double residual = options.gmin * voltages[node];
    for (const Incidence& inc : incidence[node]) {
      const DeviceInstance& dev = netlist.devices()[inc.device];
      const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                   voltages[dev.source], voltages[dev.bulk]};
      residual += terminalCurrent(dev.mosfet.currents(bias, env), inc.terminal);
    }
    return residual - netlist.injectedCurrent(node);
  }

  template <typename F>
  void forOnPairs(const std::vector<double>& voltages, F&& f) const {
    const device::Environment env{options.temperature_k};
    for (const DeviceInstance& dev : netlist.devices()) {
      if (netlist.isFixed(dev.drain) || netlist.isFixed(dev.source)) {
        continue;
      }
      const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                   voltages[dev.source], voltages[dev.bulk]};
      if (!dev.mosfet.isOff(bias, env)) {
        f(dev.drain, dev.source);
      }
    }
  }
};

}  // namespace

std::string nonConvergenceDetail(const Netlist& netlist,
                                 const Solution& solution) {
  if (solution.max_residual_node >= netlist.nodeCount()) {
    return {};
  }
  return "node " + netlist.nodeName(solution.max_residual_node) +
         ", |residual| = " + std::to_string(solution.max_residual) + " A";
}

DcSolver::DcSolver(SolverOptions options) : options_(options) {
  require(options_.bracket_hi > options_.bracket_lo,
          "DcSolver: bracket_hi must exceed bracket_lo");
}

double DcSolver::nodeResidual(const Netlist& netlist,
                              const std::vector<double>& voltages, NodeId node,
                              const SolverOptions& options) {
  const auto incidence = buildIncidence(netlist);
  return NetlistEvaluator{netlist, incidence, options}.residual(voltages,
                                                                node);
}

Solution DcSolver::solve(const Netlist& netlist,
                         const std::vector<double>& initial_guess,
                         const std::vector<NodeId>& sweep_order) const {
  const auto incidence = buildIncidence(netlist);
  return detail::gaussSeidelSolve(
      NetlistEvaluator{netlist, incidence, options_}, options_, initial_guess,
      sweep_order);
}

}  // namespace nanoleak::circuit
