#include "circuit/solver_kernel.h"

#include <utility>

#include "circuit/solver_core.h"
#include "util/error.h"

namespace nanoleak::circuit {

/// Adapts a SolverKernel to the solver_core Evaluator concept.
struct KernelEvaluator {
  const SolverKernel& kernel;

  std::size_t nodeCount() const { return kernel.nodeCount(); }
  bool isFixed(NodeId node) const { return kernel.fixed_[node]; }
  double fixedVoltage(NodeId node) const {
    return kernel.fixed_voltage_[node];
  }
  double residual(const std::vector<double>& voltages, NodeId node) const {
    return kernel.residual(voltages, node);
  }

  template <typename F>
  void forOnPairs(const std::vector<double>& voltages, F&& f) const {
    for (std::size_t i = 0; i < kernel.coeffs_.size(); ++i) {
      if (kernel.fixed_[kernel.drain_[i]] ||
          kernel.fixed_[kernel.source_[i]]) {
        continue;
      }
      const device::BiasPoint bias{
          voltages[kernel.gate_[i]], voltages[kernel.drain_[i]],
          voltages[kernel.source_[i]], voltages[kernel.bulk_[i]]};
      if (!device::compiledIsOff(kernel.coeffs_[i], bias)) {
        f(kernel.drain_[i], kernel.source_[i]);
      }
    }
  }
};

SolverKernel::SolverKernel(const Netlist& netlist, SolverOptions options)
    : options_(options) {
  require(options_.bracket_hi > options_.bracket_lo,
          "SolverKernel: bracket_hi must exceed bracket_lo");

  const std::size_t n = netlist.nodeCount();
  const auto& devices = netlist.devices();
  const device::Environment env{options_.temperature_k};

  fixed_.resize(n);
  fixed_voltage_.assign(n, 0.0);
  for (NodeId node = 0; node < n; ++node) {
    fixed_[node] = netlist.isFixed(node);
    if (fixed_[node]) {
      fixed_voltage_[node] = netlist.fixedVoltage(node);
    }
  }

  gate_.reserve(devices.size());
  drain_.reserve(devices.size());
  source_.reserve(devices.size());
  bulk_.reserve(devices.size());
  owner_.reserve(devices.size());
  coeffs_.reserve(devices.size());
  mosfets_.reserve(devices.size());
  for (const DeviceInstance& dev : devices) {
    gate_.push_back(dev.gate);
    drain_.push_back(dev.drain);
    source_.push_back(dev.source);
    bulk_.push_back(dev.bulk);
    owner_.push_back(dev.owner);
    coeffs_.push_back(device::compileDevice(dev.mosfet, env));
    mosfets_.push_back(dev.mosfet);
  }

  // CSR incidence in the same (device-major, then gate/drain/source/bulk)
  // order DcSolver's buildIncidence appends - residual accumulation order
  // is part of the bit-identity contract.
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    ++counts[gate_[i]];
    ++counts[drain_[i]];
    ++counts[source_[i]];
    ++counts[bulk_[i]];
  }
  incidence_offset_.assign(n + 1, 0);
  for (NodeId node = 0; node < n; ++node) {
    incidence_offset_[node + 1] = incidence_offset_[node] + counts[node];
  }
  incidence_.resize(incidence_offset_[n]);
  std::vector<std::size_t> cursor(incidence_offset_.begin(),
                                  incidence_offset_.end() - 1);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto d = static_cast<std::uint32_t>(i);
    incidence_[cursor[gate_[i]]++] = {d, 0};
    incidence_[cursor[drain_[i]]++] = {d, 1};
    incidence_[cursor[source_[i]]++] = {d, 2};
    incidence_[cursor[bulk_[i]]++] = {d, 3};
  }

  // Sources: per-node index lists in source order, so each node's injected
  // sum accumulates exactly like Netlist::injectedCurrent.
  sources_.assign(netlist.sources().begin(), netlist.sources().end());
  std::vector<std::size_t> source_counts(n, 0);
  for (const CurrentSource& source : sources_) {
    ++source_counts[source.node];
  }
  source_offset_.assign(n + 1, 0);
  for (NodeId node = 0; node < n; ++node) {
    source_offset_[node + 1] = source_offset_[node] + source_counts[node];
  }
  source_index_.resize(source_offset_[n]);
  std::vector<std::size_t> source_cursor(source_offset_.begin(),
                                         source_offset_.end() - 1);
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    source_index_[source_cursor[sources_[s].node]++] = s;
  }
  injected_.assign(n, 0.0);
  for (NodeId node = 0; node < n; ++node) {
    recomputeInjected(node);
  }
}

void SolverKernel::recomputeInjected(NodeId node) {
  double total = 0.0;
  for (std::size_t k = source_offset_[node]; k < source_offset_[node + 1];
       ++k) {
    total += sources_[source_index_[k]].amps;
  }
  injected_[node] = total;
}

void SolverKernel::setSource(SourceId source, double amps) {
  require(source < sources_.size(),
          "SolverKernel::setSource: source out of range");
  sources_[source].amps = amps;
  recomputeInjected(sources_[source].node);
}

void SolverKernel::setFixedVoltage(NodeId node, double volts) {
  require(node < fixed_.size() && fixed_[node],
          "SolverKernel::setFixedVoltage: node is not fixed");
  fixed_voltage_[node] = volts;
}

void SolverKernel::setOptions(const SolverOptions& options) {
  require(options.bracket_hi > options.bracket_lo,
          "SolverKernel::setOptions: bracket_hi must exceed bracket_lo");
  const bool retemper = options.temperature_k != options_.temperature_k;
  options_ = options;
  if (retemper) {
    const device::Environment env{options_.temperature_k};
    for (std::size_t i = 0; i < mosfets_.size(); ++i) {
      coeffs_[i] = device::compileDevice(mosfets_[i], env);
    }
  }
}

void SolverKernel::rebindVariations(
    std::span<const device::DeviceVariation> variations) {
  require(variations.size() == mosfets_.size(),
          "SolverKernel::rebindVariations: variation count mismatch");
  const device::Environment env{options_.temperature_k};
  for (std::size_t i = 0; i < mosfets_.size(); ++i) {
    mosfets_[i].setVariation(variations[i]);
    coeffs_[i] = device::compileDevice(mosfets_[i], env);
  }
}

double SolverKernel::residual(const std::vector<double>& voltages,
                              NodeId node) const {
  double residual = options_.gmin * voltages[node];
  for (std::size_t k = incidence_offset_[node];
       k < incidence_offset_[node + 1]; ++k) {
    const IncidenceEntry entry = incidence_[k];
    const std::size_t d = entry.device;
    const device::BiasPoint bias{voltages[gate_[d]], voltages[drain_[d]],
                                 voltages[source_[d]], voltages[bulk_[d]]};
    residual += device::compiledTerminalCurrent(
        coeffs_[d], bias,
        static_cast<device::CompiledTerminal>(entry.terminal));
  }
  return residual - injected_[node];
}

double SolverKernel::nodeResidual(const std::vector<double>& voltages,
                                  NodeId node) const {
  require(voltages.size() == nodeCount() && node < nodeCount(),
          "SolverKernel::nodeResidual: bad node or voltage vector");
  return residual(voltages, node);
}

Solution SolverKernel::solve(const std::vector<double>& initial_guess,
                             const std::vector<NodeId>& sweep_order,
                             const std::vector<double>* cluster_guess) const {
  return detail::gaussSeidelSolve(KernelEvaluator{*this}, options_,
                                  initial_guess, sweep_order, cluster_guess);
}

std::vector<device::LeakageBreakdown> SolverKernel::leakageByOwner(
    const std::vector<double>& voltages, std::size_t owner_count) const {
  require(voltages.size() == nodeCount(),
          "SolverKernel::leakageByOwner: voltage vector size mismatch");
  std::vector<device::LeakageBreakdown> by_owner(owner_count + 1);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    const device::BiasPoint bias{voltages[gate_[i]], voltages[drain_[i]],
                                 voltages[source_[i]], voltages[bulk_[i]]};
    const std::size_t slot =
        (owner_[i] >= 0 && static_cast<std::size_t>(owner_[i]) < owner_count)
            ? static_cast<std::size_t>(owner_[i])
            : owner_count;
    by_owner[slot] += device::compiledLeakage(coeffs_[i], bias);
  }
  return by_owner;
}

}  // namespace nanoleak::circuit
