#include "circuit/leakage_meter.h"

#include "util/error.h"

namespace nanoleak::circuit {

device::LeakageBreakdown totalLeakage(const Netlist& netlist,
                                      const std::vector<double>& voltages,
                                      const device::Environment& env) {
  require(voltages.size() == netlist.nodeCount(),
          "totalLeakage: voltage vector size mismatch");
  device::LeakageBreakdown total;
  for (const DeviceInstance& dev : netlist.devices()) {
    const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                 voltages[dev.source], voltages[dev.bulk]};
    total += dev.mosfet.leakage(bias, env);
  }
  return total;
}

std::vector<device::LeakageBreakdown> leakageByOwner(
    const Netlist& netlist, const std::vector<double>& voltages,
    const device::Environment& env, std::size_t owner_count) {
  require(voltages.size() == netlist.nodeCount(),
          "leakageByOwner: voltage vector size mismatch");
  std::vector<device::LeakageBreakdown> by_owner(owner_count + 1);
  for (const DeviceInstance& dev : netlist.devices()) {
    const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                 voltages[dev.source], voltages[dev.bulk]};
    const std::size_t slot =
        (dev.owner >= 0 && static_cast<std::size_t>(dev.owner) < owner_count)
            ? static_cast<std::size_t>(dev.owner)
            : owner_count;
    by_owner[slot] += dev.mosfet.leakage(bias, env);
  }
  return by_owner;
}

double sourceCurrent(const Netlist& netlist,
                     const std::vector<double>& voltages, NodeId fixed_node,
                     const device::Environment& env) {
  require(voltages.size() == netlist.nodeCount(),
          "sourceCurrent: voltage vector size mismatch");
  require(netlist.isFixed(fixed_node),
          "sourceCurrent: node is not bound to a voltage source");
  double delivered = 0.0;
  for (const DeviceInstance& dev : netlist.devices()) {
    const device::BiasPoint bias{voltages[dev.gate], voltages[dev.drain],
                                 voltages[dev.source], voltages[dev.bulk]};
    const device::TerminalCurrents currents = dev.mosfet.currents(bias, env);
    if (dev.gate == fixed_node) {
      delivered += currents.gate;
    }
    if (dev.drain == fixed_node) {
      delivered += currents.drain;
    }
    if (dev.source == fixed_node) {
      delivered += currents.source;
    }
    if (dev.bulk == fixed_node) {
      delivered += currents.bulk;
    }
  }
  return delivered - netlist.injectedCurrent(fixed_node);
}

}  // namespace nanoleak::circuit
