// Compiled form of a Netlist for repeated DC solves.
//
// Compiling flattens the netlist into SoA terminal/coefficient arrays with
// every bias-independent device quantity precomputed once (see
// device/compiled_model.h) and a CSR node -> incident-(device, terminal)
// adjacency, so the per-node residuals the Gauss-Seidel driver evaluates
// thousands of times touch only incident devices through flat arrays -
// no per-solve incidence rebuild, no pow/log in the hot loop.
//
// Results are bit-identical to DcSolver on the same netlist, seed and
// sweep order: both run the identical solver_core driver, and the compiled
// device evaluation is bit-identical to Mosfet by contract (pinned by
// tests/circuit/solver_kernel_test.cpp).
//
// Re-binding: loading-current sweeps (setSource), rail/pattern changes
// (setFixedVoltage) and Monte-Carlo per-device variations
// (rebindVariations) mutate the compiled state in place - topology is
// never rebuilt. Compile once per (topology); re-bind and re-solve many.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/dc_solver.h"
#include "circuit/netlist.h"
#include "device/compiled_model.h"
#include "device/leakage_breakdown.h"
#include "device/mosfet.h"

namespace nanoleak::circuit {

class SolverKernel {
 public:
  /// Compiles `netlist` (topology, fixed bindings, sources, device
  /// coefficients at options.temperature_k). The netlist itself is not
  /// retained - the kernel is self-contained.
  explicit SolverKernel(const Netlist& netlist,
                        SolverOptions options = SolverOptions{});

  /// Solves the compiled circuit; same contract (and same bits) as
  /// DcSolver::solve. Pass the previous operating point as
  /// `initial_guess` to warm-start continuation solves - and, when doing
  /// so, the cold logic-level seed as `cluster_guess` so strongly-coupled
  /// node clusters are still classified from logic intent (see
  /// solver_core.h).
  Solution solve(const std::vector<double>& initial_guess = {},
                 const std::vector<NodeId>& sweep_order = {},
                 const std::vector<double>* cluster_guess = nullptr) const;

  /// Re-targets a current source (mirrors Netlist::setCurrentSource).
  void setSource(SourceId source, double amps);

  /// Re-binds the potential of a node that was fixed at compile time.
  void setFixedVoltage(NodeId node, double volts);

  /// Replaces the solver options; recompiles device coefficients only when
  /// the temperature changed.
  void setOptions(const SolverOptions& options);

  /// Re-binds per-device process variations (Monte-Carlo trials) and
  /// recompiles the affected coefficients. `variations.size()` must equal
  /// deviceCount(); devices are in Netlist device order.
  void rebindVariations(std::span<const device::DeviceVariation> variations);

  /// KCL residual at `node`; bit-identical to DcSolver::nodeResidual.
  double nodeResidual(const std::vector<double>& voltages, NodeId node) const;

  /// Per-owner leakage decomposition at `voltages`; bit-identical to
  /// circuit::leakageByOwner on the compiled netlist (devices tagged
  /// kNoOwner land in the extra last slot).
  std::vector<device::LeakageBreakdown> leakageByOwner(
      const std::vector<double>& voltages, std::size_t owner_count) const;

  std::size_t nodeCount() const { return fixed_.size(); }
  std::size_t deviceCount() const { return coeffs_.size(); }
  const SolverOptions& options() const { return options_; }

 private:
  friend struct KernelEvaluator;
  /// The batch solver reuses this kernel's compiled topology (CSR
  /// incidence, SoA terminal arrays) as the shared read-only skeleton its
  /// per-lane state hangs off; see circuit/batch_solver_kernel.h.
  friend class BatchSolverKernel;

  /// Terminal codes match the per-device push order (gate, drain, source,
  /// bulk) so CSR entries accumulate in the same order DcSolver's
  /// incidence lists do.
  struct IncidenceEntry {
    std::uint32_t device;
    std::uint32_t terminal;  // 0 gate, 1 drain, 2 source, 3 bulk
  };

  double residual(const std::vector<double>& voltages, NodeId node) const;
  void recomputeInjected(NodeId node);

  SolverOptions options_;

  // Nodes.
  std::vector<bool> fixed_;
  std::vector<double> fixed_voltage_;
  std::vector<double> injected_;

  // Devices (SoA).
  std::vector<NodeId> gate_;
  std::vector<NodeId> drain_;
  std::vector<NodeId> source_;
  std::vector<NodeId> bulk_;
  std::vector<int> owner_;
  std::vector<device::DeviceCoeffs> coeffs_;
  /// Retained instances so coefficients can be recompiled on variation or
  /// temperature re-binds.
  std::vector<device::Mosfet> mosfets_;

  // CSR node -> incident (device, terminal), in DcSolver incidence order.
  std::vector<std::size_t> incidence_offset_;
  std::vector<IncidenceEntry> incidence_;

  // Current sources, plus CSR node -> source indices (in source order, so
  // per-node injected sums accumulate like Netlist::injectedCurrent).
  std::vector<CurrentSource> sources_;
  std::vector<std::size_t> source_offset_;
  std::vector<std::size_t> source_index_;
};

}  // namespace nanoleak::circuit
