#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/golden_file.h"
#include "scenario/runner.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/fault.h"

namespace nanoleak::serve {

namespace {

/// serve.* registry metrics: the daemon's externally visible behaviour
/// (request mix, admission outcomes, drain) without holding a server
/// reference. See docs/OBSERVABILITY.md for the catalogue.
struct ServeMetrics {
  obs::Counter connections = obs::counter("serve.connections");
  obs::Counter requests = obs::counter("serve.requests");
  obs::Counter responses = obs::counter("serve.responses");
  obs::Counter errors = obs::counter("serve.errors");
  obs::Counter busy_rejections = obs::counter("serve.busy_rejections");
  obs::Counter drain_rejections = obs::counter("serve.drain_rejections");
  obs::Counter overload_rejections =
      obs::counter("serve.overload_rejections");
  obs::Counter deadline_exceeded = obs::counter("serve.deadline_exceeded");
  obs::Counter idle_disconnects = obs::counter("serve.idle_disconnects");
  obs::Counter write_evictions = obs::counter("serve.write_evictions");
  obs::Gauge queue_depth = obs::gauge("serve.queue_depth");
};

const ServeMetrics& serveMetrics() {
  static const ServeMetrics m;
  return m;
}

/// Reader poll slice: the latency bound on noticing a shutdown while a
/// connection is idle.
constexpr int kPollSliceMs = 100;

/// Base of the deterministic `busy` retry hint: one queue-drain slice
/// per currently queued request ahead of the rejected one, per worker.
constexpr std::uint64_t kBusyRetrySliceMs = 100;

/// Queue lane identity: requests carrying a tenant share that tenant's
/// fairness lane across connections (the top bit separates the hash
/// space from raw connection ids); anonymous requests stay per-conn.
std::uint64_t laneFor(std::uint64_t connection_id,
                      const std::string& tenant) {
  if (tenant.empty()) {
    return connection_id;
  }
  return std::hash<std::string>{}(tenant) | (1ull << 63);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(scenario::builtinRegistry()),
      tables_(std::make_shared<engine::TableCache>()),
      plans_(std::make_shared<engine::PlanCache>(
          options_.plan_cache_entries)),
      queue_(options_.queue_capacity),
      quotas_(TenantQuotas::Options{options_.quota_rps,
                                    options_.quota_burst}) {
  require(!options_.socket_path.empty() || options_.tcp_port >= 0,
          "serve: configure a unix socket path and/or a tcp port");
  require(options_.workers >= 1, "serve: workers must be >= 1");
  tables_->setMaxEntries(options_.table_cache_entries);
}

Server::~Server() {
  requestShutdown();
  if (started_ && !joined_) {
    wait();
  }
}

void Server::start() {
  require(!started_, "serve: start() called twice");
  if (!options_.socket_path.empty()) {
    unix_listener_ = Socket::listenUnix(options_.socket_path);
  }
  if (options_.tcp_port >= 0) {
    tcp_listener_ = Socket::listenTcp(
        static_cast<std::uint16_t>(options_.tcp_port), &tcp_port_);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { acceptLoop(); });
  executors_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    executors_.emplace_back([this] { executorLoop(); });
  }
}

void Server::requestShutdown() {
  // Flag + queue close only: joins happen in wait() on the owner thread,
  // so a connection reader relaying a client "shutdown" op never tries
  // to join itself.
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_.store(true);
  }
  queue_.close();
  shutdown_cv_.notify_all();
}

void Server::wait() {
  require(started_, "serve: wait() before start()");
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [&] { return shutdown_.load(); });
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Executors drain the closed queue - every admitted request still
  // gets its response - then exit on the queue's end-of-stream.
  for (std::thread& executor : executors_) {
    if (executor.joinable()) {
      executor.join();
    }
  }
  // Readers notice the shutdown flag within one poll slice. Joining them
  // last keeps their connections writable while executors respond.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) {
      reader.join();
    }
  }
  // The socket file is this daemon's to clean up; removing it makes
  // "address already in use" impossible for the next start.
  if (!options_.socket_path.empty()) {
    unix_listener_.closeNow();
    ::unlink(options_.socket_path.c_str());
  }
  joined_ = true;
}

void Server::acceptLoop() {
  while (!shutdown_.load()) {
    for (Socket* listener : {&unix_listener_, &tcp_listener_}) {
      if (!listener->valid()) {
        continue;
      }
      std::optional<Socket> accepted;
      try {
        accepted = listener->acceptWithTimeout(kPollSliceMs / 2);
      } catch (const Error&) {
        // Accept failures (fd limits, transient kernel errors) must not
        // kill the daemon; the listener stays armed.
        serveMetrics().errors.increment();
        continue;
      }
      if (!accepted || shutdown_.load()) {
        continue;
      }
      if (options_.send_buffer_bytes > 0) {
        // Test hook: a tiny send buffer makes "client not draining"
        // reproducible without megabytes of pipelined traffic.
        const int size = options_.send_buffer_bytes;
        ::setsockopt(accepted->fd(), SOL_SOCKET, SO_SNDBUF, &size,
                     sizeof(size));
      }
      auto conn = std::make_shared<Connection>();
      conn->sock = std::move(*accepted);
      conn->id = next_connection_id_.fetch_add(1) + 1;
      serveMetrics().connections.increment();
      std::lock_guard<std::mutex> lock(readers_mutex_);
      readers_.emplace_back([this, conn] { readerLoop(conn); });
    }
  }
}

void Server::readerLoop(const std::shared_ptr<Connection>& conn) {
  try {
    auto last_activity = std::chrono::steady_clock::now();
    while (!shutdown_.load()) {
      if (!waitReadable(conn->sock.fd(), kPollSliceMs)) {
        if (conn->in_flight.load() > 0) {
          // Admitted work still executing counts as activity: never
          // disconnect a client that is only waiting for its response.
          last_activity = std::chrono::steady_clock::now();
          continue;
        }
        if (options_.idle_timeout_ms > 0 &&
            std::chrono::steady_clock::now() - last_activity >=
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          // A client that connects and never sends would otherwise pin
          // this reader (and its fd) for the daemon's lifetime.
          serveMetrics().idle_disconnects.increment();
          conn->sock.shutdownNow();
          break;
        }
        continue;  // idle slice; re-check the shutdown flag
      }
      std::optional<std::string> frame = readFrame(conn->sock.fd());
      if (!frame) {
        break;  // client hung up cleanly
      }
      last_activity = std::chrono::steady_clock::now();
      handleFrame(conn, *frame);
    }
  } catch (const std::exception&) {
    // Malformed framing or a read error tears down this connection
    // only; the daemon keeps serving the others. The shutdown gives the
    // peer a prompt EOF so a retrying client reconnects immediately
    // instead of waiting out its request timeout.
    serveMetrics().errors.increment();
    conn->sock.shutdownNow();
  }
  // Deliberately no close here: jobs already admitted for this
  // connection may still be executing, and their responses must reach
  // the peer during a graceful drain. The socket closes when the last
  // Connection owner (reader or job) lets go.
}

void Server::handleFrame(const std::shared_ptr<Connection>& conn,
                         const std::string& frame) {
  serveMetrics().requests.increment();
  scenario::ServeRequest request;
  try {
    request = scenario::decodeRequest(frame);
  } catch (const std::exception& e) {
    serveMetrics().errors.increment();
    scenario::ServeResponse response;
    response.status = scenario::ServeStatus::kError;
    response.message = e.what();
    respond(*conn, response);
    return;
  }

  scenario::ServeResponse response;
  response.id = request.id;
  switch (request.op) {
    case scenario::ServeOp::kPing:
      respond(*conn, response);
      return;
    case scenario::ServeOp::kStats:
      // Diagnostic snapshot, answered on the reader thread: cheap, and
      // deliberately not routed through admission so operators can
      // observe a daemon whose queue is saturated.
      response.payload = obs::snapshot().toJson() + "\n";
      respond(*conn, response);
      return;
    case scenario::ServeOp::kShutdown:
      respond(*conn, response);
      requestShutdown();
      return;
    case scenario::ServeOp::kRun:
    case scenario::ServeOp::kEstimate:
    case scenario::ServeOp::kMonteCarlo:
    case scenario::ServeOp::kThermal:
      break;
  }

  const auto arrival = std::chrono::steady_clock::now();
  if (quotas_.enabled()) {
    // Anonymous requests are charged per connection, so one unnamed
    // client cannot drain a shared anonymous bucket for everyone.
    const std::string tenant = request.tenant.empty()
                                   ? "conn/" + std::to_string(conn->id)
                                   : request.tenant;
    const TenantQuotas::Decision decision = quotas_.admit(tenant, arrival);
    if (!decision.admitted) {
      serveMetrics().overload_rejections.increment();
      response.status = scenario::ServeStatus::kOverloaded;
      response.message = "tenant '" + tenant + "' over admission quota";
      response.retry_after_ms = decision.retry_after_ms;
      respond(*conn, response);
      return;
    }
  }

  const std::uint64_t lane = laneFor(conn->id, request.tenant);
  const FairQueue<Job>::Push outcome =
      queue_.push(lane, Job{std::move(request), conn, arrival});
  serveMetrics().queue_depth.set(static_cast<double>(queue_.size()));
  switch (outcome) {
    case FairQueue<Job>::Push::kAccepted:
      conn->in_flight.fetch_add(1);
      return;  // an executor responds
    case FairQueue<Job>::Push::kFull:
      serveMetrics().busy_rejections.increment();
      response.status = scenario::ServeStatus::kBusy;
      response.message = "admission queue full";
      // Deterministic hint: one drain slice per queued request ahead of
      // this one, spread across the workers.
      response.retry_after_ms =
          kBusyRetrySliceMs *
          (queue_.size() / static_cast<std::size_t>(options_.workers) + 1);
      respond(*conn, response);
      return;
    case FairQueue<Job>::Push::kClosed:
      serveMetrics().drain_rejections.increment();
      response.status = scenario::ServeStatus::kShuttingDown;
      response.message = "daemon is draining";
      respond(*conn, response);
      return;
  }
}

void Server::executorLoop() {
  // Each executor owns its runner (ThreadPool admits one controller at a
  // time) but shares the corner-table cache with every other executor;
  // the plan cache is shared one level up in execute().
  engine::BatchRunner runner(engine::BatchOptions{
      .threads = options_.threads, .cache = tables_});
  while (std::optional<Job> job = queue_.pop()) {
    serveMetrics().queue_depth.set(static_cast<double>(queue_.size()));
    std::optional<util::CancelToken> token;
    if (job->request.deadline_ms > 0) {
      token.emplace(job->arrival, job->request.deadline_ms);
    }
    scenario::ServeResponse response =
        execute(job->request, runner, token ? &*token : nullptr);
    respond(*job->conn, response);
    job->conn->in_flight.fetch_sub(1);
  }
}

scenario::ServeResponse Server::execute(
    const scenario::ServeRequest& request, engine::BatchRunner& runner,
    const util::CancelToken* token) {
  OBS_SPAN("serve.request", toString(request.op));
  scenario::ServeResponse response;
  response.id = request.id;
  // A coalesced cache waiter can inherit DeadlineExceeded from the
  // *owner* of an in-flight build whose own deadline expired (the failed
  // entry is erased, so a retry rebuilds). Retry a bounded number of
  // times while this request's own budget is intact.
  constexpr int kMaxInheritedRetries = 3;
  for (int attempt = 0;; ++attempt) {
    try {
      util::CancelScope cancel_scope(token);
      // Expired in the queue (or on a retry): fail before compiling or
      // solving anything.
      util::pollCancel();
      FAULT_POINT("serve.executor.dispatch");
      if (request.op == scenario::ServeOp::kRun) {
        response.payload = scenario::serializeSuite(
            scenario::runSuiteOn(registry_, request.target, runner,
                                 plans_.get()));
      } else {
        // Inline scenario: a suite of one, serialized canonically - the
        // same bytes `nanoleak run` would print for this scenario.
        scenario::SuiteResult suite;
        suite.suite = request.scenario.name;
        suite.scenarios.push_back(
            scenario::runScenario(request.scenario, runner, plans_.get()));
        response.payload = scenario::serializeSuite(suite);
      }
      return response;
    } catch (const util::DeadlineExceeded& e) {
      const bool own = token != nullptr && token->expired();
      if (!own && attempt < kMaxInheritedRetries) {
        continue;  // inherited from another request's build; rebuild
      }
      response.payload.clear();
      if (own) {
        serveMetrics().deadline_exceeded.increment();
        response.status = scenario::ServeStatus::kDeadlineExceeded;
        response.message = "deadline of " +
                           std::to_string(request.deadline_ms) +
                           " ms exceeded";
      } else {
        serveMetrics().errors.increment();
        response.status = scenario::ServeStatus::kError;
        response.message = e.what();
      }
      return response;
    } catch (const std::exception& e) {
      serveMetrics().errors.increment();
      response.status = scenario::ServeStatus::kError;
      response.payload.clear();
      response.message = e.what();
      return response;
    }
  }
}

void Server::respond(Connection& conn,
                     const scenario::ServeResponse& response) {
  const std::string encoded = scenario::encodeResponse(response);
  const int timeout_ms =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (!conn.sock.valid()) {
    return;
  }
  try {
    if (writeFrame(conn.sock.fd(), encoded, timeout_ms)) {
      serveMetrics().responses.increment();
    }
  } catch (const std::exception&) {
    // Write timeout, injected socket fault, or a non-EPIPE send error:
    // the frame stream is in an unknown state, so evict the connection
    // (shutdown, not close - stale fd reuse is impossible while other
    // threads still hold the Connection). The daemon keeps serving.
    serveMetrics().errors.increment();
    serveMetrics().write_evictions.increment();
    conn.sock.shutdownNow();
  }
}

}  // namespace nanoleak::serve
