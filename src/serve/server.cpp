#include "serve/server.h"

#include <unistd.h>

#include <exception>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/golden_file.h"
#include "scenario/runner.h"
#include "util/error.h"

namespace nanoleak::serve {

namespace {

/// serve.* registry metrics: the daemon's externally visible behaviour
/// (request mix, admission outcomes, drain) without holding a server
/// reference. See docs/OBSERVABILITY.md for the catalogue.
struct ServeMetrics {
  obs::Counter connections = obs::counter("serve.connections");
  obs::Counter requests = obs::counter("serve.requests");
  obs::Counter responses = obs::counter("serve.responses");
  obs::Counter errors = obs::counter("serve.errors");
  obs::Counter busy_rejections = obs::counter("serve.busy_rejections");
  obs::Counter drain_rejections = obs::counter("serve.drain_rejections");
  obs::Gauge queue_depth = obs::gauge("serve.queue_depth");
};

const ServeMetrics& serveMetrics() {
  static const ServeMetrics m;
  return m;
}

/// Reader poll slice: the latency bound on noticing a shutdown while a
/// connection is idle.
constexpr int kPollSliceMs = 100;

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(scenario::builtinRegistry()),
      tables_(std::make_shared<engine::TableCache>()),
      plans_(std::make_shared<engine::PlanCache>(
          options_.plan_cache_entries)),
      queue_(options_.queue_capacity) {
  require(!options_.socket_path.empty() || options_.tcp_port >= 0,
          "serve: configure a unix socket path and/or a tcp port");
  require(options_.workers >= 1, "serve: workers must be >= 1");
  tables_->setMaxEntries(options_.table_cache_entries);
}

Server::~Server() {
  requestShutdown();
  if (started_ && !joined_) {
    wait();
  }
}

void Server::start() {
  require(!started_, "serve: start() called twice");
  if (!options_.socket_path.empty()) {
    unix_listener_ = Socket::listenUnix(options_.socket_path);
  }
  if (options_.tcp_port >= 0) {
    tcp_listener_ = Socket::listenTcp(
        static_cast<std::uint16_t>(options_.tcp_port), &tcp_port_);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { acceptLoop(); });
  executors_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    executors_.emplace_back([this] { executorLoop(); });
  }
}

void Server::requestShutdown() {
  // Flag + queue close only: joins happen in wait() on the owner thread,
  // so a connection reader relaying a client "shutdown" op never tries
  // to join itself.
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_.store(true);
  }
  queue_.close();
  shutdown_cv_.notify_all();
}

void Server::wait() {
  require(started_, "serve: wait() before start()");
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [&] { return shutdown_.load(); });
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Executors drain the closed queue - every admitted request still
  // gets its response - then exit on the queue's end-of-stream.
  for (std::thread& executor : executors_) {
    if (executor.joinable()) {
      executor.join();
    }
  }
  // Readers notice the shutdown flag within one poll slice. Joining them
  // last keeps their connections writable while executors respond.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) {
      reader.join();
    }
  }
  // The socket file is this daemon's to clean up; removing it makes
  // "address already in use" impossible for the next start.
  if (!options_.socket_path.empty()) {
    unix_listener_.closeNow();
    ::unlink(options_.socket_path.c_str());
  }
  joined_ = true;
}

void Server::acceptLoop() {
  while (!shutdown_.load()) {
    for (Socket* listener : {&unix_listener_, &tcp_listener_}) {
      if (!listener->valid()) {
        continue;
      }
      std::optional<Socket> accepted;
      try {
        accepted = listener->acceptWithTimeout(kPollSliceMs / 2);
      } catch (const Error&) {
        // Accept failures (fd limits, transient kernel errors) must not
        // kill the daemon; the listener stays armed.
        serveMetrics().errors.increment();
        continue;
      }
      if (!accepted || shutdown_.load()) {
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->sock = std::move(*accepted);
      conn->id = next_connection_id_.fetch_add(1) + 1;
      serveMetrics().connections.increment();
      std::lock_guard<std::mutex> lock(readers_mutex_);
      readers_.emplace_back([this, conn] { readerLoop(conn); });
    }
  }
}

void Server::readerLoop(const std::shared_ptr<Connection>& conn) {
  try {
    while (!shutdown_.load()) {
      if (!waitReadable(conn->sock.fd(), kPollSliceMs)) {
        continue;  // idle slice; re-check the shutdown flag
      }
      std::optional<std::string> frame = readFrame(conn->sock.fd());
      if (!frame) {
        break;  // client hung up cleanly
      }
      handleFrame(conn, *frame);
    }
  } catch (const std::exception&) {
    // Malformed framing or a read error tears down this connection
    // only; the daemon keeps serving the others.
    serveMetrics().errors.increment();
  }
  // Deliberately no close here: jobs already admitted for this
  // connection may still be executing, and their responses must reach
  // the peer during a graceful drain. The socket closes when the last
  // Connection owner (reader or job) lets go.
}

void Server::handleFrame(const std::shared_ptr<Connection>& conn,
                         const std::string& frame) {
  serveMetrics().requests.increment();
  scenario::ServeRequest request;
  try {
    request = scenario::decodeRequest(frame);
  } catch (const std::exception& e) {
    serveMetrics().errors.increment();
    scenario::ServeResponse response;
    response.status = scenario::ServeStatus::kError;
    response.message = e.what();
    respond(*conn, response);
    return;
  }

  scenario::ServeResponse response;
  response.id = request.id;
  switch (request.op) {
    case scenario::ServeOp::kPing:
      respond(*conn, response);
      return;
    case scenario::ServeOp::kStats:
      // Diagnostic snapshot, answered on the reader thread: cheap, and
      // deliberately not routed through admission so operators can
      // observe a daemon whose queue is saturated.
      response.payload = obs::snapshot().toJson() + "\n";
      respond(*conn, response);
      return;
    case scenario::ServeOp::kShutdown:
      respond(*conn, response);
      requestShutdown();
      return;
    case scenario::ServeOp::kRun:
    case scenario::ServeOp::kEstimate:
    case scenario::ServeOp::kMonteCarlo:
    case scenario::ServeOp::kThermal:
      break;
  }

  const FairQueue<Job>::Push outcome =
      queue_.push(conn->id, Job{std::move(request), conn});
  serveMetrics().queue_depth.set(static_cast<double>(queue_.size()));
  switch (outcome) {
    case FairQueue<Job>::Push::kAccepted:
      return;  // an executor responds
    case FairQueue<Job>::Push::kFull:
      serveMetrics().busy_rejections.increment();
      response.status = scenario::ServeStatus::kBusy;
      response.message = "admission queue full";
      respond(*conn, response);
      return;
    case FairQueue<Job>::Push::kClosed:
      serveMetrics().drain_rejections.increment();
      response.status = scenario::ServeStatus::kShuttingDown;
      response.message = "daemon is draining";
      respond(*conn, response);
      return;
  }
}

void Server::executorLoop() {
  // Each executor owns its runner (ThreadPool admits one controller at a
  // time) but shares the corner-table cache with every other executor;
  // the plan cache is shared one level up in execute().
  engine::BatchRunner runner(engine::BatchOptions{
      .threads = options_.threads, .cache = tables_});
  while (std::optional<Job> job = queue_.pop()) {
    serveMetrics().queue_depth.set(static_cast<double>(queue_.size()));
    scenario::ServeResponse response = execute(job->request, runner);
    respond(*job->conn, response);
  }
}

scenario::ServeResponse Server::execute(
    const scenario::ServeRequest& request, engine::BatchRunner& runner) {
  OBS_SPAN("serve.request", toString(request.op));
  scenario::ServeResponse response;
  response.id = request.id;
  try {
    if (request.op == scenario::ServeOp::kRun) {
      response.payload = scenario::serializeSuite(
          scenario::runSuiteOn(registry_, request.target, runner,
                               plans_.get()));
    } else {
      // Inline scenario: a suite of one, serialized canonically - the
      // same bytes `nanoleak run` would print for this scenario.
      scenario::SuiteResult suite;
      suite.suite = request.scenario.name;
      suite.scenarios.push_back(
          scenario::runScenario(request.scenario, runner, plans_.get()));
      response.payload = scenario::serializeSuite(suite);
    }
  } catch (const std::exception& e) {
    serveMetrics().errors.increment();
    response.status = scenario::ServeStatus::kError;
    response.payload.clear();
    response.message = e.what();
  }
  return response;
}

void Server::respond(Connection& conn,
                     const scenario::ServeResponse& response) {
  const std::string encoded = scenario::encodeResponse(response);
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (conn.sock.valid() && writeFrame(conn.sock.fd(), encoded)) {
    serveMetrics().responses.increment();
  }
}

}  // namespace nanoleak::serve
