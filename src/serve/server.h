// The `nanoleak serve` daemon: accepts length-prefixed JSON requests
// over a Unix and/or loopback-TCP socket and answers them from shared
// estimation services.
//
// Architecture (one process, no global state beyond the obs registry):
//
//   accept thread ──> one reader thread per connection
//                        │  decodes frames; answers ping/stats/shutdown
//                        │  inline, enqueues estimation work
//                        v
//                     FairQueue (bounded, per-client round-robin)
//                        │
//                        v
//   N executor threads, each owning a BatchRunner (its own ThreadPool -
//   ThreadPool does not admit concurrent controllers) but sharing:
//     - one TableCache   (characterized corner tables)
//     - one PlanCache    (compiled EstimationPlans by content key)
//   so repeated circuits compile once across all clients and executors.
//
// Determinism contract: the estimation operations (run / estimate / mc /
// thermal) return byte-identical payloads for byte-identical request
// bodies, regardless of concurrency, executor count, engine threads, or
// cache state - the payload is the canonical golden serialization, and
// the caches only memoize compilations whose outputs are themselves
// bit-identical to a fresh build. ping/stats are diagnostics outside the
// contract.
//
// Shutdown: requestShutdown() (or a client "shutdown" op) closes the
// admission queue; queued requests still execute and respond, new ones
// are answered "shutting_down", and wait() returns once every thread has
// drained and joined.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_runner.h"
#include "engine/plan_cache.h"
#include "engine/table_cache.h"
#include "scenario/registry.h"
#include "scenario/serve_protocol.h"
#include "serve/admission.h"
#include "serve/quota.h"
#include "serve/socket_io.h"
#include "util/cancel.h"

namespace nanoleak::serve {

/// Daemon configuration.
struct ServerOptions {
  /// Unix-domain listener path; empty = no unix listener.
  std::string socket_path;
  /// Loopback TCP port; -1 = no TCP listener, 0 = ephemeral (read the
  /// bound port via Server::tcpPort()).
  int tcp_port = -1;
  /// Executor threads (concurrent requests in flight). Each owns a
  /// BatchRunner; >= 1.
  int workers = 1;
  /// Engine concurrency per executor's BatchRunner; 0 = hardware.
  int threads = 0;
  /// Admission bound: total queued requests across clients. 0 rejects
  /// everything as busy (useful in tests).
  std::size_t queue_capacity = 64;
  /// LRU cap on cached compiled plans (0 = unbounded).
  std::size_t plan_cache_entries = 32;
  /// LRU cap on cached characterized corner tables (0 = unbounded).
  std::size_t table_cache_entries = 512;
  /// Idle-connection bound: a connection with no incoming frames and no
  /// in-flight work for this many milliseconds is disconnected
  /// (`serve.idle_disconnects`). 0 = never disconnect idle clients.
  int idle_timeout_ms = 0;
  /// Per-response write bound: a client not draining its socket for
  /// this many milliseconds is evicted (`serve.write_evictions`) so a
  /// slow reader cannot pin an executor. 0 = unbounded writes.
  int write_timeout_ms = 10000;
  /// Per-tenant sustained admission rate (token bucket, requests/sec);
  /// <= 0 disables quotas. Over-quota requests answer `overloaded`.
  double quota_rps = 0.0;
  /// Token-bucket burst: admissions a quiet tenant can make at once.
  double quota_burst = 8.0;
  /// Test helper: SO_SNDBUF for accepted connections in bytes (0 = OS
  /// default). Small values make the slow-client write path reachable
  /// deterministically in tests.
  int send_buffer_bytes = 0;
};

/// The daemon (see file comment). Lifecycle: construct -> start() ->
/// requestShutdown() (any thread, or a client shutdown op) -> wait().
class Server {
 public:
  /// Validates options and builds the shared cache services; does not
  /// bind sockets yet. Throws nanoleak::Error when neither listener is
  /// configured or workers < 1.
  explicit Server(ServerOptions options);
  /// requestShutdown() + wait() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the accept and executor
  /// threads. Throws nanoleak::Error on bind failure.
  void start();

  /// Begins the graceful drain: stops accepting connections and
  /// requests, lets queued work finish. Callable from any thread
  /// (including connection readers); returns immediately.
  void requestShutdown();
  /// True once requestShutdown() ran.
  bool shutdownRequested() const { return shutdown_.load(); }

  /// Blocks until shutdown is requested, then joins every thread after
  /// the queue drained. Call from the thread that owns the server.
  void wait();

  /// The bound TCP port (valid after start() when tcp_port >= 0).
  std::uint16_t tcpPort() const { return tcp_port_; }

  /// The shared compiled-plan cache (for stats and tests).
  std::shared_ptr<engine::PlanCache> planCache() const { return plans_; }
  /// The shared characterization cache (for stats and tests).
  std::shared_ptr<engine::TableCache> tableCache() const { return tables_; }

 private:
  /// One client connection: the socket plus the write lock serializing
  /// response frames (reader and executors write concurrently).
  struct Connection {
    Socket sock;
    std::mutex write_mutex;
    std::uint64_t id = 0;
    /// Admitted-but-unanswered requests; the reader treats in-flight
    /// work as activity so the idle timeout never cuts off a response.
    std::atomic<int> in_flight{0};
  };
  /// One queued unit of estimation work.
  struct Job {
    scenario::ServeRequest request;
    std::shared_ptr<Connection> conn;
    /// Frame-arrival time: the deadline clock starts here, so queue
    /// wait counts against the request's `deadline_ms` budget.
    std::chrono::steady_clock::time_point arrival;
  };

  void acceptLoop();
  void readerLoop(const std::shared_ptr<Connection>& conn);
  void executorLoop();
  /// Decodes and dispatches one frame on the reader thread.
  void handleFrame(const std::shared_ptr<Connection>& conn,
                   const std::string& frame);
  /// Runs one estimation request on an executor's runner, bounded by
  /// `token` (null = unbounded). Maps DeadlineExceeded unwinds to the
  /// `deadline_exceeded` status and retries builds a coalesced cache
  /// waiter inherited from another request's expired deadline.
  scenario::ServeResponse execute(const scenario::ServeRequest& request,
                                  engine::BatchRunner& runner,
                                  const util::CancelToken* token);
  /// Encodes and writes a response frame under the connection's write
  /// lock; peer-gone is tolerated (the response is dropped) and a write
  /// timeout or error evicts the connection.
  void respond(Connection& conn, const scenario::ServeResponse& response);

  ServerOptions options_;
  scenario::Registry registry_;
  std::shared_ptr<engine::TableCache> tables_;
  std::shared_ptr<engine::PlanCache> plans_;
  FairQueue<Job> queue_;
  TenantQuotas quotas_;

  Socket unix_listener_;
  Socket tcp_listener_;
  std::uint16_t tcp_port_ = 0;

  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  std::thread accept_thread_;
  std::vector<std::thread> executors_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::atomic<std::uint64_t> next_connection_id_{0};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace nanoleak::serve
