// Minimal blocking client for the serve daemon: connect, send one
// framed request, wait for the framed response. One request in flight
// per client at a time (the CLI's `nanoleak client` and the tests drive
// concurrency by holding several clients).
#pragma once

#include <cstdint>
#include <string>

#include "scenario/serve_protocol.h"
#include "serve/socket_io.h"

namespace nanoleak::serve {

/// Blocking request/response client (see file comment).
class ServeClient {
 public:
  /// Connects to a daemon's Unix-domain listener. Throws
  /// nanoleak::Error when the daemon is not there.
  static ServeClient connectUnix(const std::string& path);
  /// Connects to a daemon's loopback TCP listener. Throws likewise.
  static ServeClient connectTcp(std::uint16_t port);

  /// Sends `request` and blocks for its response. Throws
  /// nanoleak::Error when the daemon hangs up without answering or the
  /// response is malformed.
  scenario::ServeResponse call(const scenario::ServeRequest& request);

 private:
  explicit ServeClient(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
};

}  // namespace nanoleak::serve
