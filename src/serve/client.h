// Blocking client for the serve daemon with bounded waits and optional
// retry. One request in flight per client at a time (the CLI's
// `nanoleak client` and the tests drive concurrency by holding several
// clients).
//
// Resilience model (all opt-in via Options):
// - connect_timeout_ms / request_timeout_ms bound every wait, so a hung
//   daemon surfaces as an Error instead of blocking forever. These are
//   independent of retry: a zero-retry client still gets bounded waits.
// - retries > 0 turns transient failures into delayed re-attempts:
//   transport errors (daemon hung up, send/recv failure, timeout) tear
//   the connection down and reconnect; `busy` / `overloaded` responses
//   honor the server's retry_after_ms hint when present. Backoff is
//   capped exponential with seeded jitter - the retry schedule is a
//   deterministic function of (options, attempt number), so chaos runs
//   reproduce exactly. The request bytes resent on every attempt are
//   identical, which keeps the final successful response byte-identical
//   to an undisturbed call.
// - `error`, `deadline_exceeded` and `shutting_down` responses are
//   never retried: they are definitive daemon answers, not transient
//   conditions.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/serve_protocol.h"
#include "serve/socket_io.h"
#include "util/rng.h"

namespace nanoleak::serve {

/// Bounded-blocking request/response client (see file comment).
class ServeClient {
 public:
  /// Wait bounds and retry policy. Default-constructed options behave
  /// like the original client: unbounded waits, no retry.
  struct Options {
    /// Connect wait bound in ms; -1 = unbounded.
    int connect_timeout_ms = -1;
    /// Per-attempt bound on waiting for the response frame in ms;
    /// -1 = unbounded.
    int request_timeout_ms = -1;
    /// Re-attempts after the first failure (0 = fail fast).
    int retries = 0;
    /// First backoff delay; doubles per attempt up to backoff_cap_ms.
    std::uint64_t backoff_base_ms = 50;
    /// Upper bound on one backoff delay.
    std::uint64_t backoff_cap_ms = 2000;
    /// Seed of the jitter stream; the full retry schedule is a pure
    /// function of (options, attempt), so runs are reproducible.
    std::uint64_t jitter_seed = 1;
  };

  /// Connects to a daemon's Unix-domain listener. Throws
  /// nanoleak::Error when the daemon is not there (after retries, when
  /// configured).
  static ServeClient connectUnix(const std::string& path);
  static ServeClient connectUnix(const std::string& path,
                                 const Options& options);
  /// Connects to a daemon's loopback TCP listener. Throws likewise.
  static ServeClient connectTcp(std::uint16_t port);
  static ServeClient connectTcp(std::uint16_t port, const Options& options);

  /// Sends `request` and blocks for its response, retrying transient
  /// failures per Options. Throws nanoleak::Error when every attempt
  /// failed at the transport level; returns the daemon's final answer
  /// otherwise (including non-retryable rejections).
  scenario::ServeResponse call(const scenario::ServeRequest& request);

 private:
  enum class Endpoint { kUnix, kTcp };

  ServeClient(Endpoint endpoint, std::string path, std::uint16_t port,
              const Options& options);

  /// (Re)establishes the connection when none is open.
  void ensureConnected();
  /// One framed request/response round trip on the open connection.
  scenario::ServeResponse callOnce(const scenario::ServeRequest& request);
  /// Sleeps the capped-exponential + jitter delay for `attempt`
  /// (`hint_ms` > 0, e.g. a server retry_after_ms, takes precedence).
  void backoff(int attempt, std::uint64_t hint_ms);

  Endpoint endpoint_;
  std::string path_;
  std::uint16_t port_ = 0;
  Options options_;
  Socket sock_;
  Rng jitter_;
};

}  // namespace nanoleak::serve
