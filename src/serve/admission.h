// Request admission for the serve daemon: a bounded, multi-producer
// multi-consumer queue with per-client fairness.
//
// Each client (connection) gets its own FIFO lane; consumers drain lanes
// round-robin in client-arrival order, so one client streaming hundreds
// of requests cannot starve another's single request - the second
// client's item is picked up after at most one item from each lane ahead
// of it. Capacity bounds the *total* queued items across lanes; a push
// past the bound is rejected (kFull -> the server answers "busy") rather
// than blocked, so a reader thread never stalls on a slow executor.
//
// close() starts the drain: further pushes are rejected (kClosed),
// pop() keeps returning queued items until every lane is empty, then
// returns nullopt to every (present and future) consumer - the shutdown
// handshake the server's graceful drain is built on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace nanoleak::serve {

/// Bounded multi-lane FIFO with round-robin fairness across lanes (see
/// file comment). T must be movable. Thread-safe.
template <typename T>
class FairQueue {
 public:
  /// Outcome of a push attempt.
  enum class Push {
    kAccepted,  ///< enqueued
    kFull,      ///< total capacity reached; caller should answer "busy"
    kClosed,    ///< queue closed; caller should answer "shutting down"
  };

  /// Queue admitting at most `capacity` items in total (0 admits
  /// nothing - useful for forcing the busy path deterministically).
  explicit FairQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues `item` on `client`'s lane (lanes are created on first
  /// use). Never blocks.
  Push push(std::uint64_t client, T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Push::kClosed;
    }
    if (size_ >= capacity_) {
      return Push::kFull;
    }
    auto [it, inserted] = lanes_.try_emplace(client);
    if (inserted) {
      order_.push_back(client);
    }
    it->second.push_back(std::move(item));
    ++size_;
    cv_.notify_one();
    return Push::kAccepted;
  }

  /// Dequeues the next item, blocking while the queue is open and empty.
  /// Returns nullopt once the queue is closed *and* fully drained.
  /// Consumers collectively visit lanes round-robin in client-arrival
  /// order.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) {
      return std::nullopt;  // closed and drained
    }
    // Round-robin: resume at the lane after the one served last (the
    // cursor), falling through empty lanes. Lanes are never removed (a
    // lane is one connection; connection counts are small), so the walk
    // is bounded by the lane count.
    const std::size_t lanes = order_.size();
    for (std::size_t step = 0; step < lanes; ++step) {
      const std::size_t index = (cursor_ + step) % lanes;
      auto& lane = lanes_[order_[index]];
      if (!lane.empty()) {
        T item = std::move(lane.front());
        lane.pop_front();
        --size_;
        cursor_ = (index + 1) % lanes;
        return item;
      }
    }
    return std::nullopt;  // unreachable: size_ > 0 implies a non-empty lane
  }

  /// Rejects all future pushes and wakes every blocked consumer; queued
  /// items remain poppable until drained.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  /// Total items currently queued across all lanes.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// True once close() was called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Per-client FIFO lanes, keyed by client id.
  std::map<std::uint64_t, std::deque<T>> lanes_;
  /// Clients in first-push order; defines the round-robin rotation.
  std::vector<std::uint64_t> order_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace nanoleak::serve
