#include "serve/quota.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace nanoleak::serve {

TenantQuotas::TenantQuotas(Options options) : options_(options) {
  options_.burst = std::max(1.0, options_.burst);
}

TenantQuotas::Decision TenantQuotas::admit(const std::string& tenant,
                                           Clock::time_point now) {
  if (!enabled()) {
    return Decision{};
  }
  static const obs::Gauge tenants_gauge = obs::gauge("serve.quota_tenants");

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = buckets_.try_emplace(tenant);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = options_.burst;  // new tenants start with a full burst
    bucket.refilled_at = now;
    tenants_gauge.set(static_cast<double>(buckets_.size()));
  } else if (now > bucket.refilled_at) {
    const double dt =
        std::chrono::duration<double>(now - bucket.refilled_at).count();
    bucket.tokens =
        std::min(options_.burst, bucket.tokens + dt * options_.rate_per_s);
    bucket.refilled_at = now;
  }

  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return Decision{};
  }
  Decision decision;
  decision.admitted = false;
  decision.retry_after_ms = static_cast<std::uint64_t>(
      std::ceil((1.0 - bucket.tokens) / options_.rate_per_s * 1000.0));
  return decision;
}

}  // namespace nanoleak::serve
