// Per-tenant admission quotas for the serve daemon: one token bucket
// per tenant, refilled continuously at `rate_per_s` up to `burst`.
//
// Each estimation request costs one token. A tenant with no tokens is
// rejected `overloaded` with a deterministic retry_after_ms hint - the
// exact time until its bucket refills to one token at the configured
// rate - so a well-behaved client sleeping that long is admitted on the
// retry (absent competing traffic from the same tenant).
//
// Time is passed in by the caller rather than read internally, which is
// what makes the arithmetic unit-testable with exact expectations: tests
// drive a synthetic clock and assert token counts and hints to the
// millisecond.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace nanoleak::serve {

/// Thread-safe per-tenant token buckets (see file comment).
class TenantQuotas {
 public:
  using Clock = std::chrono::steady_clock;

  /// Shared bucket shape for every tenant.
  struct Options {
    /// Sustained admissions per second per tenant; <= 0 disables
    /// quotas entirely (every admit() succeeds).
    double rate_per_s = 0.0;
    /// Bucket capacity: admissions a quiet tenant can burst before the
    /// rate limit bites. Clamped to >= 1.
    double burst = 8.0;
  };

  /// Outcome of one admission attempt.
  struct Decision {
    /// True when a token was available (and consumed).
    bool admitted = true;
    /// When rejected: milliseconds until the bucket holds one token
    /// again, rounded up. 0 when admitted.
    std::uint64_t retry_after_ms = 0;
  };

  explicit TenantQuotas(Options options);

  /// True when a rate limit is configured (admit() can reject).
  bool enabled() const { return options_.rate_per_s > 0.0; }

  /// Charges one token to `tenant`'s bucket at time `now`. New tenants
  /// start with a full bucket.
  Decision admit(const std::string& tenant, Clock::time_point now);

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point refilled_at{};
  };

  Options options_;
  std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace nanoleak::serve
