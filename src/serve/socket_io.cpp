#include "serve/socket_io.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>

#include "scenario/serve_protocol.h"
#include "util/error.h"
#include "util/fault.h"

namespace nanoleak::serve {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Waits until `fd` accepts more outgoing bytes, at most `timeout_ms`.
/// Returns false on timeout; POLLERR/POLLHUP count as writable (the
/// following send surfaces the real error).
bool waitWritable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return true;
    }
    if (rc == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno("serve: poll failed");
  }
}

/// Completes a connect() within `timeout_ms` (-1 = blocking connect).
/// The socket is switched to non-blocking for the bounded wait and
/// restored afterwards.
void connectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                        int timeout_ms, const std::string& what) {
  if (timeout_ms < 0) {
    while (::connect(fd, addr, len) != 0) {
      if (errno == EINTR) {
        continue;
      }
      throwErrno(what);
    }
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    throwErrno(what + ": fcntl failed");
  }
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throwErrno(what + ": fcntl failed");
  }
  if (::connect(fd, addr, len) != 0) {
    // EAGAIN: a unix listener's backlog is full - in-progress semantics.
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throwErrno(what);
    }
    if (!waitWritable(fd, timeout_ms)) {
      throw Error(what + ": connect timed out after " +
                  std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      throwErrno(what + ": getsockopt failed");
    }
    if (err != 0) {
      errno = err;
      throwErrno(what);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    throwErrno(what + ": fcntl failed");
  }
}

/// Reads exactly `n` bytes; false on clean EOF before the first byte.
/// Throws on errors or EOF mid-buffer (a truncated frame).
bool readExact(int fd, char* buffer, std::size_t n, const char* what) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, buffer + done, n - done, 0);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      if (done == 0) {
        return false;  // clean EOF at a frame boundary
      }
      throw Error(std::string(what) + ": peer closed mid-frame");
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno(std::string(what) + ": recv failed");
  }
  return true;
}

/// Sends exactly `n` bytes before `deadline` (nullopt = unbounded).
/// Non-blocking sends interleaved with bounded POLLOUT waits, so a peer
/// that stops reading cannot pin the sender past its write timeout.
void writeExact(int fd, const char* buffer, std::size_t n, bool* peer_gone,
                const std::optional<std::chrono::steady_clock::time_point>&
                    deadline) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::send(fd, buffer + done, n - done,
                                MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent > 0) {
      done += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) {
      continue;
    }
    if (sent < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      *peer_gone = true;
      return;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (deadline) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(*deadline -
                                       std::chrono::steady_clock::now());
        wait_ms = static_cast<int>(std::max<std::int64_t>(
            0, remaining.count()));
        if (wait_ms == 0) {
          throw Error("serve: send timed out");
        }
      }
      if (!waitWritable(fd, wait_ms)) {
        throw Error("serve: send timed out");
      }
      continue;
    }
    throwErrno("serve: send failed");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    closeNow();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::closeNow() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownNow() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // EOF for readers, EPIPE for writers
  }
}

Socket Socket::listenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "serve: socket path too long: '" + path + "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throwErrno("serve: cannot create unix socket");
  }
  ::unlink(path.c_str());  // a stale socket file would make bind fail
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throwErrno("serve: cannot bind '" + path + "'");
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    throwErrno("serve: cannot listen on '" + path + "'");
  }
  return sock;
}

Socket Socket::listenTcp(std::uint16_t port, std::uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throwErrno("serve: cannot create tcp socket");
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throwErrno("serve: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    throwErrno("serve: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throwErrno("serve: getsockname failed");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket Socket::connectUnix(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "serve: socket path too long: '" + path + "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throwErrno("serve: cannot create unix socket");
  }
  connectWithTimeout(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr), timeout_ms,
                     "serve: cannot connect to '" + path + "'");
  return sock;
}

Socket Socket::connectTcp(std::uint16_t port, int timeout_ms) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throwErrno("serve: cannot create tcp socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  connectWithTimeout(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr), timeout_ms,
                     "serve: cannot connect to 127.0.0.1:" +
                         std::to_string(port));
  return sock;
}

std::optional<Socket> Socket::acceptWithTimeout(int timeout_ms) {
  if (!waitReadable(fd_, timeout_ms)) {
    return std::nullopt;
  }
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // The pending connection can evaporate between poll and accept
    // (peer reset); that is a timeout-equivalent non-event.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return std::nullopt;
    }
    throwErrno("serve: accept failed");
  }
}

bool waitReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return true;  // readable, EOF, or error - recv will sort it out
    }
    if (rc == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno("serve: poll failed");
  }
}

bool writeFrame(int fd, const std::string& payload, int timeout_ms) {
  FAULT_POINT("serve.socket.write");
  require(payload.size() <= scenario::kMaxServeFrameBytes,
          "serve: frame of " + std::to_string(payload.size()) +
              " bytes exceeds the " +
              std::to_string(scenario::kMaxServeFrameBytes) +
              "-byte frame bound");
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (timeout_ms >= 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms);
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>((n >> 24) & 0xff), static_cast<char>((n >> 16) & 0xff),
      static_cast<char>((n >> 8) & 0xff), static_cast<char>(n & 0xff)};
  bool peer_gone = false;
  writeExact(fd, header, sizeof(header), &peer_gone, deadline);
  if (!peer_gone) {
    writeExact(fd, payload.data(), payload.size(), &peer_gone, deadline);
  }
  return !peer_gone;
}

std::optional<std::string> readFrame(int fd) {
  FAULT_POINT("serve.socket.read");
  char header[4];
  if (!readExact(fd, header, sizeof(header), "serve: frame header")) {
    return std::nullopt;
  }
  const std::uint32_t n =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  require(n <= scenario::kMaxServeFrameBytes,
          "serve: peer announced a " + std::to_string(n) +
              "-byte frame, exceeding the " +
              std::to_string(scenario::kMaxServeFrameBytes) +
              "-byte frame bound");
  std::string payload(n, '\0');
  if (n > 0 &&
      !readExact(fd, payload.data(), payload.size(), "serve: frame body")) {
    throw Error("serve: peer closed between frame header and body");
  }
  return payload;
}

}  // namespace nanoleak::serve
