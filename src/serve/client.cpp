#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace nanoleak::serve {

namespace {

/// serve_client.* registry metrics: retry behaviour of in-process
/// clients (tests, tools); the CLI's one-shot client also records here.
struct ClientMetrics {
  obs::Counter calls = obs::counter("serve_client.calls");
  obs::Counter retries = obs::counter("serve_client.retries");
  obs::Counter reconnects = obs::counter("serve_client.reconnects");
};

const ClientMetrics& clientMetrics() {
  static const ClientMetrics m;
  return m;
}

bool retryable(scenario::ServeStatus status) {
  return status == scenario::ServeStatus::kBusy ||
         status == scenario::ServeStatus::kOverloaded;
}

}  // namespace

ServeClient ServeClient::connectUnix(const std::string& path) {
  return connectUnix(path, Options());
}

ServeClient ServeClient::connectTcp(std::uint16_t port) {
  return connectTcp(port, Options());
}

ServeClient ServeClient::connectUnix(const std::string& path,
                                     const Options& options) {
  ServeClient client(Endpoint::kUnix, path, 0, options);
  client.ensureConnected();
  return client;
}

ServeClient ServeClient::connectTcp(std::uint16_t port,
                                    const Options& options) {
  ServeClient client(Endpoint::kTcp, std::string(), port, options);
  client.ensureConnected();
  return client;
}

ServeClient::ServeClient(Endpoint endpoint, std::string path,
                         std::uint16_t port, const Options& options)
    : endpoint_(endpoint),
      path_(std::move(path)),
      port_(port),
      options_(options),
      jitter_(options.jitter_seed) {}

void ServeClient::ensureConnected() {
  if (sock_.valid()) {
    return;
  }
  sock_ = endpoint_ == Endpoint::kUnix
              ? Socket::connectUnix(path_, options_.connect_timeout_ms)
              : Socket::connectTcp(port_, options_.connect_timeout_ms);
  clientMetrics().reconnects.increment();
}

scenario::ServeResponse ServeClient::callOnce(
    const scenario::ServeRequest& request) {
  require(writeFrame(sock_.fd(), scenario::encodeRequest(request)),
          "serve client: daemon hung up while sending the request");
  if (options_.request_timeout_ms >= 0 &&
      !waitReadable(sock_.fd(), options_.request_timeout_ms)) {
    throw Error("serve client: no response within " +
                std::to_string(options_.request_timeout_ms) + " ms");
  }
  std::optional<std::string> frame = readFrame(sock_.fd());
  require(frame.has_value(),
          "serve client: daemon hung up before responding");
  return scenario::decodeResponse(*frame);
}

void ServeClient::backoff(int attempt, std::uint64_t hint_ms) {
  std::uint64_t delay = hint_ms;
  if (delay == 0) {
    // Capped exponential: base * 2^attempt, half fixed + half jittered
    // so synchronized clients desynchronize while staying reproducible.
    delay = options_.backoff_base_ms;
    for (int i = 0; i < attempt && delay < options_.backoff_cap_ms; ++i) {
      delay *= 2;
    }
    delay = std::min(delay, options_.backoff_cap_ms);
    delay = delay / 2 + jitter_.uniformInt(delay / 2 + 1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

scenario::ServeResponse ServeClient::call(
    const scenario::ServeRequest& request) {
  clientMetrics().calls.increment();
  for (int attempt = 0;; ++attempt) {
    try {
      ensureConnected();
      const scenario::ServeResponse response = callOnce(request);
      if (retryable(response.status) && attempt < options_.retries) {
        // The daemon asked for a delayed retry; the connection itself
        // is healthy, so keep it.
        clientMetrics().retries.increment();
        backoff(attempt, response.retry_after_ms);
        continue;
      }
      return response;
    } catch (const Error&) {
      // Transport failure: the stream state is unknown, reconnect on
      // the next attempt (identical request bytes are resent, so the
      // eventual response is byte-identical to an undisturbed call).
      sock_.closeNow();
      if (attempt >= options_.retries) {
        throw;
      }
      clientMetrics().retries.increment();
      backoff(attempt, 0);
    }
  }
}

}  // namespace nanoleak::serve
