#include "serve/client.h"

#include <optional>
#include <utility>

#include "util/error.h"

namespace nanoleak::serve {

ServeClient ServeClient::connectUnix(const std::string& path) {
  return ServeClient(Socket::connectUnix(path));
}

ServeClient ServeClient::connectTcp(std::uint16_t port) {
  return ServeClient(Socket::connectTcp(port));
}

scenario::ServeResponse ServeClient::call(
    const scenario::ServeRequest& request) {
  require(writeFrame(sock_.fd(), scenario::encodeRequest(request)),
          "serve client: daemon hung up while sending the request");
  std::optional<std::string> frame = readFrame(sock_.fd());
  require(frame.has_value(),
          "serve client: daemon hung up before responding");
  return scenario::decodeResponse(*frame);
}

}  // namespace nanoleak::serve
