// POSIX socket plumbing for the serve daemon and its client: RAII fd
// ownership, Unix-domain + loopback-TCP listeners/connections, and the
// 4-byte big-endian length-prefixed frame codec the wire protocol rides
// on (see scenario/serve_protocol.h for the framing contract).
//
// All reads and writes loop over EINTR and partial transfers; sends use
// MSG_NOSIGNAL so a peer hanging up surfaces as an error return instead
// of SIGPIPE killing the daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace nanoleak::serve {

/// Owning file-descriptor wrapper (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-open descriptor.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { closeNow(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The descriptor (-1 when empty).
  int fd() const { return fd_; }
  /// True while the socket holds an open descriptor.
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void closeNow();
  /// Disables further sends and receives (::shutdown SHUT_RDWR) without
  /// releasing the descriptor. This is how the server evicts a
  /// connection shared between threads: the polling reader wakes to EOF
  /// and writers get EPIPE, while the fd number stays reserved until the
  /// last owner drops it - so it can never be reused by a new accept
  /// while stale references remain. Idempotent; no-op when empty.
  void shutdownNow();

  /// Listening Unix-domain socket bound to `path` (an existing socket
  /// file at that path is unlinked first). Throws nanoleak::Error on
  /// failure.
  static Socket listenUnix(const std::string& path);
  /// Listening TCP socket bound to 127.0.0.1:`port` (0 = ephemeral).
  /// The actually bound port lands in `*bound_port` when non-null.
  /// Throws nanoleak::Error on failure.
  static Socket listenTcp(std::uint16_t port,
                          std::uint16_t* bound_port = nullptr);
  /// Connects to a Unix-domain listener, waiting at most `timeout_ms`
  /// for the connect to complete (-1 = block indefinitely). Throws
  /// nanoleak::Error on failure or timeout.
  static Socket connectUnix(const std::string& path, int timeout_ms = -1);
  /// Connects to 127.0.0.1:`port` with the same timeout semantics.
  /// Throws nanoleak::Error.
  static Socket connectTcp(std::uint16_t port, int timeout_ms = -1);

  /// Accepts one connection, waiting at most `timeout_ms` (poll-based,
  /// so the accept loop can check shutdown flags between waits).
  /// Returns an empty optional on timeout; throws nanoleak::Error on a
  /// non-transient accept failure.
  std::optional<Socket> acceptWithTimeout(int timeout_ms);

 private:
  int fd_ = -1;
};

/// Writes one frame (length prefix + payload). Returns false when the
/// peer hung up (EPIPE/ECONNRESET); throws nanoleak::Error on other
/// errors or on a payload exceeding the frame bound. `timeout_ms` >= 0
/// bounds the whole write: when the peer's receive window stays full
/// that long (a slow or stalled client), the write throws a "send timed
/// out" Error so the server can evict the connection instead of pinning
/// an executor. -1 = block indefinitely. Fault point:
/// `serve.socket.write`.
bool writeFrame(int fd, const std::string& payload, int timeout_ms = -1);

/// Reads one complete frame payload. Returns an empty optional on clean
/// EOF at a frame boundary; throws nanoleak::Error on truncated frames,
/// oversized announced lengths, or read errors. Fault point:
/// `serve.socket.read`.
std::optional<std::string> readFrame(int fd);

/// Waits until `fd` is readable, at most `timeout_ms`. Returns true when
/// readable (or the peer closed), false on timeout. Throws
/// nanoleak::Error on poll failure. Lets connection readers block in
/// short slices so they can observe shutdown between waits.
bool waitReadable(int fd, int timeout_ms);

}  // namespace nanoleak::serve
