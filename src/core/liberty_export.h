/// @file
/// Liberty-style export of the characterized leakage library.
///
/// The paper's "leakage components of different gate type, size, loading"
/// tables are exactly what industrial flows consume as the leakage view of
/// a .lib file: per-cell, per-state (`when` condition) leakage_power
/// groups. This writer emits that view so downstream tools can use the
/// characterization without linking nanoleak. The loading surfaces have no
/// Liberty equivalent and are exported as comments plus the zero-loading
/// values (the traditional .lib semantics).
#pragma once

#include <iosfwd>
#include <string>

#include "core/leakage_table.h"

namespace nanoleak::core {

/// Formatting switches of the Liberty writer.
struct LibertyExportOptions {
  /// Library name emitted in the header.
  std::string library_name = "nanoleak_leakage";
  /// Emit the fixture (driver-attached) nominal instead of the isolated
  /// value. Default false = isolated, matching standard .lib semantics.
  bool use_fixture_nominal = false;
  /// Also emit per-component attributes as comments.
  bool emit_component_comments = true;
};

/// Writes a Liberty-style leakage view of `library`. Cell and pin names
/// follow the gate-kind spelling (INV -> pins A, Y; NAND2 -> A, B, Y...).
void writeLibertyLeakage(const LeakageLibrary& library,
                         std::ostream& out,
                         const LibertyExportOptions& options = {});

/// Convenience: export to a file. Throws nanoleak::Error on I/O failure.
void writeLibertyLeakageFile(const LeakageLibrary& library,
                             const std::string& path,
                             const LibertyExportOptions& options = {});

}  // namespace nanoleak::core
