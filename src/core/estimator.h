// Circuit-level leakage estimation with loading effect - the paper's
// Fig. 13 algorithm.
//
// For an input pattern: simulate logic values, then for each gate in
// topological order accumulate the input/output loading currents from the
// pre-characterized pin tunneling currents of its neighbours, and
// interpolate the gate's leakage decomposition from the (IL, OL) tables.
// One table pass corresponds to the paper's one-level propagation; the
// iterative mode re-derives pin currents from the loaded tables to
// approximate deeper propagation (used by the ablation bench to confirm
// the paper's claim that >1 level contributes negligibly).
#pragma once

#include <cstddef>
#include <vector>

#include "core/leakage_table.h"
#include "device/leakage_breakdown.h"
#include "logic/logic_netlist.h"
#include "logic/logic_sim.h"

namespace nanoleak::core {

struct EstimatorOptions {
  /// false = traditional accumulation (tables at zero loading).
  bool with_loading = true;
  /// 1 = the paper's one-level propagation; k > 1 refines pin currents
  /// (k-level propagation); ignored when with_loading is false.
  int propagation_iterations = 1;
};

/// Per-gate estimate details.
struct GateEstimate {
  device::LeakageBreakdown leakage;
  /// Input loading magnitude seen by the gate [A].
  double il = 0.0;
  /// Output loading magnitude seen by the gate [A].
  double ol = 0.0;
};

/// Whole-circuit estimate.
struct EstimateResult {
  device::LeakageBreakdown total;
  std::vector<GateEstimate> per_gate;
};

/// Fig. 13 estimator bound to one netlist + library.
class LeakageEstimator {
 public:
  /// Requires the library to cover every gate kind in the netlist (INV is
  /// additionally required when the netlist has DFFs, for the boundary
  /// model). Throws nanoleak::Error otherwise.
  LeakageEstimator(const logic::LogicNetlist& netlist,
                   const LeakageLibrary& library,
                   EstimatorOptions options = {});

  /// Estimates leakage for one input pattern (see
  /// LogicNetlist::sourceNets() for the value ordering).
  EstimateResult estimate(const std::vector<bool>& source_values) const;

  const EstimatorOptions& options() const { return options_; }

 private:
  const logic::LogicNetlist& netlist_;
  const LeakageLibrary& library_;
  EstimatorOptions options_;
  logic::LogicSimulator simulator_;
};

}  // namespace nanoleak::core
