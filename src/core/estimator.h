/// @file
/// Circuit-level leakage estimation with loading effect - the paper's
/// Fig. 13 algorithm.
///
/// For an input pattern: simulate logic values, then for each gate in
/// topological order accumulate the input/output loading currents from the
/// pre-characterized pin tunneling currents of its neighbours, and
/// interpolate the gate's leakage decomposition from the (IL, OL) tables.
/// One table pass corresponds to the paper's one-level propagation; the
/// iterative mode re-derives pin currents from the loaded tables to
/// approximate deeper propagation (used by the ablation bench to confirm
/// the paper's claim that >1 level contributes negligibly).
///
/// LeakageEstimator is a thin per-call facade over the compile-once /
/// execute-many EstimationPlan + EstimationWorkspace pair (see
/// estimation_plan.h). Each estimate() call runs on a fresh stack
/// workspace, keeping the facade safe to share across threads; sweep
/// workloads that evaluate many patterns should use plan() directly with a
/// reused per-thread workspace (engine::BatchRunner::runPatterns does).
#pragma once

#include <cstddef>
#include <vector>

#include "core/estimation_plan.h"
#include "core/leakage_table.h"
#include "device/leakage_breakdown.h"
#include "logic/logic_netlist.h"

namespace nanoleak::core {

/// Fig. 13 estimator bound to one netlist + library.
class LeakageEstimator {
 public:
  /// Requires the library to cover every gate kind in the netlist (INV is
  /// additionally required when the netlist has DFFs, for the boundary
  /// model). Throws nanoleak::Error otherwise.
  LeakageEstimator(const logic::LogicNetlist& netlist,
                   const LeakageLibrary& library,
                   EstimatorOptions options = {});

  /// Estimates leakage for one input pattern (see
  /// LogicNetlist::sourceNets() for the value ordering). Throws
  /// nanoleak::Error when source_values.size() != sourceCount().
  EstimateResult estimate(const std::vector<bool>& source_values) const;

  /// Number of source values estimate() expects.
  std::size_t sourceCount() const { return plan_.sourceCount(); }

  /// The options the estimator was built with.
  const EstimatorOptions& options() const { return plan_.options(); }

  /// The compiled plan backing this estimator, for execute-many callers.
  const EstimationPlan& plan() const { return plan_; }

 private:
  EstimationPlan plan_;
};

}  // namespace nanoleak::core
