/// @file
/// Builds LeakageLibrary tables by sweeping LoadingFixture solves over a
/// loading-current grid for every (gate kind, input vector).
#pragma once

#include <vector>

#include "core/leakage_table.h"
#include "device/device_params.h"
#include "gates/gate_library.h"

namespace nanoleak::core {

/// What to characterize and how the fixture solves run.
struct CharacterizationOptions {
  /// How the per-grid-point DC solves run.
  ///  * kLegacy: DcSolver on the fixture netlist, cold-started from logic
  ///    levels every time (the original path; the reference).
  ///  * kCompiled: one SolverKernel per (kind, vector) fixture, cold
  ///    seeds. Bit-identical tables to kLegacy, ~2x faster.
  ///  * kCompiledWarmStart: compiled kernel plus continuation - each grid
  ///    solve is seeded from the neighbouring grid point's solution.
  ///    Tables agree with kLegacy within solver tolerance (~1e-8
  ///    relative), not bitwise.
  ///  * kBatched (default): lane-parallel SIMD lockstep - up to
  ///    LoadingFixture::kBatchLanes grid points of a row solve
  ///    simultaneously on a BatchSolverKernel, each column seeded from the
  ///    same column of the previous row (column-wise continuation, the
  ///    lane-independent analogue of kCompiledWarmStart's scan-order
  ///    continuation). Tables agree with kCompiledWarmStart within solver
  ///    tolerance (<= 1e-6 relative; the continuation seeds and the
  ///    lockstep transcendentals differ, the converged fixed point does
  ///    not).
  enum class SolverPath { kLegacy, kCompiled, kCompiledWarmStart, kBatched };

  /// Kinds to characterize. Empty = every combinational kind.
  std::vector<gates::GateKind> kinds;
  /// Loading-magnitude grid [A]; must start at 0 and be increasing.
  /// The default spans the paper's 0-3000 nA sweeps with headroom for
  /// high-fanout nets.
  std::vector<double> loading_grid = {0.0,    0.25e-6, 0.5e-6, 1.0e-6,
                                      2.0e-6, 3.0e-6,  4.5e-6, 6.0e-6};
  /// Also record pin-current surfaces (enables the estimator's iterative
  /// propagation mode).
  bool store_pin_current_grids = true;
  /// Solve strategy (see SolverPath).
  SolverPath solver_path = SolverPath::kBatched;
};

/// Characterizes a technology into a LeakageLibrary.
class Characterizer {
 public:
  /// Validates the options (grid must start at 0 and increase; empty
  /// kinds expands to every combinational kind). Throws nanoleak::Error
  /// on a malformed grid.
  Characterizer(device::Technology technology,
                CharacterizationOptions options = {});

  /// Runs all fixture solves. Cost scales with
  /// sum over kinds of 2^pins * grid^2; the default full library is a few
  /// thousand small DC solves.
  LeakageLibrary characterize() const;

  /// Characterizes a single kind (all vectors).
  std::vector<VectorTable> characterizeKind(gates::GateKind kind) const;

  /// The technology corner being characterized.
  const device::Technology& technology() const { return technology_; }

 private:
  device::Technology technology_;
  CharacterizationOptions options_;
};

/// Convenience: characterize only the kinds present in common logic
/// netlists (INV, BUF, NAND2/3/4, NOR2/3, AND2, OR2, XOR2, AOI21, OAI21,
/// MUX2) - the set the generators emit.
std::vector<gates::GateKind> generatorGateKinds();

}  // namespace nanoleak::core
