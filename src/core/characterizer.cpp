#include "core/characterizer.h"

#include <array>
#include <utility>

#include "core/loading_fixture.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace nanoleak::core {

Characterizer::Characterizer(device::Technology technology,
                             CharacterizationOptions options)
    : technology_(std::move(technology)), options_(std::move(options)) {
  require(!options_.loading_grid.empty() && options_.loading_grid[0] == 0.0,
          "Characterizer: loading grid must start at 0");
  for (std::size_t i = 1; i < options_.loading_grid.size(); ++i) {
    require(options_.loading_grid[i] > options_.loading_grid[i - 1],
            "Characterizer: loading grid must be increasing");
  }
  if (options_.kinds.empty()) {
    const auto kinds = gates::combinationalKinds();
    options_.kinds.assign(kinds.begin(), kinds.end());
  }
}

std::vector<VectorTable> Characterizer::characterizeKind(
    gates::GateKind kind) const {
  OBS_SPAN("char.kind", std::string(gates::toString(kind)));
  static const obs::Counter kinds_characterized =
      obs::counter("char.kinds_characterized");
  static const obs::Counter grid_points =
      obs::counter("char.grid_points");
  static const obs::Counter warm_grid_points =
      obs::counter("char.warm_grid_points");
  kinds_characterized.increment();
  const int pins = gates::inputCount(kind);
  const std::size_t vector_count = std::size_t{1}
                                   << static_cast<std::size_t>(pins);
  const std::vector<double>& grid = options_.loading_grid;
  const std::size_t n = grid.size();

  std::vector<VectorTable> tables;
  tables.reserve(vector_count);

  for (std::size_t vec = 0; vec < vector_count; ++vec) {
    std::vector<bool> input_vector(static_cast<std::size_t>(pins));
    for (int k = 0; k < pins; ++k) {
      input_vector[static_cast<std::size_t>(k)] =
          ((vec >> static_cast<std::size_t>(k)) & 1) != 0;
    }
    LoadingFixture fixture(kind, input_vector, technology_);
    std::array<bool, 8> vals{};
    for (int k = 0; k < pins; ++k) {
      vals[static_cast<std::size_t>(k)] =
          input_vector[static_cast<std::size_t>(k)];
    }
    const bool out_level = gates::evaluateGate(
        kind,
        std::span<const bool>(vals.data(), static_cast<std::size_t>(pins)));

    VectorTable table;
    table.isolated_nominal = gates::isolatedGateLeakage(
        kind,
        std::span<const bool>(vals.data(), static_cast<std::size_t>(pins)),
        technology_);
    table.il_axis = Axis(grid);
    table.ol_axis = Axis(grid);
    table.subthreshold = Grid2D(n, n);
    table.gate = Grid2D(n, n);
    table.btbt = Grid2D(n, n);
    if (options_.store_pin_current_grids) {
      table.pin_current_grid.assign(static_cast<std::size_t>(pins),
                                    Grid2D(n, n));
    }

    // Continuation state for kCompiledWarmStart: `prev` is the solution of
    // the previous grid point in scan order, `row_start` the solution at
    // (i-1, 0) - the neighbour a new row starts from.
    //
    // NOTE: thermal::ThermalCharacterizer::characterizeKind mirrors this
    // scan (shares, signs, table assembly, continuation) and its cold
    // mode is pinned bit-identical to this function - keep the two in
    // lockstep when changing the scan.
    const auto path = options_.solver_path;
    std::vector<double> prev;
    std::vector<double> row_start;

    // Stores one solved grid point into the table (shared by the scalar
    // scan and the batched scan).
    const auto record = [&](std::size_t i, std::size_t j,
                            const FixtureResult& result) {
      grid_points.increment();
      table.subthreshold.at(i, j) = result.leakage.subthreshold;
      table.gate.at(i, j) = result.leakage.gate;
      table.btbt.at(i, j) = result.leakage.btbt;
      if (i == 0 && j == 0) {
        table.nominal = result.leakage;
        table.pin_current = result.pin_currents_into_net;
      }
      if (options_.store_pin_current_grids) {
        for (int k = 0; k < pins; ++k) {
          table.pin_current_grid[static_cast<std::size_t>(k)].at(i, j) =
              result.pin_currents_into_net[static_cast<std::size_t>(k)];
        }
      }
    };

    if (path == CharacterizationOptions::SolverPath::kBatched) {
      // Lane-parallel scan: up to kBatchLanes adjacent columns of a row
      // solve in SIMD lockstep. Continuation runs column-wise - lane j is
      // seeded from column j of the previous row - so lanes never depend
      // on each other within a batch.
      std::vector<std::vector<double>> prev_row(n);
      std::vector<std::vector<double>> cur_row(n);
      std::vector<double> pin_amps(static_cast<std::size_t>(pins));
      for (std::size_t i = 0; i < n; ++i) {
        // Input loading: magnitude grid[i] split across pins, signed per
        // pin level (into '0' nets, out of '1' nets).
        const double share = grid[i] / pins;
        for (int k = 0; k < pins; ++k) {
          const bool level = input_vector[static_cast<std::size_t>(k)];
          pin_amps[static_cast<std::size_t>(k)] = level ? -share : share;
        }
        for (std::size_t j0 = 0; j0 < n; j0 += LoadingFixture::kBatchLanes) {
          const std::size_t lanes =
              std::min(LoadingFixture::kBatchLanes, n - j0);
          std::vector<FixtureBatchPoint> points(lanes);
          for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t j = j0 + lane;
            points[lane].pin_loading = pin_amps;
            points[lane].output_loading = out_level ? -grid[j] : grid[j];
            if (i > 0 && !prev_row[j].empty()) {
              points[lane].warm_seed = &prev_row[j];
              warm_grid_points.increment();
            }
            points[lane].label = "grid point (" + std::to_string(i) + "," +
                                 std::to_string(j) + ")";
          }
          std::vector<FixtureResult> results = fixture.solveBatched(points);
          for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t j = j0 + lane;
            record(i, j, results[lane]);
            cur_row[j] = std::move(results[lane].voltages);
          }
        }
        std::swap(prev_row, cur_row);
      }
      tables.push_back(std::move(table));
      continue;
    }

    for (std::size_t i = 0; i < n; ++i) {
      // Input loading: magnitude grid[i] split across pins, signed per pin
      // level (into '0' nets, out of '1' nets) - the direction attached
      // gate-tunneling loads actually act.
      const double share = grid[i] / pins;
      for (int k = 0; k < pins; ++k) {
        const bool level = input_vector[static_cast<std::size_t>(k)];
        fixture.setPinLoading(k, level ? -share : share);
      }
      for (std::size_t j = 0; j < n; ++j) {
        // Output loading: sign per output level.
        fixture.setOutputLoading(out_level ? -grid[j] : grid[j]);
        FixtureResult result;
        switch (path) {
          case CharacterizationOptions::SolverPath::kLegacy:
            result = fixture.solve();
            break;
          case CharacterizationOptions::SolverPath::kCompiled:
            result = fixture.solveCompiled();
            break;
          case CharacterizationOptions::SolverPath::kCompiledWarmStart: {
            const std::vector<double>* warm =
                j > 0 ? &prev : (i > 0 ? &row_start : nullptr);
            if (warm != nullptr) {
              warm_grid_points.increment();
            }
            result = fixture.solveCompiled(warm);
            prev = std::move(result.voltages);
            if (j == 0) {
              row_start = prev;
            }
            break;
          }
          case CharacterizationOptions::SolverPath::kBatched:
            break;  // handled above
        }
        record(i, j, result);
      }
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

LeakageLibrary Characterizer::characterize() const {
  LeakageLibrary::Meta meta;
  meta.technology_name = technology_.nmos.name + "+" + technology_.pmos.name;
  meta.vdd = technology_.vdd;
  meta.temperature_k = technology_.temperature_k;
  LeakageLibrary library(meta);
  for (gates::GateKind kind : options_.kinds) {
    library.insert(kind, characterizeKind(kind));
  }
  return library;
}

std::vector<gates::GateKind> generatorGateKinds() {
  using gates::GateKind;
  return {GateKind::kInv,   GateKind::kBuf,   GateKind::kNand2,
          GateKind::kNand3, GateKind::kNand4, GateKind::kNor2,
          GateKind::kNor3,  GateKind::kAnd2,  GateKind::kOr2,
          GateKind::kXor2,  GateKind::kAoi21, GateKind::kOai21,
          GateKind::kMux2};
}

}  // namespace nanoleak::core
