#include "core/loading_analyzer.h"

#include <array>

#include "util/error.h"

namespace nanoleak::core {

LoadingAnalyzer::LoadingAnalyzer(gates::GateKind kind,
                                 std::vector<bool> input_vector,
                                 const device::Technology& technology)
    : fixture_(kind, input_vector, technology),
      output_level_(false) {
  std::array<bool, 8> vals{};
  for (std::size_t i = 0; i < input_vector.size(); ++i) {
    vals[i] = input_vector[i];
  }
  output_level_ = gates::evaluateGate(
      kind, std::span<const bool>(vals.data(), input_vector.size()));
  fixture_.setInputLoading(0.0);
  fixture_.setOutputLoading(0.0);
  nominal_ = fixture_.solve().leakage;
}

double LoadingAnalyzer::signedInputLoading(double amps) const {
  // Loading gates inject current into a '0' net (their internal drains sit
  // at VDD and tunnel into the gate electrode) and draw current from a '1'
  // net (gate-to-channel tunneling). With mixed input vectors, the per-pin
  // split in setInputLoading applies each pin's own sign.
  return amps;  // sign handled per pin below
}

double LoadingAnalyzer::signedOutputLoading(double amps) const {
  return output_level_ ? -amps : amps;
}

device::LeakageBreakdown LoadingAnalyzer::leakageAt(
    double input_amps_signed, double output_amps_signed) {
  fixture_.setInputLoading(input_amps_signed);
  fixture_.setOutputLoading(output_amps_signed);
  return fixture_.solve().leakage;
}

LoadingEffect LoadingAnalyzer::effectOf(
    const device::LeakageBreakdown& loaded) const {
  LoadingEffect effect;
  auto pct = [](double now, double base) {
    return base > 0.0 ? 100.0 * (now - base) / base : 0.0;
  };
  effect.subthreshold_pct = pct(loaded.subthreshold, nominal_.subthreshold);
  effect.gate_pct = pct(loaded.gate, nominal_.gate);
  effect.btbt_pct = pct(loaded.btbt, nominal_.btbt);
  effect.total_pct = pct(loaded.total(), nominal_.total());
  return effect;
}

LoadingEffect LoadingAnalyzer::inputLoadingEffect(double amps) {
  // Split across pins with each pin's own sign (into '0' pins, out of '1').
  const int pins = fixture_.pinCount();
  const double share = amps / pins;
  for (int pin = 0; pin < pins; ++pin) {
    const bool level = fixture_.inputVector()[static_cast<std::size_t>(pin)];
    fixture_.setPinLoading(pin, level ? -share : share);
  }
  fixture_.setOutputLoading(0.0);
  const LoadingEffect effect = effectOf(fixture_.solve().leakage);
  fixture_.setInputLoading(0.0);
  return effect;
}

LoadingEffect LoadingAnalyzer::pinLoadingEffect(int pin, double amps) {
  require(pin >= 0 && pin < fixture_.pinCount(),
          "pinLoadingEffect: pin out of range");
  fixture_.setInputLoading(0.0);
  fixture_.setOutputLoading(0.0);
  const bool level = fixture_.inputVector()[static_cast<std::size_t>(pin)];
  fixture_.setPinLoading(pin, level ? -amps : amps);
  const LoadingEffect effect = effectOf(fixture_.solve().leakage);
  fixture_.setPinLoading(pin, 0.0);
  return effect;
}

LoadingEffect LoadingAnalyzer::outputLoadingEffect(double amps) {
  fixture_.setInputLoading(0.0);
  fixture_.setOutputLoading(signedOutputLoading(amps));
  const LoadingEffect effect = effectOf(fixture_.solve().leakage);
  fixture_.setOutputLoading(0.0);
  return effect;
}

LoadingEffect LoadingAnalyzer::combinedLoadingContribution(
    double input_amps, double output_amps) {
  const int pins = fixture_.pinCount();
  const double share = input_amps / pins;
  for (int pin = 0; pin < pins; ++pin) {
    const bool level = fixture_.inputVector()[static_cast<std::size_t>(pin)];
    fixture_.setPinLoading(pin, level ? -share : share);
  }
  fixture_.setOutputLoading(signedOutputLoading(output_amps));
  const device::LeakageBreakdown loaded = fixture_.solve().leakage;
  fixture_.setInputLoading(0.0);
  fixture_.setOutputLoading(0.0);
  LoadingEffect effect;
  const double total_nom = nominal_.total();
  if (total_nom <= 0.0) {
    return effect;
  }
  effect.subthreshold_pct =
      100.0 * (loaded.subthreshold - nominal_.subthreshold) / total_nom;
  effect.gate_pct = 100.0 * (loaded.gate - nominal_.gate) / total_nom;
  effect.btbt_pct = 100.0 * (loaded.btbt - nominal_.btbt) / total_nom;
  effect.total_pct = 100.0 * (loaded.total() - total_nom) / total_nom;
  return effect;
}

LoadingEffect LoadingAnalyzer::combinedLoadingEffect(double input_amps,
                                                     double output_amps) {
  const int pins = fixture_.pinCount();
  const double share = input_amps / pins;
  for (int pin = 0; pin < pins; ++pin) {
    const bool level = fixture_.inputVector()[static_cast<std::size_t>(pin)];
    fixture_.setPinLoading(pin, level ? -share : share);
  }
  fixture_.setOutputLoading(signedOutputLoading(output_amps));
  const LoadingEffect effect = effectOf(fixture_.solve().leakage);
  fixture_.setInputLoading(0.0);
  fixture_.setOutputLoading(0.0);
  return effect;
}

}  // namespace nanoleak::core
