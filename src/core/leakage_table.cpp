#include "core/leakage_table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace nanoleak::core {

Axis::Axis(std::vector<double> points) : points_(std::move(points)) {
  require(!points_.empty(), "Axis: needs at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    require(points_[i] > points_[i - 1], "Axis: points must be increasing");
  }
}

Axis::Location Axis::locate(double x) const {
  if (points_.size() == 1 || x <= points_.front()) {
    return {0, 0.0};
  }
  if (x >= points_.back()) {
    return {points_.size() - 2, 1.0};
  }
  const auto it = std::upper_bound(points_.begin(), points_.end(), x);
  const auto index = static_cast<std::size_t>(it - points_.begin()) - 1;
  const double lo = points_[index];
  const double hi = points_[index + 1];
  return {index, (x - lo) / (hi - lo)};
}

Grid2D::Grid2D(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {
  require(rows >= 1 && cols >= 1, "Grid2D: empty dimensions");
}

double& Grid2D::at(std::size_t row, std::size_t col) {
  require(row < rows_ && col < cols_, "Grid2D::at: out of range");
  return values_[row * cols_ + col];
}

double Grid2D::at(std::size_t row, std::size_t col) const {
  require(row < rows_ && col < cols_, "Grid2D::at: out of range");
  return values_[row * cols_ + col];
}

double Grid2D::interpolate(const Axis::Location& row,
                           const Axis::Location& col) const {
  const std::size_t r1 = std::min(row.index + 1, rows_ - 1);
  const std::size_t c1 = std::min(col.index + 1, cols_ - 1);
  const double v00 = at(row.index, col.index);
  const double v01 = at(row.index, c1);
  const double v10 = at(r1, col.index);
  const double v11 = at(r1, c1);
  const double top = v00 + (v01 - v00) * col.fraction;
  const double bottom = v10 + (v11 - v10) * col.fraction;
  return top + (bottom - top) * row.fraction;
}

device::LeakageBreakdown VectorTable::lookup(double il, double ol) const {
  const Axis::Location row = il_axis.locate(il);
  const Axis::Location col = ol_axis.locate(ol);
  device::LeakageBreakdown breakdown;
  breakdown.subthreshold = subthreshold.interpolate(row, col);
  breakdown.gate = gate.interpolate(row, col);
  breakdown.btbt = btbt.interpolate(row, col);
  return breakdown;
}

double VectorTable::pinCurrentAt(int pin, double il, double ol) const {
  const auto index = static_cast<std::size_t>(pin);
  require(index < pin_current.size(),
          "VectorTable::pinCurrentAt: pin out of range");
  if (index >= pin_current_grid.size()) {
    return pin_current[index];
  }
  return pin_current_grid[index].interpolate(il_axis.locate(il),
                                             ol_axis.locate(ol));
}

std::size_t vectorIndex(const std::vector<bool>& input_values) {
  require(input_values.size() <= 16, "vectorIndex: too many pins");
  std::size_t index = 0;
  for (std::size_t k = 0; k < input_values.size(); ++k) {
    if (input_values[k]) {
      index |= (std::size_t{1} << k);
    }
  }
  return index;
}

bool LeakageLibrary::has(gates::GateKind kind) const {
  return tables_.find(kind) != tables_.end();
}

const std::vector<VectorTable>& LeakageLibrary::tables(
    gates::GateKind kind) const {
  const auto it = tables_.find(kind);
  require(it != tables_.end(),
          std::string("LeakageLibrary: no tables for ") +
              gates::toString(kind));
  return it->second;
}

const VectorTable& LeakageLibrary::table(gates::GateKind kind,
                                         std::size_t vector_index) const {
  const auto& vectors = tables(kind);
  require(vector_index < vectors.size(),
          "LeakageLibrary::table: vector index out of range");
  return vectors[vector_index];
}

void LeakageLibrary::insert(gates::GateKind kind,
                            std::vector<VectorTable> tables) {
  const auto expected =
      std::size_t{1} << static_cast<std::size_t>(gates::inputCount(kind));
  require(tables.size() == expected,
          "LeakageLibrary::insert: wrong number of vector tables");
  tables_[kind] = std::move(tables);
}

namespace {

void writeGrid(std::ostream& out, const char* name, const Grid2D& grid) {
  out << name << ' ' << grid.rows() << ' ' << grid.cols();
  for (double v : grid.values()) {
    out << ' ' << v;
  }
  out << '\n';
}

Grid2D readGrid(std::istream& in, const std::string& expect) {
  std::string name;
  std::size_t rows = 0;
  std::size_t cols = 0;
  in >> name >> rows >> cols;
  require(in.good() && name == expect,
          "LeakageLibrary: expected grid '" + expect + "'");
  Grid2D grid(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      in >> grid.at(r, c);
    }
  }
  require(in.good(), "LeakageLibrary: truncated grid '" + expect + "'");
  return grid;
}

}  // namespace

void LeakageLibrary::serialize(std::ostream& out) const {
  out << std::setprecision(17);
  out << "nanoleak-lib 1\n";
  out << "meta " << meta_.technology_name << ' ' << meta_.vdd << ' '
      << meta_.temperature_k << '\n';
  out << "kinds " << tables_.size() << '\n';
  for (const auto& [kind, vectors] : tables_) {
    out << "kind " << gates::toString(kind) << " vectors " << vectors.size()
        << '\n';
    for (const VectorTable& table : vectors) {
      out << "nominal " << table.nominal.subthreshold << ' '
          << table.nominal.gate << ' ' << table.nominal.btbt << '\n';
      out << "isolated " << table.isolated_nominal.subthreshold << ' '
          << table.isolated_nominal.gate << ' ' << table.isolated_nominal.btbt
          << '\n';
      out << "pincur " << table.pin_current.size();
      for (double v : table.pin_current) {
        out << ' ' << v;
      }
      out << '\n';
      out << "il_axis " << table.il_axis.size();
      for (double v : table.il_axis.points()) {
        out << ' ' << v;
      }
      out << '\n';
      out << "ol_axis " << table.ol_axis.size();
      for (double v : table.ol_axis.points()) {
        out << ' ' << v;
      }
      out << '\n';
      writeGrid(out, "sub", table.subthreshold);
      writeGrid(out, "gate", table.gate);
      writeGrid(out, "btbt", table.btbt);
      out << "pingrids " << table.pin_current_grid.size() << '\n';
      for (const Grid2D& grid : table.pin_current_grid) {
        writeGrid(out, "pingrid", grid);
      }
    }
  }
}

LeakageLibrary LeakageLibrary::deserialize(std::istream& in) {
  std::string tag;
  int version = 0;
  in >> tag >> version;
  require(in.good() && tag == "nanoleak-lib" && version == 1,
          "LeakageLibrary: bad header");
  Meta meta;
  in >> tag >> meta.technology_name >> meta.vdd >> meta.temperature_k;
  require(in.good() && tag == "meta", "LeakageLibrary: bad meta line");
  LeakageLibrary library(meta);

  std::size_t kind_count = 0;
  in >> tag >> kind_count;
  require(in.good() && tag == "kinds", "LeakageLibrary: bad kinds line");
  for (std::size_t k = 0; k < kind_count; ++k) {
    std::string kind_name;
    std::size_t vector_count = 0;
    in >> tag >> kind_name;
    require(in.good() && tag == "kind", "LeakageLibrary: bad kind line");
    in >> tag >> vector_count;
    require(in.good() && tag == "vectors",
            "LeakageLibrary: bad vectors count");
    const gates::GateKind kind = gates::gateKindFromString(kind_name);
    std::vector<VectorTable> vectors;
    vectors.reserve(vector_count);
    for (std::size_t v = 0; v < vector_count; ++v) {
      VectorTable table;
      in >> tag >> table.nominal.subthreshold >> table.nominal.gate >>
          table.nominal.btbt;
      require(in.good() && tag == "nominal",
              "LeakageLibrary: bad nominal line");
      in >> tag >> table.isolated_nominal.subthreshold >>
          table.isolated_nominal.gate >> table.isolated_nominal.btbt;
      require(in.good() && tag == "isolated",
              "LeakageLibrary: bad isolated line");
      std::size_t pins = 0;
      in >> tag >> pins;
      require(in.good() && tag == "pincur",
              "LeakageLibrary: bad pincur line");
      table.pin_current.resize(pins);
      for (double& value : table.pin_current) {
        in >> value;
      }
      auto readAxis = [&](const char* expect) {
        std::string name;
        std::size_t n = 0;
        in >> name >> n;
        require(in.good() && name == expect,
                std::string("LeakageLibrary: expected axis ") + expect);
        std::vector<double> points(n);
        for (double& p : points) {
          in >> p;
        }
        require(in.good(), "LeakageLibrary: truncated axis");
        return Axis(std::move(points));
      };
      table.il_axis = readAxis("il_axis");
      table.ol_axis = readAxis("ol_axis");
      table.subthreshold = readGrid(in, "sub");
      table.gate = readGrid(in, "gate");
      table.btbt = readGrid(in, "btbt");
      std::size_t grid_count = 0;
      in >> tag >> grid_count;
      require(in.good() && tag == "pingrids",
              "LeakageLibrary: bad pingrids line");
      for (std::size_t g = 0; g < grid_count; ++g) {
        table.pin_current_grid.push_back(readGrid(in, "pingrid"));
      }
      vectors.push_back(std::move(table));
    }
    library.insert(kind, std::move(vectors));
  }
  return library;
}

void LeakageLibrary::saveFile(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "LeakageLibrary::saveFile: cannot open '" + path + "'");
  serialize(out);
  require(out.good(), "LeakageLibrary::saveFile: write failed");
}

LeakageLibrary LeakageLibrary::loadFile(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "LeakageLibrary::loadFile: cannot open '" + path + "'");
  return deserialize(in);
}

}  // namespace nanoleak::core
