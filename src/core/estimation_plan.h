/// @file
/// Compile-once / execute-many split of the paper's Fig. 13 estimator.
///
/// EstimationPlan is the "compiled" form of (netlist, library, options):
/// gate input pins and net fanouts flattened into CSR arrays, the
/// VectorTable pointer for every (gate, input vector) resolved up front,
/// DFF load counts and the INV boundary tables baked in. A plan is
/// immutable after construction and safe to share across threads.
///
/// EstimationWorkspace holds the per-execution SoA buffers (net values,
/// vector indices, pin currents, net injections, IL/OL, per-gate results).
/// Reusing one workspace across calls makes steady-state estimation
/// allocation-free, and lets estimateDelta() re-estimate an input pattern
/// that differs in a few bits by recomputing only the dirty gates and their
/// net neighbourhoods. A workspace belongs to one thread at a time: share
/// the plan, give each thread its own workspace.
///
/// Both execution paths are bit-identical to the legacy per-call
/// LeakageEstimator::estimate - plan compilation only moves work, it never
/// reorders a floating-point operation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/leakage_table.h"
#include "device/leakage_breakdown.h"
#include "logic/logic_netlist.h"
#include "logic/logic_sim.h"

namespace nanoleak::core {

/// Estimator behaviour switches.
struct EstimatorOptions {
  /// false = traditional accumulation (tables at zero loading).
  bool with_loading = true;
  /// 1 = the paper's one-level propagation; k > 1 refines pin currents
  /// (k-level propagation); ignored when with_loading is false.
  int propagation_iterations = 1;
};

/// Per-gate estimate details.
struct GateEstimate {
  /// Loading-corrected leakage decomposition of the gate [A].
  device::LeakageBreakdown leakage;
  /// Input loading magnitude seen by the gate [A].
  double il = 0.0;
  /// Output loading magnitude seen by the gate [A].
  double ol = 0.0;
};

/// Whole-circuit estimate.
struct EstimateResult {
  /// Sum over all logic gates.
  device::LeakageBreakdown total;
  /// Per-gate details, indexed by GateId.
  std::vector<GateEstimate> per_gate;
};

class EstimationWorkspace;

/// Gate kinds a netlist's estimation library must cover, in enum order
/// (stable across runs, so characterization order - and the table cache's
/// key set - never varies): every kind instantiated in the netlist, plus
/// INV when the netlist has DFFs (the boundary model loads D-pin nets like
/// an INV input). The single source of truth for callers assembling
/// libraries ahead of plan compilation (the scenario runner, the thermal
/// sweep engine).
std::vector<gates::GateKind> estimationKinds(
    const logic::LogicNetlist& netlist);

/// Immutable compiled form of the Fig. 13 estimator for one
/// (netlist, library, options) triple. The netlist and library must
/// outlive the plan and stay unmodified (the plan holds pointers into the
/// library's tables).
class EstimationPlan {
 public:
  /// Compiles the plan. Requires the library to cover every gate kind in
  /// the netlist (INV additionally when the netlist has DFFs, for the
  /// boundary model) and propagation_iterations >= 1. Throws
  /// nanoleak::Error otherwise.
  EstimationPlan(const logic::LogicNetlist& netlist,
                 const LeakageLibrary& library,
                 EstimatorOptions options = {});

  /// The compiled netlist (held by reference).
  const logic::LogicNetlist& netlist() const { return netlist_; }
  /// The table library (held by reference).
  const LeakageLibrary& library() const { return library_; }
  /// The options the plan was compiled with.
  const EstimatorOptions& options() const { return options_; }
  /// Number of logic gates in the compiled netlist.
  std::size_t gateCount() const { return gate_count_; }
  /// Number of nets in the compiled netlist.
  std::size_t netCount() const { return net_count_; }
  /// Number of source values estimate()/estimateDelta() expect.
  std::size_t sourceCount() const { return simulator_.sourceCount(); }

  /// Full evaluation of one input pattern (see LogicNetlist::sourceNets()
  /// for the value ordering) into a reusable result. Allocation-free once
  /// `out` and `ws` have warmed up.
  void estimate(const std::vector<bool>& source_values,
                EstimationWorkspace& ws, EstimateResult& out) const;
  /// Convenience overload returning a fresh result.
  EstimateResult estimate(const std::vector<bool>& source_values,
                          EstimationWorkspace& ws) const;

  /// Incremental evaluation: reuses the state `ws` holds from its previous
  /// estimate()/estimateDelta() on this plan, re-simulating only the
  /// fanout cone of the flipped source bits and re-estimating only dirty
  /// gates and their net neighbourhoods. Falls back to full evaluation on
  /// a cold workspace, when propagation_iterations > 1, or when the dirty
  /// region is a large fraction of the circuit. Results are bit-identical
  /// to estimate() in every case.
  void estimateDelta(const std::vector<bool>& source_values,
                     EstimationWorkspace& ws, EstimateResult& out) const;
  /// Convenience overload returning a fresh result.
  EstimateResult estimateDelta(const std::vector<bool>& source_values,
                               EstimationWorkspace& ws) const;

 private:
  friend class EstimationWorkspace;

  void checkWorkspace(const EstimationWorkspace& ws) const;
  void checkSourceCount(std::size_t got) const;
  /// Vector index + resolved table of one gate from current net values.
  void refreshGateVector(EstimationWorkspace& ws, logic::GateId g) const;
  /// IL/OL of one gate from current injections and pin currents (the
  /// paper's IL-IN rule; single definition shared by the full and delta
  /// paths so they cannot drift).
  void refreshGateLoading(EstimationWorkspace& ws, logic::GateId g) const;
  /// refreshGateLoading + table lookup into the per-gate result.
  void refreshGateEstimate(EstimationWorkspace& ws, logic::GateId g) const;
  /// Net injection from current pin currents and values.
  double netInjection(const EstimationWorkspace& ws, logic::NetId net) const;
  /// Everything after logic simulation, for all gates.
  void computeAllFromValues(EstimationWorkspace& ws) const;
  /// Re-sums the whole-circuit total from per-gate leakages (gate order).
  void resumTotal(EstimationWorkspace& ws) const;
  void finishResult(const EstimationWorkspace& ws, EstimateResult& out) const;

  const logic::LogicNetlist& netlist_;
  const LeakageLibrary& library_;
  EstimatorOptions options_;
  std::size_t gate_count_ = 0;
  std::size_t net_count_ = 0;
  logic::LogicSimulator simulator_;

  static constexpr logic::GateId kNoDriver =
      static_cast<logic::GateId>(-1);

  // CSR gate inputs: pin slot s of gate g spans
  // [pin_offset_[g], pin_offset_[g + 1]); pin_net_[s] is the net the pin
  // reads, pin_loadable_[s] whether loading on that net can shift the pin
  // voltage (false for ideally driven primary-input nets).
  std::vector<std::size_t> pin_offset_;
  std::vector<logic::NetId> pin_net_;
  std::vector<char> pin_loadable_;
  std::vector<logic::NetId> gate_output_;

  // CSR net fanout: entry k in [fanout_offset_[net], fanout_offset_[net+1])
  // is the flat pin slot fanout_slot_[k] of gate fanout_gate_[k].
  std::vector<std::size_t> fanout_offset_;
  std::vector<std::size_t> fanout_slot_;
  std::vector<logic::GateId> fanout_gate_;
  std::vector<logic::GateId> net_driver_gate_;

  // DFF boundary model: D pins load their nets like an INV input at the
  // net's logic level.
  bool has_dffs_ = false;
  std::vector<int> dff_load_count_;
  const VectorTable* dff_inv_table_[2] = {nullptr, nullptr};

  // Per-(gate, input vector) tables: gate g's tables span
  // [table_offset_[g], table_offset_[g + 1]) - one per input vector,
  // indexed by vectorIndex().
  std::vector<std::size_t> table_offset_;
  std::vector<const VectorTable*> table_;
};

/// Reusable per-thread execution buffers for one EstimationPlan.
class EstimationWorkspace {
 public:
  /// Sizes every buffer for `plan` (which must outlive the workspace).
  explicit EstimationWorkspace(const EstimationPlan& plan);

  /// The plan this workspace was sized for.
  const EstimationPlan& plan() const { return *plan_; }
  /// True when the workspace holds the state of a previous estimate on its
  /// plan (what estimateDelta() resumes from).
  bool warm() const { return warm_; }
  /// Forgets the previous-estimate state; the next estimateDelta() runs a
  /// full evaluation.
  void invalidate() { warm_ = false; }

 private:
  friend class EstimationPlan;

  const EstimationPlan* plan_;
  bool warm_ = false;

  // SoA execution state (persisted between calls for the delta path).
  std::vector<bool> values_;
  std::vector<const VectorTable*> table_;
  std::vector<double> pin_current_;
  std::vector<double> net_injection_;
  std::vector<double> il_;
  std::vector<double> ol_;
  std::vector<GateEstimate> per_gate_;
  device::LeakageBreakdown total_;

  // Delta-path scratch.
  logic::DeltaSimScratch sim_scratch_;
  std::vector<logic::GateId> dirty_gates_;
  std::vector<logic::NetId> changed_nets_;
  std::vector<logic::NetId> dirty_nets_;
  std::vector<char> net_mark_;
  std::vector<logic::GateId> touched_gates_;
  std::vector<char> gate_mark_;
};

}  // namespace nanoleak::core
