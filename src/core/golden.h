/// @file
/// Golden (full-solve) circuit leakage: the reference every approximation
/// is judged against, standing in for the paper's HSPICE runs.
#pragma once

#include <optional>
#include <vector>

#include "circuit/solver_kernel.h"
#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "gates/gate_builder.h"
#include "logic/expander.h"
#include "logic/logic_netlist.h"
#include "logic/logic_sim.h"

namespace nanoleak::core {

/// Result of a golden full-circuit solve.
struct GoldenResult {
  /// Leakage summed over the circuit's logic gates (DFF boundary models
  /// excluded, matching the estimator's accounting).
  device::LeakageBreakdown total;
  /// Per-gate decomposition (indexed by GateId).
  std::vector<device::LeakageBreakdown> per_gate;
  /// Solver sweeps the solve took (work diagnostic).
  std::size_t sweeps = 0;
  /// Nodes in the expanded transistor netlist.
  std::size_t node_count = 0;
  /// Scalar node solves performed (work diagnostic).
  std::size_t node_solves = 0;
};

/// Compile-once golden solver for repeated vectors on one circuit.
///
/// The first solve() expands the netlist to transistors and compiles a
/// SolverKernel (bit-identical to the historical expand-and-DcSolver path);
/// subsequent solves re-bind only the pattern-dependent fixed voltages
/// (primary inputs, DFF pseudo-inputs) and warm-start from the previous
/// operating point with flipped nets snapped to their new logic level -
/// the expensive netlist expansion and device-coefficient compilation are
/// never repeated.
///
/// `netlist` is captured by reference and must outlive the solver.
class GoldenSolver {
 public:
  /// Binds the solver to a circuit + technology (+ optional per-device
  /// variations); expansion and compilation happen on the first solve().
  GoldenSolver(const logic::LogicNetlist& netlist,
               const device::Technology& technology,
               const gates::VariationProvider& variation = {});

  /// Solves for one input pattern. Throws ConvergenceError if the DC
  /// solve fails.
  GoldenResult solve(const std::vector<bool>& source_values);

  /// Drops the previous operating point: the next solve() re-binds the
  /// pattern but seeds cold (logic levels), as if freshly compiled.
  void resetWarmStart();

 private:
  const logic::LogicNetlist& netlist_;
  device::Technology technology_;
  gates::VariationProvider variation_;
  logic::LogicSimulator sim_;
  std::optional<logic::ExpandedCircuit> expanded_;
  std::optional<circuit::SolverKernel> kernel_;
  /// Previous solution (empty until the first successful solve).
  std::vector<double> warm_;
  /// Net values of the previously solved pattern.
  std::vector<bool> prev_values_;

  /// Rebuilds the cold expansion seed for `values` (what a fresh
  /// expandToTransistors of that pattern would have produced).
  std::vector<double> coldSeed(const std::vector<bool>& values) const;
  GoldenResult extract(const circuit::Solution& solution) const;
};

/// Expands the netlist to transistors and solves the full coupled KCL
/// system. Throws ConvergenceError if the DC solve fails.
GoldenResult goldenLeakage(const logic::LogicNetlist& netlist,
                           const device::Technology& technology,
                           const std::vector<bool>& source_values,
                           const gates::VariationProvider& variation = {});

/// Traditional no-loading accumulation: each gate solved in isolation with
/// ideal rails at its simulated input vector, results summed. Memoizes per
/// (kind, vector), so large circuits cost only a handful of solves.
device::LeakageBreakdown isolatedSumLeakage(
    const logic::LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values);

}  // namespace nanoleak::core
