// Golden (full-solve) circuit leakage: the reference every approximation
// is judged against, standing in for the paper's HSPICE runs.
#pragma once

#include <vector>

#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "gates/gate_builder.h"
#include "logic/logic_netlist.h"

namespace nanoleak::core {

/// Result of a golden full-circuit solve.
struct GoldenResult {
  /// Leakage summed over the circuit's logic gates (DFF boundary models
  /// excluded, matching the estimator's accounting).
  device::LeakageBreakdown total;
  /// Per-gate decomposition (indexed by GateId).
  std::vector<device::LeakageBreakdown> per_gate;
  /// Solver diagnostics.
  std::size_t sweeps = 0;
  std::size_t node_count = 0;
  std::size_t node_solves = 0;
};

/// Expands the netlist to transistors and solves the full coupled KCL
/// system. Throws ConvergenceError if the DC solve fails.
GoldenResult goldenLeakage(const logic::LogicNetlist& netlist,
                           const device::Technology& technology,
                           const std::vector<bool>& source_values,
                           const gates::VariationProvider& variation = {});

/// Traditional no-loading accumulation: each gate solved in isolation with
/// ideal rails at its simulated input vector, results summed. Memoizes per
/// (kind, vector), so large circuits cost only a handful of solves.
device::LeakageBreakdown isolatedSumLeakage(
    const logic::LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values);

}  // namespace nanoleak::core
