/// @file
/// Characterization fixture: one gate under test, reference drivers at its
/// input pins, and ideal current sources injecting the paper's IL-IN /
/// IL-OUT loading currents.
///
/// This is the paper's Fig. 1 reduced to its essentials: the loading of a
/// net by other gates' tunneling currents is represented by a current
/// source of the same magnitude and sign, while the net keeps the finite
/// driver resistance that turns that current into the voltage shift which
/// perturbs the gate's leakage.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/batch_solver_kernel.h"
#include "circuit/dc_solver.h"
#include "circuit/netlist.h"
#include "circuit/solver_kernel.h"
#include "device/leakage_breakdown.h"
#include "gates/gate_builder.h"
#include "gates/gate_library.h"

namespace nanoleak::core {

/// Owner tag of the gate under test inside a fixture.
inline constexpr int kGateUnderTest = 0;
/// Owner tag base of the per-pin reference drivers (driver i owns
/// kDriverOwnerBase + i).
inline constexpr int kDriverOwnerBase = 1000;

/// A solved fixture evaluation.
struct FixtureResult {
  /// Leakage of the gate under test only (drivers excluded).
  device::LeakageBreakdown leakage;
  /// Voltage at each input pin net.
  std::vector<double> pin_voltages;
  /// Voltage at the output net.
  double output_voltage = 0.0;
  /// Gate-tunneling current each input pin injects INTO its net
  /// (positive raises the net; pins at '1' draw, i.e. negative).
  std::vector<double> pin_currents_into_net;
  /// Total solver sweeps (work metric).
  std::size_t sweeps = 0;
  /// Full solved node voltages - feed back into solveCompiled() as the
  /// warm seed of the neighbouring grid point (continuation).
  std::vector<double> voltages;
};

/// One lane of a batched fixture solve: an independent operating point
/// (loading currents, optional warm seed, optional temperature override)
/// evaluated in lockstep with up to kLaneWidth-1 siblings by
/// LoadingFixture::solveBatched().
struct FixtureBatchPoint {
  /// Loading current [A] injected into each input pin net (one entry per
  /// pin, same order as the gate's pins).
  std::vector<double> pin_loading;
  /// Loading current [A] injected into the output net.
  double output_loading = 0.0;
  /// Continuation seed (full node-voltage vector) or nullptr for a cold
  /// start. Same semantics as solveCompiled()'s warm_seed.
  const std::vector<double>* warm_seed = nullptr;
  /// Operating temperature [K] for this lane; <= 0 means the fixture's
  /// current temperature. Lanes may differ (thermal batching).
  double temperature_k = 0.0;
  /// Human-readable scenario identity ("trial 17", "grid point (2,3)",
  /// "T=338K ...") included in the ConvergenceError if this lane fails.
  std::string label;
};

/// Reusable fixture: build once per (kind, vector), then sweep loading
/// currents cheaply via setInputLoading()/setOutputLoading().
class LoadingFixture {
 public:
  /// Builds the fixture for `kind` with the given input vector.
  /// Each input pin gets its own reference-inverter driver producing the
  /// pin's logic level, plus a loading current source. The output net gets
  /// a loading current source.
  LoadingFixture(gates::GateKind kind, std::vector<bool> input_vector,
                 const device::Technology& technology);

  /// Sets the total input loading current [A], split equally across input
  /// pins (the paper's estimator aggregates loading the same way).
  void setInputLoading(double amps);

  /// Sets the loading current [A] on one specific input pin.
  void setPinLoading(int pin, double amps);

  /// Sets the output loading current [A].
  void setOutputLoading(double amps);

  /// Solves the fixture. Throws ConvergenceError if the DC solve fails.
  FixtureResult solve() const;

  /// Solves on a SolverKernel compiled once per fixture (lazily, on first
  /// call) and re-bound with the current loading currents. With a null
  /// `warm_seed` this is bit-identical to solve(); with the voltages of a
  /// neighbouring loading point it continuation-solves in fewer sweeps.
  /// Throws ConvergenceError if the DC solve fails.
  FixtureResult solveCompiled(const std::vector<double>* warm_seed = nullptr);

  /// Maximum number of points one solveBatched() call accepts (the SIMD
  /// lane width of the build).
  static constexpr std::size_t kBatchLanes =
      circuit::BatchSolverKernel::kLaneWidth;

  /// Solves up to kBatchLanes independent operating points in SIMD
  /// lockstep on a BatchSolverKernel compiled once per fixture (lazily).
  /// Each point carries its own loading currents, warm seed and optional
  /// temperature; results are returned in point order. A lane whose solve
  /// fails raises ConvergenceError naming that point's label. With the
  /// scalar backend (kBatchLanes == 1) this is bit-identical to
  /// solveCompiled(); with wider backends results agree to <= 1e-6.
  std::vector<FixtureResult> solveBatched(
      std::span<const FixtureBatchPoint> points);

  /// Re-binds the fixture's operating temperature without rebuilding the
  /// netlist or the compiled kernel: device coefficients are recompiled at
  /// the new temperature (SolverKernel::setOptions), topology and seeds
  /// are untouched. A cold solveCompiled() after this call is
  /// bit-identical to a fixture freshly constructed at `temperature_k` -
  /// the property the thermal sweep engine's per-temperature reuse rests
  /// on (pinned by tests/thermal/thermal_characterizer_test.cpp).
  void rebindTemperature(double temperature_k);

  /// The gate kind under test.
  gates::GateKind kind() const { return kind_; }
  /// The input vector the fixture was built for.
  const std::vector<bool>& inputVector() const { return input_vector_; }
  /// The technology (reflects rebindTemperature).
  const device::Technology& technology() const { return technology_; }
  /// Number of input pins of the gate under test.
  int pinCount() const { return static_cast<int>(input_vector_.size()); }

 private:
  gates::GateKind kind_;
  std::vector<bool> input_vector_;
  device::Technology technology_;
  circuit::Netlist netlist_;
  circuit::NodeId vdd_ = 0;
  circuit::NodeId gnd_ = 0;
  std::vector<circuit::NodeId> pin_nodes_;
  circuit::NodeId output_node_ = 0;
  std::vector<circuit::SourceId> pin_sources_;
  circuit::SourceId output_source_ = 0;
  std::vector<double> seed_;
  circuit::SolverOptions solver_options_;
  /// Compiled form, created on first solveCompiled().
  std::optional<circuit::SolverKernel> kernel_;
  /// Lane-parallel compiled form, created on first solveBatched().
  std::optional<circuit::BatchSolverKernel> batch_kernel_;

  FixtureResult extractResult(circuit::Solution&& solution,
                              double temperature_k) const;
  [[noreturn]] void throwNonConvergence(const circuit::Solution& solution,
                                        const std::string& label = {}) const;
};

}  // namespace nanoleak::core
