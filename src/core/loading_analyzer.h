/// @file
/// Loading-effect metrics: the paper's Eqs. (3)-(5).
///
///   LDIN(IL)      = (L_G(IL) - L_NOM) / L_NOM
///   LDOUT(OL)     = (L_G(OL) - L_NOM) / L_NOM
///   LDALL(IL, OL) = (L_G(IL, OL) - L_NOM) / L_NOM
///
/// where L_NOM is the gate's leakage in the fixture with zero loading
/// currents. Values are reported per component and for the total, as
/// percentages (matching Figs. 5-9).
#pragma once

#include <vector>

#include "core/loading_fixture.h"

namespace nanoleak::core {

/// Loading effect on each component and the total, in percent.
struct LoadingEffect {
  /// Subthreshold-component shift [%].
  double subthreshold_pct = 0.0;
  /// Gate-tunneling-component shift [%].
  double gate_pct = 0.0;
  /// BTBT-component shift [%].
  double btbt_pct = 0.0;
  /// Total-leakage shift [%].
  double total_pct = 0.0;
};

/// Computes LDIN / LDOUT / LDALL curves for one gate + input vector.
class LoadingAnalyzer {
 public:
  /// Builds (and nominal-solves) the fixture for one gate + vector.
  LoadingAnalyzer(gates::GateKind kind, std::vector<bool> input_vector,
                  const device::Technology& technology);

  /// Nominal (zero-loading) leakage of the gate in the fixture.
  const device::LeakageBreakdown& nominal() const { return nominal_; }

  /// Signed loading current the paper's x-axes sweep: the magnitude is
  /// `amps`; the sign is chosen so the current pushes the pin/output node
  /// away from its rail (into the node at level '0', out of it at '1'),
  /// which is the direction gate tunneling of attached loads acts.
  double signedInputLoading(double amps) const;
  /// Output-side counterpart of signedInputLoading.
  double signedOutputLoading(double amps) const;

  /// LDIN at total input loading magnitude `amps` (Eq. 3).
  LoadingEffect inputLoadingEffect(double amps);
  /// LDIN applied to a single pin (Eq. 5).
  LoadingEffect pinLoadingEffect(int pin, double amps);
  /// LDOUT at output loading magnitude `amps` (Eq. 3).
  LoadingEffect outputLoadingEffect(double amps);
  /// LDALL at combined loading (Eq. 4).
  LoadingEffect combinedLoadingEffect(double input_amps, double output_amps);

  /// LDALL with each component normalized by the nominal TOTAL leakage
  /// (contribution form): the paper's Fig. 9 plots the components this
  /// way, which is why its subthreshold curve rises so steeply with
  /// temperature (the subthreshold share of the total explodes when hot).
  LoadingEffect combinedLoadingContribution(double input_amps,
                                            double output_amps);

  /// Raw leakage at arbitrary signed loading currents.
  device::LeakageBreakdown leakageAt(double input_amps_signed,
                                     double output_amps_signed);

 private:
  LoadingEffect effectOf(const device::LeakageBreakdown& loaded) const;

  LoadingFixture fixture_;
  device::LeakageBreakdown nominal_;
  bool output_level_;
};

}  // namespace nanoleak::core
