/// @file
/// Pre-characterized leakage tables: the "leakage components of different
/// gate type, size, loading" input of the paper's Fig. 13 algorithm.
///
/// For every (gate kind, input vector) the library stores the nominal
/// leakage decomposition, the signed gate-tunneling current each input pin
/// injects into its net, and per-component leakage surfaces over an
/// (input-loading, output-loading) magnitude grid, bilinearly interpolated
/// at estimation time.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "device/leakage_breakdown.h"
#include "gates/gate_library.h"

namespace nanoleak::core {

/// Sorted interpolation axis with clamped lookup.
class Axis {
 public:
  /// Requires at least one strictly increasing point.
  explicit Axis(std::vector<double> points);

  /// Number of axis points.
  std::size_t size() const { return points_.size(); }
  /// Point `i` (unchecked).
  double operator[](std::size_t i) const { return points_[i]; }
  /// All axis points, ascending.
  const std::vector<double>& points() const { return points_; }

  /// Segment index + fraction for x, clamped to the axis range.
  struct Location {
    /// Index of the segment's lower point.
    std::size_t index;
    /// Position within the segment, in [0, 1].
    double fraction;
  };
  /// Locates x on the axis (clamped to the range).
  Location locate(double x) const;

 private:
  std::vector<double> points_;
};

/// Row-major 2-D value grid with bilinear interpolation.
class Grid2D {
 public:
  /// An empty 0 x 0 grid.
  Grid2D() = default;
  /// A zero-filled rows x cols grid.
  Grid2D(std::size_t rows, std::size_t cols);

  /// Number of rows.
  std::size_t rows() const { return rows_; }
  /// Number of columns.
  std::size_t cols() const { return cols_; }
  /// Mutable cell access (unchecked).
  double& at(std::size_t row, std::size_t col);
  /// Cell access (unchecked).
  double at(std::size_t row, std::size_t col) const;
  /// Bilinear interpolation at two located axis positions.
  double interpolate(const Axis::Location& row,
                     const Axis::Location& col) const;
  /// The raw row-major cell values.
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// Characterized data for one (gate kind, input vector).
struct VectorTable {
  /// Nominal decomposition in the characterization fixture at zero loading
  /// currents [A] (the paper's L_NOM: real drivers attached, no external
  /// loading).
  device::LeakageBreakdown nominal;
  /// Decomposition of the gate in isolation with ideal rail voltages at
  /// its pins [A]. This is the "traditional" per-gate value the paper's
  /// no-loading accumulation uses, and the baseline of its Fig. 12b/c
  /// loading-variation percentages.
  device::LeakageBreakdown isolated_nominal;
  /// Signed tunneling current each input pin injects into its net at the
  /// nominal point [A] (positive raises the net).
  std::vector<double> pin_current;
  /// Input-loading magnitude axis [A] (>= 0; must include 0).
  Axis il_axis{std::vector<double>{0.0}};
  /// Output-loading magnitude axis [A] (>= 0; must include 0).
  Axis ol_axis{std::vector<double>{0.0}};
  /// Subthreshold leakage surface [A], indexed (il, ol).
  Grid2D subthreshold;
  /// Gate-tunneling leakage surface [A], indexed (il, ol).
  Grid2D gate;
  /// Junction-BTBT leakage surface [A], indexed (il, ol).
  Grid2D btbt;
  /// Pin-current surfaces [A] for iterative propagation (optional; empty
  /// when the library was built without them).
  std::vector<Grid2D> pin_current_grid;

  /// Interpolated decomposition at input/output loading magnitudes [A].
  device::LeakageBreakdown lookup(double il, double ol) const;
  /// Interpolated pin current; falls back to the nominal value when the
  /// grids were not stored.
  double pinCurrentAt(int pin, double il, double ol) const;
};

/// Index of an input vector: bit k holds pin k's logic value.
std::size_t vectorIndex(const std::vector<bool>& input_values);

/// The characterized library for one technology.
class LeakageLibrary {
 public:
  /// Technology fingerprint (for sanity checks when loading from disk).
  struct Meta {
    /// Display name of the characterized device pair.
    std::string technology_name = "default";
    /// Supply voltage [V] the tables were characterized at.
    double vdd = 1.0;
    /// Temperature [K] the tables were characterized at.
    double temperature_k = 300.0;
  };

  /// An empty library with default meta.
  LeakageLibrary() = default;
  /// An empty library carrying a technology fingerprint.
  explicit LeakageLibrary(Meta meta) : meta_(std::move(meta)) {}

  /// The technology fingerprint.
  const Meta& meta() const { return meta_; }

  /// True when `kind` has tables in this library.
  bool has(gates::GateKind kind) const;
  /// All vectors of a kind, indexed by vectorIndex().
  const std::vector<VectorTable>& tables(gates::GateKind kind) const;
  /// One (kind, input vector) table.
  const VectorTable& table(gates::GateKind kind,
                           std::size_t vector_index) const;
  /// Adds (or replaces) a kind's tables.
  void insert(gates::GateKind kind, std::vector<VectorTable> tables);

  /// Number of gate kinds present.
  std::size_t kindCount() const { return tables_.size(); }

  // --- Serialization (.nlib text format) ----------------------------------

  /// Writes the .nlib text form.
  void serialize(std::ostream& out) const;
  /// Parses serialize() output. Throws nanoleak::Error on malformed input.
  static LeakageLibrary deserialize(std::istream& in);
  /// serialize() to a file. Throws nanoleak::Error on I/O failure.
  void saveFile(const std::string& path) const;
  /// deserialize() from a file. Throws nanoleak::Error on I/O failure.
  static LeakageLibrary loadFile(const std::string& path);

 private:
  Meta meta_;
  std::map<gates::GateKind, std::vector<VectorTable>> tables_;
};

}  // namespace nanoleak::core
