// Pre-characterized leakage tables: the "leakage components of different
// gate type, size, loading" input of the paper's Fig. 13 algorithm.
//
// For every (gate kind, input vector) the library stores the nominal
// leakage decomposition, the signed gate-tunneling current each input pin
// injects into its net, and per-component leakage surfaces over an
// (input-loading, output-loading) magnitude grid, bilinearly interpolated
// at estimation time.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "device/leakage_breakdown.h"
#include "gates/gate_library.h"

namespace nanoleak::core {

/// Sorted interpolation axis with clamped lookup.
class Axis {
 public:
  /// Requires at least one strictly increasing point.
  explicit Axis(std::vector<double> points);

  std::size_t size() const { return points_.size(); }
  double operator[](std::size_t i) const { return points_[i]; }
  const std::vector<double>& points() const { return points_; }

  /// Segment index + fraction for x, clamped to the axis range.
  struct Location {
    std::size_t index;
    double fraction;
  };
  Location locate(double x) const;

 private:
  std::vector<double> points_;
};

/// Row-major 2-D value grid with bilinear interpolation.
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t row, std::size_t col);
  double at(std::size_t row, std::size_t col) const;
  double interpolate(const Axis::Location& row,
                     const Axis::Location& col) const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// Characterized data for one (gate kind, input vector).
struct VectorTable {
  /// Nominal decomposition in the characterization fixture at zero loading
  /// currents [A] (the paper's L_NOM: real drivers attached, no external
  /// loading).
  device::LeakageBreakdown nominal;
  /// Decomposition of the gate in isolation with ideal rail voltages at
  /// its pins [A]. This is the "traditional" per-gate value the paper's
  /// no-loading accumulation uses, and the baseline of its Fig. 12b/c
  /// loading-variation percentages.
  device::LeakageBreakdown isolated_nominal;
  /// Signed tunneling current each input pin injects into its net at the
  /// nominal point [A] (positive raises the net).
  std::vector<double> pin_current;
  /// Loading magnitude axes [A] (>= 0; must include 0).
  Axis il_axis{std::vector<double>{0.0}};
  Axis ol_axis{std::vector<double>{0.0}};
  /// Leakage surfaces [A], indexed (il, ol).
  Grid2D subthreshold;
  Grid2D gate;
  Grid2D btbt;
  /// Pin-current surfaces [A] for iterative propagation (optional; empty
  /// when the library was built without them).
  std::vector<Grid2D> pin_current_grid;

  /// Interpolated decomposition at input/output loading magnitudes [A].
  device::LeakageBreakdown lookup(double il, double ol) const;
  /// Interpolated pin current; falls back to the nominal value when the
  /// grids were not stored.
  double pinCurrentAt(int pin, double il, double ol) const;
};

/// Index of an input vector: bit k holds pin k's logic value.
std::size_t vectorIndex(const std::vector<bool>& input_values);

/// The characterized library for one technology.
class LeakageLibrary {
 public:
  /// Technology fingerprint (for sanity checks when loading from disk).
  struct Meta {
    std::string technology_name = "default";
    double vdd = 1.0;
    double temperature_k = 300.0;
  };

  LeakageLibrary() = default;
  explicit LeakageLibrary(Meta meta) : meta_(std::move(meta)) {}

  const Meta& meta() const { return meta_; }

  bool has(gates::GateKind kind) const;
  /// All vectors of a kind, indexed by vectorIndex().
  const std::vector<VectorTable>& tables(gates::GateKind kind) const;
  const VectorTable& table(gates::GateKind kind,
                           std::size_t vector_index) const;
  void insert(gates::GateKind kind, std::vector<VectorTable> tables);

  std::size_t kindCount() const { return tables_.size(); }

  // --- Serialization (.nlib text format) ----------------------------------
  void serialize(std::ostream& out) const;
  static LeakageLibrary deserialize(std::istream& in);
  void saveFile(const std::string& path) const;
  static LeakageLibrary loadFile(const std::string& path);

 private:
  Meta meta_;
  std::map<gates::GateKind, std::vector<VectorTable>> tables_;
};

}  // namespace nanoleak::core
