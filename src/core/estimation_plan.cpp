#include "core/estimation_plan.h"

#include <cmath>
#include <set>
#include <string>

#include "obs/metrics.h"
#include "util/error.h"

namespace nanoleak::core {

using logic::DriverKind;
using logic::GateId;
using logic::NetId;

namespace {

/// Full evaluation is cheaper than the incremental bookkeeping once this
/// fraction of the gates is dirty.
constexpr std::size_t kDeltaFallbackNum = 1;
constexpr std::size_t kDeltaFallbackDen = 4;

/// Warm-start quality counters for estimateDelta: which path each call
/// took. estimate.cold also counts direct estimate() calls.
struct EstimateMetrics {
  obs::Counter cold = obs::counter("estimate.cold");
  obs::Counter unchanged = obs::counter("estimate.unchanged");
  obs::Counter fallback_full = obs::counter("estimate.fallback_full");
  obs::Counter incremental = obs::counter("estimate.incremental");
};

const EstimateMetrics& estimateMetrics() {
  static const EstimateMetrics m;
  return m;
}

}  // namespace

std::vector<gates::GateKind> estimationKinds(
    const logic::LogicNetlist& netlist) {
  // std::set iterates in enum order, making the result order stable.
  std::set<gates::GateKind> kinds;
  for (const logic::Gate& gate : netlist.gates()) {
    kinds.insert(gate.kind);
  }
  if (!netlist.dffs().empty()) {
    kinds.insert(gates::GateKind::kInv);
  }
  return {kinds.begin(), kinds.end()};
}

EstimationPlan::EstimationPlan(const logic::LogicNetlist& netlist,
                               const LeakageLibrary& library,
                               EstimatorOptions options)
    : netlist_(netlist),
      library_(library),
      options_(options),
      gate_count_(netlist.gateCount()),
      net_count_(netlist.netCount()),
      simulator_(netlist) {
  require(options_.propagation_iterations >= 1,
          "EstimationPlan: propagation_iterations must be >= 1");
  for (const logic::Gate& gate : netlist_.gates()) {
    require(library_.has(gate.kind),
            std::string("EstimationPlan: library missing tables for ") +
                gates::toString(gate.kind));
  }
  has_dffs_ = !netlist_.dffs().empty();
  if (has_dffs_) {
    require(library_.has(gates::GateKind::kInv),
            "EstimationPlan: INV tables required for DFF boundary model");
    dff_inv_table_[0] = &library_.table(gates::GateKind::kInv, 0);
    dff_inv_table_[1] = &library_.table(gates::GateKind::kInv, 1);
    dff_load_count_.resize(net_count_);
    for (NetId net = 0; net < net_count_; ++net) {
      dff_load_count_[net] = netlist_.dffLoadCount(net);
    }
  }

  // CSR gate inputs + per-(gate, vector) table pointers.
  pin_offset_.assign(gate_count_ + 1, 0);
  table_offset_.assign(gate_count_ + 1, 0);
  gate_output_.resize(gate_count_);
  for (GateId g = 0; g < gate_count_; ++g) {
    const logic::Gate& gate = netlist_.gate(g);
    pin_offset_[g + 1] = pin_offset_[g] + gate.inputs.size();
    table_offset_[g + 1] =
        table_offset_[g] + (std::size_t{1} << gate.inputs.size());
    gate_output_[g] = gate.output;
  }
  pin_net_.resize(pin_offset_[gate_count_]);
  pin_loadable_.resize(pin_offset_[gate_count_]);
  table_.resize(table_offset_[gate_count_]);
  for (GateId g = 0; g < gate_count_; ++g) {
    const logic::Gate& gate = netlist_.gate(g);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const NetId net = gate.inputs[pin];
      pin_net_[pin_offset_[g] + pin] = net;
      // Primary-input nets are ideally driven: loading on them cannot
      // shift the pin voltage (matches the golden model, which binds PI
      // nets to rails).
      pin_loadable_[pin_offset_[g] + pin] =
          netlist_.driverKind(net) != DriverKind::kPrimaryInput;
    }
    const std::vector<VectorTable>& tables = library_.tables(gate.kind);
    require(tables.size() == (std::size_t{1} << gate.inputs.size()),
            std::string("EstimationPlan: table count mismatch for ") +
                gates::toString(gate.kind));
    for (std::size_t vec = 0; vec < tables.size(); ++vec) {
      table_[table_offset_[g] + vec] = &tables[vec];
    }
  }

  // CSR net fanout + driver map.
  fanout_offset_.assign(net_count_ + 1, 0);
  net_driver_gate_.assign(net_count_, kNoDriver);
  for (NetId net = 0; net < net_count_; ++net) {
    fanout_offset_[net + 1] =
        fanout_offset_[net] + netlist_.fanout(net).size();
    if (netlist_.driverKind(net) == DriverKind::kGate) {
      net_driver_gate_[net] = netlist_.driverGate(net);
    }
  }
  fanout_slot_.resize(fanout_offset_[net_count_]);
  fanout_gate_.resize(fanout_offset_[net_count_]);
  for (NetId net = 0; net < net_count_; ++net) {
    std::size_t k = fanout_offset_[net];
    for (const logic::PinRef& pin : netlist_.fanout(net)) {
      fanout_slot_[k] = pin_offset_[pin.gate] + static_cast<std::size_t>(pin.pin);
      fanout_gate_[k] = pin.gate;
      ++k;
    }
  }
}

void EstimationPlan::checkWorkspace(const EstimationWorkspace& ws) const {
  require(ws.plan_ == this,
          "EstimationPlan: workspace belongs to a different plan");
}

void EstimationPlan::checkSourceCount(std::size_t got) const {
  require(got == sourceCount(),
          "EstimationPlan: expected " + std::to_string(sourceCount()) +
              " source values, got " + std::to_string(got));
}

void EstimationPlan::refreshGateVector(EstimationWorkspace& ws,
                                       GateId g) const {
  std::size_t index = 0;
  for (std::size_t pin = 0; pin < pin_offset_[g + 1] - pin_offset_[g];
       ++pin) {
    if (ws.values_[pin_net_[pin_offset_[g] + pin]]) {
      index |= std::size_t{1} << pin;
    }
  }
  ws.table_[g] = table_[table_offset_[g] + index];
}

double EstimationPlan::netInjection(const EstimationWorkspace& ws,
                                    NetId net) const {
  double sum = 0.0;
  for (std::size_t k = fanout_offset_[net]; k < fanout_offset_[net + 1];
       ++k) {
    sum += ws.pin_current_[fanout_slot_[k]];
  }
  if (has_dffs_) {
    // DFF D pins load their nets like an inverter input at the net's level.
    sum += static_cast<double>(dff_load_count_[net]) *
           dff_inv_table_[ws.values_[net] ? 1 : 0]->pin_current[0];
  }
  return sum;
}

void EstimationPlan::refreshGateLoading(EstimationWorkspace& ws,
                                        GateId g) const {
  double il_total = 0.0;
  for (std::size_t slot = pin_offset_[g]; slot < pin_offset_[g + 1];
       ++slot) {
    if (!pin_loadable_[slot]) {
      continue;
    }
    // Loading from the *other* gates on the net (the paper's IL-IN):
    // subtract this pin's own contribution from the net total.
    const double others =
        ws.net_injection_[pin_net_[slot]] - ws.pin_current_[slot];
    il_total += std::abs(others);
  }
  ws.il_[g] = il_total;
  ws.ol_[g] = std::abs(ws.net_injection_[gate_output_[g]]);
}

void EstimationPlan::refreshGateEstimate(EstimationWorkspace& ws,
                                         GateId g) const {
  refreshGateLoading(ws, g);
  GateEstimate& estimate = ws.per_gate_[g];
  estimate.il = ws.il_[g];
  estimate.ol = ws.ol_[g];
  estimate.leakage = ws.table_[g]->lookup(ws.il_[g], ws.ol_[g]);
}

void EstimationPlan::computeAllFromValues(EstimationWorkspace& ws) const {
  for (GateId g = 0; g < gate_count_; ++g) {
    refreshGateVector(ws, g);
  }

  if (!options_.with_loading) {
    // Traditional accumulation: isolated per-gate values at ideal rails
    // (the paper's no-loading baseline).
    for (GateId g = 0; g < gate_count_; ++g) {
      ws.per_gate_[g] = GateEstimate{ws.table_[g]->isolated_nominal, 0.0, 0.0};
    }
    resumTotal(ws);
    return;
  }

  // Iteration 0 uses the nominal characterization; further iterations
  // re-derive pin currents at each gate's current (IL, OL) estimate.
  for (GateId g = 0; g < gate_count_; ++g) {
    const std::vector<double>& nominal = ws.table_[g]->pin_current;
    for (std::size_t pin = 0; pin < nominal.size(); ++pin) {
      ws.pin_current_[pin_offset_[g] + pin] = nominal[pin];
    }
  }

  for (int iter = 0; iter < options_.propagation_iterations; ++iter) {
    // Net totals of signed pin-injection currents.
    for (NetId net = 0; net < net_count_; ++net) {
      ws.net_injection_[net] = netInjection(ws, net);
    }

    // Loading seen by each gate.
    for (GateId g = 0; g < gate_count_; ++g) {
      refreshGateLoading(ws, g);
    }

    // Refine pin currents for the next propagation level.
    if (iter + 1 < options_.propagation_iterations) {
      for (GateId g = 0; g < gate_count_; ++g) {
        const std::size_t pins = pin_offset_[g + 1] - pin_offset_[g];
        for (std::size_t pin = 0; pin < pins; ++pin) {
          ws.pin_current_[pin_offset_[g] + pin] = ws.table_[g]->pinCurrentAt(
              static_cast<int>(pin), ws.il_[g], ws.ol_[g]);
        }
      }
    }
  }

  for (GateId g = 0; g < gate_count_; ++g) {
    GateEstimate& estimate = ws.per_gate_[g];
    estimate.il = ws.il_[g];
    estimate.ol = ws.ol_[g];
    estimate.leakage = ws.table_[g]->lookup(ws.il_[g], ws.ol_[g]);
  }
  resumTotal(ws);
}

void EstimationPlan::resumTotal(EstimationWorkspace& ws) const {
  device::LeakageBreakdown total;
  for (GateId g = 0; g < gate_count_; ++g) {
    total += ws.per_gate_[g].leakage;
  }
  ws.total_ = total;
}

void EstimationPlan::finishResult(const EstimationWorkspace& ws,
                                  EstimateResult& out) const {
  out.total = ws.total_;
  out.per_gate = ws.per_gate_;
}

void EstimationPlan::estimate(const std::vector<bool>& source_values,
                              EstimationWorkspace& ws,
                              EstimateResult& out) const {
  checkWorkspace(ws);
  checkSourceCount(source_values.size());
  estimateMetrics().cold.increment();
  simulator_.simulateInto(source_values, ws.values_);
  computeAllFromValues(ws);
  ws.warm_ = true;
  finishResult(ws, out);
}

EstimateResult EstimationPlan::estimate(
    const std::vector<bool>& source_values, EstimationWorkspace& ws) const {
  EstimateResult out;
  estimate(source_values, ws, out);
  return out;
}

void EstimationPlan::estimateDelta(const std::vector<bool>& source_values,
                                   EstimationWorkspace& ws,
                                   EstimateResult& out) const {
  checkWorkspace(ws);
  checkSourceCount(source_values.size());
  if (!ws.warm_) {
    estimate(source_values, ws, out);
    return;
  }
  simulator_.simulateDelta(source_values, ws.values_, ws.dirty_gates_,
                           ws.changed_nets_, ws.sim_scratch_);
  if (ws.changed_nets_.empty()) {
    // Same pattern as the previous call: the workspace result stands.
    estimateMetrics().unchanged.increment();
    finishResult(ws, out);
    return;
  }

  const bool fallback =
      (options_.with_loading && options_.propagation_iterations > 1) ||
      ws.dirty_gates_.size() * kDeltaFallbackDen >=
          gate_count_ * kDeltaFallbackNum;
  if (fallback) {
    estimateMetrics().fallback_full.increment();
    computeAllFromValues(ws);
    finishResult(ws, out);
    return;
  }

  estimateMetrics().incremental.increment();
  if (!options_.with_loading) {
    for (GateId g : ws.dirty_gates_) {
      refreshGateVector(ws, g);
      ws.per_gate_[g] = GateEstimate{ws.table_[g]->isolated_nominal, 0.0, 0.0};
    }
    resumTotal(ws);
    finishResult(ws, out);
    return;
  }

  // 1. Dirty gates changed input vector: new tables, new nominal pin
  //    currents.
  for (GateId g : ws.dirty_gates_) {
    refreshGateVector(ws, g);
    const std::vector<double>& nominal = ws.table_[g]->pin_current;
    for (std::size_t pin = 0; pin < nominal.size(); ++pin) {
      ws.pin_current_[pin_offset_[g] + pin] = nominal[pin];
    }
  }

  // 2. Nets whose injection can have moved: every input net of a dirty
  //    gate (its pin currents changed), plus value-flipped nets carrying
  //    DFF loads (their boundary INV current flipped tables).
  ws.dirty_nets_.clear();
  const auto markNet = [&](NetId net) {
    if (!ws.net_mark_[net]) {
      ws.net_mark_[net] = 1;
      ws.dirty_nets_.push_back(net);
    }
  };
  for (GateId g : ws.dirty_gates_) {
    for (std::size_t slot = pin_offset_[g]; slot < pin_offset_[g + 1];
         ++slot) {
      markNet(pin_net_[slot]);
    }
  }
  if (has_dffs_) {
    for (NetId net : ws.changed_nets_) {
      if (dff_load_count_[net] > 0) {
        markNet(net);
      }
    }
  }
  for (NetId net : ws.dirty_nets_) {
    ws.net_injection_[net] = netInjection(ws, net);
  }

  // 3. Gates whose IL/OL or table changed: the dirty gates themselves,
  //    every gate with a pin on a dirty net, and the driver of each dirty
  //    net (its OL reads that net's injection).
  ws.touched_gates_.clear();
  const auto markGate = [&](GateId g) {
    if (!ws.gate_mark_[g]) {
      ws.gate_mark_[g] = 1;
      ws.touched_gates_.push_back(g);
    }
  };
  for (GateId g : ws.dirty_gates_) {
    markGate(g);
  }
  for (NetId net : ws.dirty_nets_) {
    for (std::size_t k = fanout_offset_[net]; k < fanout_offset_[net + 1];
         ++k) {
      markGate(fanout_gate_[k]);
    }
    if (net_driver_gate_[net] != kNoDriver) {
      markGate(net_driver_gate_[net]);
    }
  }
  for (GateId g : ws.touched_gates_) {
    refreshGateEstimate(ws, g);
  }

  for (NetId net : ws.dirty_nets_) {
    ws.net_mark_[net] = 0;
  }
  for (GateId g : ws.touched_gates_) {
    ws.gate_mark_[g] = 0;
  }
  resumTotal(ws);
  finishResult(ws, out);
}

EstimateResult EstimationPlan::estimateDelta(
    const std::vector<bool>& source_values, EstimationWorkspace& ws) const {
  EstimateResult out;
  estimateDelta(source_values, ws, out);
  return out;
}

EstimationWorkspace::EstimationWorkspace(const EstimationPlan& plan)
    : plan_(&plan) {
  values_.resize(plan.net_count_);
  table_.resize(plan.gate_count_);
  pin_current_.resize(plan.pin_net_.size());
  net_injection_.resize(plan.net_count_);
  il_.resize(plan.gate_count_);
  ol_.resize(plan.gate_count_);
  per_gate_.resize(plan.gate_count_);
  net_mark_.assign(plan.net_count_, 0);
  gate_mark_.assign(plan.gate_count_, 0);
}

}  // namespace nanoleak::core
