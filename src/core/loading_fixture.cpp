#include "core/loading_fixture.h"

#include <array>
#include <string>
#include <utility>

#include "circuit/leakage_meter.h"
#include "util/error.h"

namespace nanoleak::core {

using circuit::NodeId;

LoadingFixture::LoadingFixture(gates::GateKind kind,
                               std::vector<bool> input_vector,
                               const device::Technology& technology)
    : kind_(kind),
      input_vector_(std::move(input_vector)),
      technology_(technology) {
  require(gates::hasTopology(kind),
          "LoadingFixture: gate kind has no topology");
  require(input_vector_.size() ==
              static_cast<std::size_t>(gates::inputCount(kind)),
          "LoadingFixture: input vector arity mismatch");

  vdd_ = netlist_.addNode("VDD");
  gnd_ = netlist_.addNode("GND");
  netlist_.fixVoltage(vdd_, technology_.vdd);
  netlist_.fixVoltage(gnd_, 0.0);

  gates::GateNetlistBuilder builder(netlist_, technology_, vdd_, gnd_);

  // Reference driver per pin: an inverter whose (ideal) input is the
  // complement of the pin level, so the pin net carries the right level
  // through a realistic pull-up/pull-down resistance (the paper's D1).
  for (std::size_t pin = 0; pin < input_vector_.size(); ++pin) {
    const bool level = input_vector_[pin];
    const NodeId drv_in = netlist_.addNode("drv_in" + std::to_string(pin));
    netlist_.fixVoltage(drv_in, level ? 0.0 : technology_.vdd);
    const NodeId pin_node = netlist_.addNode("pin" + std::to_string(pin));
    pin_nodes_.push_back(pin_node);
    const std::array<NodeId, 1> ins{drv_in};
    const std::array<bool, 1> in_vals{!level};
    builder.instantiate(gates::GateKind::kInv, ins, pin_node,
                        kDriverOwnerBase + static_cast<int>(pin), in_vals,
                        {});
    pin_sources_.push_back(netlist_.addCurrentSource(pin_node, 0.0));
  }

  output_node_ = netlist_.addNode("out");
  output_source_ = netlist_.addCurrentSource(output_node_, 0.0);

  // Gate under test.
  std::array<bool, 8> vals{};
  for (std::size_t i = 0; i < input_vector_.size(); ++i) {
    vals[i] = input_vector_[i];
  }
  builder.instantiate(
      kind_, pin_nodes_, output_node_, kGateUnderTest,
      std::span<const bool>(vals.data(), input_vector_.size()), {});

  // Seeds: pins at their levels, output at the gate's logic output.
  seed_.assign(netlist_.nodeCount(), 0.5 * technology_.vdd);
  seed_[vdd_] = technology_.vdd;
  seed_[gnd_] = 0.0;
  for (std::size_t pin = 0; pin < pin_nodes_.size(); ++pin) {
    seed_[pin_nodes_[pin]] = input_vector_[pin] ? technology_.vdd : 0.0;
  }
  const bool out_level = gates::evaluateGate(
      kind_, std::span<const bool>(vals.data(), input_vector_.size()));
  seed_[output_node_] = out_level ? technology_.vdd : 0.0;
  for (const auto& [node, voltage] : builder.seeds()) {
    seed_[node] = voltage;
  }

  solver_options_.temperature_k = technology_.temperature_k;
  solver_options_.bracket_lo = -0.3;
  solver_options_.bracket_hi = technology_.vdd + 0.3;
}

void LoadingFixture::setInputLoading(double amps) {
  const double share = amps / static_cast<double>(pin_sources_.size());
  for (circuit::SourceId source : pin_sources_) {
    netlist_.setCurrentSource(source, share);
  }
}

void LoadingFixture::setPinLoading(int pin, double amps) {
  require(pin >= 0 && static_cast<std::size_t>(pin) < pin_sources_.size(),
          "LoadingFixture::setPinLoading: pin out of range");
  netlist_.setCurrentSource(pin_sources_[static_cast<std::size_t>(pin)],
                            amps);
}

void LoadingFixture::setOutputLoading(double amps) {
  netlist_.setCurrentSource(output_source_, amps);
}

FixtureResult LoadingFixture::solve() const {
  const circuit::DcSolver solver(solver_options_);
  circuit::Solution solution = solver.solve(netlist_, seed_);
  if (!solution.converged) {
    throwNonConvergence(solution);
  }
  return extractResult(std::move(solution), technology_.temperature_k);
}

FixtureResult LoadingFixture::solveCompiled(
    const std::vector<double>* warm_seed) {
  if (!kernel_) {
    kernel_.emplace(netlist_, solver_options_);
  }
  // Re-bind the loading currents mutated through the netlist setters since
  // the last solve (compile happens once; sources re-bind every solve).
  for (std::size_t s = 0; s < netlist_.sourceCount(); ++s) {
    kernel_->setSource(s, netlist_.sources()[s].amps);
  }
  const bool warm = warm_seed != nullptr && !warm_seed->empty();
  circuit::Solution solution =
      kernel_->solve(warm ? *warm_seed : seed_, {}, warm ? &seed_ : nullptr);
  if (!solution.converged) {
    throwNonConvergence(solution);
  }
  return extractResult(std::move(solution), technology_.temperature_k);
}

std::vector<FixtureResult> LoadingFixture::solveBatched(
    std::span<const FixtureBatchPoint> points) {
  require(!points.empty() && points.size() <= kBatchLanes,
          "LoadingFixture::solveBatched: point count must be in [1, lanes]");
  if (!batch_kernel_) {
    batch_kernel_.emplace(netlist_, solver_options_);
  }
  std::vector<circuit::BatchSolverKernel::LaneRequest> requests(points.size());
  for (std::size_t lane = 0; lane < points.size(); ++lane) {
    const FixtureBatchPoint& point = points[lane];
    require(point.pin_loading.size() == pin_sources_.size(),
            "LoadingFixture::solveBatched: pin_loading arity mismatch");
    for (std::size_t pin = 0; pin < pin_sources_.size(); ++pin) {
      batch_kernel_->setSource(lane, pin_sources_[pin],
                               point.pin_loading[pin]);
    }
    batch_kernel_->setSource(lane, output_source_, point.output_loading);
    circuit::SolverOptions lane_options = solver_options_;
    if (point.temperature_k > 0.0) {
      lane_options.temperature_k = point.temperature_k;
    }
    batch_kernel_->setLaneOptions(lane, lane_options);
    const bool warm = point.warm_seed != nullptr && !point.warm_seed->empty();
    requests[lane].initial_guess = warm ? point.warm_seed : &seed_;
    requests[lane].cluster_guess = warm ? &seed_ : nullptr;
  }
  std::vector<circuit::Solution> solutions = batch_kernel_->solve(requests);
  std::vector<FixtureResult> results;
  results.reserve(points.size());
  for (std::size_t lane = 0; lane < points.size(); ++lane) {
    if (!solutions[lane].converged) {
      throwNonConvergence(solutions[lane], points[lane].label);
    }
    const double temperature = points[lane].temperature_k > 0.0
                                   ? points[lane].temperature_k
                                   : technology_.temperature_k;
    results.push_back(extractResult(std::move(solutions[lane]), temperature));
  }
  return results;
}

void LoadingFixture::rebindTemperature(double temperature_k) {
  technology_.temperature_k = temperature_k;
  solver_options_.temperature_k = temperature_k;
  if (kernel_) {
    kernel_->setOptions(solver_options_);
  }
}

void LoadingFixture::throwNonConvergence(const circuit::Solution& solution,
                                         const std::string& label) const {
  std::string message = "LoadingFixture: DC solve did not converge (" +
                        std::string(gates::toString(kind_));
  if (!label.empty()) {
    message += ", " + label;
  }
  const std::string detail = circuit::nonConvergenceDetail(netlist_, solution);
  if (!detail.empty()) {
    message += ", " + detail;
  }
  throw ConvergenceError(message + ")");
}

FixtureResult LoadingFixture::extractResult(circuit::Solution&& solution,
                                            double temperature_k) const {
  const device::Environment env{temperature_k};
  FixtureResult result;
  result.sweeps = solution.sweeps;
  const auto by_owner = circuit::leakageByOwner(
      netlist_, solution.voltages, env, /*owner_count=*/1);
  result.leakage = by_owner[kGateUnderTest];

  result.output_voltage = solution.voltages[output_node_];
  result.pin_voltages.reserve(pin_nodes_.size());
  result.pin_currents_into_net.assign(pin_nodes_.size(), 0.0);
  for (std::size_t pin = 0; pin < pin_nodes_.size(); ++pin) {
    result.pin_voltages.push_back(solution.voltages[pin_nodes_[pin]]);
  }

  // Pin tunneling currents of the gate under test: current a pin injects
  // into its net is minus the current flowing from the net into the
  // device gates.
  for (const circuit::DeviceInstance& dev : netlist_.devices()) {
    if (dev.owner != kGateUnderTest) {
      continue;
    }
    for (std::size_t pin = 0; pin < pin_nodes_.size(); ++pin) {
      if (dev.gate == pin_nodes_[pin]) {
        const device::BiasPoint bias{
            solution.voltages[dev.gate], solution.voltages[dev.drain],
            solution.voltages[dev.source], solution.voltages[dev.bulk]};
        result.pin_currents_into_net[pin] -=
            dev.mosfet.currents(bias, env).gate;
      }
    }
  }
  result.voltages = std::move(solution.voltages);
  return result;
}

}  // namespace nanoleak::core
