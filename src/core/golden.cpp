#include "core/golden.h"

#include <map>

#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "logic/expander.h"
#include "logic/logic_sim.h"
#include "util/error.h"

namespace nanoleak::core {

GoldenResult goldenLeakage(const logic::LogicNetlist& netlist,
                           const device::Technology& technology,
                           const std::vector<bool>& source_values,
                           const gates::VariationProvider& variation) {
  const logic::ExpandedCircuit expanded =
      logic::expandToTransistors(netlist, technology, source_values,
                                 variation);

  circuit::SolverOptions options;
  options.temperature_k = technology.temperature_k;
  options.bracket_lo = -0.3;
  options.bracket_hi = technology.vdd + 0.3;
  const circuit::DcSolver solver(options);
  const circuit::Solution solution =
      solver.solve(expanded.netlist, expanded.seed, expanded.sweep_order);
  if (!solution.converged) {
    throw ConvergenceError("goldenLeakage: full-circuit DC solve failed");
  }

  const device::Environment env{technology.temperature_k};
  GoldenResult result;
  result.sweeps = solution.sweeps;
  result.node_count = expanded.netlist.nodeCount();
  result.node_solves = solution.node_solves;
  auto by_owner = circuit::leakageByOwner(expanded.netlist, solution.voltages,
                                          env, expanded.gate_count);
  by_owner.pop_back();  // drop the kNoOwner (DFF boundary) bucket
  result.per_gate = std::move(by_owner);
  for (const device::LeakageBreakdown& gate : result.per_gate) {
    result.total += gate;
  }
  return result;
}

device::LeakageBreakdown isolatedSumLeakage(
    const logic::LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values) {
  const logic::LogicSimulator sim(netlist);
  const std::vector<bool> values = sim.simulate(source_values);

  std::map<std::pair<gates::GateKind, std::size_t>, device::LeakageBreakdown>
      memo;
  device::LeakageBreakdown total;
  std::vector<bool> pins;
  for (const logic::Gate& gate : netlist.gates()) {
    pins.assign(gate.inputs.size(), false);
    std::size_t index = 0;
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pins[pin] = values[gate.inputs[pin]];
      if (pins[pin]) {
        index |= (std::size_t{1} << pin);
      }
    }
    const auto key = std::make_pair(gate.kind, index);
    auto it = memo.find(key);
    if (it == memo.end()) {
      std::array<bool, 8> flat{};
      for (std::size_t pin = 0; pin < pins.size(); ++pin) {
        flat[pin] = pins[pin];
      }
      const device::LeakageBreakdown leak = gates::isolatedGateLeakage(
          gate.kind, std::span<const bool>(flat.data(), pins.size()),
          technology);
      it = memo.emplace(key, leak).first;
    }
    total += it->second;
  }
  return total;
}

}  // namespace nanoleak::core
