#include "core/golden.h"

#include <array>
#include <map>
#include <string>
#include <utility>

#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "logic/expander.h"
#include "logic/logic_sim.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace nanoleak::core {

GoldenSolver::GoldenSolver(const logic::LogicNetlist& netlist,
                           const device::Technology& technology,
                           const gates::VariationProvider& variation)
    : netlist_(netlist),
      technology_(technology),
      variation_(variation),
      sim_(netlist) {}

void GoldenSolver::resetWarmStart() { warm_.clear(); }

GoldenResult GoldenSolver::solve(const std::vector<bool>& source_values) {
  const double vdd = technology_.vdd;

  if (!expanded_) {
    // First pattern: full expansion + kernel compile. Seeds and fixed
    // bindings come out exactly as the historical expand-per-call path
    // produced them, so this solve is bit-identical to it.
    expanded_ = logic::expandToTransistors(netlist_, technology_,
                                           source_values, variation_);
    circuit::SolverOptions options;
    options.temperature_k = technology_.temperature_k;
    options.bracket_lo = -0.3;
    options.bracket_hi = vdd + 0.3;
    kernel_.emplace(expanded_->netlist, options);
    static const obs::Counter cold_solves =
        obs::counter("golden.cold_solves");
    cold_solves.increment();
    const circuit::Solution solution =
        kernel_->solve(expanded_->seed, expanded_->sweep_order);
    if (solution.converged) {
      warm_ = solution.voltages;
      prev_values_ = expanded_->net_values;
    }
    return extract(solution);
  }

  // Re-solve: re-bind the pattern-dependent fixed voltages only.
  std::vector<bool> values = sim_.simulate(source_values);
  for (logic::NetId net = 0; net < netlist_.netCount(); ++net) {
    if (netlist_.driverKind(net) == logic::DriverKind::kPrimaryInput) {
      kernel_->setFixedVoltage(expanded_->net_node[net],
                               values[net] ? vdd : 0.0);
    }
  }
  const auto& dffs = netlist_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const bool q_value = values[dffs[i].q];
    kernel_->setFixedVoltage(expanded_->dff_qsrc[i],
                             q_value ? 0.0 : vdd);  // inverted
  }

  // Cold-equivalent seed for this pattern: exactly what a fresh expansion
  // would have produced (net logic levels, recomputed stage-level seeds,
  // pattern-independent stack seeds). Serves two roles: the cluster
  // classification guess, and the seed for "dirty" regions below.
  const std::vector<double> cold = coldSeed(values);

  // Warm continuation where it helps, cold where it does not: gates none
  // of whose pins changed keep the previous operating point (already
  // converged there); flipped nets and the internals of dirty gates take
  // the cold seed - a stale stack voltage near the wrong rail costs far
  // more sweeps than a cold start.
  std::vector<double> seed = warm_.empty() ? cold : warm_;
  if (!warm_.empty()) {
    for (logic::NetId net = 0; net < netlist_.netCount(); ++net) {
      if (values[net] != prev_values_[net]) {
        seed[expanded_->net_node[net]] = cold[expanded_->net_node[net]];
      }
    }
    const auto& gates_list = netlist_.gates();
    std::vector<bool> dirty(gates_list.size(), false);
    for (std::size_t g = 0; g < gates_list.size(); ++g) {
      bool changed = values[gates_list[g].output] !=
                     prev_values_[gates_list[g].output];
      for (logic::NetId input : gates_list[g].inputs) {
        changed = changed || values[input] != prev_values_[input];
      }
      dirty[g] = changed;
    }
    for (const logic::ExpandedCircuit::InternalSeed& s :
         expanded_->internal_seeds) {
      if (s.gate != logic::ExpandedCircuit::InternalSeed::kNoGate &&
          dirty[s.gate]) {
        seed[s.node] = cold[s.node];
      }
    }
  }

  static const obs::Counter warm_solves = obs::counter("golden.warm_solves");
  static const obs::Counter cold_reseeds = obs::counter("golden.cold_reseeds");
  (warm_.empty() ? cold_reseeds : warm_solves).increment();
  const circuit::Solution solution =
      kernel_->solve(seed, expanded_->sweep_order, &cold);
  // warm_/prev_values_ advance only on success: after a ConvergenceError
  // they still describe the last solved pattern together, so a later
  // solve() seeds consistently.
  if (solution.converged) {
    warm_ = solution.voltages;
    prev_values_ = std::move(values);
  }
  return extract(solution);
}

std::vector<double> GoldenSolver::coldSeed(
    const std::vector<bool>& values) const {
  const double vdd = technology_.vdd;
  std::vector<double> seed(expanded_->netlist.nodeCount(), 0.5 * vdd);
  seed[expanded_->vdd] = vdd;
  seed[expanded_->gnd] = 0.0;
  for (logic::NetId net = 0; net < netlist_.netCount(); ++net) {
    seed[expanded_->net_node[net]] = values[net] ? vdd : 0.0;
  }
  // Internal seeds: stage-level entries are re-evaluated at this pattern's
  // pin values; stack entries keep their recorded (pattern-independent)
  // voltage. Entries are grouped per gate, so stage levels are computed
  // once per gate.
  std::size_t last_gate = logic::ExpandedCircuit::InternalSeed::kNoGate;
  std::vector<bool> stage_levels;
  std::array<bool, 8> pins{};
  for (const logic::ExpandedCircuit::InternalSeed& s :
       expanded_->internal_seeds) {
    if (s.stage < 0 ||
        s.gate == logic::ExpandedCircuit::InternalSeed::kNoGate) {
      seed[s.node] = s.voltage;
      continue;
    }
    if (s.gate != last_gate) {
      const logic::Gate& gate = netlist_.gates()[s.gate];
      for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
        pins[pin] = values[gate.inputs[pin]];
      }
      stage_levels = gates::evaluateStages(
          gate.kind,
          std::span<const bool>(pins.data(), gate.inputs.size()));
      last_gate = s.gate;
    }
    seed[s.node] =
        stage_levels[static_cast<std::size_t>(s.stage)] ? vdd : 0.0;
  }
  return seed;
}

GoldenResult GoldenSolver::extract(const circuit::Solution& solution) const {
  if (!solution.converged) {
    std::string message = "goldenLeakage: full-circuit DC solve failed";
    const std::string detail =
        circuit::nonConvergenceDetail(expanded_->netlist, solution);
    if (!detail.empty()) {
      message += " (" + detail + ")";
    }
    throw ConvergenceError(message);
  }

  const device::Environment env{technology_.temperature_k};
  GoldenResult result;
  result.sweeps = solution.sweeps;
  result.node_count = expanded_->netlist.nodeCount();
  result.node_solves = solution.node_solves;
  auto by_owner = circuit::leakageByOwner(expanded_->netlist,
                                          solution.voltages, env,
                                          expanded_->gate_count);
  by_owner.pop_back();  // drop the kNoOwner (DFF boundary) bucket
  result.per_gate = std::move(by_owner);
  for (const device::LeakageBreakdown& gate : result.per_gate) {
    result.total += gate;
  }
  return result;
}

GoldenResult goldenLeakage(const logic::LogicNetlist& netlist,
                           const device::Technology& technology,
                           const std::vector<bool>& source_values,
                           const gates::VariationProvider& variation) {
  GoldenSolver solver(netlist, technology, variation);
  return solver.solve(source_values);
}

device::LeakageBreakdown isolatedSumLeakage(
    const logic::LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values) {
  const logic::LogicSimulator sim(netlist);
  const std::vector<bool> values = sim.simulate(source_values);

  std::map<std::pair<gates::GateKind, std::size_t>, device::LeakageBreakdown>
      memo;
  device::LeakageBreakdown total;
  std::vector<bool> pins;
  for (const logic::Gate& gate : netlist.gates()) {
    pins.assign(gate.inputs.size(), false);
    std::size_t index = 0;
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pins[pin] = values[gate.inputs[pin]];
      if (pins[pin]) {
        index |= (std::size_t{1} << pin);
      }
    }
    const auto key = std::make_pair(gate.kind, index);
    auto it = memo.find(key);
    if (it == memo.end()) {
      std::array<bool, 8> flat{};
      for (std::size_t pin = 0; pin < pins.size(); ++pin) {
        flat[pin] = pins[pin];
      }
      const device::LeakageBreakdown leak = gates::isolatedGateLeakage(
          gate.kind, std::span<const bool>(flat.data(), pins.size()),
          technology);
      it = memo.emplace(key, leak).first;
    }
    total += it->second;
  }
  return total;
}

}  // namespace nanoleak::core
