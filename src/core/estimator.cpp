#include "core/estimator.h"

#include <cmath>

#include "util/error.h"

namespace nanoleak::core {

using logic::DriverKind;
using logic::GateId;
using logic::NetId;

LeakageEstimator::LeakageEstimator(const logic::LogicNetlist& netlist,
                                   const LeakageLibrary& library,
                                   EstimatorOptions options)
    : netlist_(netlist),
      library_(library),
      options_(options),
      simulator_(netlist) {
  require(options_.propagation_iterations >= 1,
          "LeakageEstimator: propagation_iterations must be >= 1");
  for (const logic::Gate& gate : netlist_.gates()) {
    require(library_.has(gate.kind),
            std::string("LeakageEstimator: library missing tables for ") +
                gates::toString(gate.kind));
  }
  if (!netlist_.dffs().empty()) {
    require(library_.has(gates::GateKind::kInv),
            "LeakageEstimator: INV tables required for DFF boundary model");
  }
}

EstimateResult LeakageEstimator::estimate(
    const std::vector<bool>& source_values) const {
  const std::vector<bool> values = simulator_.simulate(source_values);
  const std::size_t gate_count = netlist_.gateCount();

  // Per-gate vector index (cached; used for every table access).
  std::vector<std::size_t> vec_index(gate_count);
  std::vector<bool> scratch;
  for (GateId g = 0; g < gate_count; ++g) {
    const logic::Gate& gate = netlist_.gate(g);
    scratch.assign(gate.inputs.size(), false);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      scratch[pin] = values[gate.inputs[pin]];
    }
    vec_index[g] = vectorIndex(scratch);
  }

  EstimateResult result;
  result.per_gate.assign(gate_count, GateEstimate{});

  if (!options_.with_loading) {
    // Traditional accumulation: isolated per-gate values at ideal rails
    // (the paper's no-loading baseline).
    for (GateId g = 0; g < gate_count; ++g) {
      const VectorTable& table =
          library_.table(netlist_.gate(g).kind, vec_index[g]);
      result.per_gate[g].leakage = table.isolated_nominal;
      result.total += table.isolated_nominal;
    }
    return result;
  }

  // Signed tunneling current each gate input pin injects into its net.
  // Iteration 0 uses the nominal characterization; further iterations
  // re-derive pin currents at each gate's current (IL, OL) estimate.
  std::vector<std::vector<double>> pin_current(gate_count);
  for (GateId g = 0; g < gate_count; ++g) {
    pin_current[g] =
        library_.table(netlist_.gate(g).kind, vec_index[g]).pin_current;
  }

  // DFF D pins load their nets like an inverter input at the net's level.
  const auto dffPinCurrent = [&](NetId net) {
    const VectorTable& inv = library_.table(
        gates::GateKind::kInv, values[net] ? std::size_t{1} : std::size_t{0});
    return inv.pin_current[0];
  };

  std::vector<double> net_injection(netlist_.netCount(), 0.0);
  std::vector<double> il(gate_count, 0.0);
  std::vector<double> ol(gate_count, 0.0);

  for (int iter = 0; iter < options_.propagation_iterations; ++iter) {
    // Net totals of signed pin-injection currents.
    std::fill(net_injection.begin(), net_injection.end(), 0.0);
    for (NetId net = 0; net < netlist_.netCount(); ++net) {
      for (const logic::PinRef& pin : netlist_.fanout(net)) {
        net_injection[net] +=
            pin_current[pin.gate][static_cast<std::size_t>(pin.pin)];
      }
      net_injection[net] +=
          static_cast<double>(netlist_.dffLoadCount(net)) *
          dffPinCurrent(net);
    }

    // Loading seen by each gate. Primary-input nets are ideally driven, so
    // loading on them cannot shift the pin voltage: skip them (matches the
    // golden model, which binds PI nets to rails).
    for (GateId g = 0; g < gate_count; ++g) {
      const logic::Gate& gate = netlist_.gate(g);
      double il_total = 0.0;
      for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
        const NetId net = gate.inputs[pin];
        if (netlist_.driverKind(net) == DriverKind::kPrimaryInput) {
          continue;
        }
        // Loading from the *other* gates on the net (the paper's IL-IN):
        // subtract this pin's own contribution from the net total.
        const double others =
            net_injection[net] - pin_current[g][pin];
        il_total += std::abs(others);
      }
      il[g] = il_total;
      ol[g] = std::abs(net_injection[gate.output]);
    }

    // Refine pin currents for the next propagation level.
    if (iter + 1 < options_.propagation_iterations) {
      for (GateId g = 0; g < gate_count; ++g) {
        const VectorTable& table =
            library_.table(netlist_.gate(g).kind, vec_index[g]);
        for (std::size_t pin = 0; pin < pin_current[g].size(); ++pin) {
          pin_current[g][pin] =
              table.pinCurrentAt(static_cast<int>(pin), il[g], ol[g]);
        }
      }
    }
  }

  for (GateId g = 0; g < gate_count; ++g) {
    const VectorTable& table =
        library_.table(netlist_.gate(g).kind, vec_index[g]);
    GateEstimate& estimate = result.per_gate[g];
    estimate.il = il[g];
    estimate.ol = ol[g];
    estimate.leakage = table.lookup(il[g], ol[g]);
    result.total += estimate.leakage;
  }
  return result;
}

}  // namespace nanoleak::core
