#include "core/estimator.h"

namespace nanoleak::core {

LeakageEstimator::LeakageEstimator(const logic::LogicNetlist& netlist,
                                   const LeakageLibrary& library,
                                   EstimatorOptions options)
    : plan_(netlist, library, options) {}

EstimateResult LeakageEstimator::estimate(
    const std::vector<bool>& source_values) const {
  EstimationWorkspace workspace(plan_);
  return plan_.estimate(source_values, workspace);
}

}  // namespace nanoleak::core
