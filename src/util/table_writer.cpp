#include "util/table_writer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace nanoleak {

std::string formatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TableWriter: header must not be empty");
}

void TableWriter::addRow(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TableWriter::addRow: arity mismatch with header");
  rows_.push_back(std::move(cells));
}

void TableWriter::addNumericRow(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) {
    formatted.push_back(formatDouble(value, precision));
  }
  addRow(std::move(formatted));
}

std::string TableWriter::toText() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : " | ") << std::setw(static_cast<int>(widths[i]))
          << row[i];
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w;
  }
  out << std::string(total + 3 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

namespace {

std::string csvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') {
      escaped += '"';
    }
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

std::string TableWriter::toCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : ",") << csvEscape(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

void TableWriter::printText(std::ostream& out) const { out << toText(); }
void TableWriter::printCsv(std::ostream& out) const { out << toCsv(); }

}  // namespace nanoleak
