// Streaming statistics (Welford) and simple summary reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nanoleak {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm,
/// numerically stable for the 1e-9-scale currents this library produces).
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample: mean, stddev, min, max, and selected quantiles.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a SampleSummary; sorts a copy of the data for quantiles.
SampleSummary summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
double quantileSorted(std::span<const double> sorted, double q);

}  // namespace nanoleak
