// Cooperative cancellation and per-request deadlines.
//
// A CancelToken is a cancellation flag plus an optional monotonic
// deadline. Work that should be boundable installs a token for the
// current thread with CancelScope and sprinkles pollCancel() at safe
// points (solver sweeps, batch-runner chunk boundaries, between suite
// scenarios); pollCancel() throws DeadlineExceeded once the token is
// cancelled or past its deadline. Safe points are chosen so unwinding
// leaves shared state (caches, workspaces) consistent — cancellation is
// cooperative, never preemptive.
//
// The current token is thread-local. ThreadPool::parallelFor captures
// the caller's token and re-installs it on every worker running the
// job's chunks, so a deadline set in a serve executor bounds the
// estimation work fanned out across the pool.
//
// Polling a null token (the default everywhere outside a bounded
// request) is a single thread-local load plus branch — one-shot CLI
// paths pay effectively nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/error.h"

namespace nanoleak::util {

/// Thrown by pollCancel() when the installed token is cancelled or past
/// its deadline. Subclasses Error so generic failure handling (cache
/// build coalescing, executor catch blocks) treats it uniformly; the
/// distinct type lets the serve layer map it to `deadline_exceeded`.
class DeadlineExceeded : public Error {
 public:
  /// `what` describes the bound that was exceeded.
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Cancellation flag plus optional deadline, shared by reference between
/// the requester (who cancels) and the workers (who poll). All methods
/// are thread-safe; the token must outlive every CancelScope holding it.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Token with no deadline; expires only via cancel().
  CancelToken() = default;

  /// Token expiring `deadline_ms` milliseconds after `start`.
  CancelToken(Clock::time_point start, std::uint64_t deadline_ms)
      : has_deadline_(true),
        deadline_(start + std::chrono::milliseconds(deadline_ms)) {}

  /// Marks the token cancelled; expired() is true from now on.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when cancelled or (if a deadline was set) past the deadline.
  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Milliseconds until the deadline, clamped at 0; ~0 with no deadline.
  std::uint64_t remainingMs() const;

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Installs `token` as the current thread's cancel token for the scope's
/// lifetime, restoring the previous one on exit (scopes nest). Pass
/// nullptr to explicitly clear the token for a scope.
class CancelScope {
 public:
  /// Installs `token` (may be nullptr) for the current thread.
  explicit CancelScope(const CancelToken* token);
  /// Restores the previously installed token.
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;             ///< non-copyable
  CancelScope& operator=(const CancelScope&) = delete;  ///< non-copyable

 private:
  const CancelToken* previous_;
};

/// The token installed for the current thread, or nullptr. ThreadPool
/// uses this to propagate the caller's token to its workers.
const CancelToken* currentCancelToken();

/// Throws DeadlineExceeded when the current thread's token is expired;
/// no-op (one thread-local load) when no token is installed.
void pollCancel();

}  // namespace nanoleak::util
