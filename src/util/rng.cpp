#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace nanoleak {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  require(n > 0, "Rng::uniformInt: n must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t value = next();
  while (value >= limit) {
    value = next();
  }
  return value % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next() ^ 0xd2b74407b1ce6e93ULL); }

std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Two rounds of the splitmix64 finalizer over a seed/stream combination.
  // One round already avalanches well; the second decorrelates the
  // low-entropy (seed, seed+1, ...) counter inputs typical of sample
  // indices.
  std::uint64_t z = seed ^ (stream + 1) * 0x9e3779b97f4a7c15ULL;
  for (int round = 0; round < 2; ++round) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
  }
  return z;
}

}  // namespace nanoleak
