// Console table / CSV emission for bench binaries.
//
// Every bench prints the same rows the corresponding paper figure plots;
// TableWriter keeps the formatting consistent and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nanoleak {

/// Accumulates rows of string cells and renders either an aligned text
/// table (for humans) or CSV (for replotting).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void addNumericRow(const std::vector<double>& cells, int precision = 4);

  std::size_t rowCount() const { return rows_.size(); }

  /// Renders an aligned, pipe-separated table.
  std::string toText() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string toCsv() const;

  void printText(std::ostream& out) const;
  void printCsv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
std::string formatDouble(double value, int precision = 4);

}  // namespace nanoleak
