#include "util/strings.h"

#include <cctype>

namespace nanoleak {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > start) {
      fields.emplace_back(text.substr(start, i - start));
    }
  }
  return fields;
}

std::string toUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += items[i];
  }
  return out;
}

}  // namespace nanoleak
