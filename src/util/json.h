// Minimal generic JSON reader + string escaping.
//
// Extracted from the golden-file serializer so every JSON-producing or
// JSON-consuming surface (golden files, observability metrics snapshots,
// Chrome trace exports, their tests) shares one parser. Just enough JSON
// for those schemas: objects, arrays, strings, finite numbers, booleans,
// null. Parsing throws nanoleak::ParseError with a 1-based line number;
// non-finite number literals (1e999 -> inf) are rejected because every
// producer in this codebase writes finite values only.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace nanoleak::util {

/// One parsed JSON value; a discriminated record rather than a class
/// hierarchy because the schemas involved are tiny and flat.
struct JsonValue {
  /// Discriminator of the active field.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;            ///< Active variant.
  bool boolean = false;               ///< Valid when type == kBool.
  double number = 0.0;                ///< Valid when type == kNumber.
  std::string string;                 ///< Valid when type == kString.
  std::vector<JsonValue> array;       ///< Valid when type == kArray.
  /// Key/value members in document order (duplicate keys preserved).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with the given key, or nullptr when absent (or when
  /// this value is not an object).
  const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON document (trailing content is an error).
/// `context` prefixes error messages, e.g. "golden JSON". Throws
/// nanoleak::ParseError with the offending line number on malformed
/// input.
JsonValue parseJson(const std::string& text,
                    const std::string& context = "JSON");

/// Escapes a string for embedding between double quotes in JSON output
/// (quotes, backslashes, control characters).
std::string escapeJson(const std::string& text);

}  // namespace nanoleak::util
