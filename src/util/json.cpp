#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace nanoleak::util {

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(context_ + ": " + message, line_);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consumeIf(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expectLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parseValue() {
    JsonValue value;
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parseString();
        return value;
      case 't':
        expectLiteral("true");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        expectLiteral("false");
        value.type = JsonValue::Type::kBool;
        return value;
      case 'n':
        expectLiteral("null");
        return value;
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    if (consumeIf('}')) {
      return value;
    }
    while (true) {
      if (peek() != '"') {
        fail("object key must be a string");
      }
      std::string key = parseString();
      expect(':');
      value.object.emplace_back(std::move(key), parseValue());
      if (consumeIf('}')) {
        return value;
      }
      expect(',');
    }
  }

  JsonValue parseArray() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    expect('[');
    if (consumeIf(']')) {
      return value;
    }
    while (true) {
      value.array.push_back(parseValue());
      if (consumeIf(']')) {
        return value;
      }
      expect(',');
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
          case '\\':
          case '/':
            out += escape;
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int d = 0; d < 4; ++d) {
              const char hex = text_[pos_ + static_cast<std::size_t>(d)];
              if (!std::isxdigit(static_cast<unsigned char>(hex))) {
                fail("invalid \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         hex <= '9' ? hex - '0'
                                    : std::tolower(hex) - 'a' + 10);
            }
            pos_ += 4;
            // Names in this codebase are ASCII; anything else is schema
            // abuse.
            if (code > 0x7f) {
              fail("non-ASCII \\u escape not supported");
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape");
        }
        continue;
      }
      if (c == '\n') {
        ++line_;
      }
      out += c;
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number '" + token + "'");
    }
    // No producer in this codebase writes non-finite values; an
    // overflowing literal (e.g. 1e999 -> Inf) would make downstream
    // comparisons vacuous, so reject it here.
    if (!std::isfinite(parsed)) {
      fail("non-finite number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

JsonValue parseJson(const std::string& text, const std::string& context) {
  return JsonParser(text, context).parse();
}

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace nanoleak::util
