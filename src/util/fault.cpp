#include "util/fault.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"

namespace nanoleak::util::fault {
namespace {

enum class Action { kFail, kDelay, kGate };
enum class Trigger { kAlways, kHit, kEvery, kProb };

/// One armed fault point. Guarded by Registry::mutex except where noted.
struct Rule {
  std::string point;
  Action action = Action::kFail;
  Trigger trigger = Trigger::kAlways;
  std::uint64_t delay_ms = 0;   // kDelay
  std::uint64_t n = 0;          // kHit / kEvery operand
  double p = 0.0;               // kProb operand
  Rng prob_rng{0};              // kProb stream, advanced once per hit
  std::uint64_t hits = 0;       // evaluations of this point since armed
  bool gate_open = false;       // kGate: released permanently
  std::size_t gate_waiters = 0;
  obs::Counter hits_counter = obs::counter("fault.disabled.hits");
  obs::Counter fired_counter = obs::counter("fault.disabled.fired");
};

struct Registry {
  std::mutex mutex;
  std::condition_variable gate_cv;
  // Generation bumps on every reconfigure so gate sleepers from a stale
  // configuration wake and pass through instead of blocking forever.
  std::uint64_t generation = 0;
  std::map<std::string, std::unique_ptr<Rule>, std::less<>> rules;
};

// armed() is the FAULT_POINT fast path: a relaxed load that is 0 unless
// configureFaults installed at least one rule. Leaked like the obs
// registry so static-teardown hits stay safe.
std::atomic<int>& armedFlag() {
  static std::atomic<int> armed{0};
  return armed;
}

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::uint64_t parseCount(const std::string& text, const std::string& what) {
  require(!text.empty(), "fault spec: missing " + what);
  std::uint64_t value = 0;
  for (char c : text) {
    require(c >= '0' && c <= '9', "fault spec: non-numeric " + what + " '" + text + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

double parseProbability(const std::string& text) {
  require(!text.empty(), "fault spec: missing probability");
  char* end = nullptr;
  double p = std::strtod(text.c_str(), &end);
  require(end == text.c_str() + text.size() && p >= 0.0 && p <= 1.0,
          "fault spec: probability '" + text + "' not in [0, 1]");
  return p;
}

/// Parses one `point=action[@trigger]` entry into an armed Rule.
std::unique_ptr<Rule> parseEntry(const std::string& entry) {
  auto rule = std::make_unique<Rule>();
  std::size_t eq = entry.find('=');
  require(eq != std::string::npos && eq > 0,
          "fault spec: entry '" + entry + "' is not point=action");
  rule->point = entry.substr(0, eq);

  std::string rest = entry.substr(eq + 1);
  std::string action = rest;
  std::string trigger = "always";
  if (std::size_t at = rest.find('@'); at != std::string::npos) {
    action = rest.substr(0, at);
    trigger = rest.substr(at + 1);
  }

  if (action == "fail") {
    rule->action = Action::kFail;
  } else if (action == "gate") {
    rule->action = Action::kGate;
  } else if (action.rfind("delay:", 0) == 0) {
    rule->action = Action::kDelay;
    rule->delay_ms = parseCount(action.substr(6), "delay milliseconds");
  } else {
    throw Error("fault spec: unknown action '" + action + "'");
  }

  if (trigger == "always") {
    rule->trigger = Trigger::kAlways;
  } else if (trigger.rfind("hit:", 0) == 0) {
    rule->trigger = Trigger::kHit;
    rule->n = parseCount(trigger.substr(4), "hit index");
    require(rule->n >= 1, "fault spec: hit index must be >= 1");
  } else if (trigger.rfind("every:", 0) == 0) {
    rule->trigger = Trigger::kEvery;
    rule->n = parseCount(trigger.substr(6), "every period");
    require(rule->n >= 1, "fault spec: every period must be >= 1");
  } else if (trigger.rfind("prob:", 0) == 0) {
    rule->trigger = Trigger::kProb;
    std::string operands = trigger.substr(5);
    std::size_t colon = operands.find(':');
    require(colon != std::string::npos,
            "fault spec: prob trigger needs prob:<p>:<seed>");
    rule->p = parseProbability(operands.substr(0, colon));
    rule->prob_rng = Rng(parseCount(operands.substr(colon + 1), "prob seed"));
  } else {
    throw Error("fault spec: unknown trigger '" + trigger + "'");
  }

  rule->hits_counter = obs::counter("fault." + rule->point + ".hits");
  rule->fired_counter = obs::counter("fault." + rule->point + ".fired");
  return rule;
}

}  // namespace

void configureFaults(const std::string& spec) {
  std::map<std::string, std::unique_ptr<Rule>, std::less<>> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    std::string entry = spec.substr(start, semi - start);
    if (!entry.empty()) {
      auto rule = parseEntry(entry);
      std::string point = rule->point;
      require(rules.emplace(point, std::move(rule)).second,
              "fault spec: duplicate point '" + point + "'");
    }
    start = semi + 1;
  }

  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.rules = std::move(rules);
  ++reg.generation;
  armedFlag().store(reg.rules.empty() ? 0 : 1, std::memory_order_relaxed);
  reg.gate_cv.notify_all();
}

bool configureFaultsFromEnv() {
  const char* spec = std::getenv("NANOLEAK_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return false;
  configureFaults(spec);
  return faultsArmed();
}

void resetFaults() { configureFaults(""); }

bool faultsArmed() {
  return armedFlag().load(std::memory_order_relaxed) != 0;
}

void openGate(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.rules.find(point);
  if (it == reg.rules.end() || it->second->action != Action::kGate) return;
  it->second->gate_open = true;
  reg.gate_cv.notify_all();
}

std::size_t gateWaiters(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.rules.find(point);
  return it == reg.rules.end() ? 0 : it->second->gate_waiters;
}

void hit(std::string_view point) {
  if (armedFlag().load(std::memory_order_relaxed) == 0) return;

  Registry& reg = registry();
  std::unique_lock<std::mutex> lock(reg.mutex);
  auto it = reg.rules.find(point);
  if (it == reg.rules.end()) return;
  Rule& rule = *it->second;
  rule.hits_counter.increment();
  ++rule.hits;

  bool fire = false;
  switch (rule.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kHit:
      fire = rule.hits == rule.n;
      break;
    case Trigger::kEvery:
      fire = rule.hits % rule.n == 0;
      break;
    case Trigger::kProb:
      fire = rule.prob_rng.bernoulli(rule.p);
      break;
  }
  if (!fire) return;

  static const obs::Counter total_fired = obs::counter("fault.fired");
  rule.fired_counter.increment();
  total_fired.increment();

  switch (rule.action) {
    case Action::kFail:
      throw InjectedFault(rule.point);
    case Action::kDelay: {
      std::uint64_t ms = rule.delay_ms;
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return;
    }
    case Action::kGate: {
      // The Rule may be destroyed while we sleep (reconfigure swaps the
      // map), so wait on registry state re-looked-up each wakeup: pass
      // once the gate opens or this configuration is replaced.
      std::uint64_t generation = reg.generation;
      ++rule.gate_waiters;
      reg.gate_cv.wait(lock, [&reg, &point, generation] {
        if (reg.generation != generation) return true;
        auto again = reg.rules.find(point);
        return again == reg.rules.end() || again->second->gate_open;
      });
      if (reg.generation == generation) {
        auto again = reg.rules.find(point);
        if (again != reg.rules.end()) --again->second->gate_waiters;
      }
      return;
    }
  }
}

}  // namespace nanoleak::util::fault
