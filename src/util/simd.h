/// \file
/// Width-agnostic SIMD lane abstraction for the batch solver.
///
/// `Lanes<W>` is a value type holding W doubles that are operated on in
/// lockstep; `LaneMask<W>` is its per-lane boolean companion with bitwise
/// blend semantics. The generic implementation is a plain loop over a
/// double array (correct for any W, and what the compiler auto-vectorizes
/// on targets without a hand-written backend); when the build selects the
/// AVX2 backend (`-DNANOLEAK_SIMD=avx2`, or `auto` on x86-64) `Lanes<4>`
/// is specialized onto `__m256d` intrinsics.
///
/// Backend selection is a configure-time decision surfaced here as
/// `kNativeLaneWidth` (scalar: 1, NEON: 2, AVX2: 4) and `backendName()`.
/// The scalar backend (width 1) is the bit-exact reference: a batch of
/// width-1 lanes runs the exact scalar solver code path, so vectorized
/// backends can be gated against it (see bench_solver_kernel).
///
/// Numeric contract: `laneExp` / `laneLog` / `laneLog1p` are FMA-free
/// Cephes-style polynomial evaluations with the *same* operation sequence
/// in the generic and AVX2 backends, accurate to a few ulp — far inside
/// the batch solver's ≤1e-6 equivalence gate. `laneSelect` is a bitwise
/// blend: values in discarded lanes (including inf/NaN from masked-off
/// divisions) never contaminate the result.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(NANOLEAK_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace nanoleak::util {

/// Number of lanes the configured backend operates on natively.
#if defined(NANOLEAK_SIMD_AVX2)
inline constexpr std::size_t kNativeLaneWidth = 4;  ///< AVX2: 4 x double.
#elif defined(NANOLEAK_SIMD_NEON)
inline constexpr std::size_t kNativeLaneWidth = 2;  ///< NEON: 2 x double.
#else
inline constexpr std::size_t kNativeLaneWidth = 1;  ///< Scalar reference.
#endif

/// Human-readable name of the configured backend (for bench/stats output).
inline const char* backendName() {
#if defined(NANOLEAK_SIMD_AVX2)
  return "avx2";
#elif defined(NANOLEAK_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Per-lane boolean mask. Each lane is all-ones (true) or all-zeros
/// (false) so select() can blend bitwise.
template <std::size_t W>
struct LaneMask {
  std::uint64_t bits[W];  ///< All-ones (true) / all-zeros (false) per lane.

  /// Mask with every lane false.
  static LaneMask none() {
    LaneMask m;
    for (std::size_t i = 0; i < W; ++i) m.bits[i] = 0;
    return m;
  }
  /// Mask with every lane true.
  static LaneMask all() {
    LaneMask m;
    for (std::size_t i = 0; i < W; ++i) m.bits[i] = ~std::uint64_t{0};
    return m;
  }
  /// Reads lane `i`.
  bool lane(std::size_t i) const { return bits[i] != 0; }
  /// Sets lane `i`.
  void setLane(std::size_t i, bool on) {
    bits[i] = on ? ~std::uint64_t{0} : 0;
  }
};

/// W doubles operated on in lockstep.
template <std::size_t W>
struct Lanes {
  static_assert(W >= 1, "Lanes width must be positive");
  double lane[W];  ///< Lane values, index 0 first.

  Lanes() = default;
  /// Broadcasts `x` to every lane.
  explicit Lanes(double x) {
    for (std::size_t i = 0; i < W; ++i) lane[i] = x;
  }
  /// Loads W consecutive doubles.
  static Lanes load(const double* p) {
    Lanes v;
    for (std::size_t i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  /// Stores W consecutive doubles.
  void store(double* p) const {
    for (std::size_t i = 0; i < W; ++i) p[i] = lane[i];
  }
  /// Reads lane `i`.
  double operator[](std::size_t i) const { return lane[i]; }
  /// Sets lane `i`.
  void setLane(std::size_t i, double x) { lane[i] = x; }
};

// --- Generic lanewise arithmetic -------------------------------------------

/// Lanewise addition.
template <std::size_t W>
inline Lanes<W> operator+(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
/// Lanewise subtraction.
template <std::size_t W>
inline Lanes<W> operator-(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
/// Lanewise multiplication.
template <std::size_t W>
inline Lanes<W> operator*(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
/// Lanewise division.
template <std::size_t W>
inline Lanes<W> operator/(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] / b.lane[i];
  return r;
}
/// Lanewise negation.
template <std::size_t W>
inline Lanes<W> operator-(Lanes<W> a) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = -a.lane[i];
  return r;
}

/// Lanewise minimum.
template <std::size_t W>
inline Lanes<W> laneMin(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i)
    r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
  return r;
}
/// Lanewise maximum.
template <std::size_t W>
inline Lanes<W> laneMax(Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i)
    r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  return r;
}
/// Lanewise absolute value.
template <std::size_t W>
inline Lanes<W> laneAbs(Lanes<W> a) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = std::fabs(a.lane[i]);
  return r;
}
/// Lanewise square root.
template <std::size_t W>
inline Lanes<W> laneSqrt(Lanes<W> a) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = std::sqrt(a.lane[i]);
  return r;
}
/// Lanewise floor.
template <std::size_t W>
inline Lanes<W> laneFloor(Lanes<W> a) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) r.lane[i] = std::floor(a.lane[i]);
  return r;
}

// --- Generic comparisons / mask ops ----------------------------------------

/// Lanewise `a < b`.
template <std::size_t W>
inline LaneMask<W> laneLT(Lanes<W> a, Lanes<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.setLane(i, a.lane[i] < b.lane[i]);
  return m;
}
/// Lanewise `a <= b`.
template <std::size_t W>
inline LaneMask<W> laneLE(Lanes<W> a, Lanes<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.setLane(i, a.lane[i] <= b.lane[i]);
  return m;
}
/// Lanewise `a > b`.
template <std::size_t W>
inline LaneMask<W> laneGT(Lanes<W> a, Lanes<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.setLane(i, a.lane[i] > b.lane[i]);
  return m;
}
/// Lanewise `a >= b`.
template <std::size_t W>
inline LaneMask<W> laneGE(Lanes<W> a, Lanes<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.setLane(i, a.lane[i] >= b.lane[i]);
  return m;
}
/// Lanewise `a == b`.
template <std::size_t W>
inline LaneMask<W> laneEQ(Lanes<W> a, Lanes<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.setLane(i, a.lane[i] == b.lane[i]);
  return m;
}

/// Lanewise mask conjunction.
template <std::size_t W>
inline LaneMask<W> maskAnd(LaneMask<W> a, LaneMask<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.bits[i] = a.bits[i] & b.bits[i];
  return m;
}
/// Lanewise mask disjunction.
template <std::size_t W>
inline LaneMask<W> maskOr(LaneMask<W> a, LaneMask<W> b) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.bits[i] = a.bits[i] | b.bits[i];
  return m;
}
/// Lanewise mask negation.
template <std::size_t W>
inline LaneMask<W> maskNot(LaneMask<W> a) {
  LaneMask<W> m;
  for (std::size_t i = 0; i < W; ++i) m.bits[i] = ~a.bits[i];
  return m;
}
/// True when any lane of the mask is true.
template <std::size_t W>
inline bool maskAny(LaneMask<W> a) {
  for (std::size_t i = 0; i < W; ++i)
    if (a.bits[i] != 0) return true;
  return false;
}
/// True when every lane of the mask is true.
template <std::size_t W>
inline bool maskAll(LaneMask<W> a) {
  for (std::size_t i = 0; i < W; ++i)
    if (a.bits[i] == 0) return false;
  return true;
}

/// Bitwise blend: lane i of the result is a's lane where the mask lane is
/// true, b's lane otherwise. Discarded lanes never contaminate the result
/// (inf/NaN in a masked-off lane is simply not selected).
template <std::size_t W>
inline Lanes<W> laneSelect(LaneMask<W> m, Lanes<W> a, Lanes<W> b) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) {
    std::uint64_t ab;
    std::uint64_t bb;
    std::memcpy(&ab, &a.lane[i], sizeof ab);
    std::memcpy(&bb, &b.lane[i], sizeof bb);
    const std::uint64_t rb = (ab & m.bits[i]) | (bb & ~m.bits[i]);
    std::memcpy(&r.lane[i], &rb, sizeof rb);
  }
  return r;
}

// --- AVX2 backend -----------------------------------------------------------

#if defined(NANOLEAK_SIMD_AVX2)

/// AVX2 mask: four all-ones/all-zeros double lanes in a __m256d.
template <>
struct LaneMask<4> {
  __m256d m;  ///< All-ones (true) / all-zeros (false) per double lane.

  /// Mask with every lane false.
  static LaneMask none() { return {_mm256_setzero_pd()}; }
  /// Mask with every lane true.
  static LaneMask all() {
    return {_mm256_castsi256_pd(_mm256_set1_epi64x(-1))};
  }
  /// Reads lane `i`.
  bool lane(std::size_t i) const {
    return (_mm256_movemask_pd(m) >> i) & 1;
  }
  /// Sets lane `i`.
  void setLane(std::size_t i, bool on) {
    alignas(32) std::uint64_t raw[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(raw),
                       _mm256_castpd_si256(m));
    raw[i] = on ? ~std::uint64_t{0} : 0;
    m = _mm256_castsi256_pd(
        _mm256_load_si256(reinterpret_cast<const __m256i*>(raw)));
  }
};

/// AVX2 lanes: four doubles in a __m256d.
template <>
struct Lanes<4> {
  __m256d v;  ///< The four lane values.

  Lanes() = default;
  /// Wraps a raw vector register.
  Lanes(__m256d raw) : v(raw) {}
  /// Broadcasts `x` to every lane.
  explicit Lanes(double x) : v(_mm256_set1_pd(x)) {}
  /// Loads 4 consecutive doubles (unaligned).
  static Lanes load(const double* p) { return {_mm256_loadu_pd(p)}; }
  /// Stores 4 consecutive doubles (unaligned).
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  /// Reads lane `i`.
  double operator[](std::size_t i) const {
    alignas(32) double raw[4];
    _mm256_store_pd(raw, v);
    return raw[i];
  }
  /// Sets lane `i`.
  void setLane(std::size_t i, double x) {
    alignas(32) double raw[4];
    _mm256_store_pd(raw, v);
    raw[i] = x;
    v = _mm256_load_pd(raw);
  }
};

/// Lanewise addition (AVX2).
inline Lanes<4> operator+(Lanes<4> a, Lanes<4> b) {
  return {_mm256_add_pd(a.v, b.v)};
}
/// Lanewise subtraction (AVX2).
inline Lanes<4> operator-(Lanes<4> a, Lanes<4> b) {
  return {_mm256_sub_pd(a.v, b.v)};
}
/// Lanewise multiplication (AVX2).
inline Lanes<4> operator*(Lanes<4> a, Lanes<4> b) {
  return {_mm256_mul_pd(a.v, b.v)};
}
/// Lanewise division (AVX2).
inline Lanes<4> operator/(Lanes<4> a, Lanes<4> b) {
  return {_mm256_div_pd(a.v, b.v)};
}
/// Lanewise negation (AVX2).
inline Lanes<4> operator-(Lanes<4> a) {
  return {_mm256_sub_pd(_mm256_setzero_pd(), a.v)};
}
/// Lanewise minimum (AVX2).
inline Lanes<4> laneMin(Lanes<4> a, Lanes<4> b) {
  return {_mm256_min_pd(b.v, a.v)};
}
/// Lanewise maximum (AVX2).
inline Lanes<4> laneMax(Lanes<4> a, Lanes<4> b) {
  return {_mm256_max_pd(b.v, a.v)};
}
/// Lanewise absolute value (AVX2).
inline Lanes<4> laneAbs(Lanes<4> a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
/// Lanewise square root (AVX2).
inline Lanes<4> laneSqrt(Lanes<4> a) { return {_mm256_sqrt_pd(a.v)}; }
/// Lanewise floor (AVX2).
inline Lanes<4> laneFloor(Lanes<4> a) { return {_mm256_floor_pd(a.v)}; }

/// Lanewise `a < b` (AVX2).
inline LaneMask<4> laneLT(Lanes<4> a, Lanes<4> b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
/// Lanewise `a <= b` (AVX2).
inline LaneMask<4> laneLE(Lanes<4> a, Lanes<4> b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
/// Lanewise `a > b` (AVX2).
inline LaneMask<4> laneGT(Lanes<4> a, Lanes<4> b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
/// Lanewise `a >= b` (AVX2).
inline LaneMask<4> laneGE(Lanes<4> a, Lanes<4> b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
/// Lanewise `a == b` (AVX2).
inline LaneMask<4> laneEQ(Lanes<4> a, Lanes<4> b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}

/// Lanewise mask conjunction (AVX2).
inline LaneMask<4> maskAnd(LaneMask<4> a, LaneMask<4> b) {
  return {_mm256_and_pd(a.m, b.m)};
}
/// Lanewise mask disjunction (AVX2).
inline LaneMask<4> maskOr(LaneMask<4> a, LaneMask<4> b) {
  return {_mm256_or_pd(a.m, b.m)};
}
/// Lanewise mask negation (AVX2).
inline LaneMask<4> maskNot(LaneMask<4> a) {
  return {_mm256_xor_pd(a.m, LaneMask<4>::all().m)};
}
/// True when any lane of the mask is true (AVX2).
inline bool maskAny(LaneMask<4> a) { return _mm256_movemask_pd(a.m) != 0; }
/// True when every lane of the mask is true (AVX2).
inline bool maskAll(LaneMask<4> a) { return _mm256_movemask_pd(a.m) == 0xf; }

/// Bitwise blend: a where mask true, b otherwise (AVX2).
inline Lanes<4> laneSelect(LaneMask<4> m, Lanes<4> a, Lanes<4> b) {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}

/// Scales each lane by 2^n for integral-valued `n` lanes in [-1021, 1021]
/// (exponent bit manipulation; the exp() argument clamp keeps n in range).
inline Lanes<4> laneLdexp(Lanes<4> x, Lanes<4> n) {
  const __m128i n32 = _mm256_cvtpd_epi32(n.v);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i biased = _mm256_add_epi64(n64, _mm256_set1_epi64x(1023));
  const __m256d scale =
      _mm256_castsi256_pd(_mm256_slli_epi64(biased, 52));
  return {_mm256_mul_pd(x.v, scale)};
}

/// Splits each lane into mantissa in [sqrt(1/2), sqrt(2)) and integral
/// exponent so that lane = mantissa * 2^exponent (frexp with the Cephes
/// normalization used by laneLog).
inline void laneFrexp(Lanes<4> x, Lanes<4>& mantissa, Lanes<4>& exponent) {
  const __m256i bits = _mm256_castpd_si256(x.v);
  const __m256i exp_field = _mm256_srli_epi64(bits, 52);
  const __m256i exp_masked =
      _mm256_and_si256(exp_field, _mm256_set1_epi64x(0x7ff));
  const __m256i unbiased =
      _mm256_sub_epi64(exp_masked, _mm256_set1_epi64x(1022));
  // int64 -> double via the signed magic-number trick: adding the bit
  // pattern of 2^52 + 2^51 folds a small signed integer into the mantissa
  // (valid for |v| < 2^51, far beyond the 11-bit exponent range here).
  const __m256i magic = _mm256_set1_epi64x(0x4338000000000000LL);
  const __m256d as_double = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(unbiased, magic)),
      _mm256_castsi256_pd(magic));
  const __m256i mant_bits = _mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3fe0000000000000LL));  // exponent of 0.5
  Lanes<4> m{_mm256_castsi256_pd(mant_bits)};
  Lanes<4> e{as_double};
  // Cephes normalization: fold mantissas below sqrt(1/2) up a binade.
  const LaneMask<4> low = laneLT(m, Lanes<4>(0.70710678118654752440));
  mantissa = laneSelect(low, m + m, m);
  exponent = laneSelect(low, e - Lanes<4>(1.0), e);
}

#endif  // NANOLEAK_SIMD_AVX2

// --- Generic ldexp/frexp (any width without a specialized backend) ----------

/// Lanewise `x * 2^n` (n integral, carried as doubles).
template <std::size_t W>
inline Lanes<W> laneLdexp(Lanes<W> x, Lanes<W> n) {
  Lanes<W> r;
  for (std::size_t i = 0; i < W; ++i) {
    const std::int64_t biased = static_cast<std::int64_t>(n.lane[i]) + 1023;
    const std::uint64_t bits = static_cast<std::uint64_t>(biased) << 52;
    double scale;
    std::memcpy(&scale, &bits, sizeof scale);
    r.lane[i] = x.lane[i] * scale;
  }
  return r;
}

/// Lanewise frexp: splits `x` into mantissa in [0.5, 1) and exponent.
template <std::size_t W>
inline void laneFrexp(Lanes<W> x, Lanes<W>& mantissa, Lanes<W>& exponent) {
  for (std::size_t i = 0; i < W; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &x.lane[i], sizeof bits);
    const std::int64_t unbiased =
        static_cast<std::int64_t>((bits >> 52) & 0x7ff) - 1022;
    const std::uint64_t mant_bits =
        (bits & 0x000fffffffffffffULL) | 0x3fe0000000000000ULL;
    double m;
    std::memcpy(&m, &mant_bits, sizeof m);
    double e = static_cast<double>(unbiased);
    if (m < 0.70710678118654752440) {
      m += m;
      e -= 1.0;
    }
    mantissa.lane[i] = m;
    exponent.lane[i] = e;
  }
}

// --- Transcendentals (identical operation sequence on every backend) --------

/// Lanewise e^x, Cephes-style: range-reduce by powers of two, evaluate a
/// Pade rational in the reduced argument, rescale. Inputs are clamped to
/// [-700, 700] (callers in the device model clamp far tighter); accuracy
/// is a few ulp, well inside the batch solver's equivalence gate.
template <std::size_t W>
inline Lanes<W> laneExp(Lanes<W> x) {
  x = laneMax(laneMin(x, Lanes<W>(700.0)), Lanes<W>(-700.0));
  // n = floor(x * log2(e) + 0.5); reduce with ln2 split into hi+lo parts.
  const Lanes<W> n =
      laneFloor(x * Lanes<W>(1.4426950408889634073599) + Lanes<W>(0.5));
  x = x - n * Lanes<W>(6.93145751953125e-1);
  x = x - n * Lanes<W>(1.42860682030941723212e-6);
  const Lanes<W> xx = x * x;
  // px = x * P(xx), qx = Q(xx)  (Cephes expd coefficients).
  Lanes<W> px = Lanes<W>(1.26177193074810590878e-4);
  px = px * xx + Lanes<W>(3.02994407707441961300e-2);
  px = px * xx + Lanes<W>(9.99999999999999999910e-1);
  px = px * x;
  Lanes<W> qx = Lanes<W>(3.00198505138664455042e-6);
  qx = qx * xx + Lanes<W>(2.52448340349684104192e-3);
  qx = qx * xx + Lanes<W>(2.27265548208155028766e-1);
  qx = qx * xx + Lanes<W>(2.00000000000000000005e0);
  const Lanes<W> e = px / (qx - px);
  return laneLdexp(Lanes<W>(1.0) + e + e, n);
}

/// Lanewise natural log, Cephes-style: frexp split, rational polynomial in
/// the mantissa, exponent re-assembled with a split ln2. Domain: strictly
/// positive finite inputs (the device model only takes logs of 1 + e^x).
template <std::size_t W>
inline Lanes<W> laneLog(Lanes<W> x) {
  Lanes<W> m;
  Lanes<W> e;
  laneFrexp(x, m, e);
  const Lanes<W> z = m - Lanes<W>(1.0);
  const Lanes<W> zz = z * z;
  // y = z^3 * P(z)/Q(z)  (Cephes logd coefficients).
  Lanes<W> p = Lanes<W>(1.01875663804580931796e-4);
  p = p * z + Lanes<W>(4.97494994976747001425e-1);
  p = p * z + Lanes<W>(4.70579119878881725854e0);
  p = p * z + Lanes<W>(1.44989225341610930846e1);
  p = p * z + Lanes<W>(1.79368678507819816313e1);
  p = p * z + Lanes<W>(7.70838733755885391666e0);
  Lanes<W> q = z + Lanes<W>(1.12873587189167450590e1);
  q = q * z + Lanes<W>(4.52279145837532221105e1);
  q = q * z + Lanes<W>(8.29875266912776603211e1);
  q = q * z + Lanes<W>(7.11544750618563894466e1);
  q = q * z + Lanes<W>(2.31251620126765340583e1);
  Lanes<W> y = z * zz * (p / q);
  y = y - e * Lanes<W>(2.121944400546905827679e-4);
  y = y - Lanes<W>(0.5) * zz;
  return z + y + e * Lanes<W>(0.693359375);
}

/// Lanewise log(1 + x) for x >= 0, accurate for small x via the classic
/// w = 1 + x correction: log1p(x) = log(w) * x / (w - 1), with the w == 1
/// lanes blended to x itself (where log1p(x) == x to double precision).
template <std::size_t W>
inline Lanes<W> laneLog1p(Lanes<W> x) {
  const Lanes<W> one(1.0);
  const Lanes<W> w = one + x;
  const LaneMask<W> exact = laneEQ(w, one);
  // Masked-off lanes may divide by zero; the blend discards them.
  const Lanes<W> corrected = laneLog(w) * (x / (w - one));
  return laneSelect(exact, x, corrected);
}

}  // namespace nanoleak::util
