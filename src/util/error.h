// Library error type and precondition checks.
#pragma once

#include <stdexcept>
#include <string>

namespace nanoleak {

/// Base class for all errors thrown by nanoleak.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file or netlist description is malformed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line);
  /// 1-based line number in the offending input, or 0 if unknown.
  int line() const { return line_; }

 private:
  int line_;
};

/// Thrown when a numerical routine fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Throws nanoleak::Error with `message` if `condition` is false.
/// Used for precondition checks on public API boundaries (I.5/I.6 of the
/// C++ Core Guidelines: state and check preconditions).
void require(bool condition, const std::string& message);

}  // namespace nanoleak
