// Physical constants used by the compact device models.
//
// All quantities are SI unless the name says otherwise. The library works
// internally in SI (volts, amperes, meters, kelvin); helpers in units.h
// convert to the nA / nm / Angstrom units the paper plots.
#pragma once

namespace nanoleak {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;

/// Relative permittivity of silicon.
inline constexpr double kEpsSiRel = 11.7;

/// Relative permittivity of SiO2.
inline constexpr double kEpsOxRel = 3.9;

/// Permittivity of silicon [F/m].
inline constexpr double kEpsSi = kEpsSiRel * kEpsilon0;

/// Permittivity of SiO2 [F/m].
inline constexpr double kEpsOx = kEpsOxRel * kEpsilon0;

/// Silicon band gap at 0 K [eV], for the Varshni model.
inline constexpr double kBandGap0K_eV = 1.17;

/// Varshni alpha for silicon [eV/K].
inline constexpr double kVarshniAlpha = 4.73e-4;

/// Varshni beta for silicon [K].
inline constexpr double kVarshniBeta = 636.0;

/// Intrinsic carrier concentration of silicon at 300 K [1/m^3].
inline constexpr double kNi300 = 1.45e16;

/// Room temperature [K].
inline constexpr double kRoomTemperatureK = 300.0;

/// Thermal voltage kT/q at temperature T [V].
inline constexpr double thermalVoltage(double temperature_k) {
  return kBoltzmann * temperature_k / kElementaryCharge;
}

/// Silicon band gap at temperature T [eV] (Varshni).
inline constexpr double siliconBandGapEv(double temperature_k) {
  return kBandGap0K_eV - kVarshniAlpha * temperature_k * temperature_k /
                             (temperature_k + kVarshniBeta);
}

}  // namespace nanoleak
