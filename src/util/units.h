// Unit helpers. Internally everything is SI; the paper's figures use
// nanoamperes, nanometers, Angstroms and degrees Celsius, so conversions
// live here to keep magic factors out of model code.
#pragma once

namespace nanoleak {

inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kAngstrom = 1e-10;

/// Nanometers -> meters.
inline constexpr double nm(double value) { return value * kNano; }

/// Angstroms -> meters.
inline constexpr double angstrom(double value) { return value * kAngstrom; }

/// Millivolts -> volts.
inline constexpr double mV(double value) { return value * kMilli; }

/// Nanoamperes -> amperes.
inline constexpr double nA(double value) { return value * kNano; }

/// Microamperes -> amperes.
inline constexpr double uA(double value) { return value * kMicro; }

/// Amperes -> nanoamperes (for reporting).
inline constexpr double toNanoAmps(double amps) { return amps / kNano; }

/// Meters -> nanometers (for reporting).
inline constexpr double toNanoMeters(double meters) { return meters / kNano; }

/// Degrees Celsius -> kelvin.
inline constexpr double celsiusToKelvin(double celsius) {
  return celsius + 273.15;
}

/// Kelvin -> degrees Celsius.
inline constexpr double kelvinToCelsius(double kelvin) {
  return kelvin - 273.15;
}

}  // namespace nanoleak
