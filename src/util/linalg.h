// Small dense linear algebra: just enough for the DC solver's per-cluster
// Newton blocks (a handful of unknowns each).
#pragma once

#include <cstddef>
#include <vector>

namespace nanoleak {

/// Dense row-major matrix A (n x n) and right-hand side b: solves A x = b
/// in place with partial pivoting and returns x. Returns false (leaving x
/// unspecified) if the matrix is numerically singular.
bool solveDense(std::vector<double>& matrix, std::vector<double>& rhs,
                std::size_t n);

}  // namespace nanoleak
