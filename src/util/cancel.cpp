#include "util/cancel.h"

#include <limits>

namespace nanoleak::util {

namespace {

thread_local const CancelToken* g_current_token = nullptr;

}  // namespace

std::uint64_t CancelToken::remainingMs() const {
  if (!has_deadline_) return std::numeric_limits<std::uint64_t>::max();
  const auto now = Clock::now();
  if (now >= deadline_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now)
          .count());
}

CancelScope::CancelScope(const CancelToken* token)
    : previous_(g_current_token) {
  g_current_token = token;
}

CancelScope::~CancelScope() { g_current_token = previous_; }

const CancelToken* currentCancelToken() { return g_current_token; }

void pollCancel() {
  const CancelToken* token = g_current_token;
  if (token != nullptr && token->expired()) {
    throw DeadlineExceeded("deadline exceeded or request cancelled");
  }
}

}  // namespace nanoleak::util
