// Fixed-bin histogram used to regenerate the paper's Fig. 10 distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nanoleak {

/// Equal-width histogram over [lo, hi). Out-of-range samples are clamped
/// into the first/last bin so totals always match the sample count (the
/// paper's histograms likewise show the full population).
class Histogram {
 public:
  /// Requires hi > lo and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning [min, max] of the data.
  static Histogram fromData(std::span<const double> values, std::size_t bins);

  void add(double value);
  void addAll(std::span<const double> values);

  std::size_t binCount() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  /// Center of bin `bin`.
  double binCenter(std::size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t totalCount() const { return total_; }

  /// Index of the most populated bin (mode).
  std::size_t modeBin() const;

  /// Adds another histogram's counts bin-wise. Requires identical binning
  /// ([lo, hi) and bin count); the merge is exact, so partial histograms
  /// built over disjoint sample chunks compose independently of chunk
  /// execution order.
  void merge(const Histogram& other);

  /// Renders "center count" rows, one per bin, optionally with a bar chart.
  std::string toString(bool with_bars = false) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nanoleak
