#include "util/linalg.h"

#include <cmath>

#include "util/error.h"

namespace nanoleak {

bool solveDense(std::vector<double>& matrix, std::vector<double>& rhs,
                std::size_t n) {
  require(matrix.size() == n * n, "solveDense: matrix size mismatch");
  require(rhs.size() == n, "solveDense: rhs size mismatch");
  auto a = [&](std::size_t r, std::size_t c) -> double& {
    return matrix[r * n + c];
  };

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t row = col + 1; row < n; ++row) {
      const double candidate = std::abs(a(row, col));
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) {
      return false;
    }
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
      }
      std::swap(rhs[pivot], rhs[col]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a(row, col) / a(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a(row, c) -= factor * a(col, c);
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double sum = rhs[i];
    for (std::size_t c = i + 1; c < n; ++c) {
      sum -= a(i, c) * rhs[c];
    }
    rhs[i] = sum / a(i, i);
    if (!std::isfinite(rhs[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace nanoleak
