// Deterministic random number generation.
//
// All stochastic behaviour in the library (Monte-Carlo sampling, random
// vector generation, synthetic circuit generation) flows through Rng so
// that every experiment is reproducible from a printed seed.
#pragma once

#include <cstdint>

namespace nanoleak {

/// xoshiro256++ generator with splitmix64 seeding.
///
/// Chosen over std::mt19937 because its stream is identical across
/// standard-library implementations, which keeps golden test values stable.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Standard normal variate (Box-Muller, cached second value).
  double gaussian();

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Derives an independent child generator (for per-instance streams).
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Counter-based stream derivation: a well-mixed 64-bit seed for stream
/// number `stream` of a master `seed`.
///
/// Unlike split(), which advances a generator sequentially, this is a pure
/// function of (seed, stream) - stream k can be derived without drawing
/// streams 0..k-1. The parallel sweep engine keys per-sample generators
/// this way so a Monte-Carlo population is bit-identical no matter how its
/// samples are distributed over threads.
std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace nanoleak
