// Small string utilities shared by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nanoleak {

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view text);

/// ASCII upper-casing (locale-independent).
std::string toUpper(std::string_view text);

/// ASCII lower-casing (locale-independent).
std::string toLower(std::string_view text);

/// True if `text` begins with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

}  // namespace nanoleak
