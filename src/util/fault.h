// Deterministic fault injection for resilience testing.
//
// Code under test marks its failure-capable sites with
// FAULT_POINT("name"); by default every site is a single relaxed atomic
// load (no lock, no allocation, no behaviour change). Tests and the
// chaos harness arm sites through configureFaults() (programmatic) or
// configureFaultsFromEnv() (the NANOLEAK_FAULTS variable the CLI reads
// at startup), after which an armed site can
//
//   - fail:   throw util::InjectedFault (an Error subclass, so every
//             existing error path handles it like a real failure),
//   - delay:  sleep a fixed number of milliseconds (injected slowness
//             for deadline and timeout tests),
//   - gate:   block until openGate()/resetFaults() releases it (the
//             deterministic way to hold an executor mid-flight while a
//             test fills a queue behind it).
//
// Spec grammar (semicolon-separated entries; no whitespace):
//
//   point=action[@trigger]
//   action  := fail | delay:<ms> | gate
//   trigger := always | hit:<n> | every:<n> | prob:<p>:<seed>
//
// Examples:
//   serve.socket.write=fail@hit:3        third write fails, rest pass
//   plan_cache.build=fail@every:2        every second build fails
//   serve.executor.dispatch=delay:50     50 ms of slowness per request
//   table_cache.build=fail@prob:0.25:42  seeded Bernoulli per hit
//
// Determinism: triggers depend only on the per-point hit count (and,
// for prob, a seeded xoshiro stream advanced once per hit), never on
// wall-clock or thread scheduling of *other* points. The same traffic
// in the same order sees the same faults.
//
// Observability: every armed point registers fault.<point>.hits and
// fault.<point>.fired counters, plus the process-wide fault.fired
// aggregate, so a chaos run can assert its schedule actually executed.
#pragma once

#include <string>
#include <string_view>

#include "util/error.h"

namespace nanoleak::util {

/// Thrown by a FAULT_POINT armed with the `fail` action. Subclasses
/// Error so production error handling treats it like any real failure;
/// the distinct type lets tests assert the failure was the injected one.
class InjectedFault : public Error {
 public:
  /// Names the fault point in the message.
  explicit InjectedFault(const std::string& point)
      : Error("injected fault at '" + point + "'"), point_(point) {}
  /// The fault-point name that fired.
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

namespace fault {

/// Arms fault points from a spec string (see file comment for the
/// grammar). Replaces any previous configuration; an empty spec is
/// equivalent to resetFaults(). Throws nanoleak::Error on a malformed
/// spec (unknown action/trigger, non-numeric fields, p outside [0, 1]).
void configureFaults(const std::string& spec);

/// configureFaults(getenv("NANOLEAK_FAULTS")) when the variable is set
/// and non-empty; no-op otherwise. Returns true when faults were armed.
bool configureFaultsFromEnv();

/// Disarms every point and releases every thread blocked in a gate.
void resetFaults();

/// True while any point is armed (the fast-path check FAULT_POINT
/// performs; exposed for tests).
bool faultsArmed();

/// Releases the threads currently blocked at `point`'s gate and leaves
/// the gate open: later hits pass through. No-op for non-gate points.
void openGate(const std::string& point);

/// Number of threads currently blocked at `point`'s gate (0 for
/// non-gate or unarmed points). Lets tests wait deterministically for a
/// victim thread to reach the gate before acting.
std::size_t gateWaiters(const std::string& point);

/// The implementation behind FAULT_POINT: evaluates `point`'s rule if
/// armed. May throw InjectedFault, sleep, or block (see actions).
void hit(std::string_view point);

}  // namespace fault

}  // namespace nanoleak::util

/// Marks a failure-capable site. `name` must be a string literal (the
/// site's stable identity in specs, counters and docs/RESILIENCE.md).
/// Disarmed cost: one relaxed atomic load.
#define FAULT_POINT(name) ::nanoleak::util::fault::hit(name)
