#include "util/statistics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nanoleak {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  require(count_ > 0, "RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  require(count_ > 0, "RunningStats::max: no samples");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double combined_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = combined_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double quantileSorted(std::span<const double> sorted, double q) {
  require(!sorted.empty(), "quantileSorted: empty sample");
  require(q >= 0.0 && q <= 1.0, "quantileSorted: q out of [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

SampleSummary summarize(std::span<const double> values) {
  SampleSummary summary;
  summary.count = values.size();
  if (values.empty()) {
    return summary;
  }
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  summary.median = quantileSorted(sorted, 0.5);
  summary.p95 = quantileSorted(sorted, 0.95);
  summary.p99 = quantileSorted(sorted, 0.99);
  return summary;
}

}  // namespace nanoleak
