#include "util/error.h"

namespace nanoleak {

ParseError::ParseError(const std::string& what, int line)
    : Error(line > 0 ? what + " (line " + std::to_string(line) + ")" : what),
      line_(line) {}

void require(bool condition, const std::string& message) {
  if (!condition) {
    throw Error(message);
  }
}

}  // namespace nanoleak
