#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace nanoleak {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bins >= 1, "Histogram: need at least one bin");
}

Histogram Histogram::fromData(std::span<const double> values,
                              std::size_t bins) {
  require(!values.empty(), "Histogram::fromData: empty sample");
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (hi <= lo) {
    // Degenerate sample: widen symmetrically so binning is well defined.
    const double pad = std::max(1e-12, std::abs(lo) * 1e-6);
    lo -= pad;
    hi += pad;
  }
  Histogram histogram(lo, hi, bins);
  histogram.addAll(values);
  return histogram;
}

void Histogram::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::addAll(std::span<const double> values) {
  for (double v : values) {
    add(v);
  }
}

std::size_t Histogram::count(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::count: bin out of range");
  return counts_[bin];
}

double Histogram::binCenter(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::binCenter: bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

void Histogram::merge(const Histogram& other) {
  require(lo_ == other.lo_ && hi_ == other.hi_ &&
              counts_.size() == other.counts_.size(),
          "Histogram::merge: binning mismatch");
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    counts_[bin] += other.counts_[bin];
  }
  total_ += other.total_;
}

std::size_t Histogram::modeBin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::toString(bool with_bars) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty() ? 0 : counts_[modeBin()];
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    out << binCenter(bin) << '\t' << counts_[bin];
    if (with_bars && peak > 0) {
      const std::size_t bars = counts_[bin] * 50 / peak;
      out << '\t' << std::string(bars, '#');
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace nanoleak
