// The three-component leakage decomposition the whole library reports.
#pragma once

namespace nanoleak::device {

/// Leakage split into the paper's three mechanisms [A].
///
/// Attribution follows the paper's Eq. (6) / reference [2]: subthreshold is
/// counted for OFF transistors only (ON devices carry transit current, not
/// leakage of their own), gate tunneling and junction BTBT are counted for
/// every device. Itotal = Isub + Igate + Ibtbt.
struct LeakageBreakdown {
  double subthreshold = 0.0;
  double gate = 0.0;
  double btbt = 0.0;

  double total() const { return subthreshold + gate + btbt; }

  LeakageBreakdown& operator+=(const LeakageBreakdown& other) {
    subthreshold += other.subthreshold;
    gate += other.gate;
    btbt += other.btbt;
    return *this;
  }

  LeakageBreakdown& operator-=(const LeakageBreakdown& other) {
    subthreshold -= other.subthreshold;
    gate -= other.gate;
    btbt -= other.btbt;
    return *this;
  }

  friend LeakageBreakdown operator+(LeakageBreakdown a,
                                    const LeakageBreakdown& b) {
    a += b;
    return a;
  }

  friend LeakageBreakdown operator-(LeakageBreakdown a,
                                    const LeakageBreakdown& b) {
    a -= b;
    return a;
  }

  LeakageBreakdown scaled(double factor) const {
    return {subthreshold * factor, gate * factor, btbt * factor};
  }
};

}  // namespace nanoleak::device
