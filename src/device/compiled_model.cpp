#include "device/compiled_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/constants.h"

namespace nanoleak::device {
namespace {

/// thresholdVoltage with the bias-independent terms folded. Mirrors
/// DeviceParams::thresholdVoltage's summation order exactly: vth_prefix is
/// the (vth0 + halo_shift) + roll_off prefix, then DIBL, body, temperature
/// and variation terms are added in the original order.
double compiledVth(const DeviceCoeffs& c, double vds, double vsb) {
  const double dibl_shift = c.neg_dibl * std::max(0.0, vds);
  const double body_shift =
      c.body_gamma *
      (std::sqrt(c.phi_s + std::max(0.0, vsb)) - c.sqrt_phi_s);
  return c.vth_prefix + dibl_shift + body_shift + c.temp_shift + c.delta_vth;
}

/// tunnelDensity with the tox and temperature exponentials cached (they are
/// the trailing factors of the original product, so substituting the cached
/// values preserves the association order).
double compiledTunnelDensity(const DeviceCoeffs& c, double vox) {
  const double mag = std::abs(vox);
  const double j = c.jg0 * mag * std::exp(c.alpha_v * (mag - 1.0)) *
                   c.tox_factor * c.temp_factor;
  return vox >= 0.0 ? j : -j;
}

/// channelCurrent on cached coefficients (see models.cpp for the model).
double compiledChannelCurrent(const DeviceCoeffs& c, double vgs, double vds,
                              double vsb) {
  const double vth = compiledVth(c, vds, vsb);
  const double x = (vgs - vth) / c.two_n_vt;
  const double inv = softLog1pExp(x);
  const double drive = inv * inv / (1.0 + c.theta_vsat * inv);
  const double v_sat = c.n_vt + c.zeta_two_n_vt * inv;
  const double vds_factor = 1.0 - std::exp(-vds / v_sat);
  return c.channel_pref * drive * vds_factor * (1.0 + c.lambda * vds);
}

/// gateTunneling on cached coefficients.
GateTunneling compiledGateTunneling(const DeviceCoeffs& c, double vg,
                                    double vd, double vs, double vb) {
  GateTunneling g;
  g.igso = c.a_ov * compiledTunnelDensity(c, vg - vs);
  g.igdo = c.a_ov * compiledTunnelDensity(c, vg - vd);

  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - vb;
  const double vth = compiledVth(c, std::abs(vds), vsb);
  const double inversion =
      1.0 / (1.0 + std::exp(-(vgs - vth) / c.half_n_vt));
  g.igcs = inversion * c.a_half * compiledTunnelDensity(c, vg - vs);
  g.igcd = inversion * c.a_half * compiledTunnelDensity(c, vg - vd);

  g.igb = c.c_gb * compiledTunnelDensity(c, vg - vb);
  return g;
}

/// junctionBtbt on cached coefficients.
double compiledJunctionBtbt(const DeviceCoeffs& c, double vrev) {
  const double v = softPlus(vrev, 0.01);
  if (v < 1e-12) {
    return 0.0;
  }
  const double field = std::sqrt(c.btbt_qn2 * (v + c.vbi) / kEpsSi);
  return c.btbt_pref * (field / 1e8) * v / c.sqrt_eg *
         std::exp(-c.b_eff / field);
}

BiasPoint mirrored(const BiasPoint& bias) {
  return BiasPoint{-bias.vg, -bias.vd, -bias.vs, -bias.vb};
}

TerminalCurrents nmosCurrents(const DeviceCoeffs& c, const BiasPoint& bias) {
  // The physical source is whichever diffusion sits at the lower potential;
  // evaluate in that frame and swap the results back afterwards.
  double vd = bias.vd;
  double vs = bias.vs;
  const bool swapped = vd < vs;
  if (swapped) {
    std::swap(vd, vs);
  }

  const double vgs = bias.vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - bias.vb;

  const double ids = compiledChannelCurrent(c, vgs, vds, vsb);
  const GateTunneling gt =
      compiledGateTunneling(c, bias.vg, vd, vs, bias.vb);
  const double btbt_d = compiledJunctionBtbt(c, vd - bias.vb);
  const double btbt_s = compiledJunctionBtbt(c, vs - bias.vb);

  TerminalCurrents out;
  out.gate = gt.totalFromGate();
  out.drain = ids + btbt_d - gt.igdo - gt.igcd;
  out.source = -ids + btbt_s - gt.igso - gt.igcs;
  out.bulk = -(btbt_d + btbt_s) - gt.igb;
  if (swapped) {
    std::swap(out.drain, out.source);
  }
  return out;
}

/// Steep inversion logistic shared by the igcs/igcd channel components
/// (mirrors the expression inside compiledGateTunneling exactly).
double inversionFactor(const DeviceCoeffs& c, double vg, double vd,
                       double vs, double vb) {
  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - vb;
  const double vth = compiledVth(c, std::abs(vds), vsb);
  return 1.0 / (1.0 + std::exp(-(vgs - vth) / c.half_n_vt));
}

/// One NMOS-frame terminal current, computing only the components that
/// terminal sums. Each component expression is the exact one
/// compiledGateTunneling / compiledChannelCurrent / compiledJunctionBtbt
/// evaluate, so the result is bit-identical to the corresponding member
/// of nmosCurrents.
double nmosTerminalCurrent(const DeviceCoeffs& c, const BiasPoint& bias,
                           CompiledTerminal terminal) {
  double vd = bias.vd;
  double vs = bias.vs;
  const bool swapped = vd < vs;
  if (swapped) {
    std::swap(vd, vs);
    // nmosCurrents swaps the drain/source results back after evaluating in
    // the sorted frame; requesting a single terminal swaps the request.
    if (terminal == CompiledTerminal::kDrain) {
      terminal = CompiledTerminal::kSource;
    } else if (terminal == CompiledTerminal::kSource) {
      terminal = CompiledTerminal::kDrain;
    }
  }

  switch (terminal) {
    case CompiledTerminal::kGate:
      return compiledGateTunneling(c, bias.vg, vd, vs, bias.vb)
          .totalFromGate();
    case CompiledTerminal::kDrain: {
      const double vgs = bias.vg - vs;
      const double vds = vd - vs;
      const double vsb = vs - bias.vb;
      const double ids = compiledChannelCurrent(c, vgs, vds, vsb);
      const double btbt_d = compiledJunctionBtbt(c, vd - bias.vb);
      const double igdo = c.a_ov * compiledTunnelDensity(c, bias.vg - vd);
      const double inversion =
          inversionFactor(c, bias.vg, vd, vs, bias.vb);
      const double igcd =
          inversion * c.a_half * compiledTunnelDensity(c, bias.vg - vd);
      return ids + btbt_d - igdo - igcd;
    }
    case CompiledTerminal::kSource: {
      const double vgs = bias.vg - vs;
      const double vds = vd - vs;
      const double vsb = vs - bias.vb;
      const double ids = compiledChannelCurrent(c, vgs, vds, vsb);
      const double btbt_s = compiledJunctionBtbt(c, vs - bias.vb);
      const double igso = c.a_ov * compiledTunnelDensity(c, bias.vg - vs);
      const double inversion =
          inversionFactor(c, bias.vg, vd, vs, bias.vb);
      const double igcs =
          inversion * c.a_half * compiledTunnelDensity(c, bias.vg - vs);
      return -ids + btbt_s - igso - igcs;
    }
    case CompiledTerminal::kBulk: {
      const double btbt_d = compiledJunctionBtbt(c, vd - bias.vb);
      const double btbt_s = compiledJunctionBtbt(c, vs - bias.vb);
      const double igb = c.c_gb * compiledTunnelDensity(c, bias.vg - bias.vb);
      return -(btbt_d + btbt_s) - igb;
    }
  }
  return 0.0;
}

bool nmosIsOff(const DeviceCoeffs& c, const BiasPoint& bias) {
  double vd = bias.vd;
  double vs = bias.vs;
  if (vd < vs) {
    std::swap(vd, vs);
  }
  const double vth = compiledVth(c, vd - vs, vs - bias.vb);
  return (bias.vg - vs) < std::max(vth, kOffClassificationFloor);
}

LeakageBreakdown nmosLeakage(const DeviceCoeffs& c, const BiasPoint& bias) {
  double vd = bias.vd;
  double vs = bias.vs;
  if (vd < vs) {
    std::swap(vd, vs);
  }
  const double vgs = bias.vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - bias.vb;

  LeakageBreakdown breakdown;
  if (nmosIsOff(c, bias)) {
    breakdown.subthreshold =
        std::abs(compiledChannelCurrent(c, vgs, vds, vsb));
  }
  breakdown.gate =
      compiledGateTunneling(c, bias.vg, vd, vs, bias.vb).magnitude();
  breakdown.btbt = compiledJunctionBtbt(c, vd - bias.vb) +
                   compiledJunctionBtbt(c, vs - bias.vb);
  return breakdown;
}

}  // namespace

DeviceCoeffs compileDevice(const DeviceParams& p, double width,
                           const DeviceVariation& var,
                           const Environment& env) {
  const double t = env.temperature_k;
  const double l_eff = p.effectiveLength(var);
  const double tox_eff = p.effectiveTox(var);
  const double n = p.slopeFactor(tox_eff);

  DeviceCoeffs c;
  c.pmos = p.polarity == Polarity::kPmos;
  c.width = width;

  c.vt = thermalVoltage(t);
  c.i_spec_t = p.i_spec * std::pow(t / kRoomTemperatureK, 2.0 - p.mu_tc);
  c.channel_pref = c.i_spec_t * (width / l_eff);
  c.n_vt = n * c.vt;
  c.two_n_vt = 2.0 * n * c.vt;
  c.zeta_two_n_vt = p.zeta_sat * (2.0 * n * c.vt);
  c.theta_vsat = p.theta_vsat;
  c.lambda = p.lambda;

  const double halo_shift = p.k_vth_halo * std::log(p.halo_doping / p.halo_nom);
  const double roll_off = -p.vth_roll * std::exp(-l_eff / p.l_roll);
  c.vth_prefix = p.vth0 + halo_shift + roll_off;
  c.neg_dibl = -p.dibl(tox_eff);
  c.body_gamma = p.body_gamma;
  c.phi_s = p.phi_s;
  c.sqrt_phi_s = std::sqrt(p.phi_s);
  c.temp_shift = -p.vth_tc * (t - kRoomTemperatureK);
  c.delta_vth = var.delta_vth;

  c.jg0 = p.jg0;
  c.alpha_v = p.alpha_v;
  c.tox_factor = std::exp(-p.beta_tox * (tox_eff - p.tox_nom));
  c.temp_factor = 1.0 + p.gate_tc * (t - kRoomTemperatureK);
  c.a_ov = width * p.overlap_length;
  c.a_half = 0.5 * width * l_eff;
  c.c_gb = p.k_gb * width * l_eff;
  c.half_n_vt = 0.5 * n * c.vt;

  c.btbt_qn2 = 2.0 * kElementaryCharge * p.halo_doping;
  c.vbi = p.vbi;
  const double eg = siliconBandGapEv(t);
  const double eg300 = siliconBandGapEv(kRoomTemperatureK);
  c.b_eff = p.b_btbt * std::pow(eg / eg300, 1.5);
  c.sqrt_eg = std::sqrt(eg);
  c.btbt_pref = p.a_btbt * (width * p.junction_depth) * 1e12;
  return c;
}

TerminalCurrents compiledCurrents(const DeviceCoeffs& coeffs,
                                  const BiasPoint& bias) {
  if (!coeffs.pmos) {
    return nmosCurrents(coeffs, bias);
  }
  const TerminalCurrents mirror = nmosCurrents(coeffs, mirrored(bias));
  return TerminalCurrents{-mirror.gate, -mirror.drain, -mirror.source,
                          -mirror.bulk};
}

double compiledTerminalCurrent(const DeviceCoeffs& coeffs,
                               const BiasPoint& bias,
                               CompiledTerminal terminal) {
  if (!coeffs.pmos) {
    return nmosTerminalCurrent(coeffs, bias, terminal);
  }
  return -nmosTerminalCurrent(coeffs, mirrored(bias), terminal);
}

LeakageBreakdown compiledLeakage(const DeviceCoeffs& coeffs,
                                 const BiasPoint& bias) {
  if (!coeffs.pmos) {
    return nmosLeakage(coeffs, bias);
  }
  return nmosLeakage(coeffs, mirrored(bias));
}

bool compiledIsOff(const DeviceCoeffs& coeffs, const BiasPoint& bias) {
  if (!coeffs.pmos) {
    return nmosIsOff(coeffs, bias);
  }
  return nmosIsOff(coeffs, mirrored(bias));
}

}  // namespace nanoleak::device
