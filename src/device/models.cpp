#include "device/models.h"

#include <algorithm>
#include <cmath>

#include "util/constants.h"

namespace nanoleak::device {

double softLog1pExp(double x) {
  if (x > 40.0) {
    return x;
  }
  if (x < -40.0) {
    return std::exp(x);
  }
  return std::log1p(std::exp(x));
}

namespace {

/// Signed tunneling density J(vox) [A/m^2]: odd in vox, smooth at 0,
/// exponential growth with |vox| and exponential suppression with tox.
double tunnelDensity(const DeviceParams& p, double tox_eff, double vox,
                     double temperature_k) {
  const double mag = std::abs(vox);
  const double j =
      p.jg0 * mag * std::exp(p.alpha_v * (mag - 1.0)) *
      std::exp(-p.beta_tox * (tox_eff - p.tox_nom)) *
      (1.0 + p.gate_tc * (temperature_k - kRoomTemperatureK));
  return vox >= 0.0 ? j : -j;
}

}  // namespace

double softPlus(double x, double scale) {
  return scale * softLog1pExp(x / scale);
}

double GateTunneling::magnitude() const {
  return std::abs(igso) + std::abs(igdo) + std::abs(igcs) + std::abs(igcd) +
         std::abs(igb);
}

double channelCurrent(const DeviceParams& params, const DeviceVariation& var,
                      double width, double vgs, double vds, double vsb,
                      const Environment& env) {
  const double t = env.temperature_k;
  const double vt = thermalVoltage(t);
  const double l_eff = params.effectiveLength(var);
  const double tox_eff = params.effectiveTox(var);
  const double n = params.slopeFactor(tox_eff);
  const double vth = params.thresholdVoltage(vds, vsb, t, var);

  // Specific current: mobility ~ T^-mu_tc and the vT^2 prefactor give the
  // (T/300)^(2-mu_tc) scaling; the dominant T dependence remains the
  // exponential through Vth/n.vT below threshold.
  const double i_spec =
      params.i_spec * std::pow(t / kRoomTemperatureK, 2.0 - params.mu_tc);

  const double x = (vgs - vth) / (2.0 * n * vt);
  const double inv = softLog1pExp(x);  // smooth "inversion charge"
  // Velocity saturation / mobility degradation tempers strong inversion
  // (inv >> 1) without touching the subthreshold exponential (inv << 1).
  const double drive = inv * inv / (1.0 + params.theta_vsat * inv);

  // Blended saturation voltage: n.vT in weak inversion (diffusion-limited),
  // ~zeta.(Vgs-Vth) in strong inversion (drift-limited). Keeps the linear-
  // region conductance of ON devices realistic (kilo-ohm class) instead of
  // the Ion/vT overestimate a pure diffusion factor would give.
  const double v_sat = n * vt + params.zeta_sat * (2.0 * n * vt) * inv;
  const double vds_factor = 1.0 - std::exp(-vds / v_sat);

  return i_spec * (width / l_eff) * drive * vds_factor *
         (1.0 + params.lambda * vds);
}

GateTunneling gateTunneling(const DeviceParams& params,
                            const DeviceVariation& var, double width,
                            double vg, double vd, double vs, double vb,
                            const Environment& env) {
  const double t = env.temperature_k;
  const double vt = thermalVoltage(t);
  const double tox_eff = params.effectiveTox(var);
  const double l_eff = params.effectiveLength(var);
  const double n = params.slopeFactor(tox_eff);

  GateTunneling g;

  // Overlap (edge direct tunneling): always present; the overlap region is
  // an extension of the diffusion, so the oxide voltage is vg - vs/vd.
  const double a_ov = width * params.overlap_length;
  g.igso = a_ov * tunnelDensity(params, tox_eff, vg - vs, t);
  g.igdo = a_ov * tunnelDensity(params, tox_eff, vg - vd, t);

  // Channel tunneling requires an inversion layer; gate it with a smooth
  // logistic in (vgs - vth). The channel is integrated trapezoidally: half
  // the area sees the source-end oxide voltage, half the drain-end.
  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - vb;
  const double vth = params.thresholdVoltage(std::abs(vds), vsb, t, var);
  // Steep logistic: the inversion layer (and with it gate-to-channel
  // tunneling) collapses quickly below threshold.
  const double inversion =
      1.0 / (1.0 + std::exp(-(vgs - vth) / (0.5 * n * vt)));
  const double a_half = 0.5 * width * l_eff;
  g.igcs = inversion * a_half * tunnelDensity(params, tox_eff, vg - vs, t);
  g.igcd = inversion * a_half * tunnelDensity(params, tox_eff, vg - vd, t);

  // Gate-to-bulk: small fraction of the full-area density at vgb.
  g.igb = params.k_gb * width * l_eff *
          tunnelDensity(params, tox_eff, vg - vb, t);
  return g;
}

double junctionBtbt(const DeviceParams& params, const DeviceVariation& var,
                    double width, double vrev, const Environment& env) {
  (void)var;  // geometry variation affects junctions only weakly
  const double t = env.temperature_k;

  // Smoothly clamp the reverse bias to >= 0 so the model is C1 through 0
  // (forward-biased junctions do not band-to-band tunnel).
  const double v = softPlus(vrev, 0.01);
  if (v < 1e-12) {
    return 0.0;
  }

  // Peak field of an abrupt one-sided junction: E = sqrt(2qN(V+Vbi)/eps).
  const double field = std::sqrt(2.0 * kElementaryCharge * params.halo_doping *
                                 (v + params.vbi) / kEpsSi);

  // Band gap narrows with temperature (Varshni), which raises the tunneling
  // probability marginally - the paper's "BTBT increases (marginally) with
  // temperature".
  const double eg = siliconBandGapEv(t);
  const double eg300 = siliconBandGapEv(kRoomTemperatureK);
  const double b_eff = params.b_btbt * std::pow(eg / eg300, 1.5);

  const double area = width * params.junction_depth;
  return params.a_btbt * area * 1e12 * (field / 1e8) * v / std::sqrt(eg) *
         std::exp(-b_eff / field);
}

}  // namespace nanoleak::device
