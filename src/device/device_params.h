// Compact-model parameters for a nano-scale bulk-CMOS transistor.
//
// The paper designed 50 nm / 25 nm devices in MEDICI and extracted BSIM4
// cards with AURORA; we substitute analytic compact models whose parameters
// live in this struct (see DESIGN.md section 2 for why the substitution
// preserves the paper's behaviours). All values are SI.
#pragma once

#include <string>

namespace nanoleak::device {

/// Transistor polarity.
enum class Polarity { kNmos, kPmos };

/// Returns "NMOS"/"PMOS".
const char* toString(Polarity polarity);

/// Per-transistor process perturbations, used by the Monte-Carlo engine
/// (paper section 5.3). Deltas are added onto the nominal parameters.
struct DeviceVariation {
  /// Channel-length delta [m].
  double delta_length = 0.0;
  /// Oxide-thickness delta [m].
  double delta_tox = 0.0;
  /// Threshold-voltage delta [V] (inter-die + intra-die contributions).
  double delta_vth = 0.0;
};

/// Full parameter set of one device flavour.
///
/// The leakage-relevant behaviours mirror the paper's section 2-3
/// discussion:
///  * subthreshold: exponential in (Vgs - Vth)/n.vT, DIBL, Vth roll-off,
///    body effect, strong temperature dependence;
///  * gate tunneling: exponential in oxide voltage and oxide thickness,
///    nearly temperature-independent, partitioned into overlap (Igso/Igdo),
///    channel (Igcs/Igcd) and bulk (Igb) components;
///  * junction BTBT: grows with halo dose and junction reverse bias, weak
///    (band-gap mediated) temperature dependence.
struct DeviceParams {
  std::string name = "unnamed";
  Polarity polarity = Polarity::kNmos;

  // --- Geometry -----------------------------------------------------------
  /// Drawn channel length [m].
  double length = 50e-9;
  /// Nominal oxide thickness [m].
  double tox = 1.2e-9;
  /// Gate-to-S/D overlap length [m].
  double overlap_length = 8e-9;
  /// Junction depth [m] (BTBT cross-section scale).
  double junction_depth = 25e-9;

  // --- Subthreshold / on-current ------------------------------------------
  /// Long-channel zero-bias threshold voltage at 300 K [V].
  double vth0 = 0.15;
  /// Specific current prefactor at W = L [A]; sets both leakage floor and
  /// on-current via the unified EKV-style I-V.
  double i_spec = 2.8e-7;
  /// Subthreshold slope factor at nominal Tox (n = 1 + (n0-1).tox/tox_nom).
  double n0 = 1.40;
  /// DIBL coefficient at nominal Tox [V/V].
  double dibl0 = 0.08;
  /// Tox sensitivity of DIBL: dibl = dibl0.(1 + k_dibl_tox.(tox/tox_nom-1)).
  double k_dibl_tox = 2.0;
  /// Vth roll-off amplitude [V]: dVth = -vth_roll.exp(-L/l_roll).
  double vth_roll = 1.0;
  /// Vth roll-off characteristic length [m].
  double l_roll = 12e-9;
  /// Body-effect coefficient [sqrt(V)].
  double body_gamma = 0.25;
  /// Surface potential 2.phiF [V].
  double phi_s = 0.85;
  /// Vth temperature coefficient [V/K] (Vth decreases when hot).
  double vth_tc = 8.0e-4;
  /// Mobility temperature exponent: i_spec ~ (T/300)^(2 - mu_tc).
  double mu_tc = 1.5;
  /// Channel-length modulation [1/V].
  double lambda = 0.08;
  /// Saturation-voltage blend factor (see models.cpp, unified Vds factor).
  double zeta_sat = 0.5;
  /// Velocity-saturation / mobility-degradation factor (dimensionless,
  /// applied to the normalized inversion charge): keeps the on-current and
  /// on-conductance kilo-ohm-class while leaving subthreshold untouched.
  double theta_vsat = 0.5;

  // --- Gate direct tunneling ----------------------------------------------
  /// Tunneling current density scale at |Vox| = 1 V, tox = tox_nom [A/m^2].
  double jg0 = 4.5e3;
  /// Oxide-voltage sensitivity [1/V] (J ~ Vox.exp(alpha_v.|Vox|)).
  double alpha_v = 1.6;
  /// Oxide-thickness sensitivity [1/m] (J ~ exp(-beta_tox.(tox - tox_nom))),
  /// ~1 decade per 2 Angstrom as observed in sub-100nm oxides.
  double beta_tox = 1.15e10;
  /// Gate-to-bulk tunneling fraction of the channel component.
  double k_gb = 0.04;
  /// Linear temperature coefficient of tunneling [1/K] (nearly flat).
  double gate_tc = 3.0e-4;

  // --- Junction band-to-band tunneling -------------------------------------
  /// Effective halo/junction doping [1/m^3].
  double halo_doping = 8.0e24;  // 8e18 cm^-3
  /// BTBT current prefactor [A.V^-1.m^-2 scaled; calibrated].
  double a_btbt = 9.0e-5;
  /// BTBT exponential field scale [V/m] at Eg = Eg(300K).
  double b_btbt = 2.6e9;
  /// Built-in junction potential [V].
  double vbi = 0.9;

  /// Nominal oxide thickness the tunneling/SCE scalings are referenced to.
  double tox_nom = 1.2e-9;
  /// Nominal halo dose the Vth(halo) scaling is referenced to.
  double halo_nom = 8.0e24;
  /// Vth shift per e-fold of halo dose [V] (halo suppresses SCE).
  double k_vth_halo = 0.045;

  // --- Derived-parameter helpers ------------------------------------------
  /// Effective channel length under variation [m] (floored at 5 nm).
  double effectiveLength(const DeviceVariation& variation) const;
  /// Effective oxide thickness under variation [m] (floored at 0.4 nm).
  double effectiveTox(const DeviceVariation& variation) const;
  /// Subthreshold slope factor at the given oxide thickness.
  double slopeFactor(double tox_eff) const;
  /// DIBL coefficient at the given oxide thickness.
  double dibl(double tox_eff) const;
  /// Threshold voltage [V] at the given bias/temperature/variation.
  /// vsb is the source-to-bulk reverse bias (>= 0 increases Vth).
  double thresholdVoltage(double vds, double vsb, double temperature_k,
                          const DeviceVariation& variation) const;
};

/// A transistor instance: flavour + width + optional variation.
struct Sizing {
  /// Gate width [m].
  double width = 100e-9;
};

// ---------------------------------------------------------------------------
// Presets.
//
// d25S/G/JN are the paper's D25-S / D25-G / D25-JN devices (section 5.1):
// the same total off-state leakage redistributed so that subthreshold,
// gate tunneling, or junction BTBT respectively dominates. d25S doubles as
// the library default because the paper's circuit experiments (Fig. 12)
// used a subthreshold-dominated device. d50Medici mimics the 50 nm MEDICI
// device of Fig. 4 where gate + BTBT dominate at 300 K.
// ---------------------------------------------------------------------------

/// Subthreshold-dominated 25 nm NMOS (default flavour).
DeviceParams d25SNmos();
/// Subthreshold-dominated 25 nm PMOS (default flavour).
DeviceParams d25SPmos();
/// Gate-tunneling-dominated 25 nm NMOS.
DeviceParams d25GNmos();
/// Gate-tunneling-dominated 25 nm PMOS.
DeviceParams d25GPmos();
/// Junction-BTBT-dominated 25 nm NMOS.
DeviceParams d25JnNmos();
/// Junction-BTBT-dominated 25 nm PMOS.
DeviceParams d25JnPmos();
/// 50 nm MEDICI-like NMOS used for the Fig. 4 device-level sweeps.
DeviceParams d50MediciNmos();
/// 50 nm MEDICI-like PMOS.
DeviceParams d50MediciPmos();

/// A matched NMOS/PMOS pair plus operating conditions.
struct Technology {
  DeviceParams nmos = d25SNmos();
  DeviceParams pmos = d25SPmos();
  /// Supply voltage [V].
  double vdd = 1.0;
  /// Operating temperature [K].
  double temperature_k = 300.0;
  /// Unit NMOS width [m]; PMOS is beta_ratio x wider.
  double unit_width_n = 100e-9;
  /// PMOS/NMOS width ratio.
  double beta_ratio = 2.0;
};

/// Default technology (subthreshold-dominated 25 nm, 1.0 V, 300 K).
Technology defaultTechnology();
/// Gate-dominated technology (same totals, Fig. 8).
Technology gateDominatedTechnology();
/// BTBT-dominated technology (same totals, Fig. 8).
Technology btbtDominatedTechnology();
/// 50 nm device-sweep technology (Fig. 4).
Technology mediciTechnology();

}  // namespace nanoleak::device
