// Analytic compact models for the three leakage mechanisms plus a unified
// smooth I-V for the channel (needed so ON devices hold nets at the rails
// with a realistic on-conductance while OFF devices leak).
//
// All functions here are written in NMOS convention: voltages are
// source-referenced (vgs, vds >= 0 in normal operation, vsb >= 0 in reverse
// body bias) and returned currents are positive flowing drain -> source
// (channel) or from the gate into the electrode named by the component
// (tunneling). Mosfet (mosfet.h) maps PMOS devices and arbitrary terminal
// orderings onto this convention.
#pragma once

#include "device/device_params.h"

namespace nanoleak::device {

/// Environment for a model evaluation.
struct Environment {
  double temperature_k = 300.0;
};

/// Channel (subthreshold + on) current, drain -> source, for vds >= 0.
///
/// EKV-style interpolation: exponential below threshold (slope n.vT per
/// e-fold, DIBL via Vth(vds)), smoothly saturating above threshold with a
/// blended saturation voltage so the on-conductance near vds = 0 is
/// Ion/Vdsat-like rather than Ion/vT-like.
double channelCurrent(const DeviceParams& params, const DeviceVariation& var,
                      double width, double vgs, double vds, double vsb,
                      const Environment& env);

/// Gate tunneling components. Positive values flow FROM the gate INTO the
/// named electrode; negative values flow into the gate.
struct GateTunneling {
  double igso = 0.0;  ///< gate <-> source overlap
  double igdo = 0.0;  ///< gate <-> drain overlap
  double igcs = 0.0;  ///< gate <-> channel, source end
  double igcd = 0.0;  ///< gate <-> channel, drain end
  double igb = 0.0;   ///< gate <-> bulk

  /// Total current leaving the gate terminal.
  double totalFromGate() const { return igso + igdo + igcs + igcd + igb; }
  /// Sum of magnitudes (the "gate leakage" the paper reports).
  double magnitude() const;
};

/// Evaluates all gate-tunneling components at the given NMOS-convention
/// node voltages (vg, vd, vs, vb are absolute node potentials).
GateTunneling gateTunneling(const DeviceParams& params,
                            const DeviceVariation& var, double width,
                            double vg, double vd, double vs, double vb,
                            const Environment& env);

/// Junction band-to-band tunneling current for one S/D junction at reverse
/// bias `vrev` (diffusion at +vrev vs bulk). Positive current flows from
/// the diffusion into the bulk. Smoothly ~0 for vrev <= 0.
double junctionBtbt(const DeviceParams& params, const DeviceVariation& var,
                    double width, double vrev, const Environment& env);

/// Smooth positive-part helper: softplus with scale `s` (C-infinity, equals
/// max(0,x) asymptotically). Exposed for tests.
double softPlus(double x, double scale);

/// ln(1 + e^x) evaluated without overflow. Shared by the interpreted models
/// here and the compiled evaluation in compiled_model.h, so both paths run
/// the exact same code (bit-identical results).
double softLog1pExp(double x);

/// OFF-classification floor [V]: a device whose Vgs is within this of its
/// source is logically OFF even when process/temperature push Vth lower
/// (see Mosfet::nmosIsOff for the rationale). Shared with compiled_model.
inline constexpr double kOffClassificationFloor = 0.25;

}  // namespace nanoleak::device
