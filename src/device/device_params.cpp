#include "device/device_params.h"

#include <algorithm>
#include <cmath>

#include "util/constants.h"

namespace nanoleak::device {

const char* toString(Polarity polarity) {
  return polarity == Polarity::kNmos ? "NMOS" : "PMOS";
}

double DeviceParams::effectiveLength(const DeviceVariation& variation) const {
  return std::max(5e-9, length + variation.delta_length);
}

double DeviceParams::effectiveTox(const DeviceVariation& variation) const {
  return std::max(0.4e-9, tox + variation.delta_tox);
}

double DeviceParams::slopeFactor(double tox_eff) const {
  // n - 1 is proportional to Cdep/Cox, i.e. to tox.
  return 1.0 + (n0 - 1.0) * tox_eff / tox_nom;
}

double DeviceParams::dibl(double tox_eff) const {
  // Thicker oxide weakens gate control, so DIBL grows with tox.
  return dibl0 * std::max(0.0, 1.0 + k_dibl_tox * (tox_eff / tox_nom - 1.0));
}

double DeviceParams::thresholdVoltage(double vds, double vsb,
                                      double temperature_k,
                                      const DeviceVariation& variation) const {
  const double l_eff = effectiveLength(variation);
  const double tox_eff = effectiveTox(variation);
  // Halo implants suppress short-channel effects: Vth rises with the dose
  // (paper Fig. 4a shows the subthreshold component falling with halo).
  const double halo_shift = k_vth_halo * std::log(halo_doping / halo_nom);
  const double roll_off = -vth_roll * std::exp(-l_eff / l_roll);
  const double dibl_shift = -dibl(tox_eff) * std::max(0.0, vds);
  const double body_shift =
      body_gamma * (std::sqrt(phi_s + std::max(0.0, vsb)) - std::sqrt(phi_s));
  const double temp_shift = -vth_tc * (temperature_k - kRoomTemperatureK);
  return vth0 + halo_shift + roll_off + dibl_shift + body_shift + temp_shift +
         variation.delta_vth;
}

namespace {

// Shared 25 nm base; flavours adjust relative component strengths while
// keeping the total off-state leakage of a unit inverter approximately
// equal (verified by tests/device/preset_calibration_test.cpp).
DeviceParams base25(Polarity polarity) {
  DeviceParams p;
  p.polarity = polarity;
  p.length = 25e-9;
  p.tox = 1.1e-9;
  p.tox_nom = 1.1e-9;
  p.overlap_length = 6e-9;
  p.junction_depth = 18e-9;
  p.l_roll = 9e-9;
  p.vth_roll = 1.0;
  p.i_spec = 2.1e-6;
  p.dibl0 = 0.05;
  p.theta_vsat = 0.80;
  if (polarity == Polarity::kPmos) {
    // The paper notes short-channel effects are more serious in PMOS: the
    // PMOS subthreshold current is less sensitive to Vgs (larger n) and
    // more sensitive to Vds (larger DIBL), and PMOS junction BTBT density
    // is comparable while the 2x layout width doubles the junction area.
    p.n0 = 1.75;
    p.dibl0 = 0.13;
    p.i_spec = 1.0e-6;  // lower hole mobility; widths compensate in layout
    p.theta_vsat = 0.40;  // stronger pull-up in triode (lower R_on)
  }
  return p;
}

}  // namespace

DeviceParams d25SNmos() {
  DeviceParams p = base25(Polarity::kNmos);
  p.name = "D25-S/N";
  p.vth0 = 0.184;
  p.jg0 = 1.15e8;
  p.a_btbt = 6.5;
  return p;
}

DeviceParams d25SPmos() {
  DeviceParams p = base25(Polarity::kPmos);
  p.name = "D25-S/P";
  p.vth0 = 0.314;
  p.jg0 = 5.8e7;  // PMOS tunneling is weaker (higher hole barrier)
  p.a_btbt = 5.4;   // PMOS junction BTBT is the larger one (paper [2])
  return p;
}

DeviceParams d25GNmos() {
  DeviceParams p = base25(Polarity::kNmos);
  p.name = "D25-G/N";
  p.vth0 = 0.234;  // higher Vth suppresses subthreshold...
  p.jg0 = 3.7e8;   // ...while a leakier oxide boosts gate tunneling
  p.a_btbt = 6.5;
  return p;
}

DeviceParams d25GPmos() {
  DeviceParams p = base25(Polarity::kPmos);
  p.name = "D25-G/P";
  p.vth0 = 0.364;
  p.jg0 = 1.9e8;
  p.a_btbt = 5.4;
  return p;
}

DeviceParams d25JnNmos() {
  DeviceParams p = base25(Polarity::kNmos);
  p.name = "D25-JN/N";
  p.vth0 = 0.234;
  p.jg0 = 1.15e8;
  p.halo_doping = 1.1e25;  // heavier halo boosts the junction field...
  p.k_vth_halo = 0.0;      // ...while flavours pin Vth explicitly
  p.a_btbt = 6.3;
  return p;
}

DeviceParams d25JnPmos() {
  DeviceParams p = base25(Polarity::kPmos);
  p.name = "D25-JN/P";
  p.vth0 = 0.364;
  p.jg0 = 5.8e7;
  p.halo_doping = 1.1e25;
  p.k_vth_halo = 0.0;
  p.a_btbt = 4.7;
  return p;
}

DeviceParams d50MediciNmos() {
  DeviceParams p;
  p.polarity = Polarity::kNmos;
  p.name = "D50/N";
  p.length = 50e-9;
  p.tox = 1.2e-9;
  p.tox_nom = 1.2e-9;
  p.l_roll = 12e-9;
  p.i_spec = 2.1e-6;
  p.dibl0 = 0.05;
  // Gate + BTBT dominate at 300 K for this flavour (paper Fig. 4c), with
  // subthreshold overtaking both at elevated temperature.
  p.vth0 = 0.255;
  p.jg0 = 1.3e7;
  p.a_btbt = 1.1;
  return p;
}

DeviceParams d50MediciPmos() {
  DeviceParams p = d50MediciNmos();
  p.name = "D50/P";
  p.polarity = Polarity::kPmos;
  p.n0 = 1.75;
  p.dibl0 = 0.13;
  p.i_spec = 1.0e-6;
  p.theta_vsat = 0.25;
  p.vth0 = 0.385;
  p.jg0 = 6.5e6;
  p.a_btbt = 0.85;
  return p;
}

Technology defaultTechnology() { return Technology{}; }

Technology gateDominatedTechnology() {
  Technology tech;
  tech.nmos = d25GNmos();
  tech.pmos = d25GPmos();
  return tech;
}

Technology btbtDominatedTechnology() {
  Technology tech;
  tech.nmos = d25JnNmos();
  tech.pmos = d25JnPmos();
  return tech;
}

Technology mediciTechnology() {
  Technology tech;
  tech.nmos = d50MediciNmos();
  tech.pmos = d50MediciPmos();
  return tech;
}

}  // namespace nanoleak::device
