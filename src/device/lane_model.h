/// \file
/// Lane-parallel device evaluation for the batch solver.
///
/// Mirrors compiled_model.cpp's per-terminal evaluation with every
/// bias-dependent quantity widened to `util::Lanes<W>`: one call evaluates
/// the same device at W independent operating points (different node
/// voltages, and — because coefficients are lane-valued too — different
/// temperatures or process variations per lane). The control flow that is
/// data-dependent in the scalar model (drain/source frame sort, the BTBT
/// small-bias early-out, softLog1pExp's branches) becomes masked blends.
///
/// Numeric contract: the operation sequence per lane matches the scalar
/// compiled model except that lane transcendentals come from
/// util::laneExp/laneLog1p instead of libm, and the drain/source swap is
/// folded into a sign blend. Lane results therefore agree with
/// compiledTerminalCurrent to a few ulp, not bitwise — the batch solver's
/// ≤1e-6 equivalence gate (bench_solver_kernel) pins that drift, and the
/// width-1 scalar backend bypasses this file entirely for bit-identity.
#pragma once

#include "device/compiled_model.h"
#include "util/constants.h"
#include "util/simd.h"

namespace nanoleak::device {

/// One device's bias-independent coefficients across W lanes (the lane
/// transpose of W DeviceCoeffs). `pmos` stays scalar: lanes always hold
/// the same netlist device under different operating conditions.
template <std::size_t W>
struct LaneCoeffs {
  bool pmos = false;

  util::Lanes<W> channel_pref;
  util::Lanes<W> n_vt;
  util::Lanes<W> two_n_vt;
  util::Lanes<W> zeta_two_n_vt;
  util::Lanes<W> theta_vsat;
  util::Lanes<W> lambda;

  util::Lanes<W> vth_prefix;
  util::Lanes<W> neg_dibl;
  util::Lanes<W> body_gamma;
  util::Lanes<W> phi_s;
  util::Lanes<W> sqrt_phi_s;
  util::Lanes<W> temp_shift;
  util::Lanes<W> delta_vth;

  util::Lanes<W> jg0;
  util::Lanes<W> alpha_v;
  util::Lanes<W> tox_factor;
  util::Lanes<W> temp_factor;
  util::Lanes<W> a_ov;
  util::Lanes<W> a_half;
  util::Lanes<W> c_gb;
  util::Lanes<W> half_n_vt;

  util::Lanes<W> btbt_qn2;
  util::Lanes<W> vbi;
  util::Lanes<W> b_eff;
  util::Lanes<W> sqrt_eg;
  util::Lanes<W> btbt_pref;
};

/// Transposes one device's per-lane DeviceCoeffs (array of W) into lane
/// form. All W coefficients must agree on polarity.
template <std::size_t W>
inline LaneCoeffs<W> makeLaneCoeffs(const DeviceCoeffs* per_lane) {
  LaneCoeffs<W> c;
  c.pmos = per_lane[0].pmos;
  for (std::size_t i = 0; i < W; ++i) {
    const DeviceCoeffs& s = per_lane[i];
    c.channel_pref.setLane(i, s.channel_pref);
    c.n_vt.setLane(i, s.n_vt);
    c.two_n_vt.setLane(i, s.two_n_vt);
    c.zeta_two_n_vt.setLane(i, s.zeta_two_n_vt);
    c.theta_vsat.setLane(i, s.theta_vsat);
    c.lambda.setLane(i, s.lambda);
    c.vth_prefix.setLane(i, s.vth_prefix);
    c.neg_dibl.setLane(i, s.neg_dibl);
    c.body_gamma.setLane(i, s.body_gamma);
    c.phi_s.setLane(i, s.phi_s);
    c.sqrt_phi_s.setLane(i, s.sqrt_phi_s);
    c.temp_shift.setLane(i, s.temp_shift);
    c.delta_vth.setLane(i, s.delta_vth);
    c.jg0.setLane(i, s.jg0);
    c.alpha_v.setLane(i, s.alpha_v);
    c.tox_factor.setLane(i, s.tox_factor);
    c.temp_factor.setLane(i, s.temp_factor);
    c.a_ov.setLane(i, s.a_ov);
    c.a_half.setLane(i, s.a_half);
    c.c_gb.setLane(i, s.c_gb);
    c.half_n_vt.setLane(i, s.half_n_vt);
    c.btbt_qn2.setLane(i, s.btbt_qn2);
    c.vbi.setLane(i, s.vbi);
    c.b_eff.setLane(i, s.b_eff);
    c.sqrt_eg.setLane(i, s.sqrt_eg);
    c.btbt_pref.setLane(i, s.btbt_pref);
  }
  return c;
}

/// Lane bias point: absolute node potentials per lane.
template <std::size_t W>
struct LaneBias {
  util::Lanes<W> vg;
  util::Lanes<W> vd;
  util::Lanes<W> vs;
  util::Lanes<W> vb;
};

/// Lanewise ln(1 + e^x); the three branches of device::softLog1pExp as
/// blends over a shared laneExp evaluation.
template <std::size_t W>
inline util::Lanes<W> laneSoftLog1pExp(util::Lanes<W> x) {
  using util::Lanes;
  const Lanes<W> e = util::laneExp(x);
  const Lanes<W> mid = util::laneLog1p(e);
  return util::laneSelect(
      util::laneGT(x, Lanes<W>(40.0)), x,
      util::laneSelect(util::laneLT(x, Lanes<W>(-40.0)), e, mid));
}

namespace lane_detail {

/// compiledVth, lanewise.
template <std::size_t W>
inline util::Lanes<W> laneVth(const LaneCoeffs<W>& c, util::Lanes<W> vds,
                              util::Lanes<W> vsb) {
  using util::Lanes;
  const Lanes<W> zero(0.0);
  const Lanes<W> dibl_shift = c.neg_dibl * laneMax(zero, vds);
  const Lanes<W> body_shift =
      c.body_gamma * (laneSqrt(c.phi_s + laneMax(zero, vsb)) - c.sqrt_phi_s);
  return c.vth_prefix + dibl_shift + body_shift + c.temp_shift + c.delta_vth;
}

/// compiledTunnelDensity, lanewise (odd in vox via a sign blend).
template <std::size_t W>
inline util::Lanes<W> laneTunnelDensity(const LaneCoeffs<W>& c,
                                        util::Lanes<W> vox) {
  using util::Lanes;
  const Lanes<W> mag = laneAbs(vox);
  const Lanes<W> j = c.jg0 * mag *
                     util::laneExp(c.alpha_v * (mag - Lanes<W>(1.0))) *
                     c.tox_factor * c.temp_factor;
  return util::laneSelect(util::laneGE(vox, Lanes<W>(0.0)), j, -j);
}

/// compiledChannelCurrent, lanewise.
template <std::size_t W>
inline util::Lanes<W> laneChannelCurrent(const LaneCoeffs<W>& c,
                                         util::Lanes<W> vgs,
                                         util::Lanes<W> vds,
                                         util::Lanes<W> vsb) {
  using util::Lanes;
  const Lanes<W> one(1.0);
  const Lanes<W> vth = laneVth(c, vds, vsb);
  const Lanes<W> x = (vgs - vth) / c.two_n_vt;
  const Lanes<W> inv = laneSoftLog1pExp(x);
  const Lanes<W> drive = inv * inv / (one + c.theta_vsat * inv);
  const Lanes<W> v_sat = c.n_vt + c.zeta_two_n_vt * inv;
  const Lanes<W> vds_factor = one - util::laneExp(-vds / v_sat);
  return c.channel_pref * drive * vds_factor * (one + c.lambda * vds);
}

/// Steep inversion logistic (the igcs/igcd factor), lanewise.
template <std::size_t W>
inline util::Lanes<W> laneInversionFactor(const LaneCoeffs<W>& c,
                                          util::Lanes<W> vg,
                                          util::Lanes<W> vd,
                                          util::Lanes<W> vs,
                                          util::Lanes<W> vb) {
  using util::Lanes;
  const Lanes<W> one(1.0);
  const Lanes<W> vth = laneVth(c, laneAbs(vd - vs), vs - vb);
  return one / (one + util::laneExp(-((vg - vs) - vth) / c.half_n_vt));
}

/// compiledJunctionBtbt, lanewise; the scalar < 1e-12 early-out becomes a
/// zero blend.
template <std::size_t W>
inline util::Lanes<W> laneJunctionBtbt(const LaneCoeffs<W>& c,
                                       util::Lanes<W> vrev) {
  using util::Lanes;
  const Lanes<W> scale(0.01);
  const Lanes<W> v = scale * laneSoftLog1pExp(vrev / scale);
  const Lanes<W> field =
      laneSqrt(c.btbt_qn2 * (v + c.vbi) / Lanes<W>(kEpsSi));
  const Lanes<W> current = c.btbt_pref * (field / Lanes<W>(1e8)) * v /
                           c.sqrt_eg * util::laneExp(-c.b_eff / field);
  return util::laneSelect(util::laneLT(v, Lanes<W>(1e-12)), Lanes<W>(0.0),
                          current);
}

/// nmosTerminalCurrent, lanewise. The drain/source frame sort becomes
/// min/max plus a sign blend: the current at the *requested original node*
/// always uses that node's tunneling and junction components, while the
/// channel term flips sign in swapped lanes.
template <std::size_t W>
inline util::Lanes<W> laneNmosTerminalCurrent(const LaneCoeffs<W>& c,
                                              const LaneBias<W>& bias,
                                              CompiledTerminal terminal) {
  using util::LaneMask;
  using util::Lanes;
  const LaneMask<W> swapped = util::laneLT(bias.vd, bias.vs);
  const Lanes<W> vd = laneMax(bias.vd, bias.vs);
  const Lanes<W> vs = laneMin(bias.vd, bias.vs);

  switch (terminal) {
    case CompiledTerminal::kGate: {
      const Lanes<W> j_s = laneTunnelDensity(c, bias.vg - vs);
      const Lanes<W> j_d = laneTunnelDensity(c, bias.vg - vd);
      const Lanes<W> igso = c.a_ov * j_s;
      const Lanes<W> igdo = c.a_ov * j_d;
      const Lanes<W> inversion =
          laneInversionFactor(c, bias.vg, vd, vs, bias.vb);
      const Lanes<W> igcs = inversion * c.a_half * j_s;
      const Lanes<W> igcd = inversion * c.a_half * j_d;
      const Lanes<W> igb = c.c_gb * laneTunnelDensity(c, bias.vg - bias.vb);
      return igso + igdo + igcs + igcd + igb;
    }
    case CompiledTerminal::kDrain:
    case CompiledTerminal::kSource: {
      // vx: the requested node's own potential, in the original frame.
      const Lanes<W> vx =
          terminal == CompiledTerminal::kDrain ? bias.vd : bias.vs;
      const Lanes<W> ids =
          laneChannelCurrent(c, bias.vg - vs, vd - vs, vs - bias.vb);
      // Channel current flows into the sorted-frame drain and out of the
      // sorted-frame source; the requested node is the sorted drain when
      // (kDrain, unswapped) or (kSource, swapped).
      const bool want_drain = terminal == CompiledTerminal::kDrain;
      const LaneMask<W> node_is_drain =
          want_drain ? util::maskNot(swapped) : swapped;
      const Lanes<W> signed_ids =
          util::laneSelect(node_is_drain, ids, -ids);
      const Lanes<W> btbt = laneJunctionBtbt(c, vx - bias.vb);
      const Lanes<W> j_x = laneTunnelDensity(c, bias.vg - vx);
      const Lanes<W> inversion =
          laneInversionFactor(c, bias.vg, vd, vs, bias.vb);
      return signed_ids + btbt - c.a_ov * j_x - inversion * c.a_half * j_x;
    }
    case CompiledTerminal::kBulk: {
      const Lanes<W> btbt_d = laneJunctionBtbt(c, vd - bias.vb);
      const Lanes<W> btbt_s = laneJunctionBtbt(c, vs - bias.vb);
      const Lanes<W> igb = c.c_gb * laneTunnelDensity(c, bias.vg - bias.vb);
      return -(btbt_d + btbt_s) - igb;
    }
  }
  return util::Lanes<W>(0.0);
}

}  // namespace lane_detail

/// Lane analog of compiledTerminalCurrent: the current flowing out of
/// `terminal` at each lane's bias. PMOS devices evaluate mirrored and
/// negated, exactly like the scalar model.
template <std::size_t W>
inline util::Lanes<W> laneTerminalCurrent(const LaneCoeffs<W>& c,
                                          const LaneBias<W>& bias,
                                          CompiledTerminal terminal) {
  if (!c.pmos) {
    return lane_detail::laneNmosTerminalCurrent(c, bias, terminal);
  }
  const LaneBias<W> m{-bias.vg, -bias.vd, -bias.vs, -bias.vb};
  return -lane_detail::laneNmosTerminalCurrent(c, m, terminal);
}

}  // namespace nanoleak::device
