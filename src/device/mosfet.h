// A MOSFET as the paper's Fig. 3 network of voltage-controlled current
// sources: given its four node potentials it reports the current drawn
// through each terminal and its leakage decomposition.
#pragma once

#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "device/models.h"

namespace nanoleak::device {

/// Currents flowing FROM the connected nodes INTO the device, one per
/// terminal. Kirchhoff: ig + id + is + ib == 0 (up to rounding).
struct TerminalCurrents {
  double gate = 0.0;
  double drain = 0.0;
  double source = 0.0;
  double bulk = 0.0;

  double sum() const { return gate + drain + source + bulk; }
};

/// Absolute node potentials at the four terminals [V].
struct BiasPoint {
  double vg = 0.0;
  double vd = 0.0;
  double vs = 0.0;
  double vb = 0.0;
};

/// One transistor instance: flavour parameters, width, and per-instance
/// process variation. PMOS devices are evaluated by mirroring all voltages
/// and negating all currents through the NMOS-convention models, the
/// standard complementary-device transform.
class Mosfet {
 public:
  Mosfet(DeviceParams params, double width,
         DeviceVariation variation = DeviceVariation{});

  const DeviceParams& params() const { return params_; }
  double width() const { return width_; }
  const DeviceVariation& variation() const { return variation_; }
  void setVariation(const DeviceVariation& variation) {
    variation_ = variation;
  }

  /// Terminal currents at the given bias (see TerminalCurrents).
  TerminalCurrents currents(const BiasPoint& bias,
                            const Environment& env) const;

  /// Leakage decomposition at the given bias (see LeakageBreakdown for the
  /// attribution rules).
  LeakageBreakdown leakage(const BiasPoint& bias,
                           const Environment& env) const;

  /// True if the channel is off (|Vgs| below threshold) at this bias.
  bool isOff(const BiasPoint& bias, const Environment& env) const;

 private:
  /// NMOS-convention evaluation (PMOS callers pre-mirror the bias).
  TerminalCurrents nmosCurrents(const BiasPoint& bias,
                                const Environment& env) const;
  LeakageBreakdown nmosLeakage(const BiasPoint& bias,
                               const Environment& env) const;
  bool nmosIsOff(const BiasPoint& bias, const Environment& env) const;
  static BiasPoint mirrored(const BiasPoint& bias);

  DeviceParams params_;
  double width_;
  DeviceVariation variation_;
};

}  // namespace nanoleak::device
