// Compiled (bias-invariant vs. bias-dependent) split of the device models.
//
// A DeviceCoeffs holds every per-device quantity that depends only on
// (DeviceParams, width, DeviceVariation, Environment) - temperature-scaled
// specific current, effective geometry, tunneling tox/temperature factors,
// BTBT field and band-gap factors, threshold-voltage prefix - so the
// bias-dependent evaluation that the DC solver calls thousands of times
// per solve performs no pow/log and roughly half the exp calls of the
// interpreted Mosfet path.
//
// Bit-identity contract: compiledCurrents / compiledLeakage / compiledIsOff
// return the EXACT same doubles as Mosfet::currents / leakage / isOff at
// every bias. Two rules make that hold (pinned by
// tests/device/compiled_model_test.cpp):
//  * a cached coefficient is always the value of a whole subexpression of
//    the original model, computed by the same expression (same libm calls,
//    same inputs -> same bits);
//  * bias-dependent arithmetic keeps the original association order -
//    cached values only ever substitute for the subtree they came from,
//    never re-associate neighbouring factors.
#pragma once

#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "device/models.h"
#include "device/mosfet.h"

namespace nanoleak::device {

/// Bias-independent per-device coefficients (see file comment).
struct DeviceCoeffs {
  bool pmos = false;  ///< evaluate mirrored, negate currents (see Mosfet)
  double width = 0.0;

  // --- channel ------------------------------------------------------------
  double vt = 0.0;            ///< thermalVoltage(T)
  double i_spec_t = 0.0;      ///< i_spec * (T/300)^(2 - mu_tc)
  double channel_pref = 0.0;  ///< i_spec_t * (width / l_eff)
  double n_vt = 0.0;          ///< n * vt
  double two_n_vt = 0.0;      ///< (2 * n) * vt
  double zeta_two_n_vt = 0.0; ///< zeta_sat * two_n_vt
  double theta_vsat = 0.0;
  double lambda = 0.0;

  // --- threshold voltage ----------------------------------------------------
  double vth_prefix = 0.0;  ///< (vth0 + halo_shift) + roll_off
  double neg_dibl = 0.0;    ///< -dibl(tox_eff)
  double body_gamma = 0.0;
  double phi_s = 0.0;
  double sqrt_phi_s = 0.0;  ///< sqrt(phi_s)
  double temp_shift = 0.0;  ///< -vth_tc * (T - 300)
  double delta_vth = 0.0;   ///< variation.delta_vth

  // --- gate tunneling -------------------------------------------------------
  double jg0 = 0.0;
  double alpha_v = 0.0;
  double tox_factor = 0.0;   ///< exp(-beta_tox * (tox_eff - tox_nom))
  double temp_factor = 0.0;  ///< 1 + gate_tc * (T - 300)
  double a_ov = 0.0;         ///< width * overlap_length
  double a_half = 0.0;       ///< (0.5 * width) * l_eff
  double c_gb = 0.0;         ///< (k_gb * width) * l_eff
  double half_n_vt = 0.0;    ///< (0.5 * n) * vt

  // --- junction BTBT --------------------------------------------------------
  double btbt_qn2 = 0.0;   ///< (2 * q) * halo_doping
  double vbi = 0.0;
  double b_eff = 0.0;      ///< b_btbt * (Eg(T)/Eg(300))^1.5
  double sqrt_eg = 0.0;    ///< sqrt(Eg(T))
  double btbt_pref = 0.0;  ///< (a_btbt * (width * junction_depth)) * 1e12
};

/// Precomputes the coefficients for one device instance.
DeviceCoeffs compileDevice(const DeviceParams& params, double width,
                           const DeviceVariation& variation,
                           const Environment& env);

/// Convenience overload from a Mosfet instance.
inline DeviceCoeffs compileDevice(const Mosfet& mosfet,
                                  const Environment& env) {
  return compileDevice(mosfet.params(), mosfet.width(), mosfet.variation(),
                       env);
}

/// Terminal currents at `bias`; bit-identical to Mosfet::currents at the
/// coefficients' environment.
TerminalCurrents compiledCurrents(const DeviceCoeffs& coeffs,
                                  const BiasPoint& bias);

/// Terminal selector for compiledTerminalCurrent (order matches the
/// SolverKernel's CSR incidence encoding).
enum class CompiledTerminal { kGate = 0, kDrain = 1, kSource = 2, kBulk = 3 };

/// Single terminal current at `bias`: bit-identical to the corresponding
/// member of compiledCurrents, but computes only the leakage components
/// that terminal actually sums - the per-node residual hot path skips the
/// channel and junction models entirely on gate-terminal incidences, etc.
double compiledTerminalCurrent(const DeviceCoeffs& coeffs,
                               const BiasPoint& bias,
                               CompiledTerminal terminal);

/// Leakage decomposition; bit-identical to Mosfet::leakage.
LeakageBreakdown compiledLeakage(const DeviceCoeffs& coeffs,
                                 const BiasPoint& bias);

/// Channel-off classification; identical to Mosfet::isOff.
bool compiledIsOff(const DeviceCoeffs& coeffs, const BiasPoint& bias);

}  // namespace nanoleak::device
