#include "device/mosfet.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/constants.h"
#include "util/error.h"

namespace nanoleak::device {

Mosfet::Mosfet(DeviceParams params, double width, DeviceVariation variation)
    : params_(std::move(params)), width_(width), variation_(variation) {
  require(width > 0.0, "Mosfet: width must be positive");
}

BiasPoint Mosfet::mirrored(const BiasPoint& bias) {
  return BiasPoint{-bias.vg, -bias.vd, -bias.vs, -bias.vb};
}

TerminalCurrents Mosfet::currents(const BiasPoint& bias,
                                  const Environment& env) const {
  if (params_.polarity == Polarity::kNmos) {
    return nmosCurrents(bias, env);
  }
  const TerminalCurrents mirror = nmosCurrents(mirrored(bias), env);
  return TerminalCurrents{-mirror.gate, -mirror.drain, -mirror.source,
                          -mirror.bulk};
}

TerminalCurrents Mosfet::nmosCurrents(const BiasPoint& bias,
                                      const Environment& env) const {
  // The physical source is whichever diffusion sits at the lower potential;
  // evaluate in that frame and swap the results back afterwards.
  double vd = bias.vd;
  double vs = bias.vs;
  const bool swapped = vd < vs;
  if (swapped) {
    std::swap(vd, vs);
  }

  const double vgs = bias.vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - bias.vb;

  const double ids =
      channelCurrent(params_, variation_, width_, vgs, vds, vsb, env);
  const GateTunneling gt = gateTunneling(params_, variation_, width_, bias.vg,
                                         vd, vs, bias.vb, env);
  const double btbt_d = junctionBtbt(params_, variation_, width_,
                                     vd - bias.vb, env);
  const double btbt_s = junctionBtbt(params_, variation_, width_,
                                     vs - bias.vb, env);

  TerminalCurrents out;
  out.gate = gt.totalFromGate();
  out.drain = ids + btbt_d - gt.igdo - gt.igcd;
  out.source = -ids + btbt_s - gt.igso - gt.igcs;
  out.bulk = -(btbt_d + btbt_s) - gt.igb;
  if (swapped) {
    std::swap(out.drain, out.source);
  }
  return out;
}

LeakageBreakdown Mosfet::leakage(const BiasPoint& bias,
                                 const Environment& env) const {
  if (params_.polarity == Polarity::kNmos) {
    return nmosLeakage(bias, env);
  }
  return nmosLeakage(mirrored(bias), env);
}

LeakageBreakdown Mosfet::nmosLeakage(const BiasPoint& bias,
                                     const Environment& env) const {
  double vd = bias.vd;
  double vs = bias.vs;
  if (vd < vs) {
    std::swap(vd, vs);
  }
  const double vgs = bias.vg - vs;
  const double vds = vd - vs;
  const double vsb = vs - bias.vb;

  LeakageBreakdown breakdown;
  if (nmosIsOff(bias, env)) {
    breakdown.subthreshold = std::abs(
        channelCurrent(params_, variation_, width_, vgs, vds, vsb, env));
  }
  breakdown.gate = gateTunneling(params_, variation_, width_, bias.vg, vd, vs,
                                 bias.vb, env)
                       .magnitude();
  breakdown.btbt =
      junctionBtbt(params_, variation_, width_, vd - bias.vb, env) +
      junctionBtbt(params_, variation_, width_, vs - bias.vb, env);
  return breakdown;
}

bool Mosfet::isOff(const BiasPoint& bias, const Environment& env) const {
  if (params_.polarity == Polarity::kNmos) {
    return nmosIsOff(bias, env);
  }
  return nmosIsOff(mirrored(bias), env);
}

bool Mosfet::nmosIsOff(const BiasPoint& bias, const Environment& env) const {
  double vd = bias.vd;
  double vs = bias.vs;
  if (vd < vs) {
    std::swap(vd, vs);
  }
  const double vth = params_.thresholdVoltage(vd - vs, vs - bias.vb,
                                              env.temperature_k, variation_);
  // Classification floor: in leakage-mode circuits gate voltages sit near
  // the rails, so a device whose Vgs is within a quarter volt of its
  // source is logically OFF even when process/temperature push Vth below
  // that (very leaky samples are exactly the ones that form the paper's
  // Fig. 10 right tail and must stay attributed to subthreshold).
  return (bias.vg - vs) < std::max(vth, kOffClassificationFloor);
}

}  // namespace nanoleak::device
