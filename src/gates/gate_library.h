// Static CMOS standard-cell library.
//
// Every cell is described by one or more stages; each stage is a switch
// expression (series/parallel tree of input or internal signals) that forms
// the NMOS pull-down network, with the PMOS pull-up generated as its dual.
// The same expression tree supplies the cell's truth function, so logic
// simulation and transistor topology can never disagree.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nanoleak::gates {

/// Cell kinds available to logic netlists.
///
/// kDff is a sequential boundary element: it has no transistor topology
/// here; the logic layer treats its D pin as a pseudo primary output and
/// its Q pin as a pseudo primary input (the paper does the same for the
/// ISCAS89 circuits).
enum class GateKind {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kXor2,
  kXnor2,
  kAoi21,
  kOai21,
  kMux2,
  kDff,
};

/// All combinational kinds (everything except kDff).
std::span<const GateKind> combinationalKinds();

const char* toString(GateKind kind);

/// Parses a cell name ("NAND2", case-insensitive). Throws ParseError on
/// unknown names.
GateKind gateKindFromString(const std::string& name);

/// Number of input pins of the cell (kMux2: in0, in1, select).
int inputCount(GateKind kind);

/// True for kinds with a transistor topology (everything except kDff).
bool hasTopology(GateKind kind);

// ---------------------------------------------------------------------------
// Switch-network description.
// ---------------------------------------------------------------------------

/// Reference to a signal inside a cell: an external input pin or the output
/// of an earlier internal stage.
struct SignalRef {
  enum class Source { kInput, kInternal };
  Source source = Source::kInput;
  int index = 0;

  static SignalRef input(int index) {
    return SignalRef{Source::kInput, index};
  }
  static SignalRef internal(int index) {
    return SignalRef{Source::kInternal, index};
  }
};

/// Series/parallel switch expression over signals.
struct SwitchExpr {
  enum class Kind { kLeaf, kSeries, kParallel };
  Kind kind = Kind::kLeaf;
  SignalRef signal;                  // kLeaf only
  std::vector<SwitchExpr> children;  // kSeries / kParallel

  static SwitchExpr leaf(SignalRef signal);
  static SwitchExpr series(std::vector<SwitchExpr> children);
  static SwitchExpr parallel(std::vector<SwitchExpr> children);

  /// Structural dual: series <-> parallel (yields the PMOS network).
  SwitchExpr dual() const;

  /// True if the network conducts for the given signal values.
  bool conducts(std::span<const bool> inputs,
                std::span<const bool> internals) const;

  /// Number of switches (transistors) in the network.
  int switchCount() const;
};

/// One static CMOS stage: out = NOT(pull-down conducts).
struct Stage {
  SwitchExpr pull_down;
};

/// A cell: stages evaluated in order; stage i drives internal signal i;
/// the last stage drives the cell's output pin.
struct CellTopology {
  int num_inputs = 0;
  std::vector<Stage> stages;

  /// Transistors in the full cell (pull-down + dual pull-up per stage).
  int transistorCount() const;
};

/// Topology of a cell kind; requires hasTopology(kind).
const CellTopology& cellTopology(GateKind kind);

/// Truth function of the cell derived from its topology.
/// `inputs.size()` must equal inputCount(kind).
bool evaluateGate(GateKind kind, std::span<const bool> inputs);

/// Evaluates all stage outputs (internal signals); last entry is the cell
/// output. Used for seeding DC solves with logic levels.
std::vector<bool> evaluateStages(GateKind kind, std::span<const bool> inputs);

}  // namespace nanoleak::gates
