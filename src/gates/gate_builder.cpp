#include "gates/gate_builder.h"

#include <array>
#include <string>

#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "util/error.h"

namespace nanoleak::gates {

using circuit::NodeId;

GateNetlistBuilder::GateNetlistBuilder(circuit::Netlist& netlist,
                                       const device::Technology& technology,
                                       NodeId vdd, NodeId gnd)
    : netlist_(netlist), technology_(technology), vdd_(vdd), gnd_(gnd) {}

device::DeviceVariation GateNetlistBuilder::nextVariation(
    const VariationProvider& variation) const {
  return variation ? variation() : device::DeviceVariation{};
}

NodeId GateNetlistBuilder::signalNode(
    const SignalRef& signal, std::span<const NodeId> inputs,
    std::span<const NodeId> stage_nodes) const {
  const auto index = static_cast<std::size_t>(signal.index);
  if (signal.source == SignalRef::Source::kInput) {
    require(index < inputs.size(),
            "GateNetlistBuilder: input signal index out of range");
    return inputs[index];
  }
  require(index < stage_nodes.size(),
          "GateNetlistBuilder: internal signal index out of range");
  return stage_nodes[index];
}

void GateNetlistBuilder::buildNetwork(
    const SwitchExpr& expr, NodeId a, NodeId b, bool pull_up,
    std::span<const NodeId> inputs, std::span<const NodeId> stage_nodes,
    int owner, int series_mult, double rail_voltage,
    const VariationProvider& variation) {
  switch (expr.kind) {
    case SwitchExpr::Kind::kLeaf: {
      const device::DeviceParams& params =
          pull_up ? technology_.pmos : technology_.nmos;
      const double unit = pull_up
                              ? technology_.unit_width_n * technology_.beta_ratio
                              : technology_.unit_width_n;
      device::Mosfet mosfet(params, unit * series_mult,
                            nextVariation(variation));
      const NodeId gate = signalNode(expr.signal, inputs, stage_nodes);
      const NodeId bulk = pull_up ? vdd_ : gnd_;
      netlist_.addMosfet(std::move(mosfet), gate, /*drain=*/a, /*source=*/b,
                         bulk, owner);
      return;
    }
    case SwitchExpr::Kind::kSeries: {
      const auto n = expr.children.size();
      // Chain internal nodes between consecutive children; stack-effect
      // nodes settle near the rail, so seed them just off it.
      NodeId prev = a;
      for (std::size_t i = 0; i < n; ++i) {
        NodeId next = b;
        if (i + 1 < n) {
          next = netlist_.addNode("stack");
          const double seed =
              pull_up ? rail_voltage - 0.08 * rail_voltage
                      : 0.08 * rail_voltage;
          seeds_.emplace_back(next, seed);
          seed_stages_.push_back(-1);
        }
        buildNetwork(expr.children[i], prev, next, pull_up, inputs,
                     stage_nodes, owner,
                     series_mult * static_cast<int>(n), rail_voltage,
                     variation);
        prev = next;
      }
      return;
    }
    case SwitchExpr::Kind::kParallel: {
      for (const SwitchExpr& child : expr.children) {
        buildNetwork(child, a, b, pull_up, inputs, stage_nodes, owner,
                     series_mult, rail_voltage, variation);
      }
      return;
    }
  }
}

void GateNetlistBuilder::instantiate(GateKind kind,
                                     std::span<const NodeId> inputs,
                                     NodeId output, int owner,
                                     std::span<const bool> input_values,
                                     const VariationProvider& variation) {
  const CellTopology& cell = cellTopology(kind);
  require(inputs.size() == static_cast<std::size_t>(cell.num_inputs),
          std::string("GateNetlistBuilder::instantiate: wrong arity for ") +
              toString(kind));
  require(input_values.empty() || input_values.size() == inputs.size(),
          "GateNetlistBuilder::instantiate: input_values arity mismatch");

  const double vdd_volts = technology_.vdd;

  // Stage output nodes: internal for all but the last stage.
  std::vector<NodeId> stage_nodes(cell.stages.size());
  for (std::size_t i = 0; i < cell.stages.size(); ++i) {
    stage_nodes[i] = (i + 1 == cell.stages.size())
                         ? output
                         : netlist_.addNode(std::string(toString(kind)) +
                                            ".s" + std::to_string(i));
  }

  // Logic-level seeds for internal stage outputs.
  if (!input_values.empty()) {
    const std::vector<bool> levels = evaluateStages(kind, input_values);
    for (std::size_t i = 0; i + 1 < cell.stages.size(); ++i) {
      seeds_.emplace_back(stage_nodes[i], levels[i] ? vdd_volts : 0.0);
      seed_stages_.push_back(static_cast<int>(i));
    }
  }

  for (std::size_t i = 0; i < cell.stages.size(); ++i) {
    const SwitchExpr& pd = cell.stages[i].pull_down;
    const SwitchExpr pu = pd.dual();
    // Only internal signals produced by earlier stages may be referenced.
    const std::span<const NodeId> visible(stage_nodes.data(), i);
    buildNetwork(pd, stage_nodes[i], gnd_, /*pull_up=*/false, inputs, visible,
                 owner, 1, vdd_volts, variation);
    buildNetwork(pu, stage_nodes[i], vdd_, /*pull_up=*/true, inputs, visible,
                 owner, 1, vdd_volts, variation);
  }
}

device::LeakageBreakdown isolatedGateLeakage(
    GateKind kind, std::span<const bool> input_values,
    const device::Technology& technology) {
  circuit::Netlist netlist;
  const NodeId vdd = netlist.addNode("VDD");
  const NodeId gnd = netlist.addNode("GND");
  netlist.fixVoltage(vdd, technology.vdd);
  netlist.fixVoltage(gnd, 0.0);

  std::vector<NodeId> inputs;
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    const NodeId node = netlist.addNode("in" + std::to_string(i));
    netlist.fixVoltage(node, input_values[i] ? technology.vdd : 0.0);
    inputs.push_back(node);
  }
  const NodeId output = netlist.addNode("out");

  GateNetlistBuilder builder(netlist, technology, vdd, gnd);
  builder.instantiate(kind, inputs, output, /*owner=*/0, input_values);

  std::vector<double> guess(netlist.nodeCount(), 0.0);
  const bool out_level = evaluateGate(kind, input_values);
  guess[output] = out_level ? technology.vdd : 0.0;
  for (const auto& [node, voltage] : builder.seeds()) {
    guess[node] = voltage;
  }

  circuit::SolverOptions options;
  options.temperature_k = technology.temperature_k;
  options.bracket_lo = -0.3;
  options.bracket_hi = technology.vdd + 0.3;
  circuit::DcSolver solver(options);
  const circuit::Solution solution = solver.solve(netlist, guess);
  require(solution.converged, "isolatedGateLeakage: DC solve did not converge");

  const device::Environment env{technology.temperature_k};
  return circuit::totalLeakage(netlist, solution.voltages, env);
}

}  // namespace nanoleak::gates
