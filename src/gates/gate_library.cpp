#include "gates/gate_library.h"

#include <array>
#include <map>
#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace nanoleak::gates {

namespace {

constexpr std::array<GateKind, 19> kCombinational = {
    GateKind::kInv,   GateKind::kBuf,   GateKind::kNand2, GateKind::kNand3,
    GateKind::kNand4, GateKind::kNor2,  GateKind::kNor3,  GateKind::kNor4,
    GateKind::kAnd2,  GateKind::kAnd3,  GateKind::kAnd4,  GateKind::kOr2,
    GateKind::kOr3,   GateKind::kOr4,   GateKind::kXor2,  GateKind::kXnor2,
    GateKind::kAoi21, GateKind::kOai21, GateKind::kMux2};

}  // namespace

std::span<const GateKind> combinationalKinds() { return kCombinational; }

const char* toString(GateKind kind) {
  switch (kind) {
    case GateKind::kInv:
      return "INV";
    case GateKind::kBuf:
      return "BUF";
    case GateKind::kNand2:
      return "NAND2";
    case GateKind::kNand3:
      return "NAND3";
    case GateKind::kNand4:
      return "NAND4";
    case GateKind::kNor2:
      return "NOR2";
    case GateKind::kNor3:
      return "NOR3";
    case GateKind::kNor4:
      return "NOR4";
    case GateKind::kAnd2:
      return "AND2";
    case GateKind::kAnd3:
      return "AND3";
    case GateKind::kAnd4:
      return "AND4";
    case GateKind::kOr2:
      return "OR2";
    case GateKind::kOr3:
      return "OR3";
    case GateKind::kOr4:
      return "OR4";
    case GateKind::kXor2:
      return "XOR2";
    case GateKind::kXnor2:
      return "XNOR2";
    case GateKind::kAoi21:
      return "AOI21";
    case GateKind::kOai21:
      return "OAI21";
    case GateKind::kMux2:
      return "MUX2";
    case GateKind::kDff:
      return "DFF";
  }
  return "?";
}

GateKind gateKindFromString(const std::string& name) {
  const std::string upper = toUpper(name);
  for (GateKind kind : kCombinational) {
    if (upper == toString(kind)) {
      return kind;
    }
  }
  if (upper == "DFF") {
    return GateKind::kDff;
  }
  // Aliases used by .bench files.
  if (upper == "NOT") {
    return GateKind::kInv;
  }
  if (upper == "BUFF" || upper == "BUFFER") {
    return GateKind::kBuf;
  }
  throw ParseError("unknown gate kind '" + name + "'", 0);
}

int inputCount(GateKind kind) {
  switch (kind) {
    case GateKind::kInv:
    case GateKind::kBuf:
    case GateKind::kDff:
      return 1;
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kXor2:
    case GateKind::kXnor2:
      return 2;
    case GateKind::kNand3:
    case GateKind::kNor3:
    case GateKind::kAnd3:
    case GateKind::kOr3:
    case GateKind::kAoi21:
    case GateKind::kOai21:
    case GateKind::kMux2:
      return 3;
    case GateKind::kNand4:
    case GateKind::kNor4:
    case GateKind::kAnd4:
    case GateKind::kOr4:
      return 4;
  }
  return 0;
}

bool hasTopology(GateKind kind) { return kind != GateKind::kDff; }

// --------------------------------------------------------------------------
// SwitchExpr
// --------------------------------------------------------------------------

SwitchExpr SwitchExpr::leaf(SignalRef signal) {
  SwitchExpr e;
  e.kind = Kind::kLeaf;
  e.signal = signal;
  return e;
}

SwitchExpr SwitchExpr::series(std::vector<SwitchExpr> children) {
  require(children.size() >= 1, "SwitchExpr::series: needs children");
  SwitchExpr e;
  e.kind = Kind::kSeries;
  e.children = std::move(children);
  return e;
}

SwitchExpr SwitchExpr::parallel(std::vector<SwitchExpr> children) {
  require(children.size() >= 1, "SwitchExpr::parallel: needs children");
  SwitchExpr e;
  e.kind = Kind::kParallel;
  e.children = std::move(children);
  return e;
}

SwitchExpr SwitchExpr::dual() const {
  switch (kind) {
    case Kind::kLeaf:
      return *this;
    case Kind::kSeries: {
      std::vector<SwitchExpr> duals;
      duals.reserve(children.size());
      for (const SwitchExpr& child : children) {
        duals.push_back(child.dual());
      }
      return parallel(std::move(duals));
    }
    case Kind::kParallel: {
      std::vector<SwitchExpr> duals;
      duals.reserve(children.size());
      for (const SwitchExpr& child : children) {
        duals.push_back(child.dual());
      }
      return series(std::move(duals));
    }
  }
  return *this;
}

bool SwitchExpr::conducts(std::span<const bool> inputs,
                          std::span<const bool> internals) const {
  switch (kind) {
    case Kind::kLeaf: {
      if (signal.source == SignalRef::Source::kInput) {
        require(signal.index >= 0 &&
                    static_cast<std::size_t>(signal.index) < inputs.size(),
                "SwitchExpr::conducts: input index out of range");
        return inputs[static_cast<std::size_t>(signal.index)];
      }
      require(signal.index >= 0 &&
                  static_cast<std::size_t>(signal.index) < internals.size(),
              "SwitchExpr::conducts: internal index out of range");
      return internals[static_cast<std::size_t>(signal.index)];
    }
    case Kind::kSeries:
      for (const SwitchExpr& child : children) {
        if (!child.conducts(inputs, internals)) {
          return false;
        }
      }
      return true;
    case Kind::kParallel:
      for (const SwitchExpr& child : children) {
        if (child.conducts(inputs, internals)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

int SwitchExpr::switchCount() const {
  if (kind == Kind::kLeaf) {
    return 1;
  }
  int count = 0;
  for (const SwitchExpr& child : children) {
    count += child.switchCount();
  }
  return count;
}

int CellTopology::transistorCount() const {
  int count = 0;
  for (const Stage& stage : stages) {
    count += 2 * stage.pull_down.switchCount();
  }
  return count;
}

// --------------------------------------------------------------------------
// Cell registry
// --------------------------------------------------------------------------

namespace {

SwitchExpr in(int k) { return SwitchExpr::leaf(SignalRef::input(k)); }
SwitchExpr sig(int j) { return SwitchExpr::leaf(SignalRef::internal(j)); }

CellTopology makeInv() {
  CellTopology cell;
  cell.num_inputs = 1;
  cell.stages.push_back(Stage{in(0)});
  return cell;
}

CellTopology makeBuf() {
  CellTopology cell;
  cell.num_inputs = 1;
  cell.stages.push_back(Stage{in(0)});   // internal 0 = NOT a
  cell.stages.push_back(Stage{sig(0)});  // out = NOT internal = a
  return cell;
}

CellTopology makeNand(int n) {
  CellTopology cell;
  cell.num_inputs = n;
  std::vector<SwitchExpr> chain;
  for (int k = 0; k < n; ++k) {
    chain.push_back(in(k));
  }
  cell.stages.push_back(Stage{SwitchExpr::series(std::move(chain))});
  return cell;
}

CellTopology makeNor(int n) {
  CellTopology cell;
  cell.num_inputs = n;
  std::vector<SwitchExpr> bank;
  for (int k = 0; k < n; ++k) {
    bank.push_back(in(k));
  }
  cell.stages.push_back(Stage{SwitchExpr::parallel(std::move(bank))});
  return cell;
}

CellTopology makeAnd(int n) {
  CellTopology cell = makeNand(n);
  cell.stages.push_back(Stage{sig(0)});  // inverter stage
  return cell;
}

CellTopology makeOr(int n) {
  CellTopology cell = makeNor(n);
  cell.stages.push_back(Stage{sig(0)});
  return cell;
}

CellTopology makeXor() {
  // na = NOT a; nb = NOT b; out = NOT((a AND b) OR (na AND nb)) = a XOR b.
  CellTopology cell;
  cell.num_inputs = 2;
  cell.stages.push_back(Stage{in(0)});  // internal 0 = na
  cell.stages.push_back(Stage{in(1)});  // internal 1 = nb
  cell.stages.push_back(Stage{SwitchExpr::parallel(
      {SwitchExpr::series({in(0), in(1)}),
       SwitchExpr::series({sig(0), sig(1)})})});
  return cell;
}

CellTopology makeXnor() {
  // out = NOT((a AND nb) OR (na AND b)) = a XNOR b.
  CellTopology cell;
  cell.num_inputs = 2;
  cell.stages.push_back(Stage{in(0)});
  cell.stages.push_back(Stage{in(1)});
  cell.stages.push_back(Stage{SwitchExpr::parallel(
      {SwitchExpr::series({in(0), sig(1)}),
       SwitchExpr::series({sig(0), in(1)})})});
  return cell;
}

CellTopology makeAoi21() {
  // out = NOT((a AND b) OR c)
  CellTopology cell;
  cell.num_inputs = 3;
  cell.stages.push_back(Stage{SwitchExpr::parallel(
      {SwitchExpr::series({in(0), in(1)}), in(2)})});
  return cell;
}

CellTopology makeOai21() {
  // out = NOT((a OR b) AND c)
  CellTopology cell;
  cell.num_inputs = 3;
  cell.stages.push_back(Stage{SwitchExpr::series(
      {SwitchExpr::parallel({in(0), in(1)}), in(2)})});
  return cell;
}

CellTopology makeMux2() {
  // inputs: a (0), b (1), s (2); out = s ? b : a.
  // ns = NOT s; y = NOT((a AND ns) OR (b AND s)); out = NOT y.
  CellTopology cell;
  cell.num_inputs = 3;
  cell.stages.push_back(Stage{in(2)});  // internal 0 = ns
  cell.stages.push_back(Stage{SwitchExpr::parallel(
      {SwitchExpr::series({in(0), sig(0)}),
       SwitchExpr::series({in(1), in(2)})})});  // internal 1 = NOT(mux)
  cell.stages.push_back(Stage{sig(1)});         // out = mux
  return cell;
}

const std::map<GateKind, CellTopology>& registry() {
  static const std::map<GateKind, CellTopology> cells = [] {
    std::map<GateKind, CellTopology> m;
    m.emplace(GateKind::kInv, makeInv());
    m.emplace(GateKind::kBuf, makeBuf());
    m.emplace(GateKind::kNand2, makeNand(2));
    m.emplace(GateKind::kNand3, makeNand(3));
    m.emplace(GateKind::kNand4, makeNand(4));
    m.emplace(GateKind::kNor2, makeNor(2));
    m.emplace(GateKind::kNor3, makeNor(3));
    m.emplace(GateKind::kNor4, makeNor(4));
    m.emplace(GateKind::kAnd2, makeAnd(2));
    m.emplace(GateKind::kAnd3, makeAnd(3));
    m.emplace(GateKind::kAnd4, makeAnd(4));
    m.emplace(GateKind::kOr2, makeOr(2));
    m.emplace(GateKind::kOr3, makeOr(3));
    m.emplace(GateKind::kOr4, makeOr(4));
    m.emplace(GateKind::kXor2, makeXor());
    m.emplace(GateKind::kXnor2, makeXnor());
    m.emplace(GateKind::kAoi21, makeAoi21());
    m.emplace(GateKind::kOai21, makeOai21());
    m.emplace(GateKind::kMux2, makeMux2());
    return m;
  }();
  return cells;
}

}  // namespace

const CellTopology& cellTopology(GateKind kind) {
  require(hasTopology(kind),
          std::string("cellTopology: ") + toString(kind) +
              " has no transistor topology");
  return registry().at(kind);
}

std::vector<bool> evaluateStages(GateKind kind, std::span<const bool> inputs) {
  const CellTopology& cell = cellTopology(kind);
  require(inputs.size() == static_cast<std::size_t>(cell.num_inputs),
          std::string("evaluateStages: wrong input arity for ") +
              toString(kind));
  // Contiguous buffer for internal signals (std::vector<bool> cannot back a
  // span); no cell has more than a handful of stages.
  std::array<bool, 32> internals{};
  require(cell.stages.size() <= internals.size(),
          "evaluateStages: too many stages");
  std::vector<bool> outputs;
  outputs.reserve(cell.stages.size());
  for (std::size_t i = 0; i < cell.stages.size(); ++i) {
    const bool conducting = cell.stages[i].pull_down.conducts(
        inputs, std::span<const bool>(internals.data(), i));
    internals[i] = !conducting;
    outputs.push_back(internals[i]);
  }
  return outputs;
}

bool evaluateGate(GateKind kind, std::span<const bool> inputs) {
  const std::vector<bool> outputs = evaluateStages(kind, inputs);
  return outputs.back();
}

}  // namespace nanoleak::gates
