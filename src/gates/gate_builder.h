// Expands standard cells into transistor-level circuit::Netlist instances.
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "circuit/netlist.h"
#include "device/device_params.h"
#include "gates/gate_library.h"

namespace nanoleak::gates {

/// Supplies a process variation for each transistor as it is created
/// (identity variation when empty). The Monte-Carlo engine plugs its
/// sampler in here.
using VariationProvider = std::function<device::DeviceVariation()>;

/// Builds gate instances into a transistor netlist.
///
/// Node conventions: the p-substrate (NMOS bulk) is the GND rail and the
/// n-well (PMOS bulk) is the VDD rail, which is what makes the paper's
/// Eq. (6) component inventory emerge naturally (e.g. no PMOS junction
/// BTBT while the output sits at VDD).
class GateNetlistBuilder {
 public:
  /// `vdd` and `gnd` must be nodes of `netlist`, typically fixed to the
  /// rails by the caller.
  GateNetlistBuilder(circuit::Netlist& netlist,
                     const device::Technology& technology, circuit::NodeId vdd,
                     circuit::NodeId gnd);

  /// Instantiates `kind` with the given input/output nets.
  ///
  /// `owner` tags every transistor created (for per-gate leakage metering).
  /// When `input_values` is non-empty it must match the input arity; the
  /// builder then records logic-level seed voltages for the internal stage
  /// nodes it creates (read them back via seeds()).
  void instantiate(GateKind kind, std::span<const circuit::NodeId> inputs,
                   circuit::NodeId output, int owner,
                   std::span<const bool> input_values = {},
                   const VariationProvider& variation = {});

  /// Seed voltages accumulated across instantiate() calls (internal stage
  /// and stack nodes only; callers seed the external nets themselves).
  const std::vector<std::pair<circuit::NodeId, double>>& seeds() const {
    return seeds_;
  }

  /// Stage index behind each seeds() entry, parallel to seeds():
  /// seedStages()[i] >= 0 means seeds()[i] is the logic-level seed of that
  /// internal stage (re-derivable for a different input pattern via
  /// evaluateStages); -1 marks the pattern-independent series-stack seeds.
  const std::vector<int>& seedStages() const { return seed_stages_; }

  const device::Technology& technology() const { return technology_; }
  circuit::NodeId vddNode() const { return vdd_; }
  circuit::NodeId gndNode() const { return gnd_; }

 private:
  /// Recursively builds `expr` between nodes `a` (output side) and `b`
  /// (rail side). `series_mult` is the width multiplier accumulated from
  /// enclosing series chains (standard stack upsizing).
  void buildNetwork(const SwitchExpr& expr, circuit::NodeId a,
                    circuit::NodeId b, bool pull_up,
                    std::span<const circuit::NodeId> inputs,
                    std::span<const circuit::NodeId> stage_nodes, int owner,
                    int series_mult, double rail_voltage,
                    const VariationProvider& variation);

  circuit::NodeId signalNode(const SignalRef& signal,
                             std::span<const circuit::NodeId> inputs,
                             std::span<const circuit::NodeId> stage_nodes) const;

  device::DeviceVariation nextVariation(
      const VariationProvider& variation) const;

  circuit::Netlist& netlist_;
  device::Technology technology_;
  circuit::NodeId vdd_;
  circuit::NodeId gnd_;
  std::vector<std::pair<circuit::NodeId, double>> seeds_;
  std::vector<int> seed_stages_;
};

/// Convenience wrapper: a single gate with ideal-source inputs, solved for
/// its leakage. Used by tests and the quickstart example; the
/// characterizer builds richer fixtures itself.
device::LeakageBreakdown isolatedGateLeakage(
    GateKind kind, std::span<const bool> input_values,
    const device::Technology& technology);

}  // namespace nanoleak::gates
