// Two-valued logic simulation over a LogicNetlist ("propagate logic value
// from primary inputs to primary outputs, for input pattern I" in the
// paper's Fig. 13 flow).
//
// Besides the one-shot simulate(), the simulator offers an allocation-free
// simulateInto() for reused buffers and an event-driven simulateDelta()
// that re-simulates only the fanout cone of the source bits that changed -
// the building block of the estimation plan's incremental re-estimation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "logic/logic_netlist.h"
#include "util/rng.h"

namespace nanoleak::logic {

/// Reusable scratch for LogicSimulator::simulateDelta (one per caller;
/// not shared between threads).
struct DeltaSimScratch {
  /// Per-gate "already queued" flags; maintained by simulateDelta.
  std::vector<char> queued;
  /// Min-heap of (topological position, gate) pending evaluation.
  std::vector<std::pair<std::size_t, GateId>> heap;
};

/// Caches the topological order of a netlist and evaluates input patterns.
class LogicSimulator {
 public:
  explicit LogicSimulator(const LogicNetlist& netlist);

  /// Values for every net given values for the source nets (primary inputs
  /// followed by DFF outputs, see LogicNetlist::sourceNets()).
  std::vector<bool> simulate(const std::vector<bool>& source_values) const;

  /// Like simulate(), but writes into a caller-owned buffer (resized to
  /// netCount()); no allocation once the buffer has capacity.
  void simulateInto(const std::vector<bool>& source_values,
                    std::vector<bool>& values) const;

  /// Event-driven incremental re-simulation. `values` must hold this
  /// netlist's per-net values for some earlier source pattern (as produced
  /// by simulate()/simulateInto()); it is updated in place to match
  /// `source_values`, evaluating only gates reachable from the flipped
  /// source bits. Outputs (cleared first):
  ///  - `dirty_gates`: every gate at least one of whose input values
  ///    changed, in topological order (these are exactly the gates whose
  ///    input vector index changed);
  ///  - `changed_nets`: every net whose value flipped, each listed once.
  void simulateDelta(const std::vector<bool>& source_values,
                     std::vector<bool>& values,
                     std::vector<GateId>& dirty_gates,
                     std::vector<NetId>& changed_nets,
                     DeltaSimScratch& scratch) const;

  /// Number of source values simulate() expects.
  std::size_t sourceCount() const { return sources_.size(); }

  const std::vector<GateId>& order() const { return order_; }

  /// Position of a gate in order() (inverse permutation).
  std::size_t topoPosition(GateId gate) const { return topo_position_[gate]; }

 private:
  void checkSourceCount(std::size_t got) const;

  const LogicNetlist& netlist_;
  std::vector<GateId> order_;
  std::vector<std::size_t> topo_position_;
  std::vector<NetId> sources_;
};

/// Draws a uniform random source pattern.
std::vector<bool> randomPattern(std::size_t bits, Rng& rng);

}  // namespace nanoleak::logic
