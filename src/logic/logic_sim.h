// Two-valued logic simulation over a LogicNetlist ("propagate logic value
// from primary inputs to primary outputs, for input pattern I" in the
// paper's Fig. 13 flow).
#pragma once

#include <vector>

#include "logic/logic_netlist.h"
#include "util/rng.h"

namespace nanoleak::logic {

/// Caches the topological order of a netlist and evaluates input patterns.
class LogicSimulator {
 public:
  explicit LogicSimulator(const LogicNetlist& netlist);

  /// Values for every net given values for the source nets (primary inputs
  /// followed by DFF outputs, see LogicNetlist::sourceNets()).
  std::vector<bool> simulate(const std::vector<bool>& source_values) const;

  /// Number of source values simulate() expects.
  std::size_t sourceCount() const { return sources_.size(); }

  const std::vector<GateId>& order() const { return order_; }

 private:
  const LogicNetlist& netlist_;
  std::vector<GateId> order_;
  std::vector<NetId> sources_;
};

/// Draws a uniform random source pattern.
std::vector<bool> randomPattern(std::size_t bits, Rng& rng);

}  // namespace nanoleak::logic
