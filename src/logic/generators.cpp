#include "logic/generators.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::logic {

using gates::GateKind;

LogicNetlist inverterChain(int n) {
  require(n >= 1, "inverterChain: need at least one stage");
  LogicNetlist netlist;
  NetId prev = netlist.addNet("in");
  netlist.markPrimaryInput(prev);
  for (int i = 0; i < n; ++i) {
    const NetId out = netlist.addNet("n" + std::to_string(i));
    netlist.addGate(GateKind::kInv, {prev}, out);
    prev = out;
  }
  netlist.markPrimaryOutput(prev);
  netlist.validate();
  return netlist;
}

LogicNetlist fanoutStar(int fanout) {
  require(fanout >= 0, "fanoutStar: fanout must be >= 0");
  LogicNetlist netlist;
  const NetId in = netlist.addNet("in");
  netlist.markPrimaryInput(in);
  const NetId mid = netlist.addNet("mid");
  netlist.addGate(GateKind::kInv, {in}, mid, "driver");
  for (int i = 0; i < fanout; ++i) {
    const NetId out = netlist.addNet("leaf" + std::to_string(i));
    netlist.addGate(GateKind::kInv, {mid}, out);
    netlist.markPrimaryOutput(out);
  }
  if (fanout == 0) {
    netlist.markPrimaryOutput(mid);
  }
  netlist.validate();
  return netlist;
}

LogicNetlist c17() {
  LogicNetlist netlist;
  auto in = [&](const std::string& name) {
    const NetId id = netlist.addNet(name);
    netlist.markPrimaryInput(id);
    return id;
  };
  const NetId g1 = in("G1");
  const NetId g2 = in("G2");
  const NetId g3 = in("G3");
  const NetId g6 = in("G6");
  const NetId g7 = in("G7");
  const NetId g10 = netlist.addNet("G10");
  const NetId g11 = netlist.addNet("G11");
  const NetId g16 = netlist.addNet("G16");
  const NetId g19 = netlist.addNet("G19");
  const NetId g22 = netlist.addNet("G22");
  const NetId g23 = netlist.addNet("G23");
  netlist.addGate(GateKind::kNand2, {g1, g3}, g10, "G10");
  netlist.addGate(GateKind::kNand2, {g3, g6}, g11, "G11");
  netlist.addGate(GateKind::kNand2, {g2, g11}, g16, "G16");
  netlist.addGate(GateKind::kNand2, {g11, g7}, g19, "G19");
  netlist.addGate(GateKind::kNand2, {g10, g16}, g22, "G22");
  netlist.addGate(GateKind::kNand2, {g16, g19}, g23, "G23");
  netlist.markPrimaryOutput(g22);
  netlist.markPrimaryOutput(g23);
  netlist.validate();
  return netlist;
}

namespace {

/// Builds a full adder; returns {sum, carry_out}.
std::pair<NetId, NetId> fullAdder(LogicNetlist& netlist, NetId a, NetId b,
                                  NetId cin, const std::string& prefix) {
  const NetId axb = netlist.addNet(prefix + ".axb");
  const NetId sum = netlist.addNet(prefix + ".s");
  const NetId t1 = netlist.addNet(prefix + ".t1");
  const NetId t2 = netlist.addNet(prefix + ".t2");
  const NetId cout = netlist.addNet(prefix + ".co");
  netlist.addGate(GateKind::kXor2, {a, b}, axb);
  netlist.addGate(GateKind::kXor2, {axb, cin}, sum);
  netlist.addGate(GateKind::kAnd2, {a, b}, t1);
  netlist.addGate(GateKind::kAnd2, {axb, cin}, t2);
  netlist.addGate(GateKind::kOr2, {t1, t2}, cout);
  return {sum, cout};
}

/// Builds a half adder; returns {sum, carry_out}.
std::pair<NetId, NetId> halfAdder(LogicNetlist& netlist, NetId a, NetId b,
                                  const std::string& prefix) {
  const NetId sum = netlist.addNet(prefix + ".s");
  const NetId cout = netlist.addNet(prefix + ".co");
  netlist.addGate(GateKind::kXor2, {a, b}, sum);
  netlist.addGate(GateKind::kAnd2, {a, b}, cout);
  return {sum, cout};
}

}  // namespace

LogicNetlist rippleCarryAdder(int bits) {
  require(bits >= 1, "rippleCarryAdder: need at least one bit");
  LogicNetlist netlist;
  std::vector<NetId> a(static_cast<std::size_t>(bits));
  std::vector<NetId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    a[static_cast<std::size_t>(i)] = netlist.addNet("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] = netlist.addNet("b" + std::to_string(i));
    netlist.markPrimaryInput(a[static_cast<std::size_t>(i)]);
    netlist.markPrimaryInput(b[static_cast<std::size_t>(i)]);
  }
  NetId carry = netlist.addNet("cin");
  netlist.markPrimaryInput(carry);
  for (int i = 0; i < bits; ++i) {
    const auto [sum, cout] =
        fullAdder(netlist, a[static_cast<std::size_t>(i)],
                  b[static_cast<std::size_t>(i)], carry,
                  "fa" + std::to_string(i));
    netlist.markPrimaryOutput(sum);
    carry = cout;
  }
  netlist.markPrimaryOutput(carry);
  netlist.validate();
  return netlist;
}

LogicNetlist arrayMultiplier(int bits) {
  require(bits >= 2, "arrayMultiplier: need at least two bits");
  const auto n = static_cast<std::size_t>(bits);
  LogicNetlist netlist;
  std::vector<NetId> a(n);
  std::vector<NetId> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = netlist.addNet("a" + std::to_string(i));
    b[i] = netlist.addNet("b" + std::to_string(i));
    netlist.markPrimaryInput(a[i]);
    netlist.markPrimaryInput(b[i]);
  }

  // Partial products pp[i][j] = a[j] AND b[i].
  auto pp = [&](std::size_t i, std::size_t j) {
    const NetId out =
        netlist.addNet("pp" + std::to_string(i) + "_" + std::to_string(j));
    netlist.addGate(GateKind::kAnd2, {a[j], b[i]}, out);
    return out;
  };

  // Row 0 seeds the running sum. Before adding row i, sum[0] is the
  // finalized product bit (i-1); the rest of the sum, the previous row's
  // final carry (one position above the row's top bit), and row i are
  // combined with a ripple of half/full adders - the classic array shape.
  std::vector<NetId> sum(n);
  for (std::size_t j = 0; j < n; ++j) {
    sum[j] = pp(0, j);
  }
  std::vector<NetId> product;
  NetId prev_carry = 0;
  bool have_prev_carry = false;

  for (std::size_t i = 1; i < n; ++i) {
    product.push_back(sum[0]);
    std::vector<NetId> next(n);
    NetId chain = 0;
    bool have_chain = false;
    for (std::size_t j = 0; j < n; ++j) {
      const std::string prefix =
          "r" + std::to_string(i) + "c" + std::to_string(j);
      const NetId x = pp(i, j);
      NetId y = 0;
      bool have_y = false;
      if (j + 1 < n) {
        y = sum[j + 1];
        have_y = true;
      } else if (have_prev_carry) {
        y = prev_carry;
        have_y = true;
      }
      if (have_y && have_chain) {
        const auto [s, c] = fullAdder(netlist, x, y, chain, prefix);
        next[j] = s;
        chain = c;
      } else if (have_y || have_chain) {
        const auto [s, c] =
            halfAdder(netlist, x, have_y ? y : chain, prefix);
        next[j] = s;
        chain = c;
        have_chain = true;
      } else {
        next[j] = x;
      }
    }
    sum = next;
    prev_carry = chain;
    have_prev_carry = have_chain;
  }

  for (std::size_t j = 0; j < n; ++j) {
    product.push_back(sum[j]);
  }
  require(have_prev_carry, "arrayMultiplier: missing top carry");
  product.push_back(prev_carry);
  require(product.size() == 2 * n, "arrayMultiplier: product width mismatch");

  for (const NetId bit : product) {
    netlist.markPrimaryOutput(bit);
  }
  netlist.validate();
  return netlist;
}

LogicNetlist alu8() {
  constexpr std::size_t kBits = 8;
  LogicNetlist netlist;
  std::vector<NetId> a(kBits);
  std::vector<NetId> b(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    a[i] = netlist.addNet("a" + std::to_string(i));
    b[i] = netlist.addNet("b" + std::to_string(i));
    netlist.markPrimaryInput(a[i]);
    netlist.markPrimaryInput(b[i]);
  }
  std::vector<NetId> op(3);
  for (std::size_t i = 0; i < op.size(); ++i) {
    op[i] = netlist.addNet("op" + std::to_string(i));
    netlist.markPrimaryInput(op[i]);
  }

  // SUB = op0 while in the arithmetic group: b is conditionally inverted
  // and the carry-in is the mode bit itself (two's complement add).
  std::vector<NetId> badd(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    badd[i] = netlist.addNet("badd" + std::to_string(i));
    netlist.addGate(GateKind::kXor2, {b[i], op[0]}, badd[i]);
  }
  NetId carry = op[0];
  std::vector<NetId> addsub(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    const auto [s, c] =
        fullAdder(netlist, a[i], badd[i], carry, "alu.fa" + std::to_string(i));
    addsub[i] = s;
    carry = c;
  }

  auto mux = [&](NetId sel, NetId lo, NetId hi, const std::string& name) {
    const NetId out = netlist.addNet(name);
    netlist.addGate(GateKind::kMux2, {lo, hi, sel}, out);
    return out;
  };

  for (std::size_t i = 0; i < kBits; ++i) {
    const std::string bit = std::to_string(i);
    const NetId and_i = netlist.addNet("and" + bit);
    netlist.addGate(GateKind::kAnd2, {a[i], b[i]}, and_i);
    const NetId or_i = netlist.addNet("or" + bit);
    netlist.addGate(GateKind::kOr2, {a[i], b[i]}, or_i);
    const NetId xor_i = netlist.addNet("xor" + bit);
    netlist.addGate(GateKind::kXor2, {a[i], b[i]}, xor_i);
    const NetId nor_i = netlist.addNet("nor" + bit);
    netlist.addGate(GateKind::kNor2, {a[i], b[i]}, nor_i);
    const NetId nota_i = netlist.addNet("nota" + bit);
    netlist.addGate(GateKind::kInv, {a[i]}, nota_i);
    const NetId pass_i = netlist.addNet("pass" + bit);
    netlist.addGate(GateKind::kBuf, {a[i]}, pass_i);

    // op2 op1 op0: 00x -> add/sub, 010 -> and, 011 -> or, 100 -> xor,
    // 101 -> nor, 110 -> not a, 111 -> pass a.
    const NetId logic_lo = mux(op[0], and_i, or_i, "m.ll" + bit);
    const NetId logic_hi = mux(op[0], xor_i, nor_i, "m.lh" + bit);
    const NetId unary = mux(op[0], nota_i, pass_i, "m.un" + bit);
    const NetId grp01 = mux(op[1], addsub[i], logic_lo, "m.g01" + bit);
    const NetId grp23 = mux(op[1], logic_hi, unary, "m.g23" + bit);
    const NetId out = mux(op[2], grp01, grp23, "y" + bit);
    netlist.markPrimaryOutput(out);
  }
  const NetId cout = netlist.addNet("cout");
  netlist.addGate(GateKind::kBuf, {carry}, cout);
  netlist.markPrimaryOutput(cout);
  netlist.validate();
  return netlist;
}

SyntheticSpec iscasSpec(const std::string& name) {
  // Published ISCAS89 shapes (gate counts include inverters).
  struct Row {
    const char* name;
    std::size_t pi, po, dff, gates;
  };
  static constexpr Row kRows[] = {
      {"s838", 34, 1, 32, 446},      {"s1196", 14, 14, 18, 529},
      {"s1423", 17, 5, 74, 657},     {"s5378", 35, 49, 179, 2779},
      {"s9234", 36, 39, 211, 5597},  {"s13207", 62, 152, 638, 7951},
  };
  std::string canonical = name;
  // The paper's Fig. 12 axis labels misprint two names.
  if (canonical == "s5372") {
    canonical = "s5378";
  }
  if (canonical == "s9378") {
    canonical = "s9234";
  }
  for (const Row& row : kRows) {
    if (canonical == row.name) {
      return SyntheticSpec{row.name, row.pi, row.po, row.dff, row.gates};
    }
  }
  throw Error("iscasSpec: unknown benchmark '" + name + "'");
}

std::vector<std::string> knownIscasNames() {
  return {"s838", "s1196", "s1423", "s5378", "s9234", "s13207"};
}

LogicNetlist synthesizeIscasLike(const SyntheticSpec& spec,
                                 std::uint64_t seed) {
  require(spec.primary_inputs + spec.dffs >= 2,
          "synthesizeIscasLike: need at least two source nets");
  require(spec.gates >= 1, "synthesizeIscasLike: need gates");
  Rng rng(seed);
  LogicNetlist netlist;

  std::vector<NetId> driven;  // nets usable as gate inputs
  for (std::size_t i = 0; i < spec.primary_inputs; ++i) {
    const NetId net = netlist.addNet(spec.name + ".pi" + std::to_string(i));
    netlist.markPrimaryInput(net);
    driven.push_back(net);
  }
  std::vector<NetId> dff_q(spec.dffs);
  for (std::size_t i = 0; i < spec.dffs; ++i) {
    dff_q[i] = netlist.addNet(spec.name + ".q" + std::to_string(i));
    driven.push_back(dff_q[i]);
  }

  // Gate-kind mix loosely modeled on mapped ISCAS89 netlists.
  struct Weighted {
    GateKind kind;
    double weight;
  };
  static const Weighted kMix[] = {
      {GateKind::kInv, 0.24},   {GateKind::kNand2, 0.20},
      {GateKind::kNor2, 0.14},  {GateKind::kNand3, 0.08},
      {GateKind::kNor3, 0.05},  {GateKind::kAnd2, 0.07},
      {GateKind::kOr2, 0.05},   {GateKind::kXor2, 0.05},
      {GateKind::kNand4, 0.03}, {GateKind::kAoi21, 0.04},
      {GateKind::kOai21, 0.03}, {GateKind::kBuf, 0.02},
  };
  double total_weight = 0.0;
  for (const Weighted& w : kMix) {
    total_weight += w.weight;
  }

  // Track nets with no fanout yet so the generator can prefer them,
  // producing the fanout profile of real netlists (mean ~1.5-2, long tail).
  std::vector<NetId> unloaded = driven;

  auto pickKind = [&]() {
    double x = rng.uniform() * total_weight;
    for (const Weighted& w : kMix) {
      if (x < w.weight) {
        return w.kind;
      }
      x -= w.weight;
    }
    return GateKind::kInv;
  };

  auto pickInput = [&]() -> NetId {
    if (!unloaded.empty() && rng.bernoulli(0.45)) {
      const std::size_t idx = rng.uniformInt(unloaded.size());
      const NetId net = unloaded[idx];
      unloaded[idx] = unloaded.back();
      unloaded.pop_back();
      return net;
    }
    // Locality bias: prefer recently created nets.
    if (driven.size() > 24 && rng.bernoulli(0.6)) {
      const std::size_t window = std::min<std::size_t>(64, driven.size());
      return driven[driven.size() - 1 - rng.uniformInt(window)];
    }
    return driven[rng.uniformInt(driven.size())];
  };

  for (std::size_t g = 0; g < spec.gates; ++g) {
    const GateKind kind = pickKind();
    const auto arity = static_cast<std::size_t>(gates::inputCount(kind));
    std::vector<NetId> inputs;
    inputs.reserve(arity);
    for (std::size_t pin = 0; pin < arity; ++pin) {
      // Allow repeated nets across pins only if unavoidable.
      NetId candidate = pickInput();
      for (int attempt = 0;
           attempt < 4 &&
           std::find(inputs.begin(), inputs.end(), candidate) != inputs.end();
           ++attempt) {
        candidate = pickInput();
      }
      inputs.push_back(candidate);
    }
    const NetId out = netlist.addNet(spec.name + ".n" + std::to_string(g));
    netlist.addGate(kind, std::move(inputs), out);
    driven.push_back(out);
    unloaded.push_back(out);
  }

  // Wire DFF D-pins and primary outputs to random driven nets, preferring
  // unloaded ones so dangling logic stays rare.
  auto pickSink = [&]() -> NetId {
    if (!unloaded.empty()) {
      const std::size_t idx = rng.uniformInt(unloaded.size());
      const NetId net = unloaded[idx];
      unloaded[idx] = unloaded.back();
      unloaded.pop_back();
      return net;
    }
    return driven[rng.uniformInt(driven.size())];
  };
  for (std::size_t i = 0; i < spec.dffs; ++i) {
    netlist.addDff(pickSink(), dff_q[i],
                   spec.name + ".dff" + std::to_string(i));
  }
  for (std::size_t i = 0; i < spec.primary_outputs; ++i) {
    netlist.markPrimaryOutput(pickSink());
  }
  netlist.validate();
  return netlist;
}

}  // namespace nanoleak::logic
