// Expands a gate-level netlist into a transistor-level circuit::Netlist so
// the DC solver can play SPICE over the whole circuit (the golden side of
// every Fig. 12 comparison).
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "gates/gate_builder.h"
#include "logic/logic_netlist.h"

namespace nanoleak::logic {

/// Result of expanding a LogicNetlist.
struct ExpandedCircuit {
  circuit::Netlist netlist;
  circuit::NodeId vdd = 0;
  circuit::NodeId gnd = 0;
  /// Transistor node backing each logic net.
  std::vector<circuit::NodeId> net_node;
  /// Simulated logic value of each net at the expansion pattern (saves
  /// callers re-simulating the pattern they just expanded).
  std::vector<bool> net_values;
  /// Initial-guess voltages (logic levels + stack-node heuristics).
  std::vector<double> seed;
  /// Gauss-Seidel relaxation order (topological).
  std::vector<circuit::NodeId> sweep_order;
  /// Fixed driver-input node of each DFF's Q-net reference inverter,
  /// parallel to LogicNetlist::dffs(). Bound to the COMPLEMENT of the Q
  /// value; GoldenSolver re-binds these when re-solving a new pattern.
  std::vector<circuit::NodeId> dff_qsrc;

  /// One builder seed for an internal (stage/stack) node, with enough
  /// provenance to recompute it for a different input pattern: stage-level
  /// seeds (stage >= 0) become evaluateStages(kind, pins)[stage] of the
  /// owning gate; stack seeds (stage == -1) are pattern-independent.
  struct InternalSeed {
    circuit::NodeId node;
    /// Seed voltage at the expansion pattern.
    double voltage;
    /// Owning logic gate, or npos for DFF boundary models.
    std::size_t gate;
    int stage;

    static constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);
  };
  std::vector<InternalSeed> internal_seeds;
  /// Owners 0..gate_count-1 tag the logic gates' transistors; DFF boundary
  /// models are tagged circuit::kNoOwner and excluded from gate totals.
  std::size_t gate_count = 0;
};

/// Expands `netlist` under input pattern `source_values` (see
/// LogicNetlist::sourceNets() for the ordering).
///
/// Sequential boundary handling (matches the paper's pseudo-PI/PO
/// treatment, with electrical fidelity): each DFF Q net is driven by a
/// reference inverter (so the net has realistic driver resistance and
/// feels loading), and each DFF D pin loads its net like an inverter
/// input. These boundary inverters are excluded from leakage totals.
ExpandedCircuit expandToTransistors(
    const LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values,
    const gates::VariationProvider& variation = {});

}  // namespace nanoleak::logic
