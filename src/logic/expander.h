// Expands a gate-level netlist into a transistor-level circuit::Netlist so
// the DC solver can play SPICE over the whole circuit (the golden side of
// every Fig. 12 comparison).
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "gates/gate_builder.h"
#include "logic/logic_netlist.h"

namespace nanoleak::logic {

/// Result of expanding a LogicNetlist.
struct ExpandedCircuit {
  circuit::Netlist netlist;
  circuit::NodeId vdd = 0;
  circuit::NodeId gnd = 0;
  /// Transistor node backing each logic net.
  std::vector<circuit::NodeId> net_node;
  /// Initial-guess voltages (logic levels + stack-node heuristics).
  std::vector<double> seed;
  /// Gauss-Seidel relaxation order (topological).
  std::vector<circuit::NodeId> sweep_order;
  /// Owners 0..gate_count-1 tag the logic gates' transistors; DFF boundary
  /// models are tagged circuit::kNoOwner and excluded from gate totals.
  std::size_t gate_count = 0;
};

/// Expands `netlist` under input pattern `source_values` (see
/// LogicNetlist::sourceNets() for the ordering).
///
/// Sequential boundary handling (matches the paper's pseudo-PI/PO
/// treatment, with electrical fidelity): each DFF Q net is driven by a
/// reference inverter (so the net has realistic driver resistance and
/// feels loading), and each DFF D pin loads its net like an inverter
/// input. These boundary inverters are excluded from leakage totals.
ExpandedCircuit expandToTransistors(
    const LogicNetlist& netlist, const device::Technology& technology,
    const std::vector<bool>& source_values,
    const gates::VariationProvider& variation = {});

}  // namespace nanoleak::logic
