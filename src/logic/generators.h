// Structural circuit generators.
//
// The paper evaluates on six ISCAS89 benchmarks plus an 8x8 multiplier
// ("mult88") and an 8-bit ALU ("alu88"). The multiplier and ALU are exact
// structural reconstructions; for the ISCAS89 circuits (whose netlists are
// not redistributable here) synthesizeIscasLike() produces seeded random
// circuits matched to the published gate/DFF/PI/PO counts and a realistic
// fanout profile - the quantities the loading effect depends on (see
// DESIGN.md substitution table). parseBenchFile() accepts the real
// netlists whenever the user has them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/logic_netlist.h"

namespace nanoleak::logic {

/// Chain of `n` inverters: in -> INV -> ... -> out.
LogicNetlist inverterChain(int n);

/// A driver inverter whose output feeds `fanout` inverter loads (the
/// paper's Fig. 1 fixture).
LogicNetlist fanoutStar(int fanout);

/// The ISCAS85 c17 circuit (six NAND2), handy as a tiny known-good case.
LogicNetlist c17();

/// Ripple-carry adder: inputs a[0..bits), b[0..bits), cin; outputs
/// s[0..bits), cout.
LogicNetlist rippleCarryAdder(int bits);

/// Array multiplier: inputs a[0..bits), b[0..bits); outputs p[0..2*bits).
/// arrayMultiplier(8) is the paper's "mult88" (~400 cells).
LogicNetlist arrayMultiplier(int bits);

/// 8-bit, 8-function ALU ("alu88"): ADD, SUB, AND, OR, XOR, NOR, NOT A,
/// PASS A selected by op[0..3).
LogicNetlist alu8();

/// Shape parameters for a synthetic ISCAS-like circuit.
struct SyntheticSpec {
  std::string name;
  std::size_t primary_inputs = 8;
  std::size_t primary_outputs = 8;
  std::size_t dffs = 0;
  std::size_t gates = 100;
};

/// Published shape of an ISCAS89 benchmark (s838, s1196, s1423, s5378,
/// s9234, s13207). Accepts the paper's misprints s5372 -> s5378 and
/// s9378 -> s9234. Throws nanoleak::Error for unknown names.
SyntheticSpec iscasSpec(const std::string& name);

/// Names iscasSpec() knows, in the paper's Fig. 12 order.
std::vector<std::string> knownIscasNames();

/// Seeded random circuit matched to `spec` (gate-kind mix, fanout profile
/// and depth comparable to the real benchmarks).
LogicNetlist synthesizeIscasLike(const SyntheticSpec& spec,
                                 std::uint64_t seed);

}  // namespace nanoleak::logic
