#include "logic/bench_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace nanoleak::logic {
namespace {

using gates::GateKind;

/// Base boolean function named in a .bench line.
enum class BenchOp { kAnd, kNand, kOr, kNor, kXor, kXnor, kNot, kBuf, kDff };

BenchOp benchOpFromName(const std::string& name, int line) {
  const std::string upper = toUpper(name);
  if (upper == "AND") return BenchOp::kAnd;
  if (upper == "NAND") return BenchOp::kNand;
  if (upper == "OR") return BenchOp::kOr;
  if (upper == "NOR") return BenchOp::kNor;
  if (upper == "XOR") return BenchOp::kXor;
  if (upper == "XNOR") return BenchOp::kXnor;
  if (upper == "NOT" || upper == "INV") return BenchOp::kNot;
  if (upper == "BUF" || upper == "BUFF" || upper == "BUFFER") {
    return BenchOp::kBuf;
  }
  if (upper == "DFF") return BenchOp::kDff;
  throw ParseError("unknown .bench primitive '" + name + "'", line);
}

GateKind narrowKind(BenchOp op, std::size_t arity, int line) {
  switch (op) {
    case BenchOp::kNot:
      return GateKind::kInv;
    case BenchOp::kBuf:
      return GateKind::kBuf;
    case BenchOp::kAnd:
      if (arity == 2) return GateKind::kAnd2;
      if (arity == 3) return GateKind::kAnd3;
      if (arity == 4) return GateKind::kAnd4;
      break;
    case BenchOp::kNand:
      if (arity == 2) return GateKind::kNand2;
      if (arity == 3) return GateKind::kNand3;
      if (arity == 4) return GateKind::kNand4;
      break;
    case BenchOp::kOr:
      if (arity == 2) return GateKind::kOr2;
      if (arity == 3) return GateKind::kOr3;
      if (arity == 4) return GateKind::kOr4;
      break;
    case BenchOp::kNor:
      if (arity == 2) return GateKind::kNor2;
      if (arity == 3) return GateKind::kNor3;
      if (arity == 4) return GateKind::kNor4;
      break;
    case BenchOp::kXor:
      if (arity == 2) return GateKind::kXor2;
      break;
    case BenchOp::kXnor:
      if (arity == 2) return GateKind::kXnor2;
      break;
    case BenchOp::kDff:
      break;
  }
  throw ParseError("unsupported arity for .bench primitive", line);
}

/// Builder that emits wide operations as trees of library cells.
class TreeBuilder {
 public:
  TreeBuilder(LogicNetlist& netlist, const std::string& base_name)
      : netlist_(netlist), base_name_(base_name) {}

  NetId fresh() {
    return netlist_.addNet(base_name_ + "$x" + std::to_string(counter_++));
  }

  /// Reduces `nets` with AND/OR trees of <= 4-ary cells into one net.
  NetId reduce(BenchOp op, std::vector<NetId> nets, int line) {
    require(op == BenchOp::kAnd || op == BenchOp::kOr,
            "TreeBuilder::reduce: only AND/OR reductions");
    while (nets.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i < nets.size(); i += 4) {
        const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
        if (take == 1) {
          next.push_back(nets[i]);
          continue;
        }
        const NetId out = fresh();
        std::vector<NetId> chunk(nets.begin() + static_cast<std::ptrdiff_t>(i),
                                 nets.begin() +
                                     static_cast<std::ptrdiff_t>(i + take));
        netlist_.addGate(narrowKind(op, take, line), std::move(chunk), out);
        next.push_back(out);
      }
      nets = std::move(next);
    }
    return nets.front();
  }

  /// XOR-chains `nets` into one net.
  NetId reduceXor(std::vector<NetId> nets) {
    while (nets.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < nets.size(); i += 2) {
        const NetId out = fresh();
        netlist_.addGate(GateKind::kXor2, {nets[i], nets[i + 1]}, out);
        next.push_back(out);
      }
      if (nets.size() % 2 == 1) {
        next.push_back(nets.back());
      }
      nets = std::move(next);
    }
    return nets.front();
  }

 private:
  LogicNetlist& netlist_;
  std::string base_name_;
  int counter_ = 0;
};

/// Emits one `out = OP(in...)` statement, decomposing wide gates.
void emitStatement(LogicNetlist& netlist, const std::string& out_name,
                   BenchOp op, const std::vector<std::string>& in_names,
                   int line) {
  std::vector<NetId> ins;
  ins.reserve(in_names.size());
  for (const std::string& name : in_names) {
    ins.push_back(netlist.getOrAddNet(name));
  }
  const NetId out = netlist.getOrAddNet(out_name);

  if (op == BenchOp::kDff) {
    if (ins.size() != 1) {
      throw ParseError("DFF takes exactly one input", line);
    }
    netlist.addDff(ins[0], out, out_name);
    return;
  }
  if (ins.empty()) {
    throw ParseError("gate with no inputs", line);
  }

  // 1-input forms of the associative ops degenerate to BUF.
  if (ins.size() == 1 &&
      (op == BenchOp::kAnd || op == BenchOp::kOr || op == BenchOp::kXor)) {
    op = BenchOp::kBuf;
  }
  if (ins.size() == 1 && (op == BenchOp::kNand || op == BenchOp::kNor ||
                          op == BenchOp::kXnor)) {
    op = BenchOp::kNot;
  }

  const std::size_t arity = ins.size();
  const bool narrow =
      (op == BenchOp::kNot || op == BenchOp::kBuf)
          ? arity == 1
          : (op == BenchOp::kXor || op == BenchOp::kXnor) ? arity == 2
                                                          : arity <= 4;
  if (narrow) {
    netlist.addGate(narrowKind(op, arity, line), std::move(ins), out,
                    out_name);
    return;
  }

  // Wide gate: reduce with trees, keeping the inversion (if any) at the root.
  TreeBuilder trees(netlist, out_name);
  switch (op) {
    case BenchOp::kAnd:
    case BenchOp::kOr: {
      // Reduce all but the last chunk, then let the final cell drive `out`.
      const NetId reduced = trees.reduce(op, std::move(ins), line);
      netlist.addGate(GateKind::kBuf, {reduced}, out, out_name);
      return;
    }
    case BenchOp::kNand:
    case BenchOp::kNor: {
      const BenchOp inner = op == BenchOp::kNand ? BenchOp::kAnd : BenchOp::kOr;
      const NetId reduced = trees.reduce(inner, std::move(ins), line);
      netlist.addGate(GateKind::kInv, {reduced}, out, out_name);
      return;
    }
    case BenchOp::kXor: {
      const NetId reduced = trees.reduceXor(std::move(ins));
      netlist.addGate(GateKind::kBuf, {reduced}, out, out_name);
      return;
    }
    case BenchOp::kXnor: {
      const NetId reduced = trees.reduceXor(std::move(ins));
      netlist.addGate(GateKind::kInv, {reduced}, out, out_name);
      return;
    }
    default:
      throw ParseError("unsupported wide primitive", line);
  }
}

}  // namespace

LogicNetlist parseBench(std::istream& in) {
  LogicNetlist netlist;
  std::vector<std::string> pending_outputs;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const std::string text(line);

    auto parseCall = [&](std::size_t open) {
      const std::size_t close = text.rfind(')');
      if (close == std::string::npos || close < open) {
        throw ParseError("missing ')'", line_no);
      }
      return std::string(trim(text.substr(open + 1, close - open - 1)));
    };

    if (startsWith(toUpper(std::string(line)), "INPUT")) {
      const std::size_t open = text.find('(');
      if (open == std::string::npos) {
        throw ParseError("malformed INPUT", line_no);
      }
      const std::string name = parseCall(open);
      netlist.markPrimaryInput(netlist.getOrAddNet(name));
      continue;
    }
    if (startsWith(toUpper(std::string(line)), "OUTPUT")) {
      const std::size_t open = text.find('(');
      if (open == std::string::npos) {
        throw ParseError("malformed OUTPUT", line_no);
      }
      // Outputs may be declared before their driver; defer the marking.
      pending_outputs.push_back(parseCall(open));
      continue;
    }

    const std::size_t eq = text.find('=');
    if (eq == std::string::npos) {
      throw ParseError("expected '=' in gate definition", line_no);
    }
    const std::string out_name{trim(text.substr(0, eq))};
    const std::string rhs{trim(text.substr(eq + 1))};
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      throw ParseError("malformed gate call", line_no);
    }
    const std::string op_name{trim(rhs.substr(0, open))};
    const std::string args = rhs.substr(open + 1, close - open - 1);
    std::vector<std::string> in_names;
    for (const std::string& piece : split(args, ',')) {
      const std::string name{trim(piece)};
      if (!name.empty()) {
        in_names.push_back(name);
      }
    }
    emitStatement(netlist, out_name, benchOpFromName(op_name, line_no),
                  in_names, line_no);
  }
  for (const std::string& name : pending_outputs) {
    netlist.markPrimaryOutput(netlist.getOrAddNet(name));
  }
  netlist.validate();
  return netlist;
}

LogicNetlist parseBenchString(const std::string& text) {
  std::istringstream in(text);
  return parseBench(in);
}

LogicNetlist parseBenchFile(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "parseBenchFile: cannot open '" + path + "'");
  return parseBench(in);
}

std::string toBenchText(const LogicNetlist& netlist) {
  std::ostringstream out;
  out << "# written by nanoleak\n";
  for (NetId net : netlist.primaryInputs()) {
    out << "INPUT(" << netlist.netName(net) << ")\n";
  }
  for (NetId net : netlist.primaryOutputs()) {
    out << "OUTPUT(" << netlist.netName(net) << ")\n";
  }
  for (const Dff& dff : netlist.dffs()) {
    out << netlist.netName(dff.q) << " = DFF(" << netlist.netName(dff.d)
        << ")\n";
  }
  for (const Gate& gate : netlist.gates()) {
    std::string op;
    switch (gate.kind) {
      case gates::GateKind::kInv:
        op = "NOT";
        break;
      case gates::GateKind::kBuf:
        op = "BUFF";
        break;
      case gates::GateKind::kNand2:
      case gates::GateKind::kNand3:
      case gates::GateKind::kNand4:
        op = "NAND";
        break;
      case gates::GateKind::kNor2:
      case gates::GateKind::kNor3:
      case gates::GateKind::kNor4:
        op = "NOR";
        break;
      case gates::GateKind::kAnd2:
      case gates::GateKind::kAnd3:
      case gates::GateKind::kAnd4:
        op = "AND";
        break;
      case gates::GateKind::kOr2:
      case gates::GateKind::kOr3:
      case gates::GateKind::kOr4:
        op = "OR";
        break;
      case gates::GateKind::kXor2:
        op = "XOR";
        break;
      case gates::GateKind::kXnor2:
        op = "XNOR";
        break;
      default:
        throw Error(std::string("toBenchText: no .bench spelling for ") +
                    gates::toString(gate.kind));
    }
    out << netlist.netName(gate.output) << " = " << op << "(";
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      out << (pin == 0 ? "" : ", ") << netlist.netName(gate.inputs[pin]);
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace nanoleak::logic
