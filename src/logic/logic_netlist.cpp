#include "logic/logic_netlist.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace nanoleak::logic {

NetId LogicNetlist::addNet(const std::string& name) {
  require(net_index_.find(name) == net_index_.end(),
          "LogicNetlist::addNet: duplicate net name '" + name + "'");
  const NetId id = net_names_.size();
  net_names_.push_back(name);
  net_index_.emplace(name, id);
  driver_kind_.push_back(DriverKind::kUndriven);
  driver_gate_.push_back(0);
  fanout_.emplace_back();
  dff_load_count_.push_back(0);
  is_primary_input_.push_back(false);
  is_primary_output_.push_back(false);
  return id;
}

NetId LogicNetlist::getOrAddNet(const std::string& name) {
  const auto it = net_index_.find(name);
  if (it != net_index_.end()) {
    return it->second;
  }
  return addNet(name);
}

bool LogicNetlist::hasNet(const std::string& name) const {
  return net_index_.find(name) != net_index_.end();
}

NetId LogicNetlist::net(const std::string& name) const {
  const auto it = net_index_.find(name);
  require(it != net_index_.end(),
          "LogicNetlist::net: unknown net '" + name + "'");
  return it->second;
}

void LogicNetlist::markPrimaryInput(NetId net) {
  require(net < netCount(), "markPrimaryInput: net out of range");
  require(driver_kind_[net] == DriverKind::kUndriven,
          "markPrimaryInput: net '" + net_names_[net] + "' already driven");
  driver_kind_[net] = DriverKind::kPrimaryInput;
  if (!is_primary_input_[net]) {
    is_primary_input_[net] = true;
    primary_inputs_.push_back(net);
  }
}

void LogicNetlist::markPrimaryOutput(NetId net) {
  require(net < netCount(), "markPrimaryOutput: net out of range");
  if (!is_primary_output_[net]) {
    is_primary_output_[net] = true;
    primary_outputs_.push_back(net);
  }
}

GateId LogicNetlist::addGate(gates::GateKind kind, std::vector<NetId> inputs,
                             NetId output, std::string name) {
  require(gates::hasTopology(kind),
          "LogicNetlist::addGate: use addDff for flip-flops");
  require(inputs.size() ==
              static_cast<std::size_t>(gates::inputCount(kind)),
          std::string("LogicNetlist::addGate: wrong arity for ") +
              gates::toString(kind));
  require(output < netCount(), "addGate: output net out of range");
  require(driver_kind_[output] == DriverKind::kUndriven,
          "addGate: net '" + net_names_[output] + "' already driven");
  for (NetId in : inputs) {
    require(in < netCount(), "addGate: input net out of range");
  }
  const GateId id = gates_.size();
  if (name.empty()) {
    name = std::string(gates::toString(kind)) + "_" + std::to_string(id);
  }
  for (std::size_t pin = 0; pin < inputs.size(); ++pin) {
    fanout_[inputs[pin]].push_back(PinRef{id, static_cast<int>(pin)});
  }
  driver_kind_[output] = DriverKind::kGate;
  driver_gate_[output] = id;
  gates_.push_back(Gate{kind, std::move(inputs), output, std::move(name)});
  return id;
}

void LogicNetlist::addDff(NetId d, NetId q, std::string name) {
  require(d < netCount() && q < netCount(), "addDff: net out of range");
  require(driver_kind_[q] == DriverKind::kUndriven,
          "addDff: q net '" + net_names_[q] + "' already driven");
  driver_kind_[q] = DriverKind::kDffOutput;
  ++dff_load_count_[d];
  if (name.empty()) {
    name = "DFF_" + std::to_string(dffs_.size());
  }
  dffs_.push_back(Dff{d, q, std::move(name)});
}

const Gate& LogicNetlist::gate(GateId id) const {
  require(id < gates_.size(), "LogicNetlist::gate: id out of range");
  return gates_[id];
}

const std::string& LogicNetlist::netName(NetId net) const {
  require(net < netCount(), "netName: net out of range");
  return net_names_[net];
}

DriverKind LogicNetlist::driverKind(NetId net) const {
  require(net < netCount(), "driverKind: net out of range");
  return driver_kind_[net];
}

GateId LogicNetlist::driverGate(NetId net) const {
  require(driverKind(net) == DriverKind::kGate,
          "driverGate: net '" + net_names_[net] + "' is not gate-driven");
  return driver_gate_[net];
}

const std::vector<PinRef>& LogicNetlist::fanout(NetId net) const {
  require(net < netCount(), "fanout: net out of range");
  return fanout_[net];
}

int LogicNetlist::dffLoadCount(NetId net) const {
  require(net < netCount(), "dffLoadCount: net out of range");
  return dff_load_count_[net];
}

std::vector<NetId> LogicNetlist::sourceNets() const {
  std::vector<NetId> sources = primary_inputs_;
  for (const Dff& dff : dffs_) {
    sources.push_back(dff.q);
  }
  return sources;
}

std::vector<GateId> LogicNetlist::topologicalOrder() const {
  // Kahn's algorithm over gate -> gate edges implied by nets.
  std::vector<std::size_t> pending(gates_.size(), 0);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    for (NetId in : gates_[g].inputs) {
      if (driver_kind_[in] == DriverKind::kGate) {
        ++pending[g];
      }
    }
  }
  std::deque<GateId> ready;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    if (pending[g] == 0) {
      ready.push_back(g);
    }
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop_front();
    order.push_back(g);
    for (const PinRef& pin : fanout_[gates_[g].output]) {
      if (--pending[pin.gate] == 0) {
        ready.push_back(pin.gate);
      }
    }
  }
  require(order.size() == gates_.size(),
          "topologicalOrder: combinational cycle detected");
  return order;
}

void LogicNetlist::validate() const {
  for (const Gate& g : gates_) {
    for (NetId in : g.inputs) {
      require(driver_kind_[in] != DriverKind::kUndriven,
              "validate: gate '" + g.name + "' reads undriven net '" +
                  net_names_[in] + "'");
    }
  }
  for (const Dff& dff : dffs_) {
    require(driver_kind_[dff.d] != DriverKind::kUndriven,
            "validate: DFF '" + dff.name + "' reads undriven net '" +
                net_names_[dff.d] + "'");
  }
  for (NetId out : primary_outputs_) {
    require(driver_kind_[out] != DriverKind::kUndriven,
            "validate: primary output '" + net_names_[out] + "' undriven");
  }
  (void)topologicalOrder();  // throws on cycles
}

NetlistStats computeStats(const LogicNetlist& netlist) {
  NetlistStats stats;
  stats.gates = netlist.gateCount();
  stats.dffs = netlist.dffs().size();
  stats.primary_inputs = netlist.primaryInputs().size();
  stats.primary_outputs = netlist.primaryOutputs().size();
  stats.nets = netlist.netCount();

  std::size_t fanout_total = 0;
  std::size_t driven_nets = 0;
  for (NetId n = 0; n < netlist.netCount(); ++n) {
    const auto size = netlist.fanout(n).size();
    stats.max_fanout = std::max(stats.max_fanout, static_cast<int>(size));
    if (netlist.driverKind(n) != DriverKind::kUndriven) {
      fanout_total += size;
      ++driven_nets;
    }
  }
  stats.mean_fanout = driven_nets == 0
                          ? 0.0
                          : static_cast<double>(fanout_total) /
                                static_cast<double>(driven_nets);

  // Depth: longest gate chain.
  std::vector<int> depth(netlist.gateCount(), 1);
  for (GateId g : netlist.topologicalOrder()) {
    for (NetId in : netlist.gate(g).inputs) {
      if (netlist.driverKind(in) == DriverKind::kGate) {
        depth[g] = std::max(depth[g], depth[netlist.driverGate(in)] + 1);
      }
    }
    stats.logic_depth = std::max(stats.logic_depth, depth[g]);
  }
  return stats;
}

}  // namespace nanoleak::logic
