#include "logic/expander.h"

#include "logic/logic_sim.h"
#include "util/error.h"

namespace nanoleak::logic {

ExpandedCircuit expandToTransistors(const LogicNetlist& netlist,
                                    const device::Technology& technology,
                                    const std::vector<bool>& source_values,
                                    const gates::VariationProvider& variation) {
  const LogicSimulator sim(netlist);
  std::vector<bool> values = sim.simulate(source_values);
  const double vdd_volts = technology.vdd;

  ExpandedCircuit out;
  out.vdd = out.netlist.addNode("VDD");
  out.gnd = out.netlist.addNode("GND");
  out.netlist.fixVoltage(out.vdd, vdd_volts);
  out.netlist.fixVoltage(out.gnd, 0.0);
  out.gate_count = netlist.gateCount();

  // One transistor node per logic net. Primary inputs are ideal sources
  // (external drivers), so they are bound; everything else is free.
  out.net_node.resize(netlist.netCount());
  for (NetId net = 0; net < netlist.netCount(); ++net) {
    out.net_node[net] = out.netlist.addNode(netlist.netName(net));
    if (netlist.driverKind(net) == DriverKind::kPrimaryInput) {
      out.netlist.fixVoltage(out.net_node[net],
                             values[net] ? vdd_volts : 0.0);
    }
  }

  gates::GateNetlistBuilder builder(out.netlist, technology, out.vdd,
                                    out.gnd);

  // DFF Q nets: pseudo primary inputs, but driven through a reference
  // inverter so they have finite driver resistance (loading acts on them).
  for (const Dff& dff : netlist.dffs()) {
    const circuit::NodeId qsrc =
        out.netlist.addNode(dff.name + ".qsrc");
    out.dff_qsrc.push_back(qsrc);
    const bool q_value = values[dff.q];
    out.netlist.fixVoltage(qsrc, q_value ? 0.0 : vdd_volts);  // inverted
    const bool drv_in = !q_value;
    const std::array<circuit::NodeId, 1> ins{qsrc};
    const std::array<bool, 1> in_vals{drv_in};
    builder.instantiate(gates::GateKind::kInv, ins, out.net_node[dff.q],
                        circuit::kNoOwner, in_vals, variation);
  }

  // DFF D pins: each presents an inverter-input load to its net.
  for (const Dff& dff : netlist.dffs()) {
    const circuit::NodeId dload =
        out.netlist.addNode(dff.name + ".dload");
    const std::array<circuit::NodeId, 1> ins{out.net_node[dff.d]};
    const std::array<bool, 1> in_vals{values[dff.d]};
    builder.instantiate(gates::GateKind::kInv, ins, dload,
                        circuit::kNoOwner, in_vals, variation);
  }

  // Seeds the DFF boundary inverters contributed so far belong to no
  // logic gate (single-stage INVs have none today; recorded for
  // completeness should a multi-stage boundary model ever appear).
  for (std::size_t s = 0; s < builder.seeds().size(); ++s) {
    out.internal_seeds.push_back(
        {builder.seeds()[s].first, builder.seeds()[s].second,
         ExpandedCircuit::InternalSeed::kNoGate, -1});
  }

  // Combinational gates in topological order (also a good GS sweep order).
  // Each gate's slice of the builder seed list is recorded with its owner,
  // so GoldenSolver can recompute stage-level seeds for other patterns.
  std::size_t seeds_before = builder.seeds().size();
  std::array<bool, 8> pin_values{};
  std::vector<circuit::NodeId> pins;
  for (GateId g : sim.order()) {
    const Gate& gate = netlist.gate(g);
    pins.clear();
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pins.push_back(out.net_node[gate.inputs[pin]]);
      pin_values[pin] = values[gate.inputs[pin]];
    }
    builder.instantiate(
        gate.kind, pins, out.net_node[gate.output], static_cast<int>(g),
        std::span<const bool>(pin_values.data(), gate.inputs.size()),
        variation);
    for (std::size_t s = seeds_before; s < builder.seeds().size(); ++s) {
      out.internal_seeds.push_back({builder.seeds()[s].first,
                                    builder.seeds()[s].second, g,
                                    builder.seedStages()[s]});
    }
    seeds_before = builder.seeds().size();
  }

  // Seeds: logic levels on nets, builder heuristics on internal nodes.
  out.seed.assign(out.netlist.nodeCount(), 0.5 * vdd_volts);
  out.seed[out.vdd] = vdd_volts;
  out.seed[out.gnd] = 0.0;
  for (NetId net = 0; net < netlist.netCount(); ++net) {
    out.seed[out.net_node[net]] = values[net] ? vdd_volts : 0.0;
  }
  for (const auto& [node, voltage] : builder.seeds()) {
    out.seed[node] = voltage;
  }

  // Sweep order: node creation order is topological by construction.
  out.sweep_order.reserve(out.netlist.nodeCount());
  for (circuit::NodeId node = 0; node < out.netlist.nodeCount(); ++node) {
    out.sweep_order.push_back(node);
  }
  out.net_values = std::move(values);
  return out;
}

}  // namespace nanoleak::logic
