// ISCAS89 .bench format reader/writer.
//
// The paper evaluates on ISCAS89 circuits; this parser accepts the
// standard .bench syntax:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G11 = DFF(G10)
//
// Wide primitives (more than four inputs) are decomposed into balanced
// trees of library cells; the expansion gates get generated names, and the
// decomposition preserves the boolean function.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/logic_netlist.h"

namespace nanoleak::logic {

/// Parses .bench text. Throws nanoleak::ParseError with a line number on
/// malformed input.
LogicNetlist parseBench(std::istream& in);

/// Parses .bench from a string (convenience for tests / embedded circuits).
LogicNetlist parseBenchString(const std::string& text);

/// Parses a .bench file from disk.
LogicNetlist parseBenchFile(const std::string& path);

/// Serializes a netlist back to .bench text. Gates whose kinds have no
/// .bench spelling (AOI21/OAI21/MUX2) are rejected with nanoleak::Error.
std::string toBenchText(const LogicNetlist& netlist);

}  // namespace nanoleak::logic
