// Gate-level netlist: the paper's "graph representing the circuit, with
// each vertex representing a logic gate and each edge representing a net".
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/gate_library.h"

namespace nanoleak::logic {

using NetId = std::size_t;
using GateId = std::size_t;

/// What drives a net.
enum class DriverKind {
  kUndriven,
  kPrimaryInput,
  kGate,
  kDffOutput,
};

/// A (gate, input-pin) pair fed by a net.
struct PinRef {
  GateId gate;
  int pin;
};

/// One combinational gate instance.
struct Gate {
  gates::GateKind kind;
  std::vector<NetId> inputs;
  NetId output;
  std::string name;
};

/// One D flip-flop, treated as a sequential boundary: `q` behaves as a
/// pseudo primary input and `d` as a pseudo primary output (the paper's
/// treatment of the ISCAS89 state elements).
struct Dff {
  NetId d;
  NetId q;
  std::string name;
};

/// Gate-level netlist with named nets.
class LogicNetlist {
 public:
  /// Creates a new named net. Names must be unique.
  NetId addNet(const std::string& name);

  /// Returns the net named `name`, creating it if absent.
  NetId getOrAddNet(const std::string& name);

  /// True if a net with this name exists.
  bool hasNet(const std::string& name) const;

  /// Id of the net named `name`; throws if absent.
  NetId net(const std::string& name) const;

  void markPrimaryInput(NetId net);
  void markPrimaryOutput(NetId net);

  /// Adds a combinational gate; the output net must not already be driven.
  GateId addGate(gates::GateKind kind, std::vector<NetId> inputs, NetId output,
                 std::string name = {});

  /// Adds a flip-flop; `q` must not already be driven.
  void addDff(NetId d, NetId q, std::string name = {});

  // --- Introspection -------------------------------------------------------
  std::size_t netCount() const { return net_names_.size(); }
  std::size_t gateCount() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(GateId id) const;
  const std::vector<Dff>& dffs() const { return dffs_; }
  const std::string& netName(NetId net) const;
  const std::vector<NetId>& primaryInputs() const { return primary_inputs_; }
  const std::vector<NetId>& primaryOutputs() const { return primary_outputs_; }

  DriverKind driverKind(NetId net) const;
  /// Driving gate of a net; requires driverKind(net) == kGate.
  GateId driverGate(NetId net) const;
  /// Gate input pins fed by this net.
  const std::vector<PinRef>& fanout(NetId net) const;
  /// Nets that act as value sources for simulation: primary inputs followed
  /// by DFF outputs, in insertion order.
  std::vector<NetId> sourceNets() const;
  /// DFF D-pins fed by this net (each loads the net like an INV input).
  int dffLoadCount(NetId net) const;

  /// Gates in topological order (inputs before outputs). Throws
  /// nanoleak::Error on a combinational cycle.
  std::vector<GateId> topologicalOrder() const;

  /// Checks structural sanity: every gate input driven, arities correct,
  /// no multiply-driven nets. Throws nanoleak::Error on violations.
  void validate() const;

 private:
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_index_;
  std::vector<DriverKind> driver_kind_;
  std::vector<GateId> driver_gate_;
  std::vector<std::vector<PinRef>> fanout_;
  std::vector<int> dff_load_count_;
  std::vector<bool> is_primary_input_;
  std::vector<bool> is_primary_output_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::vector<Gate> gates_;
  std::vector<Dff> dffs_;
};

/// Structural statistics used to validate synthetic stand-ins against the
/// published ISCAS89 profiles.
struct NetlistStats {
  std::size_t gates = 0;
  std::size_t dffs = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t nets = 0;
  int max_fanout = 0;
  double mean_fanout = 0.0;
  int logic_depth = 0;
};

NetlistStats computeStats(const LogicNetlist& netlist);

}  // namespace nanoleak::logic
