#include "logic/logic_sim.h"

#include <algorithm>
#include <array>
#include <functional>
#include <string>

#include "util/error.h"

namespace nanoleak::logic {

LogicSimulator::LogicSimulator(const LogicNetlist& netlist)
    : netlist_(netlist),
      order_(netlist.topologicalOrder()),
      sources_(netlist.sourceNets()) {
  topo_position_.resize(netlist.gateCount());
  for (std::size_t pos = 0; pos < order_.size(); ++pos) {
    topo_position_[order_[pos]] = pos;
  }
}

void LogicSimulator::checkSourceCount(std::size_t got) const {
  require(got == sources_.size(),
          "LogicSimulator: expected " + std::to_string(sources_.size()) +
              " source values, got " + std::to_string(got));
}

std::vector<bool> LogicSimulator::simulate(
    const std::vector<bool>& source_values) const {
  std::vector<bool> values;
  simulateInto(source_values, values);
  return values;
}

void LogicSimulator::simulateInto(const std::vector<bool>& source_values,
                                  std::vector<bool>& values) const {
  checkSourceCount(source_values.size());
  values.assign(netlist_.netCount(), false);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    values[sources_[i]] = source_values[i];
  }
  std::array<bool, 8> pin_values{};
  for (GateId g : order_) {
    const Gate& gate = netlist_.gate(g);
    require(gate.inputs.size() <= pin_values.size(),
            "LogicSimulator: gate arity too large");
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pin_values[pin] = values[gate.inputs[pin]];
    }
    values[gate.output] = gates::evaluateGate(
        gate.kind,
        std::span<const bool>(pin_values.data(), gate.inputs.size()));
  }
}

void LogicSimulator::simulateDelta(const std::vector<bool>& source_values,
                                   std::vector<bool>& values,
                                   std::vector<GateId>& dirty_gates,
                                   std::vector<NetId>& changed_nets,
                                   DeltaSimScratch& scratch) const {
  checkSourceCount(source_values.size());
  require(values.size() == netlist_.netCount(),
          "LogicSimulator::simulateDelta: values buffer must hold a previous "
          "simulation result");
  dirty_gates.clear();
  changed_nets.clear();
  if (scratch.queued.size() != netlist_.gateCount()) {
    scratch.queued.assign(netlist_.gateCount(), 0);
  }
  scratch.heap.clear();

  const auto enqueue = [&](GateId g) {
    if (scratch.queued[g]) {
      return;
    }
    scratch.queued[g] = 1;
    scratch.heap.emplace_back(topo_position_[g], g);
    std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                   std::greater<>{});
  };

  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const NetId net = sources_[i];
    if (values[net] == source_values[i]) {
      continue;
    }
    values[net] = source_values[i];
    changed_nets.push_back(net);
    for (const PinRef& pin : netlist_.fanout(net)) {
      enqueue(pin.gate);
    }
  }

  // Gates pop in ascending topological position; a gate's inputs can only
  // be flipped by strictly earlier gates, so each dirty gate is evaluated
  // exactly once, on final input values.
  std::array<bool, 8> pin_values{};
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(),
                  std::greater<>{});
    const GateId g = scratch.heap.back().second;
    scratch.heap.pop_back();
    dirty_gates.push_back(g);
    const Gate& gate = netlist_.gate(g);
    require(gate.inputs.size() <= pin_values.size(),
            "LogicSimulator: gate arity too large");
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pin_values[pin] = values[gate.inputs[pin]];
    }
    const bool output = gates::evaluateGate(
        gate.kind,
        std::span<const bool>(pin_values.data(), gate.inputs.size()));
    if (output == values[gate.output]) {
      continue;
    }
    values[gate.output] = output;
    changed_nets.push_back(gate.output);
    for (const PinRef& pin : netlist_.fanout(gate.output)) {
      enqueue(pin.gate);
    }
  }

  for (GateId g : dirty_gates) {
    scratch.queued[g] = 0;
  }
}

std::vector<bool> randomPattern(std::size_t bits, Rng& rng) {
  std::vector<bool> pattern(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    pattern[i] = rng.bernoulli(0.5);
  }
  return pattern;
}

}  // namespace nanoleak::logic
