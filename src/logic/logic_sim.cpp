#include "logic/logic_sim.h"

#include <array>

#include "util/error.h"

namespace nanoleak::logic {

LogicSimulator::LogicSimulator(const LogicNetlist& netlist)
    : netlist_(netlist),
      order_(netlist.topologicalOrder()),
      sources_(netlist.sourceNets()) {}

std::vector<bool> LogicSimulator::simulate(
    const std::vector<bool>& source_values) const {
  require(source_values.size() == sources_.size(),
          "LogicSimulator::simulate: source value count mismatch");
  std::vector<bool> values(netlist_.netCount(), false);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    values[sources_[i]] = source_values[i];
  }
  std::array<bool, 8> pin_values{};
  for (GateId g : order_) {
    const Gate& gate = netlist_.gate(g);
    require(gate.inputs.size() <= pin_values.size(),
            "LogicSimulator: gate arity too large");
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      pin_values[pin] = values[gate.inputs[pin]];
    }
    values[gate.output] = gates::evaluateGate(
        gate.kind,
        std::span<const bool>(pin_values.data(), gate.inputs.size()));
  }
  return values;
}

std::vector<bool> randomPattern(std::size_t bits, Rng& rng) {
  std::vector<bool> pattern(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    pattern[i] = rng.bernoulli(0.5);
  }
  return pattern;
}

}  // namespace nanoleak::logic
