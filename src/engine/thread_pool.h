/// @file
/// Fixed-size worker pool with a chunked, self-scheduling parallel-for.
///
/// Chunks of the index space are claimed dynamically from a shared counter
/// (work stealing off one queue), so uneven per-point cost - e.g. DC solves
/// that converge in different numbers of sweeps - balances automatically.
/// Which thread runs a chunk never affects results: callers write into
/// per-index or per-chunk slots and reduce in fixed chunk order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nanoleak::engine {

/// Body of a parallel loop: processes indices [begin, end).
using ChunkBody = std::function<void(std::size_t begin, std::size_t end)>;

/// Worker pool executing chunked parallel loops (see file comment).
class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread;
  /// 0 picks std::thread::hardware_concurrency(). threads == 1 spawns no
  /// workers and runs every parallelFor inline.
  explicit ThreadPool(int threads = 0);
  /// Joins the workers; any in-flight parallelFor must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;             ///< non-copyable
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< non-copyable

  /// Total concurrency (worker threads + the calling thread).
  int threadCount() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body` over [0, count) partitioned into `chunk`-sized pieces.
  /// The caller participates; the call blocks until every chunk finished.
  /// The first exception thrown by any chunk is rethrown here (remaining
  /// chunks are cancelled). Chunk boundaries depend only on (count, chunk),
  /// never on the thread count.
  void parallelFor(std::size_t count, std::size_t chunk,
                   const ChunkBody& body);

 private:
  struct Job;

  void workerLoop();
  /// Claims and runs chunks until the job is drained. `stolen` only
  /// labels the claims for metrics (worker vs. calling thread).
  static void runChunks(Job& job, bool stolen);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace nanoleak::engine
