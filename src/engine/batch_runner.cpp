#include "engine/batch_runner.h"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>
#include <span>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/error.h"

namespace nanoleak::engine {

BatchRunner::BatchRunner(BatchOptions options)
    : options_(std::move(options)),
      cache_(options_.cache ? options_.cache
                            : std::make_shared<TableCache>()),
      pool_(options_.threads) {
  require(options_.mc_chunk >= 1, "BatchRunner: mc_chunk must be >= 1");
  require(options_.pattern_chunk >= 1,
          "BatchRunner: pattern_chunk must be >= 1");
}

mc::MonteCarloEngine::ParallelExecutor BatchRunner::mcExecutor() {
  return [this](std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& body) {
    pool_.parallelFor(count, options_.mc_chunk, body);
  };
}

std::vector<GateVectorResult> BatchRunner::run(const GateVectorSweep& sweep) {
  const std::vector<std::vector<bool>> vectors =
      sweep.vectors.empty() ? allInputVectors(sweep.kind) : sweep.vectors;
  return map<GateVectorResult>(vectors.size(), [&](std::size_t v) {
    const std::vector<bool>& vector = vectors[v];
    core::LoadingAnalyzer analyzer(sweep.kind, vector, sweep.technology);
    GateVectorResult result;
    result.input_vector = vector;
    std::array<bool, 8> vals{};
    for (std::size_t pin = 0; pin < vector.size(); ++pin) {
      vals[pin] = vector[pin];
    }
    result.output_level = gates::evaluateGate(
        sweep.kind, std::span<const bool>(vals.data(), vector.size()));
    result.points.reserve(sweep.loading_amps.size());
    for (double amps : sweep.loading_amps) {
      GateVectorResult::Point point;
      point.amps = amps;
      point.pins.reserve(vector.size());
      for (int pin = 0; pin < static_cast<int>(vector.size()); ++pin) {
        point.pins.push_back(analyzer.pinLoadingEffect(pin, amps));
      }
      point.output = analyzer.outputLoadingEffect(amps);
      result.points.push_back(std::move(point));
    }
    return result;
  });
}

std::vector<CornerResult> BatchRunner::run(const CornerSweep& sweep) {
  require(!sweep.technologies.empty(),
          "BatchRunner: corner sweep needs at least one technology");
  const std::size_t temps =
      std::max<std::size_t>(1, sweep.temperatures_k.size());
  const SweepSpace space({{"technology", sweep.technologies.size()},
                          {"temperature", temps}});
  return map<CornerResult>(space.pointCount(), [&](std::size_t index) {
    const std::vector<std::size_t> coords = space.coordinates(index);
    CornerResult result;
    result.technology_index = coords[0];
    device::Technology tech = sweep.technologies[result.technology_index];
    if (!sweep.temperatures_k.empty()) {
      tech.temperature_k = sweep.temperatures_k[coords[1]];
    }
    result.temperature_k = tech.temperature_k;
    core::LoadingAnalyzer analyzer(sweep.kind, sweep.input_vector, tech);
    result.nominal = analyzer.nominal();
    result.contribution = analyzer.combinedLoadingContribution(
        sweep.input_loading_amps, sweep.output_loading_amps);
    result.effect = analyzer.combinedLoadingEffect(sweep.input_loading_amps,
                                                   sweep.output_loading_amps);
    return result;
  });
}

McBatchResult BatchRunner::run(const McSweep& sweep) {
  OBS_SPAN("engine.mc_sweep");
  const mc::MonteCarloEngine engine(sweep.technology, sweep.sigmas,
                                    sweep.fixture);
  McBatchResult result;
  result.samples.resize(sweep.samples);

  // One accumulator per chunk, filled by whichever worker runs the chunk,
  // merged in ascending chunk order below.
  const std::size_t chunk = options_.mc_chunk;
  const std::size_t chunk_count =
      sweep.samples == 0 ? 0 : (sweep.samples + chunk - 1) / chunk;
  std::vector<McAccumulator> partials(chunk_count);

  pool_.parallelFor(
      sweep.samples, chunk, [&](std::size_t begin, std::size_t end) {
        McAccumulator& partial = partials[begin / chunk];
        for (std::size_t i = begin; i < end; ++i) {
          util::pollCancel();
          result.samples[i] = engine.runSample(sweep.seed, i);
          partial.add(result.samples[i].with_loading,
                      result.samples[i].without_loading);
        }
      });

  for (const McAccumulator& partial : partials) {
    result.stats.merge(partial);
  }
  result.summary = mc::MonteCarloEngine::summarizeTotals(result.samples);
  return result;
}

std::vector<core::EstimateResult> BatchRunner::runPatterns(
    const core::EstimationPlan& plan,
    const std::vector<std::vector<bool>>& patterns) {
  OBS_SPAN("engine.run_patterns");
  static const obs::Counter workspaces_created =
      obs::counter("engine.workspaces_created");
  static const obs::Counter workspace_reuses =
      obs::counter("engine.workspace_reuses");
  std::vector<core::EstimateResult> out(patterns.size());

  // One workspace per thread in steady state: workers draw from a shared
  // free list and return their workspace after each chunk. A workspace
  // returned warm seeds the next chunk's delta path - exactness of the
  // delta guarantees the handoff cannot change a bit.
  std::mutex mutex;
  std::vector<std::unique_ptr<core::EstimationWorkspace>> free_list;
  const auto acquire = [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!free_list.empty()) {
        auto ws = std::move(free_list.back());
        free_list.pop_back();
        workspace_reuses.increment();
        return ws;
      }
    }
    workspaces_created.increment();
    return std::make_unique<core::EstimationWorkspace>(plan);
  };
  const auto release = [&](std::unique_ptr<core::EstimationWorkspace> ws) {
    const std::lock_guard<std::mutex> lock(mutex);
    free_list.push_back(std::move(ws));
  };

  pool_.parallelFor(
      patterns.size(), options_.pattern_chunk,
      [&](std::size_t begin, std::size_t end) {
        auto ws = acquire();
        for (std::size_t i = begin; i < end; ++i) {
          util::pollCancel();
          plan.estimateDelta(patterns[i], *ws, out[i]);
        }
        release(std::move(ws));
      });
  return out;
}

std::vector<core::EstimateResult> BatchRunner::runPatterns(
    const core::LeakageEstimator& estimator,
    const std::vector<std::vector<bool>>& patterns) {
  return runPatterns(estimator.plan(), patterns);
}

}  // namespace nanoleak::engine
