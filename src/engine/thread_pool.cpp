#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/error.h"

namespace nanoleak::engine {

namespace {

/// Pool-wide observability handles, resolved once. Purely observational:
/// chunk claiming and scheduling never read them back.
struct PoolMetrics {
  obs::Counter jobs = obs::counter("pool.jobs");
  obs::Counter inline_jobs = obs::counter("pool.inline_jobs");
  obs::Counter chunks_caller = obs::counter("pool.chunks_caller");
  obs::Counter chunks_stolen = obs::counter("pool.chunks_stolen");
  obs::Counter chunks_inline = obs::counter("pool.chunks_inline");
  obs::Histogram job_chunks =
      obs::histogram("pool.job_chunks", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  obs::Gauge threads = obs::gauge("pool.threads");
};

const PoolMetrics& poolMetrics() {
  static const PoolMetrics m;
  return m;
}

}  // namespace

struct ThreadPool::Job {
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::size_t chunk_count = 0;
  const ChunkBody* body = nullptr;
  // Caller's cancel token, re-installed on every thread running chunks so
  // a request deadline bounds work fanned out across the pool.
  const util::CancelToken* cancel_token = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  poolMetrics().threads.set(static_cast<double>(threadCount()));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::runChunks(Job& job, bool stolen) {
  const obs::Counter& claimed =
      stolen ? poolMetrics().chunks_stolen : poolMetrics().chunks_caller;
  // Workers inherit the submitting thread's cancel token for this job
  // (no-op re-install on the calling thread itself).
  util::CancelScope cancel_scope(job.cancel_token);
  for (;;) {
    const std::size_t index = job.next.fetch_add(1);
    if (index >= job.chunk_count) {
      return;
    }
    claimed.increment();
    const std::size_t begin = index * job.chunk;
    const std::size_t end = std::min(begin + job.chunk, job.count);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) {
          job.error = std::current_exception();
        }
      }
      // Cancel: park the claim counter past the end so no new chunk starts,
      // and drop the never-to-be-claimed chunks from the completion count.
      const std::size_t parked = job.next.exchange(job.chunk_count);
      if (parked < job.chunk_count) {
        job.remaining.fetch_sub(job.chunk_count - parked);
      }
    }
    job.remaining.fetch_sub(1);
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ && generation_ != seen_generation);
      });
      if (stop_) {
        return;
      }
      job = job_;
      seen_generation = generation_;
    }
    runChunks(*job, /*stolen=*/true);
    if (job->remaining.load() == 0) {
      // Take the lock (empty critical section) so the notify cannot slip
      // into the window between the caller's predicate check and its sleep.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t count, std::size_t chunk,
                             const ChunkBody& body) {
  require(static_cast<bool>(body), "ThreadPool::parallelFor: empty body");
  if (count == 0) {
    return;
  }
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t chunk_count = (count + chunk - 1) / chunk;

  if (workers_.empty() || chunk_count == 1) {
    // Inline fast path; identical chunk boundaries to the parallel path.
    poolMetrics().inline_jobs.increment();
    poolMetrics().chunks_inline.add(chunk_count);
    for (std::size_t index = 0; index < chunk_count; ++index) {
      body(index * chunk, std::min((index + 1) * chunk, count));
    }
    return;
  }

  OBS_SPAN("pool.parallel_for", ::nanoleak::obs::TraceLevel::kDetail);
  poolMetrics().jobs.increment();
  poolMetrics().job_chunks.observe(static_cast<double>(chunk_count));

  auto job = std::make_shared<Job>();
  job->count = count;
  job->chunk = chunk;
  job->chunk_count = chunk_count;
  job->body = &body;
  job->cancel_token = util::currentCancelToken();
  job->remaining.store(chunk_count);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();

  runChunks(*job, /*stolen=*/false);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return job->remaining.load() == 0; });
    job_.reset();
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

}  // namespace nanoleak::engine
