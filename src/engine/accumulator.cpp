#include "engine/accumulator.h"

namespace nanoleak::engine {

void LeakageAccumulator::add(const device::LeakageBreakdown& breakdown) {
  subthreshold_.add(breakdown.subthreshold);
  gate_.add(breakdown.gate);
  btbt_.add(breakdown.btbt);
  total_.add(breakdown.total());
}

void LeakageAccumulator::merge(const LeakageAccumulator& other) {
  subthreshold_.merge(other.subthreshold_);
  gate_.merge(other.gate_);
  btbt_.merge(other.btbt_);
  total_.merge(other.total_);
}

HistogramAccumulator::HistogramAccumulator(double lo, double hi,
                                           std::size_t bins)
    : histogram_(lo, hi, bins) {}

void HistogramAccumulator::add(double value) { histogram_.add(value); }

void HistogramAccumulator::merge(const HistogramAccumulator& other) {
  histogram_.merge(other.histogram_);
}

void McAccumulator::add(const device::LeakageBreakdown& with_loading,
                        const device::LeakageBreakdown& without_loading) {
  with_.add(with_loading);
  without_.add(without_loading);
}

void McAccumulator::merge(const McAccumulator& other) {
  with_.merge(other.with_);
  without_.merge(other.without_);
}

}  // namespace nanoleak::engine
