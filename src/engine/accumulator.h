/// @file
/// Mergeable reduction state for sweep results.
///
/// Parallel chunks each fill a private accumulator; the batch runner merges
/// the partials in ascending chunk order. Because chunk boundaries depend
/// only on (count, chunk size) - never on the thread count - and every
/// merge operation here is performed in that fixed order, reduced results
/// are bit-identical no matter how many workers ran the sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "device/leakage_breakdown.h"
#include "util/histogram.h"
#include "util/statistics.h"

namespace nanoleak::engine {

/// Streaming statistics of a LeakageBreakdown population: one Welford
/// accumulator per component plus the total.
class LeakageAccumulator {
 public:
  /// Folds one observation into every per-component accumulator.
  void add(const device::LeakageBreakdown& breakdown);
  /// Folds another accumulator's state in (chunk-merge step).
  void merge(const LeakageAccumulator& other);

  /// Number of observations added (including merged ones).
  std::size_t count() const { return total_.count(); }
  /// Subthreshold-component statistics.
  const RunningStats& subthreshold() const { return subthreshold_; }
  /// Gate-tunneling-component statistics.
  const RunningStats& gate() const { return gate_; }
  /// BTBT-component statistics.
  const RunningStats& btbt() const { return btbt_; }
  /// Statistics of the per-observation totals.
  const RunningStats& total() const { return total_; }

 private:
  RunningStats subthreshold_;
  RunningStats gate_;
  RunningStats btbt_;
  RunningStats total_;
};

/// Histogram accumulator with binning fixed at construction, so chunk
/// partials merge exactly (bin-wise count addition).
class HistogramAccumulator {
 public:
  /// Requires hi > lo and bins >= 1 (see Histogram).
  HistogramAccumulator(double lo, double hi, std::size_t bins);

  /// Counts one value into its bin.
  void add(double value);
  /// Adds another accumulator's bin counts (binning must match).
  void merge(const HistogramAccumulator& other);

  /// The accumulated histogram.
  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
};

/// Paired with/without-loading accumulator for Monte-Carlo sweeps: the
/// summary statistics behind the paper's Fig. 10/11 tables.
class McAccumulator {
 public:
  /// Folds one paired (with, without loading) trial in.
  void add(const device::LeakageBreakdown& with_loading,
           const device::LeakageBreakdown& without_loading);
  /// Folds another accumulator's state in (chunk-merge step).
  void merge(const McAccumulator& other);

  /// Number of paired trials added.
  std::size_t count() const { return with_.count(); }
  /// Statistics of the loading-aware population.
  const LeakageAccumulator& withLoading() const { return with_; }
  /// Statistics of the traditional no-loading population.
  const LeakageAccumulator& withoutLoading() const { return without_; }

 private:
  LeakageAccumulator with_;
  LeakageAccumulator without_;
};

}  // namespace nanoleak::engine
