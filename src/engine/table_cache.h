/// @file
/// Characterization cache: memoizes the expensive fixture-solve sweeps that
/// build leakage tables, keyed by (device parameters, temperature, gate
/// kind). Repeated corners - e.g. a temperature sweep revisiting 300 K, or
/// many Monte-Carlo jobs on the same technology - characterize once.
///
/// Thread-safe: concurrent misses on the same key run one characterization;
/// the other callers block on its result (counted separately as
/// Stats::coalesced_hits). Entries are immutable once built and handed out
/// as shared_ptr-to-const, so workers may read them freely.
///
/// Keys are long exact fingerprints (every model parameter in hexfloat);
/// the map is an unordered_map whose hash is computed once per lookup and
/// stored alongside the key, so probing never re-hashes the string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/characterizer.h"
#include "core/leakage_table.h"
#include "device/device_params.h"
#include "gates/gate_library.h"

namespace nanoleak::engine {

/// Memoizing corner -> characterized-tables cache (see file comment).
class TableCache {
 public:
  /// All input-vector tables of one gate kind (vectorIndex order).
  using KindTables = std::vector<core::VectorTable>;
  /// Characterization function a miss invokes. The default runs
  /// core::Characterizer; tests substitute a controllable builder.
  using Builder = std::function<KindTables(
      const device::Technology&, gates::GateKind,
      const core::CharacterizationOptions&)>;

  /// Cache whose misses run core::Characterizer.
  TableCache();
  /// Cache with a custom characterization function.
  explicit TableCache(Builder builder);

  /// Characterized tables (all input vectors) of one gate kind under one
  /// technology corner; characterizes on miss. Only options.loading_grid,
  /// options.store_pin_current_grids and options.solver_path affect the
  /// result (and the key); options.kinds is ignored.
  std::shared_ptr<const KindTables> kindTables(
      const device::Technology& technology, gates::GateKind kind,
      const core::CharacterizationOptions& options = {});

  /// Whole library for a kind set, assembled from per-kind cache entries.
  core::LeakageLibrary library(const device::Technology& technology,
                               const std::vector<gates::GateKind>& kinds,
                               const core::CharacterizationOptions& options = {});

  /// Pre-seeds a corner with externally characterized tables - the
  /// thermal sweep engine's per-temperature entries, built once per
  /// (kind, vector) fixture and re-solved per temperature, land here so
  /// later tryGet() calls for those corners hit instead of
  /// re-characterizing. The mandatory non-empty `provenance` tag is
  /// folded into the key, keeping externally produced tables (which a
  /// cache miss could not reproduce bit-for-bit) from ever colliding
  /// with Characterizer corners: kindTables()/library() only ever see
  /// builder-produced entries. Returns false (leaving the existing
  /// entry untouched) when the key is already present; throws
  /// nanoleak::Error on an empty tag. Counted in Stats::inserts, never
  /// in hits/misses.
  bool insert(const device::Technology& technology, gates::GateKind kind,
              const core::CharacterizationOptions& options,
              KindTables tables, const std::string& provenance);

  /// Finished tables for a tagged corner if present, else nullptr -
  /// never runs a characterization and never blocks on an in-flight
  /// miss. Counts a hit when it returns tables; absence is not counted
  /// as a miss. The read side of insert(); requires the same non-empty
  /// `provenance` the entry was inserted with.
  std::shared_ptr<const KindTables> tryGet(
      const device::Technology& technology, gates::GateKind kind,
      const core::CharacterizationOptions& options,
      const std::string& provenance);

  /// Lookup and seeding counters (monotonic since construction).
  struct Stats {
    /// Lookups served from an existing entry.
    std::size_t hits = 0;
    /// Lookups that ran a characterization.
    std::size_t misses = 0;
    /// Hits that joined a characterization still in flight and received
    /// its tables: the entry existed but its miss owner had not finished
    /// building it yet, so the caller blocked on the shared future. Only
    /// counted once that future resolves with a value - a waiter whose
    /// miss owner threw is a coalesced_failure, not a hit. (Subset of
    /// `hits`.)
    std::size_t coalesced_hits = 0;
    /// Waiters that joined an in-flight characterization whose build
    /// threw: they blocked on the shared future and received the owner's
    /// exception instead of tables. Never counted in `hits`.
    std::size_t coalesced_failures = 0;
    /// Lookups that joined an in-flight characterization, counted at
    /// join time - before the build's outcome is known. Once every
    /// joined build resolves, coalesced_waits == coalesced_hits +
    /// coalesced_failures; a gap means waiters are still blocked. This
    /// is the only counter that observes the join itself, which is what
    /// makes coalescing tests deterministic.
    std::size_t coalesced_waits = 0;
    /// Entries pre-seeded through insert() (duplicates excluded).
    std::size_t inserts = 0;
    /// Finished entries dropped by LRU capacity enforcement (see
    /// setMaxEntries). In-flight misses are never evicted.
    std::size_t evictions = 0;
  };
  /// Snapshot of the lookup counters.
  Stats stats() const;
  /// Number of entries (including in-flight misses).
  std::size_t size() const;
  /// Drops every entry; stats are kept. In-flight misses finish safely.
  void clear();

  /// Caps the entry count: whenever the cache exceeds `max_entries`, the
  /// least-recently-used *finished* entries are dropped until it fits
  /// (in-flight misses are never evicted, so the cache may transiently
  /// hold more than the cap while builds overlap). 0 (the default) means
  /// unbounded. Shrinking the cap evicts immediately. Handed-out
  /// shared_ptr tables stay valid after eviction - only the cache's
  /// reference is dropped.
  void setMaxEntries(std::size_t max_entries);
  /// The current entry cap (0 = unbounded).
  std::size_t maxEntries() const;

  /// Cache key of a corner: an exact textual fingerprint of every
  /// leakage-relevant parameter (hexfloat, so distinct doubles never
  /// collide). Exposed for tests.
  static std::string cornerKey(const device::Technology& technology,
                               gates::GateKind kind,
                               const core::CharacterizationOptions& options);

  /// The technology-corner part of cornerKey(): supply rail, temperature,
  /// sizing and every NMOS/PMOS model parameter in hexfloat - no gate
  /// kind, no characterization options. Shared with PlanCache, whose
  /// content keys must fingerprint the same corner identically.
  static std::string technologyKey(const device::Technology& technology);

 private:
  using Future = std::shared_future<std::shared_ptr<const KindTables>>;

  /// Key with its hash precomputed once at construction.
  struct Key {
    std::string text;
    std::size_t hash;

    explicit Key(std::string text_in)
        : text(std::move(text_in)), hash(std::hash<std::string>{}(text)) {}

    bool operator==(const Key& other) const {
      return hash == other.hash && text == other.text;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept { return key.hash; }
  };
  struct Entry {
    Future future;
    /// False while the miss owner is still characterizing; flipped (under
    /// the cache mutex) once the value is ready.
    bool ready = false;
    /// Identifies the miss that created this entry, so an owner resumed
    /// after a clear() never marks a successor entry (a different,
    /// still-building miss for the same key) as ready.
    std::uint64_t token = 0;
    /// Monotonic recency stamp (use_tick_ at the last touch); the LRU
    /// eviction victim is the ready entry with the smallest stamp.
    std::uint64_t last_use = 0;
  };

  /// Drops least-recently-used ready entries until the cache fits
  /// max_entries_ (or only in-flight entries remain). Caller holds mutex_.
  void evictLocked();

  Builder builder_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  Stats stats_;
  std::uint64_t next_token_ = 0;
  std::uint64_t use_tick_ = 0;
  std::size_t max_entries_ = 0;
};

}  // namespace nanoleak::engine
