// Characterization cache: memoizes the expensive fixture-solve sweeps that
// build leakage tables, keyed by (device parameters, temperature, gate
// kind). Repeated corners - e.g. a temperature sweep revisiting 300 K, or
// many Monte-Carlo jobs on the same technology - characterize once.
//
// Thread-safe: concurrent misses on the same key run one characterization;
// the other callers block on its result. Entries are immutable once built
// and handed out as shared_ptr-to-const, so workers may read them freely.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/leakage_table.h"
#include "device/device_params.h"
#include "gates/gate_library.h"

namespace nanoleak::engine {

class TableCache {
 public:
  using KindTables = std::vector<core::VectorTable>;

  /// Characterized tables (all input vectors) of one gate kind under one
  /// technology corner; characterizes on miss. Only options.loading_grid
  /// and options.store_pin_current_grids affect the result (and the key);
  /// options.kinds is ignored.
  std::shared_ptr<const KindTables> kindTables(
      const device::Technology& technology, gates::GateKind kind,
      const core::CharacterizationOptions& options = {});

  /// Whole library for a kind set, assembled from per-kind cache entries.
  core::LeakageLibrary library(const device::Technology& technology,
                               const std::vector<gates::GateKind>& kinds,
                               const core::CharacterizationOptions& options = {});

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  void clear();

  /// Cache key of a corner: an exact textual fingerprint of every
  /// leakage-relevant parameter (hexfloat, so distinct doubles never
  /// collide). Exposed for tests.
  static std::string cornerKey(const device::Technology& technology,
                               gates::GateKind kind,
                               const core::CharacterizationOptions& options);

 private:
  using Future = std::shared_future<std::shared_ptr<const KindTables>>;

  mutable std::mutex mutex_;
  std::map<std::string, Future> entries_;
  Stats stats_;
};

}  // namespace nanoleak::engine
