/// @file
/// Sweep job model: declarative descriptions of the batched workloads the
/// paper's figures are built from - input-vector sweeps (Fig. 7), corner
/// sweeps over temperature and device flavour (Figs. 8/9), Monte-Carlo
/// populations (Figs. 10/11), and input-pattern sweeps over whole netlists
/// (Fig. 12). BatchRunner executes these over a thread pool; the structs
/// here own all their data so jobs can outlive the code that built them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/loading_analyzer.h"
#include "device/device_params.h"
#include "gates/gate_library.h"
#include "mc/monte_carlo.h"
#include "mc/variation.h"

namespace nanoleak::engine {

// ---------------------------------------------------------------------------
// Generic dense sweep space.
// ---------------------------------------------------------------------------

/// One axis of a sweep: a display name plus its point count.
struct SweepAxis {
  /// Display name ("temperature", "vector", ...).
  std::string name;
  /// Number of points on this axis.
  std::size_t size = 0;
};

/// Cartesian product of axes with a deterministic row-major linearization
/// (the LAST axis varies fastest). Gives every sweep point a stable linear
/// index that partitioning and reduction key off.
class SweepSpace {
 public:
  /// An empty axis list: one implicit point.
  SweepSpace() = default;
  /// Requires every axis to have at least one point.
  explicit SweepSpace(std::vector<SweepAxis> axes);

  /// Number of axes.
  std::size_t axisCount() const { return axes_.size(); }
  /// Axis `i` (bounds-checked).
  const SweepAxis& axis(std::size_t i) const;
  /// Product of axis sizes; 1 for an empty axis list (one implicit point).
  std::size_t pointCount() const { return point_count_; }

  /// Per-axis coordinates of a linear point index.
  std::vector<std::size_t> coordinates(std::size_t linear) const;
  /// Inverse of coordinates().
  std::size_t linearIndex(const std::vector<std::size_t>& coords) const;

 private:
  std::vector<SweepAxis> axes_;
  std::size_t point_count_ = 1;
};

// ---------------------------------------------------------------------------
// Typed jobs.
// ---------------------------------------------------------------------------

/// Fig. 7 workload: loading effect of every listed input vector of a gate,
/// per pin and at the output, over a grid of loading magnitudes.
struct GateVectorSweep {
  /// Gate under test.
  gates::GateKind kind = gates::GateKind::kNand2;
  /// Technology corner the fixture is built at.
  device::Technology technology;
  /// Input vectors to analyze; empty = all 2^pins in vectorIndex order.
  std::vector<std::vector<bool>> vectors;
  /// Loading-current magnitudes [A] the paper's x-axes sweep.
  std::vector<double> loading_amps;
};

/// Result for one input vector of a GateVectorSweep.
struct GateVectorResult {
  /// The analyzed input vector.
  std::vector<bool> input_vector;
  /// Logic level of the gate output under this vector.
  bool output_level = false;
  /// Loading effects at one sweep magnitude.
  struct Point {
    /// Loading magnitude [A].
    double amps = 0.0;
    /// LDIN of each pin at this magnitude (Eq. 5).
    std::vector<core::LoadingEffect> pins;
    /// LDOUT at this magnitude (Eq. 3).
    core::LoadingEffect output;
  };
  /// One entry per sweep.loading_amps magnitude, in order.
  std::vector<Point> points;
};

/// Fig. 9 workload: combined loading contribution of one gate across
/// temperature corners (and optionally across device flavours).
struct CornerSweep {
  /// Gate under test.
  gates::GateKind kind = gates::GateKind::kInv;
  /// Its input vector.
  std::vector<bool> input_vector = {false};
  /// Technology corners; each is evaluated at every temperature. The
  /// paper's Fig. 8 flavours (D25-S/G/JN) are one technology each.
  std::vector<device::Technology> technologies;
  /// Temperature points [K]; empty = each technology's own temperature.
  std::vector<double> temperatures_k;
  /// Fixed input-loading magnitude [A].
  double input_loading_amps = 0.0;
  /// Fixed output-loading magnitude [A].
  double output_loading_amps = 0.0;
};

/// Result for one (technology, temperature) corner.
struct CornerResult {
  /// Index into CornerSweep::technologies.
  std::size_t technology_index = 0;
  /// The corner's temperature [K].
  double temperature_k = 0.0;
  /// Nominal (zero-loading) decomposition at this corner.
  device::LeakageBreakdown nominal;
  /// LDALL with components normalized by the nominal total (Fig. 9 form).
  core::LoadingEffect contribution;
  /// LDALL with components normalized per component (Eq. 4 form).
  core::LoadingEffect effect;
};

/// Fig. 10/11 workload: a Monte-Carlo population of paired with/without-
/// loading solves. Uses the same counter-based per-sample RNG streams as
/// MonteCarloEngine::runBatched (sample i = runSample(seed, i)), so the
/// population is bit-identical to that entry point at any thread count.
struct McSweep {
  /// Nominal technology the trials perturb.
  device::Technology technology;
  /// Process-variation sigmas sampled per trial.
  mc::VariationSigmas sigmas;
  /// Gate-level fixture configuration (the paper's Fig. 10 setup).
  mc::McFixtureConfig fixture;
  /// Population size.
  std::size_t samples = 0;
  /// Base seed; sample i draws from stream deriveStreamSeed(seed, i).
  std::uint64_t seed = 0;
};

/// All input vectors of `kind`, ordered by core::vectorIndex (bit k of the
/// index holds pin k's value).
std::vector<std::vector<bool>> allInputVectors(gates::GateKind kind);

}  // namespace nanoleak::engine
