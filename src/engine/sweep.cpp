#include "engine/sweep.h"

#include "util/error.h"

namespace nanoleak::engine {

SweepSpace::SweepSpace(std::vector<SweepAxis> axes) : axes_(std::move(axes)) {
  for (const SweepAxis& axis : axes_) {
    require(axis.size >= 1, "SweepSpace: axis '" + axis.name + "' is empty");
    point_count_ *= axis.size;
  }
}

const SweepAxis& SweepSpace::axis(std::size_t i) const {
  require(i < axes_.size(), "SweepSpace::axis: index out of range");
  return axes_[i];
}

std::vector<std::size_t> SweepSpace::coordinates(std::size_t linear) const {
  require(linear < point_count_, "SweepSpace::coordinates: out of range");
  std::vector<std::size_t> coords(axes_.size(), 0);
  for (std::size_t i = axes_.size(); i-- > 0;) {
    coords[i] = linear % axes_[i].size;
    linear /= axes_[i].size;
  }
  return coords;
}

std::size_t SweepSpace::linearIndex(
    const std::vector<std::size_t>& coords) const {
  require(coords.size() == axes_.size(),
          "SweepSpace::linearIndex: coordinate arity mismatch");
  std::size_t linear = 0;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    require(coords[i] < axes_[i].size,
            "SweepSpace::linearIndex: coordinate out of range");
    linear = linear * axes_[i].size + coords[i];
  }
  return linear;
}

std::vector<std::vector<bool>> allInputVectors(gates::GateKind kind) {
  const int pins = gates::inputCount(kind);
  std::vector<std::vector<bool>> vectors;
  vectors.reserve(std::size_t{1} << pins);
  for (std::size_t index = 0; index < (std::size_t{1} << pins); ++index) {
    std::vector<bool> vector(pins);
    for (int pin = 0; pin < pins; ++pin) {
      vector[pin] = (index >> pin) & 1;
    }
    vectors.push_back(std::move(vector));
  }
  return vectors;
}

}  // namespace nanoleak::engine
