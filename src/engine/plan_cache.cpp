#include "engine/plan_cache.h"

#include <ios>
#include <sstream>
#include <utility>

#include "engine/table_cache.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace nanoleak::engine {

namespace {

/// Process-wide mirror of the per-instance Stats (same pattern as
/// TableCache's CacheMetrics): every PlanCache records into these
/// registry metrics, so serve's metrics artifact shows plan reuse
/// without holding a cache reference.
struct PlanMetrics {
  obs::Counter hits = obs::counter("plan_cache.hits");
  obs::Counter misses = obs::counter("plan_cache.misses");
  obs::Counter coalesced_hits = obs::counter("plan_cache.coalesced_hits");
  obs::Counter coalesced_failures =
      obs::counter("plan_cache.coalesced_failures");
  obs::Counter evictions = obs::counter("plan_cache.evictions");
  obs::Gauge entries = obs::gauge("plan_cache.entries");
};

const PlanMetrics& planMetrics() {
  static const PlanMetrics m;
  return m;
}

}  // namespace

PlanCache::PlanCache(std::size_t max_entries) : max_entries_(max_entries) {}

std::string PlanCache::contentKey(
    const logic::LogicNetlist& netlist, const device::Technology& technology,
    const core::EstimatorOptions& estimator_options,
    const core::CharacterizationOptions& characterization_options) {
  std::ostringstream key;
  // Netlist structure: net ids are dense indices, so (kind, input ids,
  // output id) per gate plus the DFF pin pairs and the primary
  // input/output id lists pin the graph exactly. Names are deliberately
  // omitted - renaming a net cannot change leakage.
  key << "nets:" << netlist.netCount() << "|g:";
  for (const logic::Gate& gate : netlist.gates()) {
    key << gates::toString(gate.kind) << '(';
    for (logic::NetId input : gate.inputs) {
      key << input << ',';
    }
    key << ')' << gate.output << ';';
  }
  key << "|dff:";
  for (const logic::Dff& dff : netlist.dffs()) {
    key << dff.d << '>' << dff.q << ';';
  }
  key << "|pi:";
  for (logic::NetId net : netlist.primaryInputs()) {
    key << net << ',';
  }
  key << "|po:";
  for (logic::NetId net : netlist.primaryOutputs()) {
    key << net << ',';
  }
  // Technology corner: exact hexfloat fingerprint shared with the table
  // cache, so the two caches agree on what "same corner" means.
  key << "|tech:" << TableCache::technologyKey(technology);
  // Estimator + characterization knobs that change the compiled tables
  // or the propagation the plan bakes in.
  key << "|est:" << estimator_options.with_loading << '/'
      << estimator_options.propagation_iterations;
  key << "|grid:" << std::hexfloat;
  for (double amps : characterization_options.loading_grid) {
    key << amps << ',';
  }
  key << std::defaultfloat
      << "|pins:" << characterization_options.store_pin_current_grids
      << "|solver:" << static_cast<int>(characterization_options.solver_path);
  return key.str();
}

std::shared_ptr<const PlanCache::Entry> PlanCache::get(const std::string& key,
                                                       const Builder& build) {
  Key map_key(key);

  std::promise<std::shared_ptr<const Entry>> promise;
  Future future;
  bool owner = false;
  bool joined_in_flight = false;
  std::uint64_t token = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(map_key);
    if (it != slots_.end()) {
      it->second.last_use = ++use_tick_;
      if (it->second.ready) {
        ++stats_.hits;
        planMetrics().hits.increment();
      } else {
        // Joining an in-flight build: hit vs failure is decided by how
        // the owner's build resolves, so outcome counting waits for
        // future.get(). Only the join itself is recorded now.
        joined_in_flight = true;
        ++stats_.coalesced_waits;
      }
      future = it->second.future;
    } else {
      ++stats_.misses;
      planMetrics().misses.increment();
      owner = true;
      token = ++next_token_;
      future = promise.get_future().share();
      slots_.emplace(map_key,
                     Slot{future, /*ready=*/false, token, ++use_tick_});
      evictLocked();
      planMetrics().entries.set(static_cast<double>(slots_.size()));
    }
  }

  if (owner) {
    try {
      std::shared_ptr<const Entry> entry = build();
      require(entry && entry->netlist && entry->library && entry->plan,
              "PlanCache: builder must return a fully populated entry");
      promise.set_value(std::move(entry));
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = slots_.find(map_key);
      if (it != slots_.end() && it->second.token == token) {
        it->second.ready = true;
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = slots_.find(map_key);
      if (it != slots_.end() && it->second.token == token) {
        slots_.erase(it);  // allow a later retry
        planMetrics().entries.set(static_cast<double>(slots_.size()));
      }
      throw;
    }
  }
  if (joined_in_flight) {
    try {
      std::shared_ptr<const Entry> entry = future.get();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      ++stats_.coalesced_hits;
      planMetrics().hits.increment();
      planMetrics().coalesced_hits.increment();
      return entry;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.coalesced_failures;
      }
      planMetrics().coalesced_failures.increment();
      throw;
    }
  }
  return future.get();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  planMetrics().entries.set(0.0);
}

void PlanCache::setMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
  evictLocked();
  planMetrics().entries.set(static_cast<double>(slots_.size()));
}

std::size_t PlanCache::maxEntries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_entries_;
}

void PlanCache::evictLocked() {
  if (max_entries_ == 0) {
    return;
  }
  while (slots_.size() > max_entries_) {
    // O(n) min-scan, same rationale as TableCache::evictLocked: plan
    // caches are tens of entries, and a min-scan sidesteps keeping list
    // iterators valid across unordered_map rehashes.
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second.ready) {
        continue;  // never evict an in-flight build
      }
      if (victim == slots_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == slots_.end()) {
      return;  // only in-flight builds left; transiently over the cap
    }
    slots_.erase(victim);
    ++stats_.evictions;
    planMetrics().evictions.increment();
  }
}

}  // namespace nanoleak::engine
