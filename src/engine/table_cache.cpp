#include "engine/table_cache.h"

#include <ios>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/fault.h"

namespace nanoleak::engine {

namespace {

/// Process-wide mirror of the per-instance Stats: every TableCache
/// instance also records into these registry metrics, so `nanoleak
/// stats` sees cache behavior without holding a cache reference.
struct CacheMetrics {
  obs::Counter hits = obs::counter("table_cache.hits");
  obs::Counter misses = obs::counter("table_cache.misses");
  obs::Counter coalesced_hits = obs::counter("table_cache.coalesced_hits");
  obs::Counter coalesced_failures =
      obs::counter("table_cache.coalesced_failures");
  obs::Counter inserts = obs::counter("table_cache.inserts");
  obs::Counter evictions = obs::counter("table_cache.evictions");
  obs::Gauge entries = obs::gauge("table_cache.entries");
};

const CacheMetrics& cacheMetrics() {
  static const CacheMetrics m;
  return m;
}

void appendFingerprint(std::ostream& out, const device::DeviceParams& p) {
  // Every numeric member participates: two corners that differ in any
  // model parameter must never share a cache entry. Keep in sync with
  // device::DeviceParams.
  out << p.name << '/' << device::toString(p.polarity) << std::hexfloat;
  for (double value :
       {p.length, p.tox, p.overlap_length, p.junction_depth, p.vth0,
        p.i_spec, p.n0, p.dibl0, p.k_dibl_tox, p.vth_roll, p.l_roll,
        p.body_gamma, p.phi_s, p.vth_tc, p.mu_tc, p.lambda, p.zeta_sat,
        p.theta_vsat, p.jg0, p.alpha_v, p.beta_tox, p.k_gb, p.gate_tc,
        p.halo_doping, p.a_btbt, p.b_btbt, p.vbi, p.tox_nom, p.halo_nom,
        p.k_vth_halo}) {
    out << '/' << value;
  }
  out << std::defaultfloat;
}

}  // namespace

TableCache::TableCache()
    : builder_([](const device::Technology& technology, gates::GateKind kind,
                  const core::CharacterizationOptions& options) {
        return core::Characterizer(technology, options)
            .characterizeKind(kind);
      }) {}

TableCache::TableCache(Builder builder) : builder_(std::move(builder)) {}

std::string TableCache::technologyKey(const device::Technology& technology) {
  std::ostringstream key;
  key << std::hexfloat << technology.vdd << '/' << technology.temperature_k
      << '/' << technology.unit_width_n << '/' << technology.beta_ratio
      << std::defaultfloat << "|n:";
  appendFingerprint(key, technology.nmos);
  key << "|p:";
  appendFingerprint(key, technology.pmos);
  return key.str();
}

std::string TableCache::cornerKey(
    const device::Technology& technology, gates::GateKind kind,
    const core::CharacterizationOptions& options) {
  std::ostringstream key;
  key << gates::toString(kind) << '|' << technologyKey(technology);
  key << "|grid:" << std::hexfloat;
  for (double amps : options.loading_grid) {
    key << amps << ',';
  }
  key << std::defaultfloat << "|pins:" << options.store_pin_current_grids
      << "|solver:" << static_cast<int>(options.solver_path);
  return key.str();
}

std::shared_ptr<const TableCache::KindTables> TableCache::kindTables(
    const device::Technology& technology, gates::GateKind kind,
    const core::CharacterizationOptions& options) {
  Key key(cornerKey(technology, kind, options));

  std::promise<std::shared_ptr<const KindTables>> promise;
  Future future;
  bool owner = false;
  bool joined_in_flight = false;
  std::uint64_t token = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_use = ++use_tick_;
      if (it->second.ready) {
        // A finished entry cannot fail below: count the hit now.
        ++stats_.hits;
        cacheMetrics().hits.increment();
      } else {
        // Joining an in-flight miss: whether this is a coalesced hit or
        // a coalesced failure depends on how the owner's build resolves,
        // so outcome counting waits until future.get() below. Only the
        // join itself is recorded now.
        joined_in_flight = true;
        ++stats_.coalesced_waits;
      }
      future = it->second.future;
    } else {
      ++stats_.misses;
      cacheMetrics().misses.increment();
      owner = true;
      token = ++next_token_;
      future = promise.get_future().share();
      entries_.emplace(key, Entry{future, /*ready=*/false, token,
                                  ++use_tick_});
      evictLocked();
      cacheMetrics().entries.set(static_cast<double>(entries_.size()));
    }
  }

  if (owner) {
    // Miss: this caller runs the characterization; concurrent callers for
    // the same key block on the shared future below.
    try {
      FAULT_POINT("table_cache.build");
      auto tables =
          std::make_shared<const KindTables>(builder_(technology, kind,
                                                      options));
      promise.set_value(std::move(tables));
      std::lock_guard<std::mutex> lock(mutex_);
      // The entry may be gone (clear()) or replaced by a successor miss;
      // only this owner's own entry is marked ready.
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.token == token) {
        it->second.ready = true;
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.token == token) {
        entries_.erase(it);  // allow a later retry
        cacheMetrics().entries.set(static_cast<double>(entries_.size()));
      }
      throw;
    }
  }
  if (joined_in_flight) {
    try {
      auto tables = future.get();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      ++stats_.coalesced_hits;
      cacheMetrics().hits.increment();
      cacheMetrics().coalesced_hits.increment();
      return tables;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.coalesced_failures;
      }
      cacheMetrics().coalesced_failures.increment();
      throw;
    }
  }
  return future.get();
}

namespace {

std::string taggedKey(std::string key, const std::string& provenance) {
  require(!provenance.empty(),
          "TableCache: provenance tag must be non-empty (untagged keys "
          "are reserved for builder-produced entries)");
  return key + "|src:" + provenance;
}

}  // namespace

bool TableCache::insert(const device::Technology& technology,
                        gates::GateKind kind,
                        const core::CharacterizationOptions& options,
                        KindTables tables, const std::string& provenance) {
  Key key(taggedKey(cornerKey(technology, kind, options), provenance));
  auto value = std::make_shared<const KindTables>(std::move(tables));
  std::promise<std::shared_ptr<const KindTables>> promise;
  promise.set_value(std::move(value));

  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.find(key) != entries_.end()) {
    return false;
  }
  entries_.emplace(key, Entry{promise.get_future().share(), /*ready=*/true,
                              ++next_token_, ++use_tick_});
  ++stats_.inserts;
  cacheMetrics().inserts.increment();
  evictLocked();
  cacheMetrics().entries.set(static_cast<double>(entries_.size()));
  return true;
}

std::shared_ptr<const TableCache::KindTables> TableCache::tryGet(
    const device::Technology& technology, gates::GateKind kind,
    const core::CharacterizationOptions& options,
    const std::string& provenance) {
  Key key(taggedKey(cornerKey(technology, kind, options), provenance));
  Future future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.ready) {
      return nullptr;
    }
    it->second.last_use = ++use_tick_;
    ++stats_.hits;
    cacheMetrics().hits.increment();
    future = it->second.future;
  }
  return future.get();
}

core::LeakageLibrary TableCache::library(
    const device::Technology& technology,
    const std::vector<gates::GateKind>& kinds,
    const core::CharacterizationOptions& options) {
  core::LeakageLibrary::Meta meta;
  meta.technology_name = technology.nmos.name + "/" + technology.pmos.name;
  meta.vdd = technology.vdd;
  meta.temperature_k = technology.temperature_k;
  core::LeakageLibrary library(meta);
  for (gates::GateKind kind : kinds) {
    library.insert(kind, *kindTables(technology, kind, options));
  }
  return library;
}

TableCache::Stats TableCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t TableCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TableCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  cacheMetrics().entries.set(0.0);
}

void TableCache::setMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
  evictLocked();
  cacheMetrics().entries.set(static_cast<double>(entries_.size()));
}

std::size_t TableCache::maxEntries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_entries_;
}

void TableCache::evictLocked() {
  if (max_entries_ == 0) {
    return;
  }
  while (entries_.size() > max_entries_) {
    // O(n) min-scan instead of an intrusive LRU list: capacities are
    // small (tens to hundreds) and eviction only runs on inserts past
    // the cap, so the scan is cheaper than keeping list iterators valid
    // across unordered_map rehashes.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) {
        continue;  // never evict an in-flight miss
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;  // only in-flight entries left; transiently over the cap
    }
    entries_.erase(victim);
    ++stats_.evictions;
    cacheMetrics().evictions.increment();
  }
}

}  // namespace nanoleak::engine
