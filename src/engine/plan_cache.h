/// @file
/// Compiled-plan cache: promotes the per-run (netlist, library,
/// EstimationPlan) triple from a scenario-runner local to a first-class
/// shared service, so a daemon serving repeated estimation requests over
/// the same circuits compiles each one once and answers the rest from
/// the cache.
///
/// Keys are content hashes, not names: contentKey() fingerprints the
/// netlist structure (every gate kind, connection and flip-flop), the
/// full technology corner (via TableCache::technologyKey) and every
/// estimator/characterization option that affects the compiled tables.
/// Two requests naming different circuits that happen to be structurally
/// identical share an entry; the same circuit name under a different
/// corner or option set never does.
///
/// Thread-safe with the same discipline as TableCache: concurrent misses
/// on one key run one build (the others coalesce on its shared future),
/// entries are immutable once built and handed out as
/// shared_ptr-to-const, and LRU capacity eviction only ever drops the
/// cache's own reference - callers holding an entry keep it alive.
///
/// An Entry owns its netlist and library by unique_ptr specifically
/// because EstimationPlan holds references into both: the heap
/// allocations give the plan stable addresses for the entry's whole
/// lifetime, no matter how the cache's internal map rehashes or evicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/characterizer.h"
#include "core/estimation_plan.h"
#include "core/leakage_table.h"
#include "device/device_params.h"
#include "logic/logic_netlist.h"

namespace nanoleak::engine {

/// Memoizing content-key -> compiled-estimation-plan cache (see file
/// comment).
class PlanCache {
 public:
  /// One cached compilation artifact: the netlist and characterized
  /// library the plan was compiled against, plus the plan itself. All
  /// three are immutable and heap-owned so `plan`'s internal references
  /// into `netlist` and `library` stay valid wherever the entry moves.
  struct Entry {
    /// The circuit the plan was compiled for (plan->netlist() points
    /// here).
    std::unique_ptr<const logic::LogicNetlist> netlist;
    /// The characterized tables the plan reads (plan->library() points
    /// here).
    std::unique_ptr<const core::LeakageLibrary> library;
    /// The compiled estimator; share-read by any number of workers, each
    /// with its own core::EstimationWorkspace.
    std::unique_ptr<const core::EstimationPlan> plan;
  };

  /// Compilation function a miss invokes; must return a fully populated
  /// Entry. Runs outside the cache lock, so it may characterize and
  /// compile at leisure; concurrent callers for the same key block on
  /// its result.
  using Builder = std::function<std::shared_ptr<const Entry>()>;

  /// Cache holding at most `max_entries` finished plans (0 = unbounded);
  /// see setMaxEntries() for the eviction contract.
  explicit PlanCache(std::size_t max_entries = 0);

  /// The entry for `key`, building it via `build` on a miss. Concurrent
  /// callers with the same key coalesce on one build; if that build
  /// throws, every coalesced waiter rethrows the builder's exception
  /// (counted as coalesced_failures, never as hits) and the entry is
  /// removed so a later call can retry. Never returns nullptr.
  std::shared_ptr<const Entry> get(const std::string& key,
                                   const Builder& build);

  /// Content fingerprint of one (netlist, technology, estimator options,
  /// characterization options) compilation input. Walks the netlist
  /// structure directly - gate kinds, input/output net ids, flip-flop
  /// pins, primary inputs/outputs - rather than a serialized text form,
  /// so every representable netlist (including gate kinds the .bench
  /// writer cannot express) gets an exact key. Net *names* do not
  /// participate: structure decides identity.
  static std::string contentKey(
      const logic::LogicNetlist& netlist,
      const device::Technology& technology,
      const core::EstimatorOptions& estimator_options,
      const core::CharacterizationOptions& characterization_options);

  /// Lookup counters (monotonic since construction).
  struct Stats {
    /// Lookups served from an existing entry (including coalesced hits).
    std::size_t hits = 0;
    /// Lookups that ran a build.
    std::size_t misses = 0;
    /// Hits that joined a build still in flight and received its entry;
    /// subset of `hits`.
    std::size_t coalesced_hits = 0;
    /// Waiters that joined an in-flight build whose builder threw; they
    /// rethrow the builder's exception and are never counted in `hits`.
    std::size_t coalesced_failures = 0;
    /// Lookups that joined an in-flight build, counted at join time -
    /// before the outcome is known. Once every joined build resolves,
    /// coalesced_waits == coalesced_hits + coalesced_failures.
    std::size_t coalesced_waits = 0;
    /// Finished entries dropped by LRU capacity enforcement.
    std::size_t evictions = 0;
  };
  /// Snapshot of the lookup counters.
  Stats stats() const;
  /// Number of entries (including in-flight builds).
  std::size_t size() const;
  /// Drops every entry; stats are kept. In-flight builds finish safely.
  void clear();

  /// Caps the entry count: whenever the cache exceeds `max_entries`, the
  /// least-recently-used *finished* entries are dropped until it fits
  /// (in-flight builds are never evicted, so the cache may transiently
  /// exceed the cap while builds overlap). 0 means unbounded. Shrinking
  /// the cap evicts immediately. Entries handed out before an eviction
  /// stay valid - only the cache's reference is dropped.
  void setMaxEntries(std::size_t max_entries);
  /// The current entry cap (0 = unbounded).
  std::size_t maxEntries() const;

 private:
  using Future = std::shared_future<std::shared_ptr<const Entry>>;

  /// Key with its hash precomputed once at construction.
  struct Key {
    /// The full content fingerprint.
    std::string text;
    /// std::hash of `text`, computed once.
    std::size_t hash;

    /// Computes and stores the hash.
    explicit Key(std::string text_in)
        : text(std::move(text_in)), hash(std::hash<std::string>{}(text)) {}

    /// Hash-first equality (the map compares full text only on hash
    /// collisions).
    bool operator==(const Key& other) const {
      return hash == other.hash && text == other.text;
    }
  };
  /// Reads the precomputed hash.
  struct KeyHash {
    /// Returns key.hash.
    std::size_t operator()(const Key& key) const noexcept { return key.hash; }
  };
  /// Map slot: the (possibly still-building) shared entry plus
  /// bookkeeping mirroring TableCache's Entry.
  struct Slot {
    /// Resolves to the built entry (or the builder's exception).
    Future future;
    /// False while the miss owner is still building; flipped under the
    /// cache mutex once the value is ready.
    bool ready = false;
    /// Identifies the miss that created this slot, so an owner resumed
    /// after clear() never marks a successor slot as ready.
    std::uint64_t token = 0;
    /// Monotonic recency stamp; the LRU victim is the ready slot with
    /// the smallest stamp.
    std::uint64_t last_use = 0;
  };

  /// Drops least-recently-used ready slots until the cache fits
  /// max_entries_ (or only in-flight slots remain). Caller holds mutex_.
  void evictLocked();

  mutable std::mutex mutex_;
  std::unordered_map<Key, Slot, KeyHash> slots_;
  Stats stats_;
  std::uint64_t next_token_ = 0;
  std::uint64_t use_tick_ = 0;
  std::size_t max_entries_ = 0;
};

}  // namespace nanoleak::engine
