/// @file
/// Batch runner: executes sweep jobs over the thread pool.
///
/// Partitioning is deterministic (fixed chunk boundaries, see ThreadPool),
/// per-point results land in index-addressed slots, and reductions merge
/// per-chunk accumulators in ascending chunk order - so every result is
/// bit-identical whether the sweep ran on 1 thread or 16. cache() exposes a
/// TableCache for workloads that need characterized tables (runPatterns
/// libraries, repeated corners): entries are immutable and shared, so
/// workers read them without synchronization. Pattern sweeps follow the
/// same shape one level up: one immutable core::EstimationPlan shared by
/// every worker, one core::EstimationWorkspace per thread (see
/// runPatterns).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/estimation_plan.h"
#include "core/estimator.h"
#include "engine/accumulator.h"
#include "engine/sweep.h"
#include "engine/table_cache.h"
#include "engine/thread_pool.h"
#include "mc/monte_carlo.h"

namespace nanoleak::engine {

/// Concurrency and chunking configuration of a BatchRunner.
struct BatchOptions {
  /// Total concurrency including the calling thread; 0 = hardware.
  int threads = 0;
  /// Monte-Carlo samples per work chunk. Thread-count independent on
  /// purpose: chunk boundaries define the reduction order.
  std::size_t mc_chunk = 8;
  /// Input patterns per work chunk in runPatterns. Within a chunk the
  /// worker walks patterns through the plan's incremental delta path
  /// (bit-identical to full evaluation, so chunking never affects
  /// results).
  std::size_t pattern_chunk = 32;
  /// Characterization cache this runner records into. Null (the default)
  /// gives the runner a private cache - the historical behaviour. A
  /// non-null cache is shared: several runners (e.g. the serve daemon's
  /// per-executor runners) then memoize corners jointly, which is safe
  /// because TableCache is fully thread-safe and its entries immutable.
  std::shared_ptr<TableCache> cache = nullptr;
};

/// Everything a Monte-Carlo sweep produces: the per-sample population (in
/// sample order), the Fig. 11 summary, and chunk-order-merged statistics.
struct McBatchResult {
  /// Per-sample paired decompositions, in sample order.
  std::vector<mc::McSample> samples;
  /// Fig. 11 mean/sigma/max-shift summary.
  mc::McSummary summary;
  /// Chunk-order-merged Welford accumulators.
  McAccumulator stats;
};

/// Executes the typed sweep jobs of sweep.h (and shared-plan pattern
/// sweeps) over one thread pool + table cache (see file comment).
class BatchRunner {
 public:
  /// Builds the pool (options.threads) and adopts options.cache (or
  /// creates a private empty cache when options.cache is null).
  explicit BatchRunner(BatchOptions options = {});

  /// The configuration the runner was built with.
  const BatchOptions& options() const { return options_; }
  /// The underlying pool, for custom parallelFor workloads.
  ThreadPool& pool() { return pool_; }
  /// The characterization cache shared by this runner's workloads.
  TableCache& cache() { return *cache_; }
  /// The same cache as an owning handle, for wiring further runners to
  /// it (see BatchOptions::cache).
  std::shared_ptr<TableCache> sharedCache() const { return cache_; }

  /// Adapter for mc::MonteCarloEngine::runBatched: partitions the sample
  /// space over this runner's pool in mc_chunk-sized pieces.
  mc::MonteCarloEngine::ParallelExecutor mcExecutor();

  /// Fig. 7 job: one task per input vector (each task owns its
  /// LoadingAnalyzer and sweeps the loading grid sequentially). Results
  /// ordered like sweep.vectors (or vectorIndex order when empty).
  std::vector<GateVectorResult> run(const GateVectorSweep& sweep);

  /// Fig. 8/9 job: one task per (technology, temperature) corner, ordered
  /// technology-major.
  std::vector<CornerResult> run(const CornerSweep& sweep);

  /// Fig. 10/11 job: counter-seeded Monte-Carlo population.
  McBatchResult run(const McSweep& sweep);

  /// Fig. 12 vector-sweep shape: estimates every input pattern against one
  /// shared immutable EstimationPlan. Each worker draws an
  /// EstimationWorkspace from a small pool (at most one per thread in
  /// steady state) and walks its chunk through the incremental delta path;
  /// results are bit-identical to plan.estimate() per pattern at any
  /// thread count. The plan must outlive the call.
  std::vector<core::EstimateResult> runPatterns(
      const core::EstimationPlan& plan,
      const std::vector<std::vector<bool>>& patterns);

  /// Facade adapter: runs the estimator's compiled plan (above).
  std::vector<core::EstimateResult> runPatterns(
      const core::LeakageEstimator& estimator,
      const std::vector<std::vector<bool>>& patterns);

  /// Deterministic parallel map over [0, count): out[i] = fn(i), one task
  /// per index. The building block the typed sweeps are written with.
  template <typename T>
  std::vector<T> map(std::size_t count,
                     const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(count);
    pool_.parallelFor(count, /*chunk=*/1,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          out[i] = fn(i);
                        }
                      });
    return out;
  }

 private:
  BatchOptions options_;
  std::shared_ptr<TableCache> cache_;
  ThreadPool pool_;
};

}  // namespace nanoleak::engine
