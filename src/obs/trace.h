/// @file
/// Scoped trace spans with Chrome trace-event JSON export.
///
/// A Span records one begin/end interval on the thread that runs it;
/// OBS_SPAN declares one for the enclosing scope. Recording is off by
/// default - a disabled span costs one relaxed atomic load and touches
/// no clock - and is enabled per level: kCoarse spans mark whole
/// phases (a scenario, a characterization, a pattern batch), kDetail
/// spans mark hot-path units (one DC solve) and are only recorded when
/// detail tracing is on. Because spans are strictly scope-nested RAII
/// objects, the exported events of one thread always nest properly.
///
/// Export is canonical Chrome trace-event JSON ("X" complete events
/// with ts/dur in microseconds), loadable in chrome://tracing and
/// Perfetto (ui.perfetto.dev). Timestamps are wall-clock measurements
/// and naturally vary run to run; traces are diagnostics and are never
/// part of golden outputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nanoleak::obs {

/// How much tracing to record.
enum class TraceLevel {
  kOff = 0,     ///< Record nothing (the default).
  kCoarse = 1,  ///< Record phase-level spans only.
  kDetail = 2,  ///< Record everything, including per-solve spans.
};

/// Starts a new trace session at `level`: clears previously collected
/// events and restarts the time origin. Safe to call at any time from
/// any thread (spans already open keep recording into the new session
/// when they close inside it).
void enableTracing(TraceLevel level = TraceLevel::kCoarse);

/// Stops recording. Collected events remain readable until the next
/// enableTracing().
void disableTracing();

/// The current recording level.
TraceLevel traceLevel();

/// One collected span, timestamps relative to the session origin.
struct TraceEvent {
  std::string name;    ///< Span name (e.g. "solve.gauss_seidel").
  std::string detail;  ///< Optional free-form annotation ("" when unset).
  std::uint32_t tid = 0;  ///< Stable per-thread id (1-based).
  double ts_us = 0.0;     ///< Start, microseconds since session origin.
  double dur_us = 0.0;    ///< Duration in microseconds.
};

/// Every event recorded in the current session, sorted by (tid, start,
/// longest-first) so a parent precedes its children.
std::vector<TraceEvent> collectTraceEvents();

/// Chrome trace-event JSON of the current session: a single object with
/// "traceEvents" (one "ph":"X" complete event per span, with name, cat,
/// pid, tid, ts, dur and optional args.detail) - valid even when no
/// span was recorded.
std::string chromeTraceJson();

/// RAII trace span: records [construction, destruction) on the current
/// thread when tracing is enabled at the span's level. Prefer the
/// OBS_SPAN macro for the common declare-in-scope case.
class Span {
 public:
  /// Opens a span named `name` (must outlive the span: use a string
  /// literal). Records only when traceLevel() >= level at both ends.
  explicit Span(const char* name, TraceLevel level = TraceLevel::kCoarse);
  /// Same, with a free-form annotation exported as args.detail. The
  /// detail string is copied even when tracing is off - use only on
  /// coarse-frequency paths.
  Span(const char* name, std::string detail,
       TraceLevel level = TraceLevel::kCoarse);
  /// Closes and (when active) records the span.
  ~Span();

  Span(const Span&) = delete;             ///< non-copyable
  Span& operator=(const Span&) = delete;  ///< non-copyable

 private:
  const char* name_;
  std::string detail_;
  TraceLevel level_;
  std::int64_t start_ns_ = -1;  // -1: not recording
};

}  // namespace nanoleak::obs

/// @cond OBS_MACRO_INTERNALS
#define NANOLEAK_OBS_CONCAT_INNER(a, b) a##b
#define NANOLEAK_OBS_CONCAT(a, b) NANOLEAK_OBS_CONCAT_INNER(a, b)
/// @endcond

/// Declares a scoped trace span: OBS_SPAN("phase.name"), optionally with
/// a detail annotation and/or an explicit ::nanoleak::obs::TraceLevel
/// (the arguments forward to the Span constructors).
#define OBS_SPAN(...)                                        \
  const ::nanoleak::obs::Span NANOLEAK_OBS_CONCAT(           \
      nanoleak_obs_span_, __LINE__) {                        \
    __VA_ARGS__                                              \
  }
