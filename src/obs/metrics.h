/// @file
/// Process-wide metrics registry: named counters, gauges and fixed-bucket
/// histograms with lock-free thread-local recording.
///
/// Every increment lands in a per-thread shard (a relaxed atomic slot
/// owned by exactly one writer), so recording never contends, never
/// allocates on the hot path, and - because metrics only observe and are
/// never read back by the computation - can never perturb bit-identical
/// results or thread-count determinism. snapshot() merges the shards
/// deterministically: uint64 sums are associative-commutative, so the
/// merged totals are independent of shard registration order and thread
/// scheduling (given the usual caveat that in-flight increments on
/// still-running threads may not be visible until a synchronizing join).
///
/// Usage: resolve a handle once (function-local static) and record
/// through it:
///
///     static const obs::Counter solves = obs::counter("solver.solves");
///     solves.increment();
///
/// The registry is created on first use and intentionally never
/// destroyed, so recording from thread_local destructors and
/// static-teardown paths stays safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nanoleak::obs {

/// Monotone event counter handle. Copyable value type; all copies of one
/// name record into the same metric.
class Counter {
 public:
  /// Adds `n` to this thread's shard of the counter.
  void add(std::uint64_t n = 1) const;
  /// add(1), the common case.
  void increment() const { add(1); }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::size_t slot) : slot_(slot) {}
  std::size_t slot_;
};

/// Last-write-wins instantaneous value (thread counts, cache sizes).
/// Unlike counters, gauges are a single process-wide slot: set() stores,
/// snapshot() reads the latest value.
class Gauge {
 public:
  /// Stores `value` as the gauge's current reading.
  void set(double value) const;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::size_t index) : index_(index) {}
  std::size_t index_;
};

/// Fixed-bucket histogram handle: bucket i counts observations with
/// value <= bounds[i] (first matching bucket); one extra overflow bucket
/// counts the rest. Buckets are plain counter slots, so recording and
/// merging inherit the counter guarantees.
class Histogram {
 public:
  /// Counts `value` into its bucket on this thread's shard.
  void observe(double value) const;

 private:
  friend Histogram histogram(std::string_view name,
                             const std::vector<double>& upper_bounds);
  Histogram(std::size_t first_slot, const std::vector<double>* bounds)
      : first_slot_(first_slot), bounds_(bounds) {}
  std::size_t first_slot_;
  const std::vector<double>* bounds_;  // owned by the (leaked) registry
};

/// Registers (or finds) the counter `name`. Throws nanoleak::Error when
/// the name is already registered as a different metric kind.
Counter counter(std::string_view name);

/// Registers (or finds) the gauge `name`. Throws nanoleak::Error on a
/// kind mismatch.
Gauge gauge(std::string_view name);

/// Registers (or finds) the histogram `name` with the given ascending
/// bucket upper bounds (an overflow bucket is added implicitly). Throws
/// nanoleak::Error on a kind mismatch, on re-registration with different
/// bounds, or when `upper_bounds` is empty or not strictly ascending.
Histogram histogram(std::string_view name,
                    const std::vector<double>& upper_bounds);

/// Point-in-time view of every registered metric, shards merged.
struct Snapshot {
  /// Merged bucket counts of one histogram.
  struct Hist {
    /// Ascending bucket upper bounds (as registered).
    std::vector<double> bounds;
    /// Per-bucket counts; size bounds.size() + 1 (last = overflow).
    std::vector<std::uint64_t> buckets;

    /// Total observations across all buckets.
    std::uint64_t count() const;
  };

  std::map<std::string, std::uint64_t> counters;  ///< name -> merged total
  std::map<std::string, double> gauges;           ///< name -> last value
  std::map<std::string, Hist> histograms;         ///< name -> buckets

  /// Value of one counter, or 0 when absent.
  std::uint64_t counterValue(const std::string& name) const;

  /// Difference vs an earlier snapshot: counters and histogram buckets
  /// subtract (clamped at 0, so a reset between the two snapshots never
  /// wraps); gauges keep this snapshot's instantaneous value. Metrics
  /// registered only in this snapshot appear with their full value.
  Snapshot deltaSince(const Snapshot& earlier) const;

  /// Canonical JSON object: keys sorted (std::map order), counters as
  /// integers, gauges as %.17g doubles, histograms as
  /// {"bounds": [...], "buckets": [...]}. Byte-reproducible for equal
  /// values. `indent` spaces prefix every emitted line.
  std::string toJson(int indent = 0) const;
};

/// Merged view of all metrics at this instant.
Snapshot snapshot();

/// Sum of one counter across all shards (cheaper than a full snapshot).
/// 0 when the name is not a registered counter.
std::uint64_t counterValue(std::string_view name);

/// Zeroes every counter, gauge and histogram bucket (registrations are
/// kept). Intended for test isolation; concurrent recording during the
/// reset may survive it, so quiesce worker threads first.
void resetMetrics();

}  // namespace nanoleak::obs
