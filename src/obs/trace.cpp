#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "util/json.h"

namespace nanoleak::obs {

namespace {

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Session state shared by all threads. The span fast path reads only
/// g_level (one relaxed load when tracing is off).
std::atomic<int> g_level{0};
std::atomic<std::uint64_t> g_session{0};
std::atomic<std::int64_t> g_origin_ns{0};

struct RawEvent {
  const char* name;
  std::string detail;
  std::int64_t t0_ns;
  std::int64_t t1_ns;
};

/// Per-thread event buffer. The owning thread appends under `mutex`
/// (uncontended in steady state); collectors lock the same mutex to
/// read, so no access races growth.
struct Buffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::uint64_t session = 0;
  std::vector<RawEvent> events;
};

/// Events of a thread that exited mid-session, moved out of its buffer.
struct RetiredEvents {
  std::uint32_t tid = 0;
  std::uint64_t session = 0;
  std::vector<RawEvent> events;
};

class Collector {
 public:
  static Collector& instance() {
    // Leaked on purpose (see metrics.cpp): thread_local buffer
    // destructors may run after static teardown.
    static Collector* const collector = new Collector();
    return *collector;
  }

  /// Appends one event to the calling thread's buffer, lazily clearing
  /// it when a new session started since it last recorded.
  void record(RawEvent event) {
    Buffer& buffer = localBuffer();
    const std::uint64_t session = g_session.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.session != session) {
      buffer.events.clear();
      buffer.session = session;
    }
    buffer.events.push_back(std::move(event));
  }

  void startSession() {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_.clear();
    g_session.fetch_add(1, std::memory_order_relaxed);
    g_origin_ns.store(nowNs(), std::memory_order_relaxed);
  }

  std::vector<TraceEvent> collect() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t session = g_session.load(std::memory_order_relaxed);
    const std::int64_t origin = g_origin_ns.load(std::memory_order_relaxed);
    std::vector<TraceEvent> out;
    const auto append = [&](std::uint32_t tid, std::uint64_t buf_session,
                            const std::vector<RawEvent>& events) {
      if (buf_session != session) {
        return;
      }
      for (const RawEvent& raw : events) {
        TraceEvent event;
        event.name = raw.name;
        event.detail = raw.detail;
        event.tid = tid;
        event.ts_us = static_cast<double>(raw.t0_ns - origin) / 1000.0;
        event.dur_us = static_cast<double>(raw.t1_ns - raw.t0_ns) / 1000.0;
        out.push_back(std::move(event));
      }
    };
    for (Buffer* buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      append(buffer->tid, buffer->session, buffer->events);
    }
    for (const RetiredEvents& retired : retired_) {
      append(retired.tid, retired.session, retired.events);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.tid != b.tid) return a.tid < b.tid;
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                return a.dur_us > b.dur_us;  // parents before children
              });
    return out;
  }

 private:
  Collector() = default;

  struct BufferHandle {
    BufferHandle() {
      Collector& collector = Collector::instance();
      std::lock_guard<std::mutex> lock(collector.mutex_);
      buffer.tid = collector.next_tid_++;
      collector.buffers_.push_back(&buffer);
    }
    ~BufferHandle() {
      Collector& collector = Collector::instance();
      std::lock_guard<std::mutex> lock(collector.mutex_);
      if (!buffer.events.empty()) {
        collector.retired_.push_back(
            {buffer.tid, buffer.session, std::move(buffer.events)});
      }
      collector.buffers_.erase(std::find(collector.buffers_.begin(),
                                         collector.buffers_.end(), &buffer));
    }
    Buffer buffer;
  };

  Buffer& localBuffer() {
    thread_local BufferHandle handle;
    return handle.buffer;
  }

  /// Collector mutex orders before any Buffer::mutex; registration,
  /// retirement and collection all serialize here.
  std::mutex mutex_;
  std::vector<Buffer*> buffers_;
  std::vector<RetiredEvents> retired_;
  std::uint32_t next_tid_ = 1;
};

std::string formatMicros(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

}  // namespace

void enableTracing(TraceLevel level) {
  Collector::instance().startSession();
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void disableTracing() {
  g_level.store(0, std::memory_order_relaxed);
}

TraceLevel traceLevel() {
  return static_cast<TraceLevel>(g_level.load(std::memory_order_relaxed));
}

std::vector<TraceEvent> collectTraceEvents() {
  return Collector::instance().collect();
}

std::string chromeTraceJson() {
  const std::vector<TraceEvent> events = collectTraceEvents();
  std::string out;
  out += "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"format\": \"nanoleak-trace-v1\"},\n";
  out += "  \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + util::escapeJson(event.name) +
           "\", \"cat\": \"nanoleak\", \"ph\": \"X\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(event.tid) + ", \"ts\": " +
           formatMicros(event.ts_us) + ", \"dur\": " +
           formatMicros(event.dur_us);
    if (!event.detail.empty()) {
      out += ", \"args\": {\"detail\": \"" + util::escapeJson(event.detail) +
             "\"}";
    }
    out += "}";
  }
  out += events.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Span::Span(const char* name, TraceLevel level)
    : name_(name), level_(level) {
  if (traceLevel() >= level_) {
    start_ns_ = nowNs();
  }
}

Span::Span(const char* name, std::string detail, TraceLevel level)
    : name_(name), detail_(std::move(detail)), level_(level) {
  if (traceLevel() >= level_) {
    start_ns_ = nowNs();
  }
}

Span::~Span() {
  if (start_ns_ < 0 || traceLevel() < level_) {
    return;
  }
  const std::int64_t end_ns = nowNs();
  Collector::instance().record(
      {name_, std::move(detail_), start_ns_, end_ns});
}

}  // namespace nanoleak::obs
