#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/error.h"

namespace nanoleak::obs {

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/histogram: first uint64 slot. Gauge: index into gauges.
  std::size_t slot = 0;
  /// Number of uint64 slots (1 for counters, buckets+1 for histograms).
  std::size_t slot_count = 1;
  /// Histogram bucket upper bounds; stable address for handles.
  std::unique_ptr<std::vector<double>> bounds;
};

/// Per-thread slot array. Only the owning thread writes (relaxed
/// store of load+n, no RMW contention); snapshot readers do relaxed
/// loads. A deque so growth never relocates existing atomics.
struct Shard {
  std::deque<std::atomic<std::uint64_t>> slots;
};

class Registry {
 public:
  static Registry& instance() {
    // Leaked on purpose: shards unregister from thread_local destructors
    // that may run after static teardown would have destroyed this.
    static Registry* const registry = new Registry();
    return *registry;
  }

  std::size_t registerMetric(std::string_view name, Kind kind,
                             const std::vector<double>* bounds,
                             const std::vector<double>** stable_bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      MetricInfo& info = metrics_[it->second];
      require(info.kind == kind,
              "obs: metric '" + info.name +
                  "' re-registered as a different kind");
      if (kind == Kind::kHistogram) {
        require(*info.bounds == *bounds,
                "obs: histogram '" + info.name +
                    "' re-registered with different bounds");
        *stable_bounds = info.bounds.get();
      }
      return info.slot;
    }
    MetricInfo info;
    info.name = std::string(name);
    info.kind = kind;
    if (kind == Kind::kGauge) {
      info.slot = gauges_.size();
      gauges_.emplace_back();
      gauges_.back().store(0.0, std::memory_order_relaxed);
    } else {
      info.slot = slot_count_;
      info.slot_count = 1;
      if (kind == Kind::kHistogram) {
        info.bounds = std::make_unique<std::vector<double>>(*bounds);
        info.slot_count = bounds->size() + 1;
        *stable_bounds = info.bounds.get();
      }
      slot_count_ += info.slot_count;
    }
    by_name_.emplace(info.name, metrics_.size());
    metrics_.push_back(std::move(info));
    return metrics_.back().slot;
  }

  /// The calling thread's shard, grown (under the lock) to cover `slot`.
  std::atomic<std::uint64_t>& slotFor(std::size_t slot) {
    Shard& shard = localShard();
    if (slot >= shard.slots.size()) {
      std::lock_guard<std::mutex> lock(mutex_);
      while (shard.slots.size() <= slot) {
        shard.slots.emplace_back();
      }
    }
    return shard.slots[slot];
  }

  void setGauge(std::size_t index, double value) {
    // Gauge slots are append-only and never relocate (deque), so the
    // index from registration stays valid without the lock.
    gauges_[index].store(value, std::memory_order_relaxed);
  }

  Snapshot snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const MetricInfo& info : metrics_) {
      switch (info.kind) {
        case Kind::kCounter:
          snap.counters.emplace(info.name, sumSlotLocked(info.slot));
          break;
        case Kind::kGauge:
          snap.gauges.emplace(
              info.name, gauges_[info.slot].load(std::memory_order_relaxed));
          break;
        case Kind::kHistogram: {
          Snapshot::Hist hist;
          hist.bounds = *info.bounds;
          hist.buckets.resize(info.slot_count);
          for (std::size_t b = 0; b < info.slot_count; ++b) {
            hist.buckets[b] = sumSlotLocked(info.slot + b);
          }
          snap.histograms.emplace(info.name, std::move(hist));
          break;
        }
      }
    }
    return snap;
  }

  std::uint64_t counterValue(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_name_.find(std::string(name));
    if (it == by_name_.end() ||
        metrics_[it->second].kind != Kind::kCounter) {
      return 0;
    }
    return sumSlotLocked(metrics_[it->second].slot);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard* shard : shards_) {
      for (std::atomic<std::uint64_t>& slot : shard->slots) {
        slot.store(0, std::memory_order_relaxed);
      }
    }
    std::fill(retired_.begin(), retired_.end(), 0);
    for (std::atomic<double>& gauge : gauges_) {
      gauge.store(0.0, std::memory_order_relaxed);
    }
  }

 private:
  Registry() = default;

  /// RAII registration of the calling thread's shard; merges its totals
  /// into `retired_` at thread exit so counts survive thread death.
  struct ShardHandle {
    ShardHandle() {
      Registry& registry = Registry::instance();
      std::lock_guard<std::mutex> lock(registry.mutex_);
      registry.shards_.push_back(&shard);
    }
    ~ShardHandle() {
      Registry& registry = Registry::instance();
      std::lock_guard<std::mutex> lock(registry.mutex_);
      if (registry.retired_.size() < shard.slots.size()) {
        registry.retired_.resize(shard.slots.size(), 0);
      }
      for (std::size_t i = 0; i < shard.slots.size(); ++i) {
        registry.retired_[i] +=
            shard.slots[i].load(std::memory_order_relaxed);
      }
      registry.shards_.erase(std::find(registry.shards_.begin(),
                                       registry.shards_.end(), &shard));
    }
    Shard shard;
  };

  static Shard& localShard() {
    thread_local ShardHandle handle;
    return handle.shard;
  }

  std::uint64_t sumSlotLocked(std::size_t slot) const {
    std::uint64_t total = slot < retired_.size() ? retired_[slot] : 0;
    for (const Shard* shard : shards_) {
      if (slot < shard->slots.size()) {
        total += shard->slots[slot].load(std::memory_order_relaxed);
      }
    }
    return total;
  }

  std::mutex mutex_;
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::size_t slot_count_ = 0;
  std::vector<Shard*> shards_;
  std::vector<std::uint64_t> retired_;
  std::deque<std::atomic<double>> gauges_;
};

std::string formatJsonDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

void Counter::add(std::uint64_t n) const {
  std::atomic<std::uint64_t>& slot = Registry::instance().slotFor(slot_);
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void Gauge::set(double value) const {
  Registry::instance().setGauge(index_, value);
}

void Histogram::observe(double value) const {
  const auto it =
      std::lower_bound(bounds_->begin(), bounds_->end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_->begin());
  std::atomic<std::uint64_t>& slot =
      Registry::instance().slotFor(first_slot_ + bucket);
  slot.store(slot.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(Registry::instance().registerMetric(name, Kind::kCounter,
                                                     nullptr, nullptr));
}

Gauge gauge(std::string_view name) {
  return Gauge(Registry::instance().registerMetric(name, Kind::kGauge,
                                                   nullptr, nullptr));
}

Histogram histogram(std::string_view name,
                    const std::vector<double>& upper_bounds) {
  require(!upper_bounds.empty(), "obs: histogram needs at least one bound");
  require(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
              std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                  upper_bounds.end(),
          "obs: histogram bounds must be strictly ascending");
  const std::vector<double>* stable = nullptr;
  const std::size_t slot = Registry::instance().registerMetric(
      name, Kind::kHistogram, &upper_bounds, &stable);
  return Histogram(slot, stable);
}

std::uint64_t Snapshot::Hist::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t bucket : buckets) {
    total += bucket;
  }
  return total;
}

std::uint64_t Snapshot::counterValue(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Snapshot Snapshot::deltaSince(const Snapshot& earlier) const {
  Snapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  for (auto& [name, hist] : delta.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      continue;
    }
    for (std::size_t b = 0;
         b < hist.buckets.size() && b < it->second.buckets.size(); ++b) {
      const std::uint64_t before = it->second.buckets[b];
      hist.buckets[b] =
          hist.buckets[b] >= before ? hist.buckets[b] - before : 0;
    }
  }
  return delta;
}

std::string Snapshot::toJson(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(0, indent)), ' ');
  std::string out;
  out += pad + "{\n";
  out += pad + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += pad + "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += counters.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += pad + "    \"" + name + "\": " + formatJsonDouble(value);
    first = false;
  }
  out += gauges.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    out += pad + "    \"" + name + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      out += (b == 0 ? "" : ", ") + formatJsonDouble(hist.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      out += (b == 0 ? "" : ", ") + std::to_string(hist.buckets[b]);
    }
    out += "]}";
    first = false;
  }
  out += histograms.empty() ? "}\n" : "\n" + pad + "  }\n";
  out += pad + "}";
  return out;
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

std::uint64_t counterValue(std::string_view name) {
  return Registry::instance().counterValue(name);
}

void resetMetrics() { Registry::instance().reset(); }

}  // namespace nanoleak::obs
