#include "thermal/thermal_characterizer.h"

#include <array>
#include <span>
#include <utility>

#include "core/loading_fixture.h"
#include "gates/gate_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace nanoleak::thermal {

std::vector<double> ThermalGrid::temperatures() const {
  require(points >= 1, "ThermalGrid: points must be >= 1");
  require(points == 1 ? t_max_k >= t_min_k : t_max_k > t_min_k,
          "ThermalGrid: t_max_k must exceed t_min_k");
  std::vector<double> out;
  out.reserve(points);
  if (points == 1) {
    out.push_back(t_min_k);
    return out;
  }
  const double span = t_max_k - t_min_k;
  for (std::size_t i = 0; i + 1 < points; ++i) {
    out.push_back(t_min_k + span * static_cast<double>(i) /
                                static_cast<double>(points - 1));
  }
  out.push_back(t_max_k);  // exact, never (t_min + span * (n-1)/(n-1))
  return out;
}

ThermalCharacterizer::ThermalCharacterizer(
    device::Technology base, core::CharacterizationOptions options,
    Mode mode)
    : base_(std::move(base)), options_(std::move(options)), mode_(mode) {
  require(!options_.loading_grid.empty() && options_.loading_grid[0] == 0.0,
          "ThermalCharacterizer: loading grid must start at 0");
  for (std::size_t i = 1; i < options_.loading_grid.size(); ++i) {
    require(options_.loading_grid[i] > options_.loading_grid[i - 1],
            "ThermalCharacterizer: loading grid must be increasing");
  }
}

device::Technology technologyAtTemperature(const device::Technology& base,
                                           double temperature_k) {
  device::Technology tech = base;
  tech.temperature_k = temperature_k;
  return tech;
}

device::Technology ThermalCharacterizer::technologyAt(
    double temperature_k) const {
  return technologyAtTemperature(base_, temperature_k);
}

std::vector<std::vector<core::VectorTable>>
ThermalCharacterizer::characterizeKind(
    gates::GateKind kind, const std::vector<double>& temperatures) const {
  require(!temperatures.empty(),
          "ThermalCharacterizer: need at least one temperature");
  for (std::size_t i = 1; i < temperatures.size(); ++i) {
    require(temperatures[i] > temperatures[i - 1],
            "ThermalCharacterizer: temperatures must be increasing");
  }

  OBS_SPAN("thermal.char_kind", std::string(gates::toString(kind)));
  static const obs::Counter fixture_rebinds =
      obs::counter("thermal.fixture_rebinds");
  static const obs::Counter warm_in_scan =
      obs::counter("thermal.warm_in_scan");
  static const obs::Counter warm_bridge =
      obs::counter("thermal.warm_bridge");
  static const obs::Counter cold_starts =
      obs::counter("thermal.cold_starts");

  const int pins = gates::inputCount(kind);
  const std::size_t vector_count = std::size_t{1}
                                   << static_cast<std::size_t>(pins);
  const std::vector<double>& grid = options_.loading_grid;
  const std::size_t n = grid.size();

  std::vector<std::vector<core::VectorTable>> tables(
      temperatures.size());
  for (auto& per_t : tables) {
    per_t.reserve(vector_count);
  }

  for (std::size_t vec = 0; vec < vector_count; ++vec) {
    std::vector<bool> input_vector(static_cast<std::size_t>(pins));
    for (int k = 0; k < pins; ++k) {
      input_vector[static_cast<std::size_t>(k)] =
          ((vec >> static_cast<std::size_t>(k)) & 1) != 0;
    }
    std::array<bool, 8> vals{};
    for (int k = 0; k < pins; ++k) {
      vals[static_cast<std::size_t>(k)] =
          input_vector[static_cast<std::size_t>(k)];
    }
    const bool out_level = gates::evaluateGate(
        kind,
        std::span<const bool>(vals.data(), static_cast<std::size_t>(pins)));

    // ONE fixture (and one compiled kernel) for this (kind, vector),
    // re-bound per temperature - the whole point of the thermal path.
    core::LoadingFixture fixture(kind, input_vector,
                                 technologyAt(temperatures[0]));

    if (mode_ == Mode::kBatched) {
      // Lane-parallel temperatures: partition the grid into lane-width
      // groups and solve one group's temperatures per lockstep batch,
      // one temperature per lane. No rebindTemperature - the batch
      // kernel compiles per-lane coefficients from each point's
      // temperature_k. Each lane chains its own in-temperature
      // continuation (j-neighbour, then row start at (i-1, 0)); only
      // (0, 0) starts cold.
      constexpr std::size_t kLanes = core::LoadingFixture::kBatchLanes;
      std::vector<double> pin_amps(static_cast<std::size_t>(pins));
      for (std::size_t t0 = 0; t0 < temperatures.size(); t0 += kLanes) {
        const std::size_t lanes =
            std::min(kLanes, temperatures.size() - t0);
        std::vector<core::VectorTable> group(lanes);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          core::VectorTable& table = group[lane];
          table.isolated_nominal = gates::isolatedGateLeakage(
              kind,
              std::span<const bool>(vals.data(),
                                    static_cast<std::size_t>(pins)),
              technologyAt(temperatures[t0 + lane]));
          table.il_axis = core::Axis(grid);
          table.ol_axis = core::Axis(grid);
          table.subthreshold = core::Grid2D(n, n);
          table.gate = core::Grid2D(n, n);
          table.btbt = core::Grid2D(n, n);
          if (options_.store_pin_current_grids) {
            table.pin_current_grid.assign(static_cast<std::size_t>(pins),
                                          core::Grid2D(n, n));
          }
        }
        std::vector<std::vector<double>> prev(lanes);
        std::vector<std::vector<double>> row_start(lanes);
        for (std::size_t i = 0; i < n; ++i) {
          const double share = grid[i] / pins;
          for (int k = 0; k < pins; ++k) {
            const bool level = input_vector[static_cast<std::size_t>(k)];
            pin_amps[static_cast<std::size_t>(k)] = level ? -share : share;
          }
          for (std::size_t j = 0; j < n; ++j) {
            std::vector<core::FixtureBatchPoint> points(lanes);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              points[lane].pin_loading = pin_amps;
              points[lane].output_loading =
                  out_level ? -grid[j] : grid[j];
              points[lane].temperature_k = temperatures[t0 + lane];
              const std::vector<double>* warm =
                  j > 0 ? &prev[lane] : (i > 0 ? &row_start[lane] : nullptr);
              if (warm != nullptr) {
                points[lane].warm_seed = warm;
                warm_in_scan.increment();
              } else {
                cold_starts.increment();
              }
              points[lane].label =
                  "T=" + std::to_string(temperatures[t0 + lane]) +
                  "K, grid point (" + std::to_string(i) + "," +
                  std::to_string(j) + ")";
            }
            std::vector<core::FixtureResult> results =
                fixture.solveBatched(points);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              core::VectorTable& table = group[lane];
              const core::FixtureResult& result = results[lane];
              table.subthreshold.at(i, j) = result.leakage.subthreshold;
              table.gate.at(i, j) = result.leakage.gate;
              table.btbt.at(i, j) = result.leakage.btbt;
              if (i == 0 && j == 0) {
                table.nominal = result.leakage;
                table.pin_current = result.pin_currents_into_net;
              }
              if (options_.store_pin_current_grids) {
                for (int k = 0; k < pins; ++k) {
                  table.pin_current_grid[static_cast<std::size_t>(k)].at(
                      i, j) = result.pin_currents_into_net
                                  [static_cast<std::size_t>(k)];
                }
              }
              prev[lane] = std::move(results[lane].voltages);
              if (j == 0) {
                row_start[lane] = prev[lane];
              }
            }
          }
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          tables[t0 + lane].push_back(std::move(group[lane]));
        }
      }
      continue;
    }

    // Operating points of the row-start grid points (i, 0) at the
    // previous temperature - the cross-temperature continuation seeds.
    std::vector<std::vector<double>> prev_t(n);
    std::vector<std::vector<double>> cur_t(n);

    for (std::size_t t = 0; t < temperatures.size(); ++t) {
      if (t > 0) {
        fixture.rebindTemperature(temperatures[t]);
        fixture_rebinds.increment();
      }
      const device::Technology tech_t = technologyAt(temperatures[t]);

      core::VectorTable table;
      table.isolated_nominal = gates::isolatedGateLeakage(
          kind,
          std::span<const bool>(vals.data(),
                                static_cast<std::size_t>(pins)),
          tech_t);
      table.il_axis = core::Axis(grid);
      table.ol_axis = core::Axis(grid);
      table.subthreshold = core::Grid2D(n, n);
      table.gate = core::Grid2D(n, n);
      table.btbt = core::Grid2D(n, n);
      if (options_.store_pin_current_grids) {
        table.pin_current_grid.assign(static_cast<std::size_t>(pins),
                                      core::Grid2D(n, n));
      }

      // In-temperature continuation state: `prev` is the solution of the
      // previous loading point in scan order, `row_start` the solution at
      // (i-1, 0).
      std::vector<double> prev;
      std::vector<double> row_start;

      // The scan below (pin-share split, per-level signs, table
      // assembly, in-temperature continuation) mirrors
      // core::Characterizer::characterizeKind line for line - the
      // Mode::kCold bit-identity contract depends on the two staying in
      // lockstep, pinned by ColdModeBitIdenticalToFreshPerTemperature
      // and the bench_thermal CI gate.
      for (std::size_t i = 0; i < n; ++i) {
        const double share = grid[i] / pins;
        for (int k = 0; k < pins; ++k) {
          const bool level = input_vector[static_cast<std::size_t>(k)];
          fixture.setPinLoading(k, level ? -share : share);
        }
        for (std::size_t j = 0; j < n; ++j) {
          fixture.setOutputLoading(out_level ? -grid[j] : grid[j]);
          // Warm-seed policy: chain along the loading scan within a
          // temperature (the PR 4 continuation), and bridge ACROSS
          // temperatures exactly where that chain has no in-temperature
          // neighbour - each row start (i, 0) seeds from the SAME grid
          // point's operating point at the adjacent temperature, so no
          // solve after the very first (0, 0, t_min) ever starts cold.
          // Measured on the bench_thermal workload this hybrid beats
          // both pure in-T chaining (row starts stay warm across the T
          // re-bind) and pure T-continuation (interior points prefer the
          // exact-temperature neighbour).
          const std::vector<double>* warm = nullptr;
          if (mode_ == Mode::kWarmStart) {
            if (j > 0) {
              warm = &prev;
              warm_in_scan.increment();
            } else if (t > 0) {
              warm = &prev_t[i];
              warm_bridge.increment();
            } else if (i > 0) {
              warm = &row_start;
              warm_in_scan.increment();
            }
          }
          if (warm == nullptr) {
            cold_starts.increment();
          }
          core::FixtureResult result = fixture.solveCompiled(warm);
          table.subthreshold.at(i, j) = result.leakage.subthreshold;
          table.gate.at(i, j) = result.leakage.gate;
          table.btbt.at(i, j) = result.leakage.btbt;
          if (i == 0 && j == 0) {
            table.nominal = result.leakage;
            table.pin_current = result.pin_currents_into_net;
          }
          if (options_.store_pin_current_grids) {
            for (int k = 0; k < pins; ++k) {
              table.pin_current_grid[static_cast<std::size_t>(k)].at(i, j) =
                  result.pin_currents_into_net[static_cast<std::size_t>(k)];
            }
          }
          if (mode_ == Mode::kWarmStart) {
            prev = std::move(result.voltages);
            if (j == 0) {
              row_start = prev;
              cur_t[i] = prev;
            }
          }
        }
      }
      tables[t].push_back(std::move(table));
      std::swap(prev_t, cur_t);
    }
  }
  return tables;
}

core::LeakageLibrary::Meta libraryMetaAt(const device::Technology& base,
                                         double temperature_k) {
  core::LeakageLibrary::Meta meta;
  meta.technology_name = base.nmos.name + "/" + base.pmos.name;
  meta.vdd = base.vdd;
  meta.temperature_k = temperature_k;
  return meta;
}

ThermalLibrarySet ThermalCharacterizer::characterize(
    const std::vector<gates::GateKind>& kinds,
    const ThermalGrid& grid) const {
  ThermalLibrarySet set;
  set.temperatures = grid.temperatures();
  set.libraries.reserve(set.temperatures.size());
  for (double temperature_k : set.temperatures) {
    set.libraries.emplace_back(libraryMetaAt(base_, temperature_k));
  }
  for (gates::GateKind kind : kinds) {
    std::vector<std::vector<core::VectorTable>> per_t =
        characterizeKind(kind, set.temperatures);
    for (std::size_t t = 0; t < per_t.size(); ++t) {
      set.libraries[t].insert(kind, std::move(per_t[t]));
    }
  }
  return set;
}

}  // namespace nanoleak::thermal
