/// @file
/// Leakage-vs-temperature model fitting.
///
/// Sultan et al. ("Is Leakage Power a Linear Function of Temperature?")
/// show that circuit leakage over realistic operating ranges is
/// super-linear in T and that the quality of a linear approximation is
/// strongly range-dependent. This module quantifies exactly that for the
/// curves the thermal sweep engine produces: it fits a linear, an
/// exponential, and a two-segment piecewise-linear model to each leakage
/// component and reports the per-model relative error, so callers (and the
/// golden files) can see which model a component follows over which range.
///
/// All fits are deterministic pure functions of their inputs: fixed-order
/// summation, no RNG, no tolerance-dependent iteration - the same samples
/// always produce bit-identical fit parameters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nanoleak::thermal {

/// Relative-error summary of one fitted model against its samples.
struct FitError {
  /// max_i |model(t_i) - y_i| / max(|y_i|, tiny).
  double max_rel = 0.0;
  /// Root-mean-square of the per-sample relative errors.
  double rms_rel = 0.0;
};

/// Least-squares line y ~ offset + slope * t.
struct LinearFit {
  /// Intercept at t = 0 [y-units].
  double offset = 0.0;
  /// Slope [y-units per kelvin].
  double slope = 0.0;
  /// Error of this fit against its samples.
  FitError error;

  /// Model value at temperature `t`.
  double at(double t) const { return offset + slope * t; }
};

/// Exponential model y ~ scale * exp(rate * t), fitted by least squares in
/// log space (errors are still reported in linear space).
struct ExponentialFit {
  /// Prefactor [y-units].
  double scale = 0.0;
  /// Exponential sensitivity [1/K]; leakage doubles every ln(2)/rate
  /// kelvin.
  double rate = 0.0;
  /// False when the samples are not all strictly positive (log-space
  /// fitting undefined); the fit then degenerates to scale = 0, rate = 0
  /// and the error fields compare against that zero model.
  bool valid = false;
  /// Error of this fit against its samples (linear space).
  FitError error;

  /// Model value at temperature `t`.
  double at(double t) const;
};

/// Two least-squares segments sharing the sample at the break temperature,
/// with the break chosen (by exhaustive scan, first minimum wins) to
/// minimize the combined RMS relative error.
struct PiecewiseLinearFit {
  /// Break temperature [K]; always one of the sample temperatures.
  double break_t = 0.0;
  /// Segment over samples at t <= break_t.
  LinearFit low;
  /// Segment over samples at t >= break_t.
  LinearFit high;
  /// Combined error of the two segments against all samples.
  FitError error;

  /// Model value at temperature `t` (low segment up to the break).
  double at(double t) const;
};

/// All three models fitted to one (temperature, value) sample set.
struct ModelComparison {
  /// The straight-line fit.
  LinearFit linear;
  /// The exponential fit.
  ExponentialFit exponential;
  /// The two-segment fit.
  PiecewiseLinearFit piecewise;

  /// "linear", "exponential" or "piecewise" by smallest max relative
  /// error. A more complex model must beat the incumbent by at least 5%
  /// relative to displace it, so float-level noise between near-exact
  /// fits never demotes the simplest adequate model.
  std::string bestModel() const;
};

/// Least-squares line through (t, y) samples. Requires at least two
/// samples with distinct temperatures. Throws nanoleak::Error otherwise.
LinearFit fitLinear(const std::vector<double>& t,
                    const std::vector<double>& y);

/// Log-space least-squares exponential through (t, y) samples. Requires
/// the same shape as fitLinear; returns valid = false (zero model) when
/// any sample is <= 0.
ExponentialFit fitExponential(const std::vector<double>& t,
                              const std::vector<double>& y);

/// Best two-segment piecewise-linear fit. Requires at least four samples
/// (two per segment). Throws nanoleak::Error otherwise.
PiecewiseLinearFit fitPiecewiseLinear(const std::vector<double>& t,
                                      const std::vector<double>& y);

/// Runs all three fits on one sample set (piecewise degrades to the
/// linear fit repeated on both segments when fewer than four samples).
ModelComparison compareModels(const std::vector<double>& t,
                              const std::vector<double>& y);

}  // namespace nanoleak::thermal
