/// @file
/// Thermal sweep engine: leakage-vs-temperature curves for whole circuits,
/// with per-component model fitting.
///
/// For one (circuit, technology flavour, input-vector set) the engine
///  1. characterizes the circuit's gate kinds over the temperature grid
///     through ThermalCharacterizer (fixtures compiled once, coefficients
///     re-bound per temperature, solves continuation-seeded from the
///     adjacent temperature),
///  2. seeds the BatchRunner's TableCache with the per-temperature
///     libraries under provenance-tagged per-temperature keys (the key
///     fingerprints temperature, so each grid point is its own corner;
///     the tag keeps continuation-produced tables from ever answering a
///     plain Characterizer lookup), and reuses those entries on repeated
///     sweeps at the same corners instead of re-characterizing,
///  3. builds an EstimationPlan per temperature and estimates every input
///     pattern through BatchRunner::runPatterns (bit-identical at any
///     thread count),
///  4. reduces each temperature to the mean leakage decomposition and fits
///     linear / exponential / piecewise-linear models per component
///     (thermal_fit.h), reporting the fit error a la Sultan et al.
///
/// Determinism: a ThermalCurve is a pure function of (netlist, patterns,
/// options); characterization is sequential per fixture, estimation rides
/// the bit-identical runPatterns contract, and all reductions and fits sum
/// in fixed order - thread count never changes a bit (pinned by
/// tests/thermal/thermal_sweep_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "engine/batch_runner.h"
#include "logic/logic_netlist.h"
#include "thermal/thermal_characterizer.h"
#include "thermal/thermal_fit.h"

namespace nanoleak::thermal {

/// Configuration of one thermal sweep.
struct ThermalSweepOptions {
  /// Temperature grid to sweep.
  ThermalGrid grid;
  /// Solve seeding (kWarmStart for production; kCold is the bitwise
  /// equivalence reference the bench gates against).
  ThermalCharacterizer::Mode mode = ThermalCharacterizer::Mode::kWarmStart;
  /// false = the paper's traditional no-loading accumulation.
  bool with_loading = true;
  /// Loading grid / pin-current-surface options forwarded to
  /// characterization (kinds and solver_path are ignored; the thermal
  /// path chooses its own).
  core::CharacterizationOptions characterization;
  /// Seed the runner's TableCache with the per-temperature libraries
  /// (under a thermal provenance tag) so repeated sweeps at the same
  /// corners reuse them instead of re-characterizing.
  bool seed_cache = true;
};

/// Mean leakage decomposition of the circuit at one grid temperature.
struct ThermalPoint {
  /// Grid temperature [K].
  double temperature_k = 0.0;
  /// Mean decomposition over the input patterns [A].
  device::LeakageBreakdown mean;
  /// Smallest per-pattern total [A].
  double total_min = 0.0;
  /// Largest per-pattern total [A].
  double total_max = 0.0;
};

/// A full leakage-vs-temperature curve with per-component model fits.
struct ThermalCurve {
  /// One entry per grid temperature, ascending.
  std::vector<ThermalPoint> points;
  /// Model fits of the mean subthreshold component vs temperature.
  ModelComparison subthreshold;
  /// Model fits of the mean gate-tunneling component vs temperature.
  ModelComparison gate;
  /// Model fits of the mean BTBT component vs temperature.
  ModelComparison btbt;
  /// Model fits of the mean total vs temperature.
  ModelComparison total;
  /// Gate count of the analyzed circuit.
  std::size_t gates = 0;
  /// Number of input patterns evaluated per temperature.
  std::size_t vectors = 0;

  /// The grid temperatures, in point order.
  std::vector<double> temperatures() const;
};

/// Runs thermal sweeps for one technology base (see file comment).
class ThermalSweepEngine {
 public:
  /// `base` supplies devices, VDD and widths; its temperature_k is
  /// ignored (the grid governs). Throws nanoleak::Error on a malformed
  /// grid or loading grid.
  explicit ThermalSweepEngine(device::Technology base,
                              ThermalSweepOptions options = {});

  /// Characterizes `netlist`'s gate kinds over the grid and estimates
  /// every pattern at every temperature (see file comment). The runner
  /// provides the thread pool and the table cache. Throws
  /// nanoleak::Error on pattern-width mismatches and ConvergenceError if
  /// a characterization solve fails.
  ThermalCurve run(const logic::LogicNetlist& netlist,
                   const std::vector<std::vector<bool>>& patterns,
                   engine::BatchRunner& runner) const;

  /// The per-temperature libraries for an explicit kind set - the
  /// characterization half of run(), exposed for benches and tests.
  ThermalLibrarySet characterize(
      const std::vector<gates::GateKind>& kinds) const;

  /// The configuration the engine was built with.
  const ThermalSweepOptions& options() const { return options_; }
  /// The technology base with one grid temperature applied.
  device::Technology technologyAt(double temperature_k) const;

 private:
  device::Technology base_;
  ThermalSweepOptions options_;
};

}  // namespace nanoleak::thermal
