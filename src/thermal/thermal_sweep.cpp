#include "thermal/thermal_sweep.h"

#include <ios>
#include <sstream>
#include <string>
#include <utility>

#include "core/estimation_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace nanoleak::thermal {

std::vector<double> ThermalCurve::temperatures() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const ThermalPoint& point : points) {
    out.push_back(point.temperature_k);
  }
  return out;
}

ThermalSweepEngine::ThermalSweepEngine(device::Technology base,
                                       ThermalSweepOptions options)
    : base_(std::move(base)), options_(std::move(options)) {
  // Validate eagerly so a malformed temperature or loading grid fails at
  // construction, not at the first run() deep inside a suite. The
  // throwaway characterizer runs exactly the loading-grid checks the
  // real one will.
  (void)options_.grid.temperatures();
  (void)ThermalCharacterizer(base_, options_.characterization,
                             options_.mode);
}

device::Technology ThermalSweepEngine::technologyAt(
    double temperature_k) const {
  return technologyAtTemperature(base_, temperature_k);
}

ThermalLibrarySet ThermalSweepEngine::characterize(
    const std::vector<gates::GateKind>& kinds) const {
  const ThermalCharacterizer characterizer(base_, options_.characterization,
                                           options_.mode);
  return characterizer.characterize(kinds, options_.grid);
}

ThermalCurve ThermalSweepEngine::run(
    const logic::LogicNetlist& netlist,
    const std::vector<std::vector<bool>>& patterns,
    engine::BatchRunner& runner) const {
  require(!patterns.empty(), "ThermalSweepEngine::run: no input patterns");
  OBS_SPAN("thermal.sweep");
  static const obs::Counter tables_seeded =
      obs::counter("thermal.tables_seeded");
  static const obs::Counter tables_reused =
      obs::counter("thermal.tables_reused");

  const std::vector<gates::GateKind> kinds = core::estimationKinds(netlist);
  const std::vector<double> temps = options_.grid.temperatures();

  // Thermal entries live under a provenance-tagged key: they are the
  // product of this engine's continuation policy, which no Characterizer
  // path reproduces bit-for-bit, so they must never answer an untagged
  // kindTables()/library() lookup. Under the tag, a repeated sweep at the
  // same (flavour, grid, options) corner set reuses the cached tables and
  // skips characterization entirely. Warm-start tables additionally
  // depend on the WHOLE grid (each temperature continuation-seeds from
  // its predecessor), so the grid is folded into the tag - two sweeps
  // sharing one temperature but differing elsewhere must never alias.
  // Cold tables are seed-independent; a per-temperature tag suffices.
  std::string provenance = "thermal-cold";
  if (options_.mode != ThermalCharacterizer::Mode::kCold) {
    // Warm-start tables depend on the whole continuation chain; batched
    // tables on how the grid partitions into lane groups. Both fold the
    // full grid into the tag so distinct sweeps never alias.
    std::ostringstream tag;
    tag << (options_.mode == ThermalCharacterizer::Mode::kWarmStart
                ? "thermal-warm|grid:"
                : "thermal-batched|grid:")
        << std::hexfloat;
    for (double temperature_k : temps) {
      tag << temperature_k << ',';
    }
    provenance = tag.str();
  }

  // Assemble the per-temperature libraries kind by kind, so a sweep that
  // shares only SOME kinds with earlier sweeps on this runner (e.g. a
  // bigger circuit adding one gate kind) re-characterizes only the
  // missing kinds - warm-start continuation chains are independent per
  // (kind, vector) fixture, so per-kind reuse is exact.
  ThermalLibrarySet set;
  set.temperatures = temps;
  set.libraries.reserve(temps.size());
  for (double temperature_k : temps) {
    set.libraries.emplace_back(libraryMetaAt(base_, temperature_k));
  }
  const ThermalCharacterizer characterizer(base_, options_.characterization,
                                           options_.mode);
  for (gates::GateKind kind : kinds) {
    std::vector<std::shared_ptr<const engine::TableCache::KindTables>>
        cached(temps.size());
    bool all_cached = options_.seed_cache;
    if (all_cached) {
      for (std::size_t t = 0; t < temps.size(); ++t) {
        cached[t] = runner.cache().tryGet(technologyAt(temps[t]), kind,
                                          options_.characterization,
                                          provenance);
        if (cached[t] == nullptr) {
          all_cached = false;
          break;
        }
      }
    }
    if (all_cached) {
      tables_reused.add(temps.size());
      for (std::size_t t = 0; t < temps.size(); ++t) {
        set.libraries[t].insert(kind, *cached[t]);
      }
      continue;
    }
    std::vector<std::vector<core::VectorTable>> per_t =
        characterizer.characterizeKind(kind, temps);
    for (std::size_t t = 0; t < temps.size(); ++t) {
      if (options_.seed_cache) {
        if (runner.cache().insert(technologyAt(temps[t]), kind,
                                  options_.characterization, per_t[t],
                                  provenance)) {
          tables_seeded.increment();
        }
      }
      set.libraries[t].insert(kind, std::move(per_t[t]));
    }
  }

  core::EstimatorOptions estimator_options;
  estimator_options.with_loading = options_.with_loading;

  ThermalCurve curve;
  curve.gates = netlist.gateCount();
  curve.vectors = patterns.size();
  curve.points.reserve(set.temperatures.size());

  for (std::size_t t = 0; t < set.temperatures.size(); ++t) {
    const core::EstimationPlan plan(netlist, set.libraries[t],
                                    estimator_options);
    const std::vector<core::EstimateResult> results =
        runner.runPatterns(plan, patterns);

    ThermalPoint point;
    point.temperature_k = set.temperatures[t];
    device::LeakageBreakdown sum;
    for (std::size_t i = 0; i < results.size(); ++i) {
      sum += results[i].total;
      const double total = results[i].total.total();
      if (i == 0 || total < point.total_min) point.total_min = total;
      if (i == 0 || total > point.total_max) point.total_max = total;
    }
    point.mean = sum.scaled(1.0 / static_cast<double>(results.size()));
    curve.points.push_back(point);
  }

  std::vector<double> component(temps.size());
  auto fitComponent = [&](double device::LeakageBreakdown::* member) {
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      component[i] = curve.points[i].mean.*member;
    }
    return compareModels(temps, component);
  };
  if (temps.size() >= 2) {
    curve.subthreshold =
        fitComponent(&device::LeakageBreakdown::subthreshold);
    curve.gate = fitComponent(&device::LeakageBreakdown::gate);
    curve.btbt = fitComponent(&device::LeakageBreakdown::btbt);
    std::vector<double> totals(temps.size());
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      totals[i] = curve.points[i].mean.total();
    }
    curve.total = compareModels(temps, totals);
  }
  return curve;
}

}  // namespace nanoleak::thermal
