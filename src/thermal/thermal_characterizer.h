/// @file
/// Temperature-grid characterization with fixture reuse and
/// temperature-continuation warm starts.
///
/// The plain core::Characterizer builds one library at one temperature;
/// characterizing a thermal grid with it costs a full fixture build and a
/// cold grid sweep per temperature. ThermalCharacterizer extends the PR 4
/// compile-once/execute-many pattern along the temperature axis: each
/// (kind, input-vector) LoadingFixture - and its compiled SolverKernel -
/// is built ONCE, then for every grid temperature the device coefficients
/// are re-bound in place (LoadingFixture::rebindTemperature) and solves
/// are continuation-seeded: along the loading scan within a temperature,
/// and from the SAME grid point's operating point at the adjacent
/// temperature wherever the in-temperature chain restarts. Node voltages
/// vary smoothly in both loading and T, so no solve after the very first
/// ever starts cold.
///
/// Equivalence contract (pinned by
/// tests/thermal/thermal_characterizer_test.cpp and gated in CI by
/// bench_thermal):
///  * Mode::kCold re-binds temperature but seeds every solve cold - the
///    tables are bit-identical to a fresh per-temperature
///    core::Characterizer on the kCompiled path;
///  * Mode::kWarmStart adds the continuation seeds - tables agree with
///    kCold within solver tolerance (~1e-8 relative), not bitwise;
///  * Mode::kBatched solves up to LoadingFixture::kBatchLanes adjacent
///    grid temperatures per grid point in SIMD lockstep (one temperature
///    per lane) with per-lane in-temperature continuation - tables agree
///    with kCold within <= 1e-6 relative.
#pragma once

#include <cstddef>
#include <vector>

#include "core/characterizer.h"
#include "core/leakage_table.h"
#include "device/device_params.h"
#include "gates/gate_library.h"

namespace nanoleak::thermal {

/// Uniform inclusive temperature grid [t_min_k, t_max_k].
struct ThermalGrid {
  /// Lowest grid temperature [K].
  double t_min_k = 233.0;
  /// Highest grid temperature [K].
  double t_max_k = 398.0;
  /// Number of grid points (>= 1; 1 collapses the grid to t_min_k).
  std::size_t points = 8;

  /// The grid temperatures, ascending. Endpoints are exact; interior
  /// points are evenly spaced. Throws nanoleak::Error when points == 0,
  /// when t_max_k < t_min_k, or when points >= 2 and t_max_k == t_min_k
  /// (a multi-point grid needs a non-empty range; only the single-point
  /// grid may collapse both endpoints onto one temperature).
  std::vector<double> temperatures() const;
};

/// `base` with one grid temperature applied - the single definition of
/// "technology at T" shared by the characterizer and the sweep engine,
/// so the corners the engine keys its cache entries by stay bit-identical
/// to the corners the characterizer characterizes at.
device::Technology technologyAtTemperature(const device::Technology& base,
                                           double temperature_k);

/// Library meta fingerprint for one grid temperature of `base` - the
/// single definition shared by the characterizer and the sweep engine's
/// cached-reuse path, so both produce identical Meta.
core::LeakageLibrary::Meta libraryMetaAt(const device::Technology& base,
                                         double temperature_k);

/// Per-temperature libraries for one technology base, in grid order.
struct ThermalLibrarySet {
  /// Grid temperatures [K], ascending.
  std::vector<double> temperatures;
  /// libraries[i] is the full library characterized at temperatures[i].
  std::vector<core::LeakageLibrary> libraries;
};

/// Characterizes a technology over a temperature grid, reusing compiled
/// fixtures across temperatures (see file comment).
class ThermalCharacterizer {
 public:
  /// How each grid point's DC solve is seeded.
  enum class Mode {
    /// Cold logic-level seeds everywhere: bit-identical to a fresh
    /// per-temperature Characterizer (kCompiled path), used as the
    /// equivalence reference.
    kCold,
    /// Continuation: in-temperature neighbour seeding along the loading
    /// scan (the Characterizer's kCompiledWarmStart policy), with each
    /// row-start point (i, 0) of a later temperature seeded from the
    /// same grid point's solution at the previous temperature - the
    /// cross-temperature bridge that keeps the chain warm across the
    /// coefficient re-bind.
    kWarmStart,
    /// Lane-parallel: adjacent grid temperatures are grouped into SIMD
    /// batches (one temperature per lane) and every loading grid point
    /// solves all the group's temperatures in one lockstep
    /// BatchSolverKernel solve. Each lane keeps its own in-temperature
    /// continuation chain (j-neighbour, then row start), so lanes stay
    /// independent; there is no cross-temperature bridge. Agrees with
    /// kCold within <= 1e-6 relative.
    kBatched,
  };

  /// `base` supplies devices, VDD and widths; its temperature_k is
  /// ignored (the grid's temperatures are used instead). Only
  /// options.loading_grid and options.store_pin_current_grids are
  /// consumed; options.kinds and options.solver_path are ignored.
  ThermalCharacterizer(device::Technology base,
                       core::CharacterizationOptions options = {},
                       Mode mode = Mode::kBatched);

  /// Tables of one gate kind at every temperature: result[t][v] is the
  /// VectorTable of input vector v at temperatures[t]. Throws
  /// ConvergenceError if any DC solve fails.
  std::vector<std::vector<core::VectorTable>> characterizeKind(
      gates::GateKind kind, const std::vector<double>& temperatures) const;

  /// Full per-temperature libraries for a kind set over a grid.
  ThermalLibrarySet characterize(const std::vector<gates::GateKind>& kinds,
                                 const ThermalGrid& grid) const;

  /// The technology base with one grid temperature applied.
  device::Technology technologyAt(double temperature_k) const;

  /// The seeding mode this characterizer runs.
  Mode mode() const { return mode_; }

 private:
  device::Technology base_;
  core::CharacterizationOptions options_;
  Mode mode_;
};

}  // namespace nanoleak::thermal
