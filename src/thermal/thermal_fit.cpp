#include "thermal/thermal_fit.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace nanoleak::thermal {

namespace {

/// Relative-error floor: a sample this small is compared absolutely so a
/// zero current never divides by zero.
constexpr double kTinyDenominator = 1e-30;

void requireSamples(const std::vector<double>& t,
                    const std::vector<double>& y, std::size_t min_count,
                    const char* what) {
  require(t.size() == y.size(),
          std::string(what) + ": temperature/value size mismatch");
  require(t.size() >= min_count,
          std::string(what) + ": need at least " +
              std::to_string(min_count) + " samples, got " +
              std::to_string(t.size()));
}

/// Per-sample relative errors reduced in sample order.
template <typename Model>
FitError errorOf(const Model& model, const std::vector<double>& t,
                 const std::vector<double>& y, std::size_t begin,
                 std::size_t end) {
  FitError error;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double denom = std::max(std::abs(y[i]), kTinyDenominator);
    const double rel = std::abs(model.at(t[i]) - y[i]) / denom;
    if (rel > error.max_rel) {
      error.max_rel = rel;
    }
    sum_sq += rel * rel;
  }
  const std::size_t n = end - begin;
  error.rms_rel = n > 0 ? std::sqrt(sum_sq / static_cast<double>(n)) : 0.0;
  return error;
}

/// Least-squares line over samples [begin, end); error fields left zero
/// (the caller decides which sample range to score against).
LinearFit lineThrough(const std::vector<double>& t,
                      const std::vector<double>& y, std::size_t begin,
                      std::size_t end) {
  const double n = static_cast<double>(end - begin);
  double sum_t = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum_t += t[i];
    sum_y += y[i];
  }
  const double mean_t = sum_t / n;
  const double mean_y = sum_y / n;
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    cov += (t[i] - mean_t) * (y[i] - mean_y);
    var += (t[i] - mean_t) * (t[i] - mean_t);
  }
  require(var > 0.0,
          "fitLinear: all sample temperatures are identical");
  LinearFit fit;
  fit.slope = cov / var;
  fit.offset = mean_y - fit.slope * mean_t;
  return fit;
}

}  // namespace

double ExponentialFit::at(double t) const {
  return valid ? scale * std::exp(rate * t) : 0.0;
}

double PiecewiseLinearFit::at(double t) const {
  return t <= break_t ? low.at(t) : high.at(t);
}

std::string ModelComparison::bestModel() const {
  // A challenger must beat the incumbent by 5% relative (see header).
  constexpr double kMargin = 0.95;
  const char* best = "linear";
  double best_err = linear.error.max_rel;
  if (exponential.valid && exponential.error.max_rel < kMargin * best_err) {
    best = "exponential";
    best_err = exponential.error.max_rel;
  }
  if (piecewise.error.max_rel < kMargin * best_err) {
    best = "piecewise";
  }
  return best;
}

LinearFit fitLinear(const std::vector<double>& t,
                    const std::vector<double>& y) {
  requireSamples(t, y, 2, "fitLinear");
  LinearFit fit = lineThrough(t, y, 0, t.size());
  fit.error = errorOf(fit, t, y, 0, t.size());
  return fit;
}

ExponentialFit fitExponential(const std::vector<double>& t,
                              const std::vector<double>& y) {
  requireSamples(t, y, 2, "fitExponential");
  ExponentialFit fit;
  for (double value : y) {
    if (!(value > 0.0)) {
      fit.error = errorOf(fit, t, y, 0, t.size());
      return fit;
    }
  }
  std::vector<double> log_y;
  log_y.reserve(y.size());
  for (double value : y) {
    log_y.push_back(std::log(value));
  }
  const LinearFit line = lineThrough(t, log_y, 0, t.size());
  fit.scale = std::exp(line.offset);
  fit.rate = line.slope;
  fit.valid = true;
  fit.error = errorOf(fit, t, y, 0, t.size());
  return fit;
}

PiecewiseLinearFit fitPiecewiseLinear(const std::vector<double>& t,
                                      const std::vector<double>& y) {
  requireSamples(t, y, 4, "fitPiecewiseLinear");
  const std::size_t n = t.size();
  PiecewiseLinearFit best;
  double best_rms = std::numeric_limits<double>::infinity();
  // Candidate breaks leave >= 2 samples per segment; the break sample
  // belongs to both (the segments meet there). First minimum wins, so the
  // scan order makes ties deterministic.
  for (std::size_t k = 1; k + 2 <= n; ++k) {
    PiecewiseLinearFit candidate;
    candidate.break_t = t[k];
    candidate.low = lineThrough(t, y, 0, k + 1);
    candidate.low.error = errorOf(candidate.low, t, y, 0, k + 1);
    candidate.high = lineThrough(t, y, k, n);
    candidate.high.error = errorOf(candidate.high, t, y, k, n);
    candidate.error = errorOf(candidate, t, y, 0, n);
    if (candidate.error.rms_rel < best_rms) {
      best_rms = candidate.error.rms_rel;
      best = candidate;
    }
  }
  return best;
}

ModelComparison compareModels(const std::vector<double>& t,
                              const std::vector<double>& y) {
  ModelComparison comparison;
  comparison.linear = fitLinear(t, y);
  comparison.exponential = fitExponential(t, y);
  if (t.size() >= 4) {
    comparison.piecewise = fitPiecewiseLinear(t, y);
  } else {
    comparison.piecewise.break_t = t.back();
    comparison.piecewise.low = comparison.linear;
    comparison.piecewise.high = comparison.linear;
    comparison.piecewise.error = comparison.linear.error;
  }
  return comparison;
}

}  // namespace nanoleak::thermal
