// Monte-Carlo engine for the paper's Fig. 10/11: leakage distribution of a
// loaded gate (default: inverter with 6 input-loading and 6 output-loading
// inverters, input '0') with and without loading, under process variation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "device/device_params.h"
#include "device/leakage_breakdown.h"
#include "gates/gate_library.h"
#include "mc/variation.h"

namespace nanoleak::mc {

/// The Fig. 10 circuit shape.
struct McFixtureConfig {
  gates::GateKind kind = gates::GateKind::kInv;
  std::vector<bool> input_vector = {false};  // input '0', output '1'
  int input_loads = 6;
  int output_loads = 6;
};

/// One Monte-Carlo sample: the gate's decomposition with the loading gates
/// present and with them absent, under identical device variations for the
/// shared (driver + gate) devices.
struct McSample {
  device::LeakageBreakdown with_loading;
  device::LeakageBreakdown without_loading;
};

/// Aggregate of a Monte-Carlo run.
struct McSummary {
  double mean_with = 0.0;
  double mean_without = 0.0;
  double std_with = 0.0;
  double std_without = 0.0;
  double max_with = 0.0;
  double max_without = 0.0;
  /// Loading-induced change of the mean / std / max, percent.
  double mean_shift_pct = 0.0;
  double std_shift_pct = 0.0;
  double max_shift_pct = 0.0;
};

/// Runs paired with/without-loading transistor-level solves per sample.
///
/// By default trials run on compiled fixtures: the with/without netlists
/// are built and compiled into SolverKernels once (per worker, pooled),
/// then every trial re-binds the drawn per-device variations and the
/// sampled VDD in place and warm-starts from the nominal operating point -
/// no netlist rebuild per trial. setUseCompiledFixtures(false) restores
/// the historical rebuild-per-trial path (the reference the compiled path
/// is tested against; results agree within solver tolerance, not bitwise).
class MonteCarloEngine {
 public:
  MonteCarloEngine(device::Technology technology, VariationSigmas sigmas,
                   McFixtureConfig config = {});
  ~MonteCarloEngine();
  MonteCarloEngine(const MonteCarloEngine&) = delete;
  MonteCarloEngine& operator=(const MonteCarloEngine&) = delete;

  /// Draws and solves `samples` trials. Deterministic for a given seed.
  /// Samples are drawn from ONE sequential RNG stream, so trial i depends
  /// on trials 0..i-1 having been drawn first; use runBatched() when the
  /// population must be partitionable across threads.
  std::vector<McSample> run(std::size_t samples, std::uint64_t seed) const;

  /// Contract for an external parallel executor (the sweep engine's
  /// BatchRunner provides one): partition [0, count) and invoke
  /// body(begin, end) on every piece, returning once all pieces ran.
  using ParallelExecutor = std::function<void(
      std::size_t count,
      const std::function<void(std::size_t begin, std::size_t end)>& body)>;

  /// Trial `index` of the batched population keyed by `seed`. Independent
  /// of every other trial: its RNG stream comes from counter-based seeding
  /// (deriveStreamSeed), so workers may evaluate trials in any order.
  McSample runSample(std::uint64_t seed, std::size_t index) const;

  /// Batched run: a pure function of (samples, seed) - bit-identical for
  /// any executor partitioning and thread count. A null executor runs
  /// sequentially on the calling thread.
  ///
  /// With useBatchedSolves() (the default, on compiled fixtures), trials
  /// are grouped by ABSOLUTE index into SIMD lane batches of
  /// circuit::BatchSolverKernel::kLaneWidth and each group's with/without
  /// solves run in lockstep; the executor partitions groups, never
  /// splitting one, so the any-partitioning guarantee holds unchanged.
  /// Results agree with the scalar per-trial path (runSample) within
  /// <= 1e-6 relative - bit-identical on scalar (lane width 1) builds.
  std::vector<McSample> runBatched(std::size_t samples, std::uint64_t seed,
                                   const ParallelExecutor& executor = {}) const;

  /// Summary statistics of total leakage over a run.
  static McSummary summarizeTotals(const std::vector<McSample>& samples);

  /// Selects the per-trial solve strategy (see class comment). Not
  /// thread-safe against concurrent runs; set before running.
  void setUseCompiledFixtures(bool use) { use_compiled_ = use; }
  bool useCompiledFixtures() const { return use_compiled_; }

  /// Selects lane-parallel lockstep solves for runBatched() (see its
  /// comment). Only effective on compiled fixtures; run()/runSample()
  /// always solve scalar. Not thread-safe against concurrent runs.
  void setUseBatchedSolves(bool use) { use_batched_ = use; }
  bool useBatchedSolves() const { return use_batched_; }

 private:
  struct CompiledFixtures;
  struct BatchedFixtures;

  McSample runOne(VariationSampler& sampler) const;
  McSample runOneLegacy(VariationSampler& sampler) const;
  McSample runOneCompiled(CompiledFixtures& fixtures,
                          VariationSampler& sampler) const;
  /// Draws the per-trial die/device variations in fixture instantiation
  /// order (drivers, gate, loaders) - shared by both paths so their
  /// populations are statistically identical.
  std::vector<device::DeviceVariation> drawDeviceVariations(
      VariationSampler& sampler, const DieSample& die) const;

  /// Checks a compiled fixture pair out of the pool (building one when
  /// empty) and back in; trials mutate fixture state, so each is owned by
  /// one worker at a time.
  std::unique_ptr<CompiledFixtures> acquireFixtures() const;
  void releaseFixtures(std::unique_ptr<CompiledFixtures> fixtures) const;

  /// Same pooling for the lane-parallel fixture pairs runBatched() uses.
  std::unique_ptr<BatchedFixtures> acquireBatchedFixtures() const;
  void releaseBatchedFixtures(std::unique_ptr<BatchedFixtures> fixtures) const;

  /// Solves trials [begin, end) (one lane group) of the batched
  /// population keyed by `seed` in lockstep, writing McSamples to
  /// out[0 .. end-begin).
  void runGroupBatched(BatchedFixtures& fixtures, std::uint64_t seed,
                       std::size_t begin, std::size_t end,
                       McSample* out) const;

  device::Technology technology_;
  VariationSigmas sigmas_;
  McFixtureConfig config_;
  bool use_compiled_ = true;
  bool use_batched_ = true;
  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<CompiledFixtures>> pool_;
  mutable std::vector<std::unique_ptr<BatchedFixtures>> batch_pool_;
};

}  // namespace nanoleak::mc
