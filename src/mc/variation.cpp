#include "mc/variation.h"

namespace nanoleak::mc {

VariationSampler::VariationSampler(VariationSigmas sigmas, std::uint64_t seed)
    : sigmas_(sigmas), rng_(seed) {}

DieSample VariationSampler::sampleDie() {
  DieSample die;
  die.delta_vth_inter = rng_.gaussian(0.0, sigmas_.sigma_vth_inter);
  die.delta_vdd = rng_.gaussian(0.0, sigmas_.sigma_vdd);
  return die;
}

device::DeviceVariation VariationSampler::sampleDevice(const DieSample& die) {
  device::DeviceVariation variation;
  variation.delta_length = rng_.gaussian(0.0, sigmas_.sigma_l);
  variation.delta_tox = rng_.gaussian(0.0, sigmas_.sigma_tox);
  variation.delta_vth =
      die.delta_vth_inter + rng_.gaussian(0.0, sigmas_.sigma_vth_intra);
  return variation;
}

}  // namespace nanoleak::mc
