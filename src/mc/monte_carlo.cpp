#include "mc/monte_carlo.h"

#include <algorithm>
#include <array>
#include <span>
#include <string>
#include <utility>

#include "circuit/batch_solver_kernel.h"
#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "circuit/netlist.h"
#include "circuit/solver_kernel.h"
#include "gates/gate_builder.h"
#include "util/error.h"
#include "util/statistics.h"

namespace nanoleak::mc {

using circuit::NodeId;

namespace {

/// Replays a pre-drawn variation list in instantiation order.
class ReplayProvider {
 public:
  explicit ReplayProvider(const std::vector<device::DeviceVariation>& list)
      : list_(list) {}

  gates::VariationProvider provider() {
    return [this]() {
      require(index_ < list_.size(), "ReplayProvider: exhausted");
      return list_[index_++];
    };
  }

 private:
  const std::vector<device::DeviceVariation>& list_;
  std::size_t index_ = 0;
};

/// A built (not yet solved) Fig. 10 fixture.
struct BuiltFixture {
  circuit::Netlist netlist;
  std::vector<double> seed;
  /// Nodes fixed at the VDD level (rail + the drv_in pins bound high);
  /// re-bound per trial when the die's VDD is varied.
  std::vector<NodeId> vdd_fixed;
};

/// Builds the fixture netlist: per-pin reference drivers, gate under test,
/// and (optionally) the input/output loading inverters.
BuiltFixture buildFixture(const device::Technology& technology,
                          const McFixtureConfig& config, bool with_loading,
                          const gates::VariationProvider& provider) {
  BuiltFixture built;
  circuit::Netlist& netlist = built.netlist;
  const NodeId vdd = netlist.addNode("VDD");
  const NodeId gnd = netlist.addNode("GND");
  netlist.fixVoltage(vdd, technology.vdd);
  netlist.fixVoltage(gnd, 0.0);
  built.vdd_fixed.push_back(vdd);

  gates::GateNetlistBuilder builder(netlist, technology, vdd, gnd);

  const auto pins = config.input_vector.size();
  std::vector<NodeId> pin_nodes(pins);

  // Per-pin reference driver (owner 1+pin).
  for (std::size_t pin = 0; pin < pins; ++pin) {
    const bool level = config.input_vector[pin];
    const NodeId drv_in = netlist.addNode("drv_in" + std::to_string(pin));
    netlist.fixVoltage(drv_in, level ? 0.0 : technology.vdd);
    if (!level) {
      built.vdd_fixed.push_back(drv_in);
    }
    pin_nodes[pin] = netlist.addNode("pin" + std::to_string(pin));
    const std::array<NodeId, 1> ins{drv_in};
    const std::array<bool, 1> in_vals{!level};
    builder.instantiate(gates::GateKind::kInv, ins, pin_nodes[pin],
                        1 + static_cast<int>(pin), in_vals, provider);
  }

  // Gate under test (owner 0).
  const NodeId out = netlist.addNode("out");
  std::array<bool, 8> vals{};
  for (std::size_t pin = 0; pin < pins; ++pin) {
    vals[pin] = config.input_vector[pin];
  }
  builder.instantiate(config.kind, pin_nodes, out, /*owner=*/0,
                      std::span<const bool>(vals.data(), pins), provider);
  const bool out_level = gates::evaluateGate(
      config.kind, std::span<const bool>(vals.data(), pins));

  if (with_loading) {
    // Input-loading inverters on every pin net, output-loading inverters
    // on the output net. Their outputs drive private nodes.
    for (std::size_t pin = 0; pin < pins; ++pin) {
      for (int i = 0; i < config.input_loads; ++i) {
        const NodeId lout = netlist.addNode(
            "inload" + std::to_string(pin) + "_" + std::to_string(i));
        const std::array<NodeId, 1> ins{pin_nodes[pin]};
        const std::array<bool, 1> in_vals{config.input_vector[pin]};
        builder.instantiate(gates::GateKind::kInv, ins, lout,
                            circuit::kNoOwner, in_vals, provider);
      }
    }
    for (int i = 0; i < config.output_loads; ++i) {
      const NodeId lout = netlist.addNode("outload" + std::to_string(i));
      const std::array<NodeId, 1> ins{out};
      const std::array<bool, 1> in_vals{out_level};
      builder.instantiate(gates::GateKind::kInv, ins, lout,
                          circuit::kNoOwner, in_vals, provider);
    }
  }

  built.seed.assign(netlist.nodeCount(), 0.5 * technology.vdd);
  built.seed[vdd] = technology.vdd;
  built.seed[gnd] = 0.0;
  for (std::size_t pin = 0; pin < pins; ++pin) {
    built.seed[pin_nodes[pin]] =
        config.input_vector[pin] ? technology.vdd : 0.0;
  }
  built.seed[out] = out_level ? technology.vdd : 0.0;
  for (const auto& [node, voltage] : builder.seeds()) {
    built.seed[node] = voltage;
  }
  return built;
}

circuit::SolverOptions fixtureOptions(const device::Technology& technology) {
  circuit::SolverOptions options;
  options.temperature_k = technology.temperature_k;
  options.bracket_lo = -0.3;
  options.bracket_hi = technology.vdd + 0.3;
  return options;
}

[[noreturn]] void throwFixtureNonConvergence(
    const circuit::Netlist& netlist, const circuit::Solution& solution) {
  std::string message = "MonteCarloEngine: fixture solve failed";
  const std::string detail = circuit::nonConvergenceDetail(netlist, solution);
  if (!detail.empty()) {
    message += " (" + detail + ")";
  }
  throw ConvergenceError(message);
}

/// Batched variant carrying the failing lane's scenario identity: the
/// absolute trial index of the population.
[[noreturn]] void throwBatchedNonConvergence(
    const circuit::Netlist& netlist, const circuit::Solution& solution,
    std::size_t trial) {
  std::string message =
      "MonteCarloEngine: fixture solve failed (trial " + std::to_string(trial);
  const std::string detail = circuit::nonConvergenceDetail(netlist, solution);
  if (!detail.empty()) {
    message += ", " + detail;
  }
  throw ConvergenceError(message + ")");
}

/// Builds the fixture and returns the gate-under-test decomposition
/// (legacy rebuild-per-trial path).
device::LeakageBreakdown solveFixture(
    const device::Technology& technology, const McFixtureConfig& config,
    bool with_loading, const std::vector<device::DeviceVariation>& vars) {
  ReplayProvider replay(vars);
  const BuiltFixture built =
      buildFixture(technology, config, with_loading, replay.provider());
  const circuit::DcSolver solver(fixtureOptions(technology));
  const circuit::Solution solution = solver.solve(built.netlist, built.seed);
  if (!solution.converged) {
    throwFixtureNonConvergence(built.netlist, solution);
  }
  const device::Environment env{technology.temperature_k};
  return circuit::leakageByOwner(built.netlist, solution.voltages, env,
                                 1)[0];
}

}  // namespace

/// One compiled (with, without) fixture pair plus the nominal operating
/// points warm starts are derived from. Trials mutate the kernels, so a
/// pair is owned by one worker at a time (see the pool).
struct MonteCarloEngine::CompiledFixtures {
  struct One {
    circuit::Netlist netlist;
    circuit::SolverKernel kernel;
    std::vector<NodeId> vdd_fixed;
    std::vector<double> cold_seed;
    std::vector<double> nominal;

    One(BuiltFixture built, const circuit::SolverOptions& options)
        : netlist(std::move(built.netlist)),
          kernel(netlist, options),
          vdd_fixed(std::move(built.vdd_fixed)),
          cold_seed(std::move(built.seed)) {
      const circuit::Solution solution = kernel.solve(cold_seed);
      if (!solution.converged) {
        throwFixtureNonConvergence(netlist, solution);
      }
      nominal = std::move(solution.voltages);
    }

    /// Re-binds one trial (variations + die VDD), warm-starts from the
    /// VDD-scaled nominal point and returns the gate-under-test leakage.
    device::LeakageBreakdown solveTrial(
        std::span<const device::DeviceVariation> vars, double vdd,
        double nominal_vdd) {
      kernel.rebindVariations(vars);
      for (const NodeId node : vdd_fixed) {
        kernel.setFixedVoltage(node, vdd);
      }
      circuit::SolverOptions options = kernel.options();
      options.bracket_hi = vdd + 0.3;
      kernel.setOptions(options);

      std::vector<double> seed = nominal;
      const double scale = vdd / nominal_vdd;
      for (double& v : seed) {
        v *= scale;
      }
      const circuit::Solution solution = kernel.solve(seed, {}, &cold_seed);
      if (!solution.converged) {
        throwFixtureNonConvergence(netlist, solution);
      }
      return kernel.leakageByOwner(solution.voltages, 1)[0];
    }
  };

  One with;
  One without;

  CompiledFixtures(const device::Technology& technology,
                   const McFixtureConfig& config)
      : with(buildFixture(technology, config, /*with_loading=*/true, {}),
             fixtureOptions(technology)),
        without(buildFixture(technology, config, /*with_loading=*/false, {}),
                fixtureOptions(technology)) {}
};

/// Lane-parallel analog of CompiledFixtures: the same with/without pair
/// compiled into BatchSolverKernels, so one lockstep solve covers a whole
/// lane group of trials. Pooled and worker-owned like the scalar pairs.
struct MonteCarloEngine::BatchedFixtures {
  struct One {
    circuit::Netlist netlist;
    circuit::BatchSolverKernel kernel;
    std::vector<NodeId> vdd_fixed;
    std::vector<double> cold_seed;
    std::vector<double> nominal;

    One(BuiltFixture built, const circuit::SolverOptions& options)
        : netlist(std::move(built.netlist)),
          kernel(netlist, options),
          vdd_fixed(std::move(built.vdd_fixed)),
          cold_seed(std::move(built.seed)) {
      circuit::BatchSolverKernel::LaneRequest request;
      request.initial_guess = &cold_seed;
      std::vector<circuit::Solution> solutions =
          kernel.solve(std::span<const circuit::BatchSolverKernel::LaneRequest>(
              &request, 1));
      if (!solutions[0].converged) {
        throwFixtureNonConvergence(netlist, solutions[0]);
      }
      nominal = std::move(solutions[0].voltages);
    }
  };

  One with;
  One without;

  BatchedFixtures(const device::Technology& technology,
                  const McFixtureConfig& config)
      : with(buildFixture(technology, config, /*with_loading=*/true, {}),
             fixtureOptions(technology)),
        without(buildFixture(technology, config, /*with_loading=*/false, {}),
                fixtureOptions(technology)) {}
};

MonteCarloEngine::MonteCarloEngine(device::Technology technology,
                                   VariationSigmas sigmas,
                                   McFixtureConfig config)
    : technology_(std::move(technology)),
      sigmas_(sigmas),
      config_(std::move(config)) {
  require(config_.input_vector.size() ==
              static_cast<std::size_t>(gates::inputCount(config_.kind)),
          "MonteCarloEngine: input vector arity mismatch");
  require(config_.input_loads >= 0 && config_.output_loads >= 0,
          "MonteCarloEngine: load counts must be >= 0");
}

MonteCarloEngine::~MonteCarloEngine() = default;

std::vector<device::DeviceVariation> MonteCarloEngine::drawDeviceVariations(
    VariationSampler& sampler, const DieSample& die) const {
  // Pre-draw variations in fixture instantiation order: drivers, gate,
  // loaders. The without-loading build uses the shared prefix, so the
  // paired comparison isolates the presence of the loading gates.
  const auto pins = config_.input_vector.size();
  const int gate_transistors =
      gates::cellTopology(config_.kind).transistorCount();
  const std::size_t total_devices =
      2 * pins + static_cast<std::size_t>(gate_transistors) +
      2 * pins * static_cast<std::size_t>(config_.input_loads) +
      2 * static_cast<std::size_t>(config_.output_loads);
  std::vector<device::DeviceVariation> vars;
  vars.reserve(total_devices);
  for (std::size_t i = 0; i < total_devices; ++i) {
    vars.push_back(sampler.sampleDevice(die));
  }
  return vars;
}

std::unique_ptr<MonteCarloEngine::CompiledFixtures>
MonteCarloEngine::acquireFixtures() const {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      auto fixtures = std::move(pool_.back());
      pool_.pop_back();
      return fixtures;
    }
  }
  // Pool empty: build a fresh pair (deterministic - every pair built from
  // the same technology/config is identical, so which worker gets which
  // pair never affects results).
  return std::make_unique<CompiledFixtures>(technology_, config_);
}

void MonteCarloEngine::releaseFixtures(
    std::unique_ptr<CompiledFixtures> fixtures) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(fixtures));
}

std::unique_ptr<MonteCarloEngine::BatchedFixtures>
MonteCarloEngine::acquireBatchedFixtures() const {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!batch_pool_.empty()) {
      auto fixtures = std::move(batch_pool_.back());
      batch_pool_.pop_back();
      return fixtures;
    }
  }
  return std::make_unique<BatchedFixtures>(technology_, config_);
}

void MonteCarloEngine::releaseBatchedFixtures(
    std::unique_ptr<BatchedFixtures> fixtures) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  batch_pool_.push_back(std::move(fixtures));
}

McSample MonteCarloEngine::runOneLegacy(VariationSampler& sampler) const {
  const DieSample die = sampler.sampleDie();
  const std::vector<device::DeviceVariation> vars =
      drawDeviceVariations(sampler, die);

  device::Technology sample_tech = technology_;
  sample_tech.vdd =
      std::clamp(technology_.vdd + die.delta_vdd, 0.3, 2.0 * technology_.vdd);

  McSample sample;
  sample.with_loading =
      solveFixture(sample_tech, config_, /*with_loading=*/true, vars);
  sample.without_loading =
      solveFixture(sample_tech, config_, /*with_loading=*/false, vars);
  return sample;
}

McSample MonteCarloEngine::runOneCompiled(CompiledFixtures& fixtures,
                                          VariationSampler& sampler) const {
  const DieSample die = sampler.sampleDie();
  const std::vector<device::DeviceVariation> vars =
      drawDeviceVariations(sampler, die);
  const double vdd =
      std::clamp(technology_.vdd + die.delta_vdd, 0.3, 2.0 * technology_.vdd);

  McSample sample;
  sample.with_loading = fixtures.with.solveTrial(
      std::span<const device::DeviceVariation>(vars), vdd, technology_.vdd);
  sample.without_loading = fixtures.without.solveTrial(
      std::span<const device::DeviceVariation>(vars).first(
          fixtures.without.kernel.deviceCount()),
      vdd, technology_.vdd);
  return sample;
}

McSample MonteCarloEngine::runOne(VariationSampler& sampler) const {
  if (!use_compiled_) {
    return runOneLegacy(sampler);
  }
  auto fixtures = acquireFixtures();
  // On a throwing trial the (possibly half-rebound) pair is discarded
  // rather than returned to the pool.
  McSample sample = runOneCompiled(*fixtures, sampler);
  releaseFixtures(std::move(fixtures));
  return sample;
}

std::vector<McSample> MonteCarloEngine::run(std::size_t samples,
                                            std::uint64_t seed) const {
  VariationSampler sampler(sigmas_, seed);
  std::vector<McSample> results;
  results.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    results.push_back(runOne(sampler));
  }
  return results;
}

McSample MonteCarloEngine::runSample(std::uint64_t seed,
                                     std::size_t index) const {
  VariationSampler sampler(sigmas_, deriveStreamSeed(seed, index));
  return runOne(sampler);
}

void MonteCarloEngine::runGroupBatched(BatchedFixtures& fixtures,
                                       std::uint64_t seed, std::size_t begin,
                                       std::size_t end, McSample* out) const {
  const std::size_t lanes = end - begin;
  // Draw every lane's trial (die, device variations, VDD) exactly as the
  // scalar path does: one counter-seeded stream per absolute index, so
  // the batched population is statistically identical to runSample's.
  std::vector<std::vector<device::DeviceVariation>> vars(lanes);
  std::vector<double> vdd(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    VariationSampler sampler(sigmas_, deriveStreamSeed(seed, begin + lane));
    const DieSample die = sampler.sampleDie();
    vars[lane] = drawDeviceVariations(sampler, die);
    vdd[lane] = std::clamp(technology_.vdd + die.delta_vdd, 0.3,
                           2.0 * technology_.vdd);
  }

  const auto solveSide = [&](BatchedFixtures::One& one, bool with_loading,
                             auto member) {
    std::vector<std::vector<double>> seeds(lanes);
    std::vector<circuit::BatchSolverKernel::LaneRequest> requests(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::span<const device::DeviceVariation> lane_vars(vars[lane]);
      if (!with_loading) {
        lane_vars = lane_vars.first(one.kernel.deviceCount());
      }
      one.kernel.rebindVariations(lane, lane_vars);
      for (const NodeId node : one.vdd_fixed) {
        one.kernel.setFixedVoltage(lane, node, vdd[lane]);
      }
      circuit::SolverOptions options = one.kernel.laneOptions(lane);
      options.bracket_hi = vdd[lane] + 0.3;
      one.kernel.setLaneOptions(lane, options);

      seeds[lane] = one.nominal;
      const double scale = vdd[lane] / technology_.vdd;
      for (double& v : seeds[lane]) {
        v *= scale;
      }
      requests[lane].initial_guess = &seeds[lane];
      requests[lane].cluster_guess = &one.cold_seed;
    }
    const std::vector<circuit::Solution> solutions =
        one.kernel.solve(requests);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!solutions[lane].converged) {
        throwBatchedNonConvergence(one.netlist, solutions[lane],
                                   begin + lane);
      }
      out[lane].*member =
          one.kernel.laneLeakageByOwner(lane, solutions[lane].voltages, 1)[0];
    }
  };
  solveSide(fixtures.with, /*with_loading=*/true, &McSample::with_loading);
  solveSide(fixtures.without, /*with_loading=*/false,
            &McSample::without_loading);
}

std::vector<McSample> MonteCarloEngine::runBatched(
    std::size_t samples, std::uint64_t seed,
    const ParallelExecutor& executor) const {
  std::vector<McSample> results(samples);
  if (samples == 0) {
    return results;
  }
  if (!use_batched_ || !use_compiled_) {
    const auto body = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = runSample(seed, i);
      }
    };
    if (executor) {
      executor(samples, body);
    } else {
      body(0, samples);
    }
    return results;
  }

  // Lane groups are keyed to ABSOLUTE trial index: group g covers trials
  // [g*W, min((g+1)*W, samples)), and the executor partitions GROUPS, so
  // no partitioning can split a group - the bit-identical-for-any-
  // executor guarantee survives batching.
  constexpr std::size_t kLanes = circuit::BatchSolverKernel::kLaneWidth;
  const std::size_t groups = (samples + kLanes - 1) / kLanes;
  const auto body = [&](std::size_t group_begin, std::size_t group_end) {
    auto fixtures = acquireBatchedFixtures();
    // On a throwing group the (possibly half-rebound) pair is discarded
    // rather than returned to the pool.
    for (std::size_t g = group_begin; g < group_end; ++g) {
      const std::size_t begin = g * kLanes;
      const std::size_t end = std::min(begin + kLanes, samples);
      runGroupBatched(*fixtures, seed, begin, end, results.data() + begin);
    }
    releaseBatchedFixtures(std::move(fixtures));
  };
  if (executor) {
    executor(groups, body);
  } else {
    body(0, groups);
  }
  return results;
}

McSummary MonteCarloEngine::summarizeTotals(
    const std::vector<McSample>& samples) {
  RunningStats with;
  RunningStats without;
  for (const McSample& s : samples) {
    with.add(s.with_loading.total());
    without.add(s.without_loading.total());
  }
  McSummary summary;
  if (samples.empty()) {
    return summary;
  }
  summary.mean_with = with.mean();
  summary.mean_without = without.mean();
  summary.std_with = with.stddev();
  summary.std_without = without.stddev();
  summary.max_with = with.max();
  summary.max_without = without.max();
  auto pct = [](double now, double base) {
    return base > 0.0 ? 100.0 * (now - base) / base : 0.0;
  };
  summary.mean_shift_pct = pct(summary.mean_with, summary.mean_without);
  summary.std_shift_pct = pct(summary.std_with, summary.std_without);
  summary.max_shift_pct = pct(summary.max_with, summary.max_without);
  return summary;
}

}  // namespace nanoleak::mc
