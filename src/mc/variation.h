// Process-variation model (paper section 5.3): inter-die (shared per
// sample) and intra-die (independent per transistor) parameter spreads.
#pragma once

#include <cstdint>

#include "device/device_params.h"
#include "util/rng.h"

namespace nanoleak::mc {

/// Standard deviations of the varied parameters. Defaults follow the
/// paper's Fig. 10/11 captions literally: sigma_L = 2 nm,
/// sigma_Tox = 0.67 A, sigma_Vt intra = 30 mV, sigma_Vt inter = 30 mV and
/// sigma_VDD = 333 mV. The large supply sigma is what makes the loading
/// effect widen the leakage spread much more than it moves the mean
/// (tunneling loading currents are exponential in VDD), reproducing the
/// paper's Fig. 11; see EXPERIMENTS.md for the discussion.
struct VariationSigmas {
  double sigma_l = 2e-9;
  double sigma_tox = 0.67e-10;
  double sigma_vth_inter = 30e-3;
  double sigma_vth_intra = 30e-3;
  double sigma_vdd = 333e-3;
};

/// Per-die (per Monte-Carlo sample) shared deltas.
struct DieSample {
  double delta_vth_inter = 0.0;
  double delta_vdd = 0.0;
};

/// Draws die- and device-level variations.
///
/// L and Tox vary per transistor (line-edge roughness / local oxide
/// non-uniformity); Vth has both an inter-die shift and an intra-die
/// random-dopant component; VDD varies per die.
class VariationSampler {
 public:
  VariationSampler(VariationSigmas sigmas, std::uint64_t seed);

  DieSample sampleDie();
  device::DeviceVariation sampleDevice(const DieSample& die);

  const VariationSigmas& sigmas() const { return sigmas_; }

 private:
  VariationSigmas sigmas_;
  Rng rng_;
};

}  // namespace nanoleak::mc
