#include "search/ternary.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace nanoleak::search {

using logic::GateId;
using logic::NetId;

std::uint32_t truthMask(gates::GateKind kind) {
  // Lazily computed once per kind from the cell topology's truth function.
  static const std::array<std::uint32_t, 20> masks = [] {
    std::array<std::uint32_t, 20> m{};
    for (gates::GateKind k : gates::combinationalKinds()) {
      const int pins = gates::inputCount(k);
      std::uint32_t mask = 0;
      for (std::uint32_t v = 0; v < (1u << pins); ++v) {
        std::array<bool, 8> buf{};
        for (int p = 0; p < pins; ++p) {
          buf[static_cast<std::size_t>(p)] = ((v >> p) & 1u) != 0;
        }
        if (gates::evaluateGate(
                k, std::span<const bool>(buf.data(),
                                         static_cast<std::size_t>(pins)))) {
          mask |= 1u << v;
        }
      }
      m[static_cast<std::size_t>(k)] = mask;
    }
    return m;
  }();
  require(kind != gates::GateKind::kDff,
          "truthMask: kDff has no combinational truth function");
  return masks[static_cast<std::size_t>(kind)];
}

TernaryPropagator::TernaryPropagator(const logic::LogicNetlist& netlist)
    : netlist_(netlist), sources_(netlist.sourceNets()) {
  value_.assign(netlist.netCount(), Ternary::kUnknown);
  truth_.resize(netlist.gateCount());
  topo_pos_.assign(netlist.gateCount(), 0);
  queued_.assign(netlist.gateCount(), 0);
  topo_gate_ = netlist.topologicalOrder();
  for (std::size_t i = 0; i < topo_gate_.size(); ++i) {
    topo_pos_[topo_gate_[i]] = i;
  }
  for (GateId g = 0; g < netlist.gateCount(); ++g) {
    truth_[g] = truthMask(netlist.gate(g).kind);
  }
  trail_.reserve(netlist.netCount());
  level_start_.reserve(sources_.size());
}

void TernaryPropagator::enqueueFanout(NetId net) {
  for (const logic::PinRef& ref : netlist_.fanout(net)) {
    if (queued_[ref.gate] == 0) {
      queued_[ref.gate] = 1;
      heap_.push_back(topo_pos_[ref.gate]);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  }
}

std::uint32_t TernaryPropagator::possibleVectors(GateId g) const {
  const logic::Gate& gate = netlist_.gate(g);
  std::uint32_t known_mask = 0;
  std::uint32_t known_vals = 0;
  for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
    const Ternary t = value_[gate.inputs[p]];
    if (t != Ternary::kUnknown) {
      known_mask |= 1u << p;
      if (t == Ternary::kTrue) {
        known_vals |= 1u << p;
      }
    }
  }
  const std::uint32_t all = (1u << gate.inputs.size()) - 1u;
  std::uint32_t possible = 0;
  // Enumerate completions of the unknown pins: walk every subset of
  // ~known_mask (within the pin width) via the standard subset trick.
  const std::uint32_t free_mask = all & ~known_mask;
  std::uint32_t sub = 0;
  while (true) {
    possible |= 1u << (known_vals | sub);
    if (sub == free_mask) {
      break;
    }
    sub = (sub - free_mask) & free_mask;
  }
  return possible;
}

void TernaryPropagator::evaluateGate(GateId g) {
  const logic::Gate& gate = netlist_.gate(g);
  if (value_[gate.output] != Ternary::kUnknown) {
    return;  // Already implied; monotone, so it cannot change.
  }
  const std::uint32_t possible = possibleVectors(g);
  const std::uint32_t truth = truth_[g];
  const bool can_be_true = (truth & possible) != 0;
  const bool can_be_false = (~truth & possible) != 0;
  if (can_be_true && can_be_false) {
    return;  // Output still undetermined.
  }
  value_[gate.output] = can_be_true ? Ternary::kTrue : Ternary::kFalse;
  trail_.push_back(gate.output);
  enqueueFanout(gate.output);
}

void TernaryPropagator::assign(std::size_t s, bool v) {
  require(s < sources_.size(), "TernaryPropagator: source index out of range");
  const NetId net = sources_[s];
  require(value_[net] == Ternary::kUnknown,
          "TernaryPropagator: source already assigned");
  level_start_.push_back(trail_.size());
  value_[net] = v ? Ternary::kTrue : Ternary::kFalse;
  trail_.push_back(net);
  enqueueFanout(net);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const std::size_t pos = heap_.back();
    heap_.pop_back();
    const GateId g = topo_gate_[pos];
    queued_[g] = 0;
    evaluateGate(g);
  }
}

void TernaryPropagator::backtrack() {
  require(!level_start_.empty(), "TernaryPropagator: no level to backtrack");
  const std::size_t start = level_start_.back();
  level_start_.pop_back();
  while (trail_.size() > start) {
    value_[trail_.back()] = Ternary::kUnknown;
    trail_.pop_back();
  }
}

std::span<const NetId> TernaryPropagator::lastImplied() const {
  require(!level_start_.empty(), "TernaryPropagator: no open level");
  const std::size_t start = level_start_.back();
  return std::span<const NetId>(trail_.data() + start, trail_.size() - start);
}

}  // namespace nanoleak::search
