/// @file
/// Optimistic per-gate leakage bounds for branch-and-bound pruning.
///
/// For every (gate, input vector) LeakageBounds precomputes a sound
/// interval [lo, hi] containing the gate's total leakage contribution under
/// *any* full source assignment that resolves the gate to that vector:
///
///  - Without loading the estimator charges exactly
///    isolated_nominal.total(), so the interval is (almost) a point.
///  - With loading the estimator bilinearly interpolates the three
///    component surfaces at one clamped (IL, OL) location over shared
///    axes, so the gate total is a convex combination of the grid-point
///    sums sub(i,j)+gate(i,j)+btbt(i,j). The reachable loading magnitudes
///    are themselves bounded: |IL| and |OL| can never exceed the sum of
///    the worst-case |pin current| of every other pin on the gate's nets
///    (plus DFF D-pin loads), so only grid points up to those caps can
///    influence the interpolation. The interval is the min/max grid-point
///    sum over that reachable sub-rectangle.
///
/// Both cases are widened by a relative slack (kRelativeSlack) that
/// dominates every floating-point effect the bound must absorb:
/// interpolation rounding, incremental bound-sum drift, and the
/// reassociation difference between the estimator's component-wise total
/// and the per-gate sum used here. Pruning against these intervals is
/// therefore conservative: a subtree is only cut when even its optimistic
/// bound cannot beat the incumbent.
///
/// BoundTracker maintains, on a trail parallel to TernaryPropagator's,
/// the running circuit-wide sums of per-gate interval endpoints as source
/// assignments narrow each gate's possible-vector set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/estimation_plan.h"
#include "search/ternary.h"

namespace nanoleak::search {

/// Static per-(gate, input vector) leakage intervals for one plan.
class LeakageBounds {
 public:
  /// Relative widening applied to every interval endpoint; orders of
  /// magnitude above accumulated rounding (~1e-13 for 1e3-gate sums), and
  /// orders of magnitude below any physical leakage difference, so it
  /// never masks a real optimum.
  static constexpr double kRelativeSlack = 1e-9;

  /// Precomputes intervals from the plan's resolved tables. The plan must
  /// outlive the bounds.
  explicit LeakageBounds(const core::EstimationPlan& plan);

  /// Lower endpoint for gate `g` resolved to vector `v`.
  double vectorMin(logic::GateId g, std::size_t v) const {
    return vmin_[offset_[g] + v];
  }
  /// Upper endpoint for gate `g` resolved to vector `v`.
  double vectorMax(logic::GateId g, std::size_t v) const {
    return vmax_[offset_[g] + v];
  }
  /// Smallest lower endpoint over a possible-vector bitmask (nonzero).
  double maskMin(logic::GateId g, std::uint32_t mask) const;
  /// Largest upper endpoint over a possible-vector bitmask (nonzero).
  double maskMax(logic::GateId g, std::uint32_t mask) const;

 private:
  std::vector<std::size_t> offset_;  // CSR: gate g's vectors start here
  std::vector<double> vmin_;
  std::vector<double> vmax_;
};

/// Incremental circuit-wide bound sums under a growing partial assignment.
///
/// Drive it in lockstep with a TernaryPropagator: after every
/// propagator.assign() call push() with the newly implied nets, and pair
/// every propagator.backtrack() with pop(). runningMin()/runningMax() are
/// maintained by cheap updates; exactMin()/exactMax() re-sum the per-gate
/// contributions in fixed gate order and are what pruning decisions must
/// consult (they carry none of the running sums' incremental drift).
class BoundTracker {
 public:
  /// Binds to a propagator/bounds pair (both must outlive the tracker)
  /// and initializes every gate to its unconstrained interval.
  BoundTracker(const core::EstimationPlan& plan,
               const TernaryPropagator& propagator,
               const LeakageBounds& bounds);

  /// Opens a level: tightens the contribution of every gate whose
  /// possible-vector set shrank when `implied` nets became known.
  void push(std::span<const logic::NetId> implied);
  /// Undoes the latest push (requires one open level).
  void pop();

  /// Running lower bound on the circuit total over all completions.
  double runningMin() const { return sum_min_; }
  /// Running upper bound on the circuit total over all completions.
  double runningMax() const { return sum_max_; }
  /// Drift-free lower bound: per-gate contributions re-summed in gate
  /// order. Use for actual prune decisions.
  double exactMin() const;
  /// Drift-free upper bound (see exactMin()).
  double exactMax() const;

 private:
  const logic::LogicNetlist& netlist_;
  const TernaryPropagator& propagator_;
  const LeakageBounds& bounds_;

  std::vector<double> cur_min_;  // per gate, current interval
  std::vector<double> cur_max_;
  double sum_min_ = 0.0;
  double sum_max_ = 0.0;

  // Undo trail: (gate, previous interval) entries per level; stamp_
  // dedupes gates touched more than once within one push.
  struct Saved {
    logic::GateId gate;
    double min;
    double max;
  };
  std::vector<Saved> trail_;
  std::vector<std::size_t> level_start_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t push_id_ = 0;
};

}  // namespace nanoleak::search
