/// @file
/// Indexed max-heap over per-input activity scores (the VSIDS idiom).
///
/// The heuristic engine scores each source input by how often flipping it
/// improved the objective (with geometric bump growth standing in for
/// decay), and repeatedly needs the highest-scoring input. The heap keys
/// a fixed universe of indices [0, n), supports score bumps with sift-up,
/// peek, and pop/re-push for ordered draining, and breaks score ties by
/// the lower index so every operation is fully deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"

namespace nanoleak::search {

/// Deterministic indexed binary max-heap of double scores.
class ActivityHeap {
 public:
  /// A heap over indices [0, n) with the given initial scores
  /// (scores.size() == n); all indices start in the heap.
  explicit ActivityHeap(std::vector<double> scores)
      : score_(std::move(scores)), pos_(score_.size()) {
    heap_.reserve(score_.size());
    for (std::size_t i = 0; i < score_.size(); ++i) {
      heap_.push_back(i);
      pos_[i] = i;
    }
    for (std::size_t i = heap_.size(); i-- > 0;) {
      siftDown(i);
    }
  }

  /// Number of indices currently in the heap.
  std::size_t size() const { return heap_.size(); }
  /// True when no index is in the heap.
  bool empty() const { return heap_.empty(); }
  /// True when index `i` is in the heap.
  bool contains(std::size_t i) const { return pos_[i] != kAbsent; }
  /// Current score of index `i` (in the heap or not).
  double score(std::size_t i) const { return score_[i]; }

  /// Highest-scoring index (ties: lowest index). Requires non-empty.
  std::size_t top() const {
    require(!heap_.empty(), "ActivityHeap: empty");
    return heap_[0];
  }

  /// Removes and returns the top index.
  std::size_t pop() {
    const std::size_t i = top();
    remove(i);
    return i;
  }

  /// Re-inserts a previously popped index (keeps its score).
  void push(std::size_t i) {
    require(pos_[i] == kAbsent, "ActivityHeap: index already present");
    pos_[i] = heap_.size();
    heap_.push_back(i);
    siftUp(heap_.size() - 1);
  }

  /// Adds `delta` (>= 0) to index `i`'s score, restoring heap order when
  /// the index is present.
  void bump(std::size_t i, double delta) {
    score_[i] += delta;
    if (pos_[i] != kAbsent) {
      siftUp(pos_[i]);
    }
  }

  /// Multiplies every score by `factor` (relative order unchanged, so the
  /// heap stays valid). Used to rescale before bump growth overflows.
  void rescale(double factor) {
    for (double& s : score_) {
      s *= factor;
    }
  }

 private:
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  /// Heap order: higher score first, lower index on ties.
  bool before(std::size_t a, std::size_t b) const {
    if (score_[a] != score_[b]) {
      return score_[a] > score_[b];
    }
    return a < b;
  }

  void remove(std::size_t i) {
    const std::size_t at = pos_[i];
    const std::size_t last = heap_.back();
    heap_.pop_back();
    pos_[i] = kAbsent;
    if (at < heap_.size()) {
      heap_[at] = last;
      pos_[last] = at;
      siftDown(at);
      siftUp(at);
    }
  }

  void siftUp(std::size_t at) {
    while (at > 0) {
      const std::size_t parent = (at - 1) / 2;
      if (!before(heap_[at], heap_[parent])) {
        break;
      }
      swapAt(at, parent);
      at = parent;
    }
  }

  void siftDown(std::size_t at) {
    while (true) {
      const std::size_t left = 2 * at + 1;
      if (left >= heap_.size()) {
        break;
      }
      std::size_t best = left;
      const std::size_t right = left + 1;
      if (right < heap_.size() && before(heap_[right], heap_[left])) {
        best = right;
      }
      if (!before(heap_[best], heap_[at])) {
        break;
      }
      swapAt(at, best);
      at = best;
    }
  }

  void swapAt(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::vector<double> score_;
  std::vector<std::size_t> pos_;   // index -> heap slot, kAbsent if out
  std::vector<std::size_t> heap_;  // heap slot -> index
};

}  // namespace nanoleak::search
