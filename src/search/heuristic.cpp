// Heuristic sleep-vector engine: greedy bound-guided construction plus
// restart-based local search with an activity-scored input heap.
//
// Determinism contract: the sequence of candidate vectors the engine
// evaluates is a pure function of (plan, seed) - restart r draws from
// deriveStreamSeed(seed, r) and nothing reads the budget except the
// stop condition. A larger budget therefore evaluates a strict superset
// (prefix extension) of the candidates of a smaller one, which makes the
// best-found objective monotone non-worsening in the budget - a property
// the metamorphic tests pin.

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "search/activity_heap.h"
#include "search/bounds.h"
#include "search/optimizer.h"
#include "search/ternary.h"
#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::search {

namespace internal {
void countHeuristicRun();
void recordHeuristicStats(const SearchStats& stats);
}  // namespace internal

namespace {

/// Static impact score of one source: the total bound-interval width of
/// every gate in its fanout cone - a measure of how much circuit leakage
/// that input can move. Seeds both the greedy assignment order and the
/// local-search activity scores.
std::vector<double> staticImpact(const core::EstimationPlan& plan,
                                 const LeakageBounds& bounds) {
  const logic::LogicNetlist& netlist = plan.netlist();
  const std::vector<logic::NetId> sources = netlist.sourceNets();
  std::vector<double> impact(sources.size(), 0.0);
  std::vector<char> gate_seen(netlist.gateCount());
  std::vector<char> net_seen(netlist.netCount());
  std::vector<logic::NetId> frontier;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::fill(gate_seen.begin(), gate_seen.end(), 0);
    std::fill(net_seen.begin(), net_seen.end(), 0);
    frontier.assign(1, sources[s]);
    net_seen[sources[s]] = 1;
    double sum = 0.0;
    while (!frontier.empty()) {
      const logic::NetId net = frontier.back();
      frontier.pop_back();
      for (const logic::PinRef& ref : netlist.fanout(net)) {
        if (gate_seen[ref.gate]) {
          continue;
        }
        gate_seen[ref.gate] = 1;
        const logic::Gate& gate = netlist.gate(ref.gate);
        const std::size_t nv = std::size_t{1} << gate.inputs.size();
        const std::uint32_t all =
            nv >= 32 ? 0xffffffffu : ((1u << nv) - 1u);
        sum += bounds.maskMax(ref.gate, all) - bounds.maskMin(ref.gate, all);
        if (!net_seen[gate.output]) {
          net_seen[gate.output] = 1;
          frontier.push_back(gate.output);
        }
      }
    }
    impact[s] = sum;
  }
  return impact;
}

/// One heuristic run's mutable state.
class HeuristicEngine {
 public:
  HeuristicEngine(const core::EstimationPlan& plan,
                  const SearchOptions& options)
      : plan_(plan),
        options_(options),
        bounds_(plan),
        impact_(staticImpact(plan, bounds_)),
        activity_(impact_),
        ws_(plan) {}

  SearchResult run() {
    const std::size_t n = plan_.sourceCount();
    if (n == 0 || options_.budget == 0) {
      // Degenerate cases: a single evaluation of the all-false vector
      // (and for n == 0 the only vector there is).
      std::vector<bool> pattern(n, false);
      evaluate(pattern);
      return finish();
    }

    const std::vector<bool> greedy = greedyConstruct();
    const std::size_t stall_limit = std::max<std::size_t>(8, 2 * n);

    std::uint64_t restart = 0;
    while (stats_.leaf_evals < options_.budget) {
      Rng rng(deriveStreamSeed(options_.seed, restart));
      std::vector<bool> pattern =
          restart == 0 ? greedy : randomPattern(n, rng);
      double current = evaluate(pattern);
      ++stats_.restarts;
      std::size_t stall = 0;
      while (stall < stall_limit && stats_.leaf_evals < options_.budget) {
        const std::size_t bit = pickBit(rng);
        pattern[bit] = !pattern[bit];
        const double moved = evaluate(pattern);
        const bool accept = options_.objective == Objective::kMin
                                ? moved < current
                                : moved > current;
        if (accept) {
          current = moved;
          stall = 0;
          bumpActivity(bit);
        } else {
          pattern[bit] = !pattern[bit];
          ++stall;
        }
      }
      ++restart;
    }
    return finish();
  }

 private:
  /// Assigns sources in impact order, picking for each the value with the
  /// more promising circuit bound (no leakage evaluations spent).
  std::vector<bool> greedyConstruct() {
    const std::size_t n = plan_.sourceCount();
    TernaryPropagator propagator(plan_.netlist());
    BoundTracker tracker(plan_, propagator, bounds_);
    stats_.root_min_bound = tracker.exactMin();
    stats_.root_max_bound = tracker.exactMax();
    ActivityHeap order(impact_);
    std::vector<bool> pattern(n, false);
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t s = order.pop();
      double score[2];
      for (const bool v : {false, true}) {
        propagator.assign(s, v);
        tracker.push(propagator.lastImplied());
        score[v ? 1 : 0] = options_.objective == Objective::kMin
                               ? tracker.runningMin()
                               : tracker.runningMax();
        tracker.pop();
        propagator.backtrack();
      }
      // Pick the value whose optimistic bound is better; ties take false
      // so the construction is deterministic.
      const bool pick = options_.objective == Objective::kMin
                            ? score[1] < score[0]
                            : score[1] > score[0];
      pattern[s] = pick;
      propagator.assign(s, pick);
      tracker.push(propagator.lastImplied());
    }
    return pattern;
  }

  std::vector<bool> randomPattern(std::size_t n, Rng& rng) {
    std::vector<bool> pattern(n);
    for (std::size_t i = 0; i < n; ++i) {
      pattern[i] = rng.bernoulli(0.5);
    }
    return pattern;
  }

  /// Flip-bit policy: half the draws exploit the highest-activity input,
  /// the rest explore uniformly.
  std::size_t pickBit(Rng& rng) {
    if (rng.bernoulli(0.5)) {
      return activity_.top();
    }
    return static_cast<std::size_t>(
        rng.uniformInt(plan_.sourceCount()));
  }

  void bumpActivity(std::size_t bit) {
    activity_.bump(bit, bump_);
    bump_ *= 1.05;  // Geometric growth = exponential decay of old scores.
    if (bump_ > 1e100) {
      activity_.rescale(1e-100);
      bump_ *= 1e-100;
    }
  }

  double evaluate(const std::vector<bool>& pattern) {
    plan_.estimateDelta(pattern, ws_, scratch_);
    ++stats_.leaf_evals;
    ++stats_.nodes_expanded;
    const double total = scratch_.total.total();
    const bool better =
        !has_best_ ||
        (options_.objective == Objective::kMin ? total < best_total_
                                               : total > best_total_) ||
        (total == best_total_ && lexLess(pattern, best_vector_));
    if (better) {
      has_best_ = true;
      best_total_ = total;
      best_leakage_ = scratch_.total;
      best_vector_ = pattern;
      ++stats_.improvements;
    }
    return total;
  }

  SearchResult finish() {
    SearchResult result;
    result.vector = best_vector_;
    result.leakage = best_leakage_;
    result.total = best_total_;
    result.exact = false;
    result.stats = stats_;
    return result;
  }

  const core::EstimationPlan& plan_;
  const SearchOptions& options_;
  LeakageBounds bounds_;
  std::vector<double> impact_;
  ActivityHeap activity_;
  core::EstimationWorkspace ws_;
  core::EstimateResult scratch_;
  std::vector<bool> best_vector_;
  device::LeakageBreakdown best_leakage_;
  double best_total_ = 0.0;
  bool has_best_ = false;
  double bump_ = 1.0;
  SearchStats stats_;
};

}  // namespace

SearchResult heuristicSearch(const core::EstimationPlan& plan,
                             const SearchOptions& options) {
  OBS_SPAN("search.heuristic", toString(options.objective));
  internal::countHeuristicRun();
  HeuristicEngine engine(plan, options);
  SearchResult result = engine.run();
  internal::recordHeuristicStats(result.stats);
  return result;
}

}  // namespace nanoleak::search
