#include "search/optimizer.h"

#include <bit>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/bounds.h"
#include "search/ternary.h"
#include "util/error.h"

namespace nanoleak::search {

namespace {

struct SearchMetrics {
  obs::Counter nodes = obs::counter("search.nodes_expanded");
  obs::Counter leaf_evals = obs::counter("search.leaf_evals");
  obs::Counter prunes = obs::counter("search.prunes");
  obs::Counter prune_checks = obs::counter("search.prune_checks");
  obs::Counter restarts = obs::counter("search.restarts");
  obs::Counter improvements = obs::counter("search.improvements");
  obs::Counter exact_runs = obs::counter("search.exact_runs");
  obs::Counter heuristic_runs = obs::counter("search.heuristic_runs");
  obs::Counter exhaustive_runs = obs::counter("search.exhaustive_runs");
  // Bound/incumbent ratio at each successful prune; ~1 means the cut was
  // tight, large values mean the subtree was hopeless anyway.
  obs::Histogram tightness = obs::histogram(
      "search.bound_tightness", {1.0, 1.001, 1.01, 1.05, 1.2, 2.0});
};

const SearchMetrics& metrics() {
  static const SearchMetrics m;
  return m;
}

/// Publishes a run's counters into the search.* metrics.
void recordStats(const SearchStats& stats) {
  const SearchMetrics& m = metrics();
  m.nodes.add(stats.nodes_expanded);
  m.leaf_evals.add(stats.leaf_evals);
  m.prunes.add(stats.prunes);
  m.prune_checks.add(stats.prune_checks);
  m.restarts.add(stats.restarts);
  m.improvements.add(stats.improvements);
}

/// Branch-and-bound driver: lexicographic DFS over source assignments
/// with bound-based pruning. Sources branch in index order, false before
/// true, so the first incumbent at any objective value is the
/// lexicographically smallest vector - which makes "prune when the bound
/// cannot strictly beat the incumbent" preserve the tie-break.
class BranchAndBound {
 public:
  BranchAndBound(const core::EstimationPlan& plan, Objective objective)
      : plan_(plan),
        objective_(objective),
        propagator_(plan.netlist()),
        bounds_(plan),
        tracker_(plan, propagator_, bounds_),
        ws_(plan) {
    assignment_.assign(plan.sourceCount(), false);
  }

  SearchResult run() {
    stats_.root_min_bound = tracker_.exactMin();
    stats_.root_max_bound = tracker_.exactMax();
    if (plan_.sourceCount() == 0) {
      evaluateLeaf();
    } else {
      descend(0);
    }
    SearchResult result;
    result.vector = best_vector_;
    result.leakage = best_leakage_;
    result.total = best_total_;
    result.exact = true;
    result.stats = stats_;
    return result;
  }

 private:
  void descend(std::size_t depth) {
    for (const bool v : {false, true}) {
      propagator_.assign(depth, v);
      tracker_.push(propagator_.lastImplied());
      assignment_[depth] = v;
      ++stats_.nodes_expanded;
      if (!shouldPrune()) {
        if (depth + 1 == plan_.sourceCount()) {
          evaluateLeaf();
        } else {
          descend(depth + 1);
        }
      }
      tracker_.pop();
      propagator_.backtrack();
    }
  }

  bool shouldPrune() {
    if (!has_best_) {
      return false;
    }
    // Cheap running-sum screen first; only candidates pay for the
    // drift-free re-sum that the actual decision uses.
    const bool candidate = objective_ == Objective::kMin
                               ? tracker_.runningMin() >= best_total_
                               : tracker_.runningMax() <= best_total_;
    if (!candidate) {
      return false;
    }
    ++stats_.prune_checks;
    const double bound = objective_ == Objective::kMin ? tracker_.exactMin()
                                                      : tracker_.exactMax();
    const bool prune = objective_ == Objective::kMin ? bound >= best_total_
                                                     : bound <= best_total_;
    if (prune) {
      ++stats_.prunes;
      if (best_total_ != 0.0) {
        const double ratio = objective_ == Objective::kMin
                                 ? bound / best_total_
                                 : best_total_ / bound;
        metrics().tightness.observe(ratio);
      }
    }
    return prune;
  }

  void evaluateLeaf() {
    plan_.estimateDelta(assignment_, ws_, scratch_);
    ++stats_.leaf_evals;
    const double total = scratch_.total.total();
    const bool better =
        !has_best_ || (objective_ == Objective::kMin ? total < best_total_
                                                     : total > best_total_);
    if (better) {
      has_best_ = true;
      best_total_ = total;
      best_leakage_ = scratch_.total;
      best_vector_ = assignment_;
      ++stats_.improvements;
    }
  }

  const core::EstimationPlan& plan_;
  Objective objective_;
  TernaryPropagator propagator_;
  LeakageBounds bounds_;
  BoundTracker tracker_;
  core::EstimationWorkspace ws_;
  core::EstimateResult scratch_;
  std::vector<bool> assignment_;
  std::vector<bool> best_vector_;
  device::LeakageBreakdown best_leakage_;
  double best_total_ = 0.0;
  bool has_best_ = false;
  SearchStats stats_;
};

}  // namespace

const char* toString(Objective objective) {
  return objective == Objective::kMin ? "min" : "max";
}

Objective objectiveFromString(const std::string& name) {
  if (name == "min") {
    return Objective::kMin;
  }
  if (name == "max") {
    return Objective::kMax;
  }
  throw Error("unknown objective: " + name + " (expected min or max)");
}

const char* toString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kExact:
      return "exact";
    case Algorithm::kHeuristic:
      return "heuristic";
  }
  return "?";
}

Algorithm algorithmFromString(const std::string& name) {
  if (name == "auto") {
    return Algorithm::kAuto;
  }
  if (name == "exact") {
    return Algorithm::kExact;
  }
  if (name == "heuristic") {
    return Algorithm::kHeuristic;
  }
  throw Error("unknown method: " + name +
              " (expected exact, heuristic or auto)");
}

bool lexLess(const std::vector<bool>& a, const std::vector<bool>& b) {
  require(a.size() == b.size(), "lexLess: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return !a[i];
    }
  }
  return false;
}

ExhaustiveResult exhaustiveSearch(const core::EstimationPlan& plan) {
  OBS_SPAN("search.exhaustive");
  metrics().exhaustive_runs.increment();
  const std::size_t n = plan.sourceCount();
  require(n <= 26, "exhaustiveSearch: too many sources (limit 26)");

  core::EstimationWorkspace ws(plan);
  core::EstimateResult scratch;
  std::vector<bool> pattern(n, false);

  ExhaustiveResult out;
  SearchStats stats;

  auto consider = [&](double total) {
    const bool first = stats.leaf_evals == 0;
    if (first || total < out.min.total ||
        (total == out.min.total && lexLess(pattern, out.min.vector))) {
      out.min.total = total;
      out.min.leakage = scratch.total;
      out.min.vector = pattern;
    }
    if (first || total > out.max.total ||
        (total == out.max.total && lexLess(pattern, out.max.vector))) {
      out.max.total = total;
      out.max.leakage = scratch.total;
      out.max.vector = pattern;
    }
    ++stats.leaf_evals;
    ++stats.nodes_expanded;
  };

  const std::uint64_t count = std::uint64_t{1} << n;
  plan.estimate(pattern, ws, scratch);
  consider(scratch.total.total());
  for (std::uint64_t i = 1; i < count; ++i) {
    // Gray-code walk: step i flips bit ctz(i), so every estimateDelta()
    // re-estimates a single source cone.
    const unsigned bit = static_cast<unsigned>(std::countr_zero(i));
    pattern[bit] = !pattern[bit];
    plan.estimateDelta(pattern, ws, scratch);
    consider(scratch.total.total());
  }
  out.min.exact = true;
  out.max.exact = true;
  out.min.stats = stats;
  out.max.stats = stats;
  recordStats(stats);
  return out;
}

SearchResult exactSearch(const core::EstimationPlan& plan,
                         Objective objective) {
  OBS_SPAN("search.exact", toString(objective));
  metrics().exact_runs.increment();
  require(plan.sourceCount() <= 30,
          "exactSearch: too many sources (limit 30); use the heuristic");
  BranchAndBound engine(plan, objective);
  SearchResult result = engine.run();
  recordStats(result.stats);
  return result;
}

SearchResult optimizeVector(const core::EstimationPlan& plan,
                            const SearchOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kExact:
      return exactSearch(plan, options.objective);
    case Algorithm::kHeuristic:
      return heuristicSearch(plan, options);
    case Algorithm::kAuto:
      break;
  }
  if (plan.sourceCount() <= options.exact_source_limit) {
    return exactSearch(plan, options.objective);
  }
  return heuristicSearch(plan, options);
}

namespace internal {

void countHeuristicRun() { metrics().heuristic_runs.increment(); }
void recordHeuristicStats(const SearchStats& stats) { recordStats(stats); }

}  // namespace internal

}  // namespace nanoleak::search
