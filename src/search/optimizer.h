/// @file
/// Min/max-leakage input-vector search over a compiled EstimationPlan
/// (the paper's sleep-vector application: standby leakage is strongly
/// input-vector dependent, so find the vector that minimizes - or, for
/// worst-case sign-off, maximizes - the circuit total).
///
/// Three engines share one result shape:
///
///  - exhaustiveSearch() enumerates all 2^n source vectors in Gray order
///    through EstimationPlan::estimateDelta. The correctness oracle for
///    everything else; feasible to ~20 inputs.
///  - exactSearch() is a branch-and-bound over the sources in index order
///    (value false before true, so the first incumbent at any value is
///    the lexicographically smallest), pruning with the optimistic
///    per-gate bounds of search/bounds.h. Returns the same bit-identical
///    optimum as exhaustive enumeration with far fewer evaluations.
///  - heuristicSearch() scales to circuits where exact search cannot:
///    greedy bound-guided construction plus restart-based local search
///    with an activity-scored input heap. Fully deterministic for a
///    fixed (seed, budget): restart r draws from
///    deriveStreamSeed(seed, r), so results are independent of thread
///    count and repeat bit-identically.
///
/// Determinism contract (docs/SEARCH.md): every engine is a pure function
/// of (plan, options). Ties on the objective value are broken toward the
/// lexicographically smallest vector in source order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/estimation_plan.h"
#include "device/leakage_breakdown.h"

namespace nanoleak::search {

/// Search direction over the circuit-total leakage.
enum class Objective {
  kMin,  ///< Sleep vector: minimize standby leakage.
  kMax,  ///< Worst-case vector: maximize standby leakage.
};

/// Engine selection.
enum class Algorithm {
  kAuto,       ///< Exact up to exact_source_limit sources, else heuristic.
  kExact,      ///< Branch-and-bound (provably optimal).
  kHeuristic,  ///< Greedy + restart local search (best-effort).
};

/// Objective name ("min"/"max").
const char* toString(Objective objective);
/// Parses toString(Objective) output. Throws nanoleak::Error otherwise.
Objective objectiveFromString(const std::string& name);
/// Algorithm name ("auto"/"exact"/"heuristic").
const char* toString(Algorithm algorithm);
/// Parses toString(Algorithm) output. Throws nanoleak::Error otherwise.
Algorithm algorithmFromString(const std::string& name);

/// Tuning knobs shared by optimizeVector() and the engines.
struct SearchOptions {
  /// Direction to optimize.
  Objective objective = Objective::kMin;
  /// Engine to use.
  Algorithm algorithm = Algorithm::kAuto;
  /// Heuristic evaluation budget: total number of full-vector leakage
  /// evaluations the heuristic may spend (ignored by exact search).
  std::size_t budget = 256;
  /// Master seed of the heuristic's restart streams.
  std::uint64_t seed = 1;
  /// kAuto dispatch threshold: exact search up to this many sources.
  std::size_t exact_source_limit = 20;
};

/// Work and pruning counters of one search run (also exported through the
/// search.* observability metrics).
struct SearchStats {
  /// Partial assignments explored (branch-and-bound tree edges), or
  /// vectors evaluated for exhaustive/heuristic runs.
  std::uint64_t nodes_expanded = 0;
  /// Full-vector leakage evaluations.
  std::uint64_t leaf_evals = 0;
  /// Subtrees cut by the bound test.
  std::uint64_t prunes = 0;
  /// Bound consultations that reached the drift-free re-sum.
  std::uint64_t prune_checks = 0;
  /// Local-search restarts performed.
  std::uint64_t restarts = 0;
  /// Incumbent improvements accepted.
  std::uint64_t improvements = 0;
  /// Circuit-total bound interval before any assignment.
  double root_min_bound = 0.0;
  /// See root_min_bound.
  double root_max_bound = 0.0;
};

/// Outcome of one search.
struct SearchResult {
  /// Optimal (or best-found) source vector, EstimationPlan source order.
  std::vector<bool> vector;
  /// Leakage decomposition at `vector` [A].
  device::LeakageBreakdown leakage;
  /// leakage.total(), the objective value [A].
  double total = 0.0;
  /// True when the result is provably optimal (exact/exhaustive engines).
  bool exact = false;
  /// Work counters.
  SearchStats stats;
};

/// Both extremes from one exhaustive sweep.
struct ExhaustiveResult {
  /// Minimum-leakage vector (lexicographic tie-break).
  SearchResult min;
  /// Maximum-leakage vector (lexicographic tie-break).
  SearchResult max;
};

/// Enumerates all 2^n vectors (n = plan.sourceCount() <= 26) in Gray
/// order and returns both extremes. The oracle the exact engine is tested
/// against.
ExhaustiveResult exhaustiveSearch(const core::EstimationPlan& plan);

/// Branch-and-bound search for the exact optimum (n <= 30 sources).
SearchResult exactSearch(const core::EstimationPlan& plan,
                         Objective objective);

/// Greedy + restart local search under options.budget evaluations.
/// Deterministic for fixed options; never claims exactness.
SearchResult heuristicSearch(const core::EstimationPlan& plan,
                             const SearchOptions& options);

/// Front door: dispatches per options.algorithm (kAuto picks exact for
/// plans with at most options.exact_source_limit sources).
SearchResult optimizeVector(const core::EstimationPlan& plan,
                            const SearchOptions& options);

/// True when `a` precedes `b` lexicographically in source order (false
/// before true at the first differing source). Requires equal sizes.
bool lexLess(const std::vector<bool>& a, const std::vector<bool>& b);

}  // namespace nanoleak::search
