#include "search/bounds.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace nanoleak::search {

using logic::GateId;
using logic::NetId;

namespace {

/// Worst-case |current| pin `pin` of `table` can inject into its net.
/// Covers the nominal value and, when iterative propagation can refine
/// pin currents from the stored surfaces, every surface value too.
double maxAbsPinCurrent(const core::VectorTable& table, std::size_t pin,
                        bool refinable) {
  double m = std::abs(table.pin_current[pin]);
  if (refinable && pin < table.pin_current_grid.size()) {
    for (double v : table.pin_current_grid[pin].values()) {
      m = std::max(m, std::abs(v));
    }
  }
  return m;
}

/// Worst-case |current| any pin of gate kind `kind` can inject, maximized
/// over the kind's input vectors.
double maxAbsPinCurrentOfPin(const std::vector<core::VectorTable>& tables,
                             std::size_t pin, bool refinable) {
  double m = 0.0;
  for (const core::VectorTable& t : tables) {
    m = std::max(m, maxAbsPinCurrent(t, pin, refinable));
  }
  return m;
}

/// Index of the first axis point >= cap (the whole axis when cap exceeds
/// it). Grid points up to this index bound any interpolation clamped to
/// [0, cap]: boundary values are convex combinations of the bracketing
/// columns, so extremes over the reachable rectangle are attained at
/// grid-point sums within the capped index range.
std::size_t capIndex(const core::Axis& axis, double cap) {
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (axis[i] >= cap) {
      return i;
    }
  }
  return axis.size() - 1;
}

}  // namespace

LeakageBounds::LeakageBounds(const core::EstimationPlan& plan) {
  const logic::LogicNetlist& netlist = plan.netlist();
  const core::LeakageLibrary& library = plan.library();
  const bool with_loading = plan.options().with_loading;
  const bool refinable = plan.options().propagation_iterations > 1;

  offset_.assign(netlist.gateCount() + 1, 0);
  for (GateId g = 0; g < netlist.gateCount(); ++g) {
    offset_[g + 1] =
        offset_[g] + (std::size_t{1} << netlist.gate(g).inputs.size());
  }
  vmin_.resize(offset_.back());
  vmax_.resize(offset_.back());

  // Worst-case |injection| every net can carry: the sum over its fanout
  // pins of each pin's worst-case |current|, plus DFF D-pin loads (the
  // boundary model charges an INV input current per D pin).
  std::vector<double> net_max_abs(netlist.netCount(), 0.0);
  double dff_pin_max = 0.0;
  if (!netlist.dffs().empty()) {
    dff_pin_max = std::max(
        maxAbsPinCurrent(library.table(gates::GateKind::kInv, 0), 0,
                         refinable),
        maxAbsPinCurrent(library.table(gates::GateKind::kInv, 1), 0,
                         refinable));
  }
  if (with_loading) {
    for (NetId net = 0; net < netlist.netCount(); ++net) {
      double sum = 0.0;
      for (const logic::PinRef& ref : netlist.fanout(net)) {
        const logic::Gate& gate = netlist.gate(ref.gate);
        sum += maxAbsPinCurrentOfPin(library.tables(gate.kind),
                                     static_cast<std::size_t>(ref.pin),
                                     refinable);
      }
      sum += static_cast<double>(netlist.dffLoadCount(net)) * dff_pin_max;
      net_max_abs[net] = sum;
    }
  }

  for (GateId g = 0; g < netlist.gateCount(); ++g) {
    const logic::Gate& gate = netlist.gate(g);
    const std::vector<core::VectorTable>& tables = library.tables(gate.kind);
    require(tables.size() == (std::size_t{1} << gate.inputs.size()),
            "LeakageBounds: table count mismatch");
    if (!with_loading) {
      for (std::size_t v = 0; v < tables.size(); ++v) {
        const double exact = tables[v].isolated_nominal.total();
        vmin_[offset_[g] + v] = exact - kRelativeSlack * std::abs(exact);
        vmax_[offset_[g] + v] = exact + kRelativeSlack * std::abs(exact);
      }
      continue;
    }

    // Reachable loading caps of this gate. IL sums |others| over loadable
    // pins (nets not driven by a primary input); |others| on a net is at
    // most the net's worst-case total minus nothing (a sound over-cover:
    // we do not subtract the pin's own contribution, which only widens
    // the cap). OL is |injection| of the output net.
    double il_cap = 0.0;
    for (NetId in : gate.inputs) {
      if (netlist.driverKind(in) != logic::DriverKind::kPrimaryInput) {
        il_cap += net_max_abs[in];
      }
    }
    const double ol_cap = net_max_abs[gate.output];

    for (std::size_t v = 0; v < tables.size(); ++v) {
      const core::VectorTable& t = tables[v];
      const std::size_t i_cap = capIndex(t.il_axis, il_cap);
      const std::size_t j_cap = capIndex(t.ol_axis, ol_cap);
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i <= i_cap; ++i) {
        for (std::size_t j = 0; j <= j_cap; ++j) {
          const double s =
              t.subthreshold.at(i, j) + t.gate.at(i, j) + t.btbt.at(i, j);
          lo = std::min(lo, s);
          hi = std::max(hi, s);
        }
      }
      vmin_[offset_[g] + v] = lo - kRelativeSlack * std::abs(lo);
      vmax_[offset_[g] + v] = hi + kRelativeSlack * std::abs(hi);
    }
  }
}

double LeakageBounds::maskMin(GateId g, std::uint32_t mask) const {
  require(mask != 0, "LeakageBounds: empty vector mask");
  double lo = std::numeric_limits<double>::infinity();
  const std::size_t base = offset_[g];
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const unsigned v = static_cast<unsigned>(std::countr_zero(m));
    lo = std::min(lo, vmin_[base + v]);
  }
  return lo;
}

double LeakageBounds::maskMax(GateId g, std::uint32_t mask) const {
  require(mask != 0, "LeakageBounds: empty vector mask");
  double hi = -std::numeric_limits<double>::infinity();
  const std::size_t base = offset_[g];
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const unsigned v = static_cast<unsigned>(std::countr_zero(m));
    hi = std::max(hi, vmax_[base + v]);
  }
  return hi;
}

BoundTracker::BoundTracker(const core::EstimationPlan& plan,
                           const TernaryPropagator& propagator,
                           const LeakageBounds& bounds)
    : netlist_(plan.netlist()), propagator_(propagator), bounds_(bounds) {
  const std::size_t gates = netlist_.gateCount();
  cur_min_.resize(gates);
  cur_max_.resize(gates);
  stamp_.assign(gates, 0);
  for (GateId g = 0; g < gates; ++g) {
    const std::size_t nv = std::size_t{1} << netlist_.gate(g).inputs.size();
    const std::uint32_t all =
        nv >= 32 ? 0xffffffffu : ((1u << nv) - 1u);
    cur_min_[g] = bounds_.maskMin(g, all);
    cur_max_[g] = bounds_.maskMax(g, all);
    sum_min_ += cur_min_[g];
    sum_max_ += cur_max_[g];
  }
}

void BoundTracker::push(std::span<const NetId> implied) {
  ++push_id_;
  level_start_.push_back(trail_.size());
  for (NetId net : implied) {
    for (const logic::PinRef& ref : netlist_.fanout(net)) {
      const GateId g = ref.gate;
      if (stamp_[g] == push_id_) {
        continue;  // Already refreshed at this level.
      }
      stamp_[g] = push_id_;
      trail_.push_back(Saved{g, cur_min_[g], cur_max_[g]});
      const std::uint32_t possible = propagator_.possibleVectors(g);
      const double lo = bounds_.maskMin(g, possible);
      const double hi = bounds_.maskMax(g, possible);
      sum_min_ += lo - cur_min_[g];
      sum_max_ += hi - cur_max_[g];
      cur_min_[g] = lo;
      cur_max_[g] = hi;
    }
  }
}

void BoundTracker::pop() {
  require(!level_start_.empty(), "BoundTracker: no level to pop");
  const std::size_t start = level_start_.back();
  level_start_.pop_back();
  while (trail_.size() > start) {
    const Saved& s = trail_.back();
    sum_min_ += s.min - cur_min_[s.gate];
    sum_max_ += s.max - cur_max_[s.gate];
    cur_min_[s.gate] = s.min;
    cur_max_[s.gate] = s.max;
    trail_.pop_back();
  }
}

double BoundTracker::exactMin() const {
  double sum = 0.0;
  for (double v : cur_min_) {
    sum += v;
  }
  return sum;
}

double BoundTracker::exactMax() const {
  double sum = 0.0;
  for (double v : cur_max_) {
    sum += v;
  }
  return sum;
}

}  // namespace nanoleak::search
