/// @file
/// Three-valued (0/1/unknown) circuit propagation with an assignment trail.
///
/// The branch-and-bound optimizer assigns source nets (primary inputs and
/// DFF outputs) one at a time; TernaryPropagator maintains, incrementally,
/// every net value those partial assignments already imply. A gate output
/// becomes known as soon as the known subset of its input pins forces one
/// logic level over all completions of the unknown pins (a controlling
/// value on a NAND pin, for example, fixes the output long before the
/// remaining pins are assigned).
///
/// The propagator mirrors a SAT solver's assignment trail: assign() opens
/// a decision level and records each net that transitions unknown -> known,
/// and backtrack() undoes exactly the latest level. Propagation is monotone
/// (values only ever move unknown -> known within a level, and an implied
/// value can never be contradicted by later decisions), which is what makes
/// the trail a complete undo log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gates/gate_library.h"
#include "logic/logic_netlist.h"

namespace nanoleak::search {

/// One net's three-valued logic level.
enum class Ternary : unsigned char {
  kFalse = 0,
  kTrue = 1,
  kUnknown = 2,
};

/// Truth table of a combinational gate kind packed into a bitmask: bit v
/// holds the output for input vector v (pin k of the vector in bit k,
/// matching core::vectorIndex()).
std::uint32_t truthMask(gates::GateKind kind);

/// Incremental three-valued simulation of a LogicNetlist under a growing
/// partial source assignment.
///
/// The netlist must outlive the propagator and stay unmodified. One
/// propagator belongs to one search; it is not thread-safe (searches on
/// different threads each build their own).
class TernaryPropagator {
 public:
  /// Compiles propagation structures for `netlist` (validated, acyclic).
  explicit TernaryPropagator(const logic::LogicNetlist& netlist);

  /// Number of assignable sources (primary inputs then DFF outputs, the
  /// same ordering EstimationPlan::estimate() expects).
  std::size_t sourceCount() const { return sources_.size(); }
  /// Number of decision levels currently on the trail.
  std::size_t level() const { return level_start_.size(); }
  /// Current three-valued level of a net.
  Ternary value(logic::NetId net) const { return value_[net]; }
  /// True when source `s` has been assigned at some open level.
  bool sourceAssigned(std::size_t s) const {
    return value_[sources_[s]] != Ternary::kUnknown;
  }

  /// Opens a decision level: assigns source `s` (currently unknown) to
  /// `v` and propagates every implied gate output.
  void assign(std::size_t s, bool v);
  /// Undoes the latest decision level (requires level() > 0).
  void backtrack();

  /// Nets set unknown -> known by the latest assign(), in propagation
  /// order (the decision net first). Valid until the next assign() or
  /// backtrack().
  std::span<const logic::NetId> lastImplied() const;

  /// Bitmask over input-vector indices of gate `g` consistent with the
  /// current net knowledge (bit v set = vector v still possible). Never
  /// zero; a singleton once all input pins are known.
  std::uint32_t possibleVectors(logic::GateId g) const;

 private:
  void enqueueFanout(logic::NetId net);
  /// Re-evaluates gate `g`; records its output on the trail when the
  /// possible vectors now agree on one level.
  void evaluateGate(logic::GateId g);

  const logic::LogicNetlist& netlist_;
  std::vector<logic::NetId> sources_;
  std::vector<Ternary> value_;
  std::vector<std::uint32_t> truth_;     // per gate, truthMask(kind)
  std::vector<std::size_t> topo_pos_;    // per gate, topological position
  std::vector<logic::GateId> topo_gate_;  // inverse of topo_pos_

  // Assignment trail: nets set at each level; level_start_[l] indexes the
  // first trail entry of level l.
  std::vector<logic::NetId> trail_;
  std::vector<std::size_t> level_start_;

  // Propagation worklist: binary min-heap of topological positions with a
  // queued flag per gate (the simulateDelta idiom), so gates re-evaluate
  // in dependency order and at most once per wave.
  std::vector<std::size_t> heap_;
  std::vector<char> queued_;
};

}  // namespace nanoleak::search
