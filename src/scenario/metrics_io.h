// Metrics snapshot export: the structured observability artifact the CLI
// writes next to (never into) golden outputs.
//
// A metrics document captures one suite execution: the process-wide
// obs::Snapshot at the end of the run plus the per-scenario snapshot
// deltas the runner attributed (scenarios run sequentially, so deltas
// are exact). Like traces, metrics are diagnostics - wall-clock numbers
// inside them vary run to run, and nothing here ever participates in
// golden serialization or comparison.
#pragma once

#include <string>

#include "scenario/runner.h"

namespace nanoleak::scenario {

/// Format tag written into every metrics document; bump when the schema
/// changes.
inline constexpr const char* kMetricsFormat = "nanoleak-metrics-v1";

/// JSON metrics document of one executed suite (trailing newline
/// included): {"format", "suite", "process" (full registry snapshot),
/// "scenarios": [{"name", "wall_seconds", "node_solves", "delta"}]}.
/// Keys inside snapshots are sorted; layout is fixed, so equal inputs
/// serialize to equal bytes.
std::string metricsJson(const SuiteResult& result);

/// Writes metricsJson() to `path`. Throws nanoleak::Error when the path
/// is not writable.
void saveMetricsFile(const std::string& path, const SuiteResult& result);

/// Writes obs::chromeTraceJson() - the trace of the current session - to
/// `path`. Throws nanoleak::Error when the path is not writable.
void saveTraceFile(const std::string& path);

/// Human-readable per-scenario stats tables for `nanoleak stats` and
/// `nanoleak run --time`: one deterministic table of per-scenario wall
/// time / solver work, then a suite-wide counter summary. `format` is
/// "table" or "csv" (same contract as the other CLI tables).
std::string statsReport(const SuiteResult& result,
                        const std::string& format = "table");

}  // namespace nanoleak::scenario
