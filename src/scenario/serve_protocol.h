// Wire protocol of `nanoleak serve`: length-prefixed JSON request /
// response frames over a Unix or TCP socket.
//
// Framing: every message is a 4-byte big-endian byte length followed by
// exactly that many bytes of UTF-8 JSON (one complete document). The
// length covers the JSON only and must not exceed kMaxServeFrameBytes.
//
// Requests name an operation (`op`) and its inputs; responses echo the
// request `id` and carry a status plus a payload. For the estimation
// operations the payload is the *exact* canonical golden serialization
// (serializeSuite bytes) of the result - the same bytes `nanoleak run
// <target> --format json` prints - so clients can byte-diff daemon
// responses against one-shot CLI output. The codec reuses util/json for
// parsing and escaping; identical requests always encode to identical
// bytes and decode to identical scenarios (synthesized inline-scenario
// names are pure functions of the request fields), which is what makes
// the serve determinism contract testable.
#pragma once

#include <cstddef>
#include <string>

#include "scenario/scenario.h"

namespace nanoleak::scenario {

/// Format tag required in every request and written into every response.
inline constexpr const char* kServeFormat = "nanoleak-serve-v1";

/// Upper bound on one frame's JSON byte length; a peer announcing more
/// is malformed (or hostile) and the connection is dropped.
inline constexpr std::size_t kMaxServeFrameBytes = 64u * 1024u * 1024u;

/// Operations a request can name.
enum class ServeOp {
  kPing,        ///< liveness probe; empty payload
  kRun,         ///< run a registry suite/scenario by name (`target`)
  kEstimate,    ///< inline plan-estimate scenario (circuit, flavour, ...)
  kMonteCarlo,  ///< inline Monte-Carlo scenario (samples, seed, ...)
  kThermal,     ///< inline thermal-sweep scenario (tmin/tmax/points, ...)
  kStats,       ///< obs registry snapshot (diagnostic; not deterministic)
  kShutdown,    ///< acknowledge, then drain and stop the daemon
};

const char* toString(ServeOp op);
/// Parses "ping" / "run" / "estimate" / "mc" / "thermal" / "stats" /
/// "shutdown". Throws nanoleak::Error for unknown names.
ServeOp serveOpFromString(const std::string& name);

/// Response status. The non-ok values are the daemon's complete error
/// taxonomy (documented in docs/RESILIENCE.md): every failed request
/// maps to exactly one of them.
enum class ServeStatus {
  kOk,                ///< payload valid
  kError,             ///< request failed; `message` says why
  kBusy,              ///< admission queue full; retry after `retry_after_ms`
  kOverloaded,        ///< tenant over quota; retry after `retry_after_ms`
  kDeadlineExceeded,  ///< request's `deadline_ms` elapsed before completion
  kShuttingDown,      ///< daemon is draining; no new work accepted
};

const char* toString(ServeStatus status);
/// Parses the toString(ServeStatus) spellings. Throws nanoleak::Error.
ServeStatus serveStatusFromString(const std::string& name);

/// One decoded request. For the inline operations (estimate / mc /
/// thermal) `scenario` holds the fully resolved workload including a
/// synthesized deterministic name; for kRun `target` names the registry
/// suite or scenario.
struct ServeRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string id;
  ServeOp op = ServeOp::kPing;
  /// kRun only: registry suite or scenario name.
  std::string target;
  /// Inline ops only: the resolved scenario.
  Scenario scenario;
  /// Estimation ops: completion budget in milliseconds, measured from
  /// request arrival (queue wait counts). 0 = unbounded. A request past
  /// its budget answers `deadline_exceeded`.
  std::uint64_t deadline_ms = 0;
  /// Estimation ops: tenant identity for quota accounting and admission
  /// fairness lanes. Empty = per-connection identity (the default).
  std::string tenant;
};

/// One response. `payload` carries raw bytes (canonical suite JSON for
/// estimation ops, a metrics snapshot for kStats); it is escaped into a
/// JSON string on the wire and restored exactly by decodeResponse.
struct ServeResponse {
  /// The request's id, echoed.
  std::string id;
  ServeStatus status = ServeStatus::kOk;
  /// Result bytes (empty for ping/shutdown and every non-ok status).
  std::string payload;
  /// Human-readable error detail (empty on ok).
  std::string message;
  /// `busy`/`overloaded` only: deterministic hint for when a retry can
  /// succeed, in milliseconds. 0 = no hint (omitted on the wire, so ok
  /// responses stay byte-identical to pre-resilience daemons).
  std::uint64_t retry_after_ms = 0;
};

/// Canonical JSON encoding of a request (fixed key order; identical
/// requests encode to identical bytes).
std::string encodeRequest(const ServeRequest& request);

/// Parses and validates one request document. Resolves inline scenarios
/// (applying defaults and synthesizing the deterministic name). Throws
/// nanoleak::ParseError on malformed JSON and nanoleak::Error on schema
/// violations (wrong format tag, unknown op, missing fields).
ServeRequest decodeRequest(const std::string& json);

/// Canonical JSON encoding of a response (fixed key order).
std::string encodeResponse(const ServeResponse& response);

/// Parses one response document. Throws like decodeRequest.
ServeResponse decodeResponse(const std::string& json);

}  // namespace nanoleak::scenario
