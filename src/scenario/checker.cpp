#include "scenario/checker.h"

#include <cmath>
#include <sstream>

#include "scenario/golden_file.h"

namespace nanoleak::scenario {

namespace {

Tolerance toleranceFor(const CheckOptions& options,
                       const std::string& metric_name) {
  const auto it = options.metric_overrides.find(metric_name);
  return it != options.metric_overrides.end() ? it->second
                                              : options.tolerance;
}

void checkScenario(const ScenarioResult& golden, const ScenarioResult& live,
                   const CheckOptions& options, CheckReport& report) {
  for (const Metric& golden_metric : golden.metrics) {
    const Metric* live_metric = live.find(golden_metric.name);
    if (live_metric == nullptr) {
      report.issues.push_back({golden.name, golden_metric.name,
                               "metric missing from live results"});
      continue;
    }
    ++report.metrics_checked;
    const Tolerance tol = toleranceFor(options, golden_metric.name);
    const double diff = std::abs(live_metric->value - golden_metric.value);
    const double allowed =
        std::max(tol.abs, tol.rel * std::abs(golden_metric.value));
    // Negated <= so a NaN anywhere (live, golden, or their difference)
    // fails the check instead of slipping through a false comparison.
    if (!(diff <= allowed)) {
      std::ostringstream message;
      message << "golden " << formatCanonical(golden_metric.value)
              << ", live " << formatCanonical(live_metric->value)
              << ", |diff| " << formatCanonical(diff) << " > allowed "
              << formatCanonical(allowed) << " (abs "
              << formatCanonical(tol.abs) << ", rel "
              << formatCanonical(tol.rel) << ")";
      report.issues.push_back(
          {golden.name, golden_metric.name, message.str()});
    }
  }
  for (const Metric& live_metric : live.metrics) {
    if (golden.find(live_metric.name) == nullptr) {
      report.issues.push_back({golden.name, live_metric.name,
                               "metric absent from golden (re-record?)"});
    }
  }
}

}  // namespace

std::string CheckReport::format() const {
  std::ostringstream out;
  out << (passed() ? "PASS" : "FAIL") << ": " << scenarios_checked
      << " scenario(s), " << metrics_checked << " metric(s) checked, "
      << issues.size() << " issue(s)\n";
  for (const CheckIssue& issue : issues) {
    out << "  [" << issue.scenario << "]";
    if (!issue.metric.empty()) {
      out << " " << issue.metric << ":";
    }
    out << " " << issue.message << "\n";
  }
  return out.str();
}

CheckReport checkSuite(const SuiteResult& golden, const SuiteResult& live,
                       const CheckOptions& options) {
  CheckReport report;
  if (golden.suite != live.suite) {
    report.issues.push_back({golden.suite, "",
                             "suite name mismatch: golden '" + golden.suite +
                                 "' vs live '" + live.suite + "'"});
  }
  for (const ScenarioResult& golden_scenario : golden.scenarios) {
    const ScenarioResult* live_scenario = live.find(golden_scenario.name);
    if (live_scenario == nullptr) {
      report.issues.push_back({golden_scenario.name, "",
                               "scenario missing from live results"});
      continue;
    }
    ++report.scenarios_checked;
    checkScenario(golden_scenario, *live_scenario, options, report);
  }
  for (const ScenarioResult& live_scenario : live.scenarios) {
    if (golden.find(live_scenario.name) == nullptr) {
      report.issues.push_back({live_scenario.name, "",
                               "scenario absent from golden (re-record?)"});
    }
  }
  return report;
}

}  // namespace nanoleak::scenario
