// The `nanoleak` command-line driver, as a library function so tests can
// drive it in-process (exit codes, usage text, output) without spawning
// binaries. tools/nanoleak_cli.cpp is the thin main() wrapper.
#pragma once

#include <iosfwd>

namespace nanoleak::scenario {

/// CLI exit codes.
inline constexpr int kExitOk = 0;
/// Runtime failure: a check mismatch or an error while running.
inline constexpr int kExitFailure = 1;
/// Usage error: unknown command, missing or malformed arguments.
inline constexpr int kExitUsage = 2;

/// Runs `nanoleak <command> ...` against builtinRegistry().
///
/// Commands:
///   list                      scenario and suite catalogue
///   run <suite|scenario>      execute and print metrics
///   record <suite> --out F    execute and write a golden JSON file
///   check <suite> --golden F  execute and diff against a golden file
///
/// Common options: --threads N, --format table|csv|json (list/run),
/// --abs-tol X, --rel-tol X, --exact (check).
///
/// Never throws: errors are reported on `err` and mapped to exit codes.
int cliMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace nanoleak::scenario
