// Declarative scenario model: one named workload = a circuit x a
// technology flavour x a temperature x an input-vector policy x an
// estimation method. Scenarios are plain data - the registry enumerates
// them, the runner executes them through the engine, and the golden
// framework pins their results (the cross-product the paper validates in
// Figs. 5-12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "device/device_params.h"
#include "logic/logic_netlist.h"
#include "search/optimizer.h"

namespace nanoleak::scenario {

/// How a scenario picks the input vectors it evaluates.
struct VectorPolicy {
  enum class Kind {
    kFixed,   ///< one fixed pattern (empty `fixed` = all zeros)
    kRandom,  ///< `count` seeded random patterns
    kWalk,    ///< seeded random start, then `count - 1` single-bit flips
  };

  Kind kind = Kind::kRandom;
  /// kFixed: the pattern. Empty means all zeros; otherwise its size must
  /// match the circuit's source count.
  std::vector<bool> fixed;
  /// kRandom / kWalk: RNG seed.
  std::uint64_t seed = 1;
  /// kRandom: number of vectors; kWalk: total walk length including the
  /// starting pattern. Must be >= 1.
  std::size_t count = 16;

  static VectorPolicy fixedPattern(std::vector<bool> bits = {});
  static VectorPolicy random(std::size_t count, std::uint64_t seed);
  static VectorPolicy walk(std::size_t steps, std::uint64_t seed);
};

/// Expands a policy into concrete source patterns for a `bits`-wide
/// circuit. Deterministic: a pure function of (policy, bits). Throws
/// nanoleak::Error on a fixed-pattern width mismatch or count == 0.
std::vector<std::vector<bool>> expandVectors(const VectorPolicy& policy,
                                             std::size_t bits);

/// How the scenario evaluates its workload.
enum class Method {
  kPlanEstimate,  ///< shared EstimationPlan via BatchRunner::runPatterns
  kDeltaWalk,     ///< sequential estimateDelta on one warm workspace
  kGolden,        ///< full transistor-level goldenLeakage + isolated sum
  kMonteCarlo,    ///< engine McSweep population (gate-level Fig. 10 fixture)
  kThermalSweep,  ///< thermal::ThermalSweepEngine curve + model fits
  kOptimize,      ///< search::optimizeVector sleep/worst-vector search
};

const char* toString(Method method);
/// Parses "estimate" / "walk" / "golden" / "mc" / "thermal" /
/// "optimize". Throws nanoleak::Error.
Method methodFromString(const std::string& name);

/// Technology preset by flavour name: "d25s", "d25g", "d25jn" (the paper's
/// D25-S/G/JN devices) or "medici" (the 50 nm Fig. 4 device). Throws
/// nanoleak::Error for unknown flavours.
device::Technology technologyForFlavour(const std::string& flavour);
const std::vector<std::string>& knownFlavours();

/// kThermalSweep only: the temperature grid the scenario sweeps (the
/// scenario's scalar temperature_k is ignored by that method).
struct ThermalSpec {
  double t_min_k = 233.0;
  double t_max_k = 398.0;
  /// Grid points, endpoints included (>= 2 for the fits to run).
  std::size_t points = 8;
};

/// kOptimize only: what the vector search looks for and how hard.
struct OptimizeSpec {
  /// Search direction (sleep vector = min, worst case = max).
  search::Objective objective = search::Objective::kMin;
  /// Engine (kAuto = exact up to the source limit, else heuristic).
  search::Algorithm algorithm = search::Algorithm::kAuto;
  /// Heuristic evaluation budget (ignored by the exact engine).
  std::size_t budget = 128;
  /// Heuristic restart-stream master seed.
  std::uint64_t seed = 20050307;
};

/// One named workload.
struct Scenario {
  std::string name;
  /// Circuit name for buildCircuit(); ignored by kMonteCarlo.
  std::string circuit = "c17";
  std::string flavour = "d25s";
  double temperature_k = 300.0;
  /// false = the paper's traditional no-loading accumulation.
  bool with_loading = true;
  Method method = Method::kPlanEstimate;
  VectorPolicy vectors;
  /// Characterization solver path for the estimate methods' tables.
  /// Golden-pinned scenarios stay on the scalar scan-order continuation
  /// path, whose results are byte-stable across SIMD backends; the
  /// batched smoke scenarios opt into SolverPath::kBatched.
  core::CharacterizationOptions::SolverPath char_solver_path =
      core::CharacterizationOptions::SolverPath::kCompiledWarmStart;
  /// kMonteCarlo only.
  std::size_t mc_samples = 64;
  std::uint64_t mc_seed = 20050307;
  /// kThermalSweep only.
  ThermalSpec thermal;
  /// kOptimize only.
  OptimizeSpec optimize;
};

/// The scenario's flavour preset with its temperature applied.
device::Technology technologyFor(const Scenario& sc);

/// Builds a named circuit: "c17", "inv_chain8", "inv_chain32",
/// "fanout_star6", "rca4", "rca8", "alu88", "mult88", any iscasSpec() name
/// (seeded synthetics), or a path ending in ".bench". Throws
/// nanoleak::Error for unknown names.
logic::LogicNetlist buildCircuit(const std::string& name);

/// Every built-in circuit name (no .bench paths), small to large.
std::vector<std::string> builtinCircuitNames();

/// The paper's Fig. 12 roster: the ISCAS89 synthetics in published order,
/// then alu88 and mult88. The single source of truth for benches and
/// suites that walk the paper's circuit table.
std::vector<std::string> fig12CircuitNames();

}  // namespace nanoleak::scenario
