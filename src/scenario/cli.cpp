#include "scenario/cli.h"

#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/estimation_plan.h"
#include "obs/trace.h"
#include "scenario/checker.h"
#include "scenario/golden_file.h"
#include "scenario/metrics_io.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/serve_protocol.h"
#include "search/optimizer.h"
#include "serve/client.h"
#include "serve/server.h"
#include "thermal/thermal_sweep.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/table_writer.h"

namespace nanoleak::scenario {

namespace {

constexpr const char* kUsage = R"(nanoleak - scenario suites & golden regression driver

usage:
  nanoleak list [--format table|csv]
  nanoleak run <suite|scenario> [--threads N] [--format table|csv|json]
               [--time] [--metrics-out FILE] [--trace-out FILE]
  nanoleak stats <suite|scenario> [--threads N] [--format table|csv]
                 [--metrics-out FILE] [--trace-out FILE]
  nanoleak record <suite> --out FILE [--threads N]
  nanoleak check <suite> --golden FILE [--threads N]
                 [--abs-tol X] [--rel-tol X] [--exact]
  nanoleak thermal <circuit> [--flavour F] [--tmin K] [--tmax K]
                   [--points N] [--vectors N] [--seed S] [--no-loading]
                   [--cold] [--threads N] [--format table|csv]
                   [--metrics-out FILE] [--trace-out FILE]
  nanoleak optimize <circuit> [--objective min|max]
                    [--method exact|heuristic|auto] [--budget N]
                    [--seed S] [--flavour F] [--temp K] [--no-loading]
                    [--threads N] [--format table|csv]
                    [--metrics-out FILE] [--trace-out FILE]
  nanoleak serve [--socket PATH] [--port N] [--workers N] [--threads N]
                 [--queue N] [--plan-cache N] [--table-cache N]
                 [--idle-timeout-ms N] [--write-timeout-ms N]
                 [--quota-rps X] [--quota-burst X] [--faults SPEC]
                 [--metrics-out FILE]
  nanoleak client <op> [name] (--socket PATH | --port N) [--id S]
                  [--flavour F] [--temp K] [--policy random|walk]
                  [--vectors N] [--seed S] [--samples N] [--tmin K]
                  [--tmax K] [--points N] [--no-loading]
                  [--timeout-ms N] [--retries N] [--deadline-ms N]
                  [--tenant S]

serve runs the estimation daemon (at least one of --socket / --port;
--port 0 picks an ephemeral port and prints it) until SIGINT/SIGTERM or
a client shutdown op; queued requests finish before it exits. client
sends one request - op is ping|run|estimate|mc|thermal|stats|shutdown,
`name` the registry target (run) or circuit (estimate/thermal) - and
prints the response payload verbatim, so `client run S` output can be
byte-diffed against `run S --format json`. See docs/SERVE.md.

resilience: serve honors per-request deadlines, per-tenant quotas
(--quota-rps/--quota-burst), idle/write timeouts, and deterministic
fault injection (--faults SPEC or NANOLEAK_FAULTS); client gets bounded
waits (--timeout-ms) and seeded-backoff retry (--retries). See
docs/RESILIENCE.md.

observability: --metrics-out writes a nanoleak-metrics-v1 JSON snapshot,
--trace-out a Chrome trace-event JSON (chrome://tracing / Perfetto).
Both are diagnostics; results stay byte-identical with them enabled.

exit codes: 0 success, 1 run/check failure, 2 usage error
)";

/// Signals a usage error; caught at the cliMain boundary.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

struct ParsedArgs {
  std::string command;
  std::vector<std::string> positionals;
  int threads = 0;
  std::string format = "table";
  std::string out_path;
  std::string golden_path;
  std::string metrics_out_path;
  std::string trace_out_path;
  Tolerance tolerance;
  bool exact = false;
  bool time = false;
  // `thermal` options.
  std::string flavour = "d25s";
  double t_min_k = 233.0;
  double t_max_k = 398.0;
  std::size_t t_points = 8;
  std::size_t vectors = 12;
  std::uint64_t seed = 20050307;
  bool no_loading = false;
  bool cold = false;
  // `optimize` options.
  std::string objective = "min";
  std::string search_method = "auto";
  std::size_t budget = 256;
  // `serve` / `client` options.
  std::string socket_path;
  int port = -1;
  int workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t plan_cache_entries = 32;
  std::size_t table_cache_entries = 512;
  std::size_t samples = 64;
  double temp_k = 300.0;
  std::string request_id;
  std::string policy = "random";
  // `serve` resilience options.
  int idle_timeout_ms = 0;
  int write_timeout_ms = 10000;
  double quota_rps = 0.0;
  double quota_burst = 8.0;
  std::string faults_spec;
  // `client` resilience options.
  int timeout_ms = -1;
  int retries = 0;
  std::uint64_t deadline_ms = 0;
  std::string tenant;
  /// Flags that actually appeared, for per-command validation.
  std::vector<std::string> seen_flags;
};

/// True when the user typed `flag` (vs. the struct default), for flags
/// whose serve-protocol default differs from the sibling CLI command's.
bool sawFlag(const ParsedArgs& args, const std::string& flag) {
  for (const std::string& seen : args.seen_flags) {
    if (seen == flag) {
      return true;
    }
  }
  return false;
}

/// Rejects flags the command does not consume - silently ignoring
/// `record --rel-tol` or `run --out` would let the user believe the flag
/// took effect.
void requireOnlyFlags(const ParsedArgs& args,
                      const std::vector<std::string>& allowed) {
  for (const std::string& flag : args.seen_flags) {
    bool ok = false;
    for (const std::string& candidate : allowed) {
      ok = ok || candidate == flag;
    }
    if (!ok) {
      throw UsageError("option '" + flag + "' does not apply to '" +
                       args.command + "'");
    }
  }
}

long parseLong(const std::string& value, long min, long max,
               const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      parsed < min || parsed > max) {
    throw UsageError("malformed " + what + " '" + value +
                     "' (want an integer in [" + std::to_string(min) + ", " +
                     std::to_string(max) + "])");
  }
  return parsed;
}

double parseDouble(const std::string& value, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  // !(parsed >= 0.0) alone rejects negatives and NaN but passes +inf
  // (strtod accepts "inf"/"infinity"), which would reach e.g. the thermal
  // grid as a "valid" temperature - reject every non-finite value.
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed) || !(parsed >= 0.0)) {
    throw UsageError("malformed " + what + " '" + value +
                     "' (want a finite non-negative number)");
  }
  return parsed;
}

ParsedArgs parseArgs(int argc, const char* const* argv) {
  ParsedArgs args;
  if (argc < 2) {
    throw UsageError("missing command");
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw UsageError(std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (!arg.empty() && arg[0] == '-') {
      args.seen_flags.push_back(arg);
    }
    if (arg == "--threads") {
      args.threads = static_cast<int>(
          parseLong(value("--threads"), 0, INT_MAX, "--threads"));
    } else if (arg == "--format") {
      args.format = value("--format");
      if (args.format != "table" && args.format != "csv" &&
          args.format != "json") {
        throw UsageError("unknown --format '" + args.format +
                         "' (want table|csv|json)");
      }
    } else if (arg == "--out") {
      args.out_path = value("--out");
    } else if (arg == "--metrics-out") {
      args.metrics_out_path = value("--metrics-out");
    } else if (arg == "--trace-out") {
      args.trace_out_path = value("--trace-out");
    } else if (arg == "--golden") {
      args.golden_path = value("--golden");
    } else if (arg == "--abs-tol") {
      args.tolerance.abs = parseDouble(value("--abs-tol"), "--abs-tol");
    } else if (arg == "--rel-tol") {
      args.tolerance.rel = parseDouble(value("--rel-tol"), "--rel-tol");
    } else if (arg == "--exact") {
      args.exact = true;
    } else if (arg == "--time") {
      args.time = true;
    } else if (arg == "--flavour") {
      args.flavour = value("--flavour");
    } else if (arg == "--tmin") {
      args.t_min_k = parseDouble(value("--tmin"), "--tmin");
    } else if (arg == "--tmax") {
      args.t_max_k = parseDouble(value("--tmax"), "--tmax");
    } else if (arg == "--points") {
      args.t_points = static_cast<std::size_t>(
          parseLong(value("--points"), 2, 4096, "--points"));
    } else if (arg == "--vectors") {
      args.vectors = static_cast<std::size_t>(
          parseLong(value("--vectors"), 1, 1000000, "--vectors"));
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(
          parseLong(value("--seed"), 0, LONG_MAX, "--seed"));
    } else if (arg == "--no-loading") {
      args.no_loading = true;
    } else if (arg == "--objective") {
      args.objective = value("--objective");
      if (args.objective != "min" && args.objective != "max") {
        throw UsageError("unknown --objective '" + args.objective +
                         "' (want min|max)");
      }
    } else if (arg == "--method") {
      args.search_method = value("--method");
      if (args.search_method != "exact" && args.search_method != "heuristic" &&
          args.search_method != "auto") {
        throw UsageError("unknown --method '" + args.search_method +
                         "' (want exact|heuristic|auto)");
      }
    } else if (arg == "--budget") {
      args.budget = static_cast<std::size_t>(
          parseLong(value("--budget"), 1, 1000000000, "--budget"));
    } else if (arg == "--cold") {
      args.cold = true;
    } else if (arg == "--socket") {
      args.socket_path = value("--socket");
    } else if (arg == "--port") {
      args.port =
          static_cast<int>(parseLong(value("--port"), 0, 65535, "--port"));
    } else if (arg == "--workers") {
      args.workers = static_cast<int>(
          parseLong(value("--workers"), 1, 1024, "--workers"));
    } else if (arg == "--queue") {
      args.queue_capacity = static_cast<std::size_t>(
          parseLong(value("--queue"), 0, 1000000, "--queue"));
    } else if (arg == "--plan-cache") {
      args.plan_cache_entries = static_cast<std::size_t>(
          parseLong(value("--plan-cache"), 0, 1000000, "--plan-cache"));
    } else if (arg == "--table-cache") {
      args.table_cache_entries = static_cast<std::size_t>(
          parseLong(value("--table-cache"), 0, 1000000, "--table-cache"));
    } else if (arg == "--samples") {
      args.samples = static_cast<std::size_t>(
          parseLong(value("--samples"), 1, 1000000, "--samples"));
    } else if (arg == "--temp") {
      args.temp_k = parseDouble(value("--temp"), "--temp");
    } else if (arg == "--idle-timeout-ms") {
      args.idle_timeout_ms = static_cast<int>(parseLong(
          value("--idle-timeout-ms"), 0, INT_MAX, "--idle-timeout-ms"));
    } else if (arg == "--write-timeout-ms") {
      args.write_timeout_ms = static_cast<int>(parseLong(
          value("--write-timeout-ms"), 0, INT_MAX, "--write-timeout-ms"));
    } else if (arg == "--quota-rps") {
      args.quota_rps = parseDouble(value("--quota-rps"), "--quota-rps");
    } else if (arg == "--quota-burst") {
      args.quota_burst = parseDouble(value("--quota-burst"), "--quota-burst");
    } else if (arg == "--faults") {
      args.faults_spec = value("--faults");
    } else if (arg == "--timeout-ms") {
      args.timeout_ms = static_cast<int>(
          parseLong(value("--timeout-ms"), 0, INT_MAX, "--timeout-ms"));
    } else if (arg == "--retries") {
      args.retries = static_cast<int>(
          parseLong(value("--retries"), 0, 1000, "--retries"));
    } else if (arg == "--deadline-ms") {
      args.deadline_ms = static_cast<std::uint64_t>(
          parseLong(value("--deadline-ms"), 1, LONG_MAX, "--deadline-ms"));
    } else if (arg == "--tenant") {
      args.tenant = value("--tenant");
    } else if (arg == "--id") {
      args.request_id = value("--id");
    } else if (arg == "--policy") {
      args.policy = value("--policy");
      if (args.policy != "random" && args.policy != "walk") {
        throw UsageError("unknown --policy '" + args.policy +
                         "' (want random|walk)");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      throw UsageError("unknown option '" + arg + "'");
    } else {
      args.positionals.push_back(arg);
    }
  }
  return args;
}

/// Scientific-notation cell for leakage currents (fixed-precision
/// formatDouble would render nanoamps as 0.0000).
std::string formatSci(double value, int precision = 4) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

std::string describeTemperature(const Scenario& sc) {
  if (sc.method == Method::kThermalSweep) {
    return formatDouble(sc.thermal.t_min_k, 0) + "-" +
           formatDouble(sc.thermal.t_max_k, 0);
  }
  return formatDouble(sc.temperature_k, 0);
}

std::string describeVectors(const Scenario& sc) {
  if (sc.method == Method::kMonteCarlo) {
    return std::to_string(sc.mc_samples) + " samples";
  }
  if (sc.method == Method::kOptimize) {
    // The search picks its own vectors; the policy is ignored.
    return std::string(toString(sc.optimize.objective)) + " search";
  }
  switch (sc.vectors.kind) {
    case VectorPolicy::Kind::kFixed:
      return "fixed";
    case VectorPolicy::Kind::kRandom:
      return std::to_string(sc.vectors.count) + " random";
    case VectorPolicy::Kind::kWalk:
      return std::to_string(sc.vectors.count) + "-step walk";
  }
  return "?";
}

void printTable(const TableWriter& table, const std::string& format,
                std::ostream& out) {
  if (format == "csv") {
    table.printCsv(out);
  } else {
    table.printText(out);
  }
}

/// Starts a fresh trace session when --trace-out was passed (coarse
/// level: phase spans only, so tracing stays cheap enough for every run).
void beginTracingIfRequested(const ParsedArgs& args) {
  if (!args.trace_out_path.empty()) {
    obs::enableTracing(obs::TraceLevel::kCoarse);
  }
}

/// Writes the requested observability artifacts after the workload ran.
/// Silent on success: `run --format json` streams the canonical golden
/// JSON to stdout, which a status line would corrupt.
void writeObsArtifacts(const ParsedArgs& args, const SuiteResult& result) {
  if (!args.metrics_out_path.empty()) {
    saveMetricsFile(args.metrics_out_path, result);
  }
  if (!args.trace_out_path.empty()) {
    obs::disableTracing();
    saveTraceFile(args.trace_out_path);
  }
}

int runList(const Registry& registry, const ParsedArgs& args,
            std::ostream& out) {
  requireOnlyFlags(args, {"--format"});
  if (!args.positionals.empty()) {
    throw UsageError("list takes no arguments");
  }
  if (args.format == "json") {
    throw UsageError("list supports --format table|csv only");
  }
  TableWriter scenarios({"scenario", "method", "circuit", "flavour", "T [K]",
                         "loading", "vectors"});
  for (const std::string& name : registry.names()) {
    const Scenario& sc = registry.get(name);
    scenarios.addRow({sc.name, toString(sc.method),
                      sc.method == Method::kMonteCarlo ? "-" : sc.circuit,
                      sc.flavour, describeTemperature(sc),
                      sc.with_loading ? "on" : "off", describeVectors(sc)});
  }
  printTable(scenarios, args.format, out);
  out << "\n";
  TableWriter suites({"suite", "scenarios"});
  for (const std::string& name : registry.suiteNames()) {
    suites.addRow({name, std::to_string(registry.suite(name).size())});
  }
  printTable(suites, args.format, out);
  return kExitOk;
}

int runRun(const Registry& registry, const ParsedArgs& args,
           std::ostream& out) {
  requireOnlyFlags(args, {"--threads", "--format", "--time", "--metrics-out",
                          "--trace-out"});
  if (args.positionals.size() != 1) {
    throw UsageError("run takes exactly one suite or scenario name");
  }
  if (args.time && args.format == "json") {
    // The JSON output is the canonical golden serialization; timing is a
    // diagnostic and deliberately never part of it.
    throw UsageError("--time supports --format table|csv only");
  }
  beginTracingIfRequested(args);
  const SuiteResult result =
      runSuite(registry, args.positionals[0], {args.threads});
  writeObsArtifacts(args, result);
  if (args.format == "json") {
    out << serializeSuite(result);
    return kExitOk;
  }
  TableWriter table({"scenario", "metric", "value"});
  for (const ScenarioResult& scenario : result.scenarios) {
    for (const Metric& metric : scenario.metrics) {
      table.addRow({scenario.name, metric.name,
                    formatCanonical(metric.value)});
    }
  }
  printTable(table, args.format, out);
  if (args.time) {
    // Timing now rides on the per-scenario registry deltas: one
    // deterministic stats layout at the end of the run.
    out << "\n" << statsReport(result, args.format);
  }
  return kExitOk;
}

int runStats(const Registry& registry, const ParsedArgs& args,
             std::ostream& out) {
  requireOnlyFlags(args, {"--threads", "--format", "--metrics-out",
                          "--trace-out"});
  if (args.positionals.size() != 1) {
    throw UsageError("stats takes exactly one suite or scenario name");
  }
  if (args.format == "json") {
    throw UsageError(
        "stats supports --format table|csv only (use --metrics-out for the "
        "JSON snapshot)");
  }
  beginTracingIfRequested(args);
  const SuiteResult result =
      runSuite(registry, args.positionals[0], {args.threads});
  writeObsArtifacts(args, result);
  out << statsReport(result, args.format);
  return kExitOk;
}

int runRecord(const Registry& registry, const ParsedArgs& args,
              std::ostream& out) {
  requireOnlyFlags(args, {"--out", "--threads"});
  if (args.positionals.size() != 1) {
    throw UsageError("record takes exactly one suite name");
  }
  if (args.out_path.empty()) {
    throw UsageError("record requires --out FILE");
  }
  const SuiteResult result =
      runSuite(registry, args.positionals[0], {args.threads});
  saveSuiteFile(args.out_path, result);
  out << "recorded " << result.scenarios.size() << " scenario(s) of suite '"
      << result.suite << "' to " << args.out_path << "\n";
  return kExitOk;
}

int runCheck(const Registry& registry, const ParsedArgs& args,
             std::ostream& out) {
  requireOnlyFlags(args,
                   {"--golden", "--threads", "--abs-tol", "--rel-tol",
                    "--exact"});
  if (args.positionals.size() != 1) {
    throw UsageError("check takes exactly one suite name");
  }
  if (args.golden_path.empty()) {
    throw UsageError("check requires --golden FILE");
  }
  const SuiteResult golden = loadSuiteFile(args.golden_path);
  const SuiteResult live =
      runSuite(registry, args.positionals[0], {args.threads});
  CheckOptions options;
  options.tolerance = args.exact ? Tolerance{0.0, 0.0} : args.tolerance;
  const CheckReport report = checkSuite(golden, live, options);
  out << report.format();
  return report.passed() ? kExitOk : kExitFailure;
}

int runThermal(const ParsedArgs& args, std::ostream& out) {
  requireOnlyFlags(args, {"--flavour", "--tmin", "--tmax", "--points",
                          "--vectors", "--seed", "--no-loading", "--cold",
                          "--threads", "--format", "--metrics-out",
                          "--trace-out"});
  if (args.positionals.size() != 1) {
    throw UsageError("thermal takes exactly one circuit name");
  }
  if (args.format == "json") {
    throw UsageError("thermal supports --format table|csv only");
  }
  if (!(args.t_min_k > 0.0)) {
    // The device models divide by thermalVoltage(T): 0 K is not a
    // physically evaluable corner, reject it as a usage error.
    throw UsageError("--tmin must be a positive temperature in kelvin");
  }
  if (!(args.t_max_k > args.t_min_k)) {
    throw UsageError("--tmax must exceed --tmin");
  }

  beginTracingIfRequested(args);
  const logic::LogicNetlist netlist = buildCircuit(args.positionals[0]);
  const std::vector<std::vector<bool>> patterns = expandVectors(
      VectorPolicy::random(args.vectors, args.seed),
      netlist.sourceNets().size());

  thermal::ThermalSweepOptions options;
  options.grid = {args.t_min_k, args.t_max_k, args.t_points};
  options.with_loading = !args.no_loading;
  options.mode = args.cold ? thermal::ThermalCharacterizer::Mode::kCold
                           : thermal::ThermalCharacterizer::Mode::kWarmStart;
  const thermal::ThermalSweepEngine engine(
      technologyForFlavour(args.flavour), options);

  engine::BatchRunner runner(engine::BatchOptions{.threads = args.threads});
  const thermal::ThermalCurve curve = engine.run(netlist, patterns, runner);

  // The thermal command has no SuiteResult; its metrics document carries
  // the process-wide snapshot with an empty scenario list.
  SuiteResult obs_result;
  obs_result.suite = "thermal:" + args.positionals[0];
  writeObsArtifacts(args, obs_result);

  out << "thermal sweep: " << args.positionals[0] << " x " << args.flavour
      << ", " << curve.points.size() << " temperatures, " << curve.vectors
      << " vectors, loading " << (options.with_loading ? "on" : "off")
      << "\n\n";
  TableWriter table(
      {"T [K]", "sub [A]", "gate [A]", "btbt [A]", "total [A]"});
  for (const thermal::ThermalPoint& point : curve.points) {
    table.addRow({formatDouble(point.temperature_k, 1),
                  formatSci(point.mean.subthreshold),
                  formatSci(point.mean.gate), formatSci(point.mean.btbt),
                  formatSci(point.mean.total())});
  }
  printTable(table, args.format, out);

  out << "\n";
  TableWriter fits({"component", "model", "parameters", "max err [%]",
                    "rms err [%]"});
  const std::pair<const char*, const thermal::ModelComparison*> rows[] = {
      {"subthreshold", &curve.subthreshold},
      {"gate", &curve.gate},
      {"btbt", &curve.btbt},
      {"total", &curve.total}};
  for (const auto& [name, fit] : rows) {
    fits.addRow({name, "linear",
                 "slope " + formatSci(fit->linear.slope, 3) + " A/K",
                 formatDouble(100.0 * fit->linear.error.max_rel, 2),
                 formatDouble(100.0 * fit->linear.error.rms_rel, 2)});
    fits.addRow({name, "exponential",
                 fit->exponential.valid
                     ? "rate " + formatSci(fit->exponential.rate, 3) + " 1/K"
                     : "(invalid: non-positive samples)",
                 formatDouble(100.0 * fit->exponential.error.max_rel, 2),
                 formatDouble(100.0 * fit->exponential.error.rms_rel, 2)});
    fits.addRow({name, "piecewise",
                 "break " + formatDouble(fit->piecewise.break_t, 1) + " K",
                 formatDouble(100.0 * fit->piecewise.error.max_rel, 2),
                 formatDouble(100.0 * fit->piecewise.error.rms_rel, 2)});
  }
  printTable(fits, args.format, out);
  out << "\nbest model per component: sub "
      << curve.subthreshold.bestModel() << ", gate "
      << curve.gate.bestModel() << ", btbt " << curve.btbt.bestModel()
      << ", total " << curve.total.bestModel() << "\n";
  return kExitOk;
}

int runOptimizeCommand(const ParsedArgs& args, std::ostream& out) {
  requireOnlyFlags(args, {"--objective", "--method", "--budget", "--seed",
                          "--flavour", "--temp", "--no-loading", "--threads",
                          "--format", "--metrics-out", "--trace-out"});
  if (args.positionals.size() != 1) {
    throw UsageError("optimize takes exactly one circuit name");
  }
  if (args.format == "json") {
    throw UsageError("optimize supports --format table|csv only");
  }
  if (!(args.temp_k > 0.0)) {
    // Same reasoning as thermal: the device models divide by
    // thermalVoltage(T), so 0 K is a usage error, not a corner.
    throw UsageError("--temp must be a positive temperature in kelvin");
  }

  beginTracingIfRequested(args);
  const logic::LogicNetlist netlist = buildCircuit(args.positionals[0]);

  device::Technology tech = technologyForFlavour(args.flavour);
  tech.temperature_k = args.temp_k;
  core::EstimatorOptions options;
  options.with_loading = !args.no_loading;
  engine::BatchRunner runner(engine::BatchOptions{.threads = args.threads});
  const core::LeakageLibrary library = runner.cache().library(
      tech, core::estimationKinds(netlist), {});
  const core::EstimationPlan plan(netlist, library, options);

  search::SearchOptions sopts;
  sopts.objective = search::objectiveFromString(args.objective);
  sopts.algorithm = search::algorithmFromString(args.search_method);
  sopts.budget = args.budget;
  sopts.seed = args.seed;
  const search::SearchResult result = search::optimizeVector(plan, sopts);

  // No SuiteResult for the ad-hoc command; like thermal, the metrics
  // document carries the process-wide snapshot with no scenario rows.
  SuiteResult obs_result;
  obs_result.suite = "optimize:" + args.positionals[0];
  writeObsArtifacts(args, obs_result);

  std::string bits(result.vector.size(), '0');
  for (std::size_t i = 0; i < result.vector.size(); ++i) {
    if (result.vector[i]) {
      bits[i] = '1';
    }
  }
  const std::vector<logic::NetId> sources = netlist.sourceNets();

  out << "optimize: " << args.positionals[0] << " x " << args.flavour << " @ "
      << formatDouble(args.temp_k, 0) << " K, objective "
      << args.objective << ", engine "
      << (result.exact ? "exact" : "heuristic") << ", loading "
      << (options.with_loading ? "on" : "off") << "\n\n";

  TableWriter summary({"quantity", "value"});
  summary.addRow({"sources", std::to_string(result.vector.size())});
  summary.addRow({"gates", std::to_string(netlist.gateCount())});
  summary.addRow({"best vector", bits.empty() ? "(none)" : bits});
  summary.addRow({"total [A]", formatSci(result.total)});
  summary.addRow({"sub [A]", formatSci(result.leakage.subthreshold)});
  summary.addRow({"gate [A]", formatSci(result.leakage.gate)});
  summary.addRow({"btbt [A]", formatSci(result.leakage.btbt)});
  summary.addRow({"provably optimal", result.exact ? "yes" : "no"});
  summary.addRow({"nodes expanded",
                  std::to_string(result.stats.nodes_expanded)});
  summary.addRow({"leaf evals", std::to_string(result.stats.leaf_evals)});
  summary.addRow({"prunes", std::to_string(result.stats.prunes)});
  summary.addRow({"restarts", std::to_string(result.stats.restarts)});
  summary.addRow({"improvements",
                  std::to_string(result.stats.improvements)});
  summary.addRow({"root bound [A]",
                  formatSci(result.stats.root_min_bound) + " .. " +
                      formatSci(result.stats.root_max_bound)});
  printTable(summary, args.format, out);

  if (!sources.empty() && sources.size() <= 64) {
    out << "\n";
    TableWriter assigns({"input", "value"});
    for (std::size_t i = 0; i < sources.size(); ++i) {
      assigns.addRow({netlist.netName(sources[i]),
                      result.vector[i] ? "1" : "0"});
    }
    printTable(assigns, args.format, out);
  }
  return kExitOk;
}

/// SIGINT/SIGTERM latch for `serve`: the handler may only touch a
/// sig_atomic_t, so a watcher thread translates it into the actual
/// requestShutdown() call.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handleStopSignal(int) { g_stop_requested = 1; }

int runServe(const ParsedArgs& args, std::ostream& out) {
  requireOnlyFlags(args, {"--socket", "--port", "--workers", "--threads",
                          "--queue", "--plan-cache", "--table-cache",
                          "--idle-timeout-ms", "--write-timeout-ms",
                          "--quota-rps", "--quota-burst", "--faults",
                          "--metrics-out"});
  if (!args.positionals.empty()) {
    throw UsageError("serve takes no arguments");
  }
  if (args.socket_path.empty() && args.port < 0) {
    throw UsageError("serve requires --socket PATH and/or --port N");
  }
  if (!args.faults_spec.empty()) {
    try {
      util::fault::configureFaults(args.faults_spec);
    } catch (const Error& e) {
      throw UsageError(e.what());
    }
  } else {
    // No explicit spec: honor NANOLEAK_FAULTS so chaos harnesses can arm
    // faults without touching the daemon's command line.
    util::fault::configureFaultsFromEnv();
  }

  serve::ServerOptions options;
  options.socket_path = args.socket_path;
  options.tcp_port = args.port;
  options.workers = args.workers;
  options.threads = args.threads;
  options.queue_capacity = args.queue_capacity;
  options.plan_cache_entries = args.plan_cache_entries;
  options.table_cache_entries = args.table_cache_entries;
  options.idle_timeout_ms = args.idle_timeout_ms;
  options.write_timeout_ms = args.write_timeout_ms;
  options.quota_rps = args.quota_rps;
  options.quota_burst = args.quota_burst;

  serve::Server server(std::move(options));
  g_stop_requested = 0;
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  server.start();
  out << "serve: listening";
  if (!args.socket_path.empty()) {
    out << " on " << args.socket_path;
  }
  if (args.port >= 0) {
    out << (args.socket_path.empty() ? " on" : " and") << " 127.0.0.1:"
        << server.tcpPort();
  }
  out << " (" << args.workers << " workers)" << std::endl;

  std::thread watcher([&server] {
    while (!server.shutdownRequested()) {
      if (g_stop_requested != 0) {
        server.requestShutdown();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  server.wait();
  watcher.join();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (!args.metrics_out_path.empty()) {
    // The daemon's whole life is one "suite" with no per-scenario rows;
    // the snapshot carries the serve.* / plan_cache.* counters the CI
    // smoke test asserts on.
    SuiteResult result;
    result.suite = "serve";
    saveMetricsFile(args.metrics_out_path, result);
  }
  out << "serve: drained and stopped\n";
  return kExitOk;
}

int runClient(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  requireOnlyFlags(args, {"--socket", "--port", "--id", "--flavour",
                          "--temp", "--policy", "--vectors", "--seed",
                          "--samples", "--tmin", "--tmax", "--points",
                          "--no-loading", "--timeout-ms", "--retries",
                          "--deadline-ms", "--tenant"});
  if (args.positionals.empty()) {
    throw UsageError(
        "client takes an op (ping|run|estimate|mc|thermal|stats|shutdown)");
  }
  if (args.socket_path.empty() == (args.port < 0)) {
    throw UsageError("client requires exactly one of --socket / --port");
  }

  ServeRequest request;
  request.id = args.request_id;
  try {
    request.op = serveOpFromString(args.positionals[0]);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
  Scenario& sc = request.scenario;
  // Build the request, then round-trip it through the codec so the
  // client resolves defaults and synthesizes the scenario name exactly
  // the way the daemon will.
  switch (request.op) {
    case ServeOp::kRun:
      if (args.positionals.size() != 2) {
        throw UsageError("client run takes a suite or scenario name");
      }
      request.target = args.positionals[1];
      break;
    case ServeOp::kEstimate:
      if (args.positionals.size() != 2) {
        throw UsageError("client estimate takes a circuit name");
      }
      sc.circuit = args.positionals[1];
      sc.flavour = args.flavour;
      sc.temperature_k = args.temp_k;
      sc.with_loading = !args.no_loading;
      sc.vectors =
          args.policy == "walk"
              ? VectorPolicy::walk(sawFlag(args, "--vectors") ? args.vectors
                                                              : 16,
                                   sawFlag(args, "--seed") ? args.seed : 1)
              : VectorPolicy::random(
                    sawFlag(args, "--vectors") ? args.vectors : 16,
                    sawFlag(args, "--seed") ? args.seed : 1);
      break;
    case ServeOp::kMonteCarlo:
      if (args.positionals.size() != 1) {
        throw UsageError("client mc takes no name argument");
      }
      sc.flavour = args.flavour;
      sc.temperature_k = args.temp_k;
      sc.mc_samples = args.samples;
      sc.mc_seed = args.seed;
      break;
    case ServeOp::kThermal:
      if (args.positionals.size() != 2) {
        throw UsageError("client thermal takes a circuit name");
      }
      sc.circuit = args.positionals[1];
      sc.flavour = args.flavour;
      sc.thermal.t_min_k = args.t_min_k;
      sc.thermal.t_max_k = args.t_max_k;
      sc.thermal.points = args.t_points;
      sc.with_loading = !args.no_loading;
      sc.vectors =
          VectorPolicy::random(sawFlag(args, "--vectors") ? args.vectors : 12,
                               sawFlag(args, "--seed") ? args.seed : 1);
      break;
    case ServeOp::kPing:
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      if (args.positionals.size() != 1) {
        throw UsageError(std::string("client ") + toString(request.op) +
                         " takes no name argument");
      }
      if (args.deadline_ms != 0 || !args.tenant.empty()) {
        throw UsageError(std::string("--deadline-ms / --tenant do not "
                                     "apply to client ") +
                         toString(request.op));
      }
      break;
  }
  request.deadline_ms = args.deadline_ms;
  request.tenant = args.tenant;
  request = decodeRequest(encodeRequest(request));

  serve::ServeClient::Options client_options;
  client_options.connect_timeout_ms = args.timeout_ms;
  client_options.request_timeout_ms = args.timeout_ms;
  client_options.retries = args.retries;
  serve::ServeClient client =
      args.socket_path.empty()
          ? serve::ServeClient::connectTcp(
                static_cast<std::uint16_t>(args.port), client_options)
          : serve::ServeClient::connectUnix(args.socket_path,
                                            client_options);
  const ServeResponse response = client.call(request);
  if (response.status != ServeStatus::kOk) {
    err << "serve " << toString(response.status) << ": " << response.message
        << "\n";
    return kExitFailure;
  }
  if (response.payload.empty()) {
    // ping / shutdown acknowledgements have no payload; print something
    // greppable instead of nothing at all.
    out << toString(response.status) << "\n";
  } else {
    // Verbatim, no decoration: `client run S` output must byte-match
    // `run S --format json`.
    out << response.payload;
  }
  return kExitOk;
}

}  // namespace

int cliMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  try {
    const ParsedArgs args = parseArgs(argc, argv);
    const Registry registry = builtinRegistry();
    if (args.command == "list") {
      return runList(registry, args, out);
    }
    if (args.command == "run") {
      return runRun(registry, args, out);
    }
    if (args.command == "stats") {
      return runStats(registry, args, out);
    }
    if (args.command == "record") {
      return runRecord(registry, args, out);
    }
    if (args.command == "check") {
      return runCheck(registry, args, out);
    }
    if (args.command == "thermal") {
      return runThermal(args, out);
    }
    if (args.command == "optimize") {
      return runOptimizeCommand(args, out);
    }
    if (args.command == "serve") {
      return runServe(args, out);
    }
    if (args.command == "client") {
      return runClient(args, out, err);
    }
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h") {
      out << kUsage;
      return kExitOk;
    }
    throw UsageError("unknown command '" + args.command + "'");
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n\n" << kUsage;
    return kExitUsage;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return kExitFailure;
  } catch (const std::exception& e) {
    // Anything else (bad_alloc, filesystem surprises) still maps to a
    // clean failure exit instead of escaping the "never throws" contract.
    err << "error: " << e.what() << "\n";
    return kExitFailure;
  }
}

}  // namespace nanoleak::scenario
