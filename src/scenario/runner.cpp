#include "scenario/runner.h"

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "circuit/solver_stats.h"
#include "core/estimation_plan.h"
#include "core/golden.h"
#include "obs/trace.h"
#include "search/optimizer.h"
#include "thermal/thermal_sweep.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/fault.h"

namespace nanoleak::scenario {

namespace {

void addBreakdownMeans(ScenarioResult& out,
                       const device::LeakageBreakdown& sum, double n) {
  out.metrics.push_back({"total_mean_A", sum.total() / n});
  out.metrics.push_back({"sub_mean_A", sum.subthreshold / n});
  out.metrics.push_back({"gate_mean_A", sum.gate / n});
  out.metrics.push_back({"btbt_mean_A", sum.btbt / n});
}

ScenarioResult runMonteCarlo(const Scenario& sc,
                             engine::BatchRunner& runner) {
  engine::McSweep sweep;
  sweep.technology = technologyFor(sc);
  sweep.samples = sc.mc_samples;
  sweep.seed = sc.mc_seed;
  const engine::McBatchResult result = runner.run(sweep);
  const mc::McSummary& s = result.summary;
  ScenarioResult out;
  out.name = sc.name;
  out.metrics = {{"samples", static_cast<double>(sc.mc_samples)},
                 {"mean_with_A", s.mean_with},
                 {"mean_without_A", s.mean_without},
                 {"std_with_A", s.std_with},
                 {"std_without_A", s.std_without},
                 {"mean_shift_pct", s.mean_shift_pct},
                 {"std_shift_pct", s.std_shift_pct},
                 {"max_shift_pct", s.max_shift_pct}};
  return out;
}

ScenarioResult runGolden(const Scenario& sc,
                         const logic::LogicNetlist& netlist,
                         const std::vector<std::vector<bool>>& patterns) {
  const device::Technology tech = technologyFor(sc);
  device::LeakageBreakdown golden_sum;
  double isolated_sum = 0.0;
  std::size_t node_count = 0;
  // Compile the transistor expansion once; repeated vectors re-bind the
  // pattern and warm-start from the previous operating point.
  core::GoldenSolver solver(netlist, tech);
  for (const std::vector<bool>& pattern : patterns) {
    const core::GoldenResult golden = solver.solve(pattern);
    golden_sum += golden.total;
    node_count = golden.node_count;
    isolated_sum +=
        core::isolatedSumLeakage(netlist, tech, pattern).total();
  }
  const double n = static_cast<double>(patterns.size());
  ScenarioResult out;
  out.name = sc.name;
  out.metrics = {
      {"gates", static_cast<double>(netlist.gateCount())},
      {"vectors", n},
      {"node_count", static_cast<double>(node_count)}};
  addBreakdownMeans(out, golden_sum, n);
  const double isolated_mean = isolated_sum / n;
  out.metrics.push_back({"isolated_mean_A", isolated_mean});
  // The paper's headline circuit-level number: loading-aware full solve
  // vs traditional no-loading accumulation.
  out.metrics.push_back(
      {"loading_delta_pct",
       isolated_mean > 0.0
           ? 100.0 * (golden_sum.total() / n - isolated_mean) / isolated_mean
           : 0.0});
  return out;
}

ScenarioResult runEstimate(const Scenario& sc,
                           const logic::LogicNetlist& netlist,
                           const std::vector<std::vector<bool>>& patterns,
                           engine::BatchRunner& runner,
                           engine::PlanCache* plans) {
  const device::Technology tech = technologyFor(sc);
  core::CharacterizationOptions char_options;
  char_options.solver_path = sc.char_solver_path;
  core::EstimatorOptions options;
  options.with_loading = sc.with_loading;

  // With a plan cache the compiled (netlist, library, plan) triple is a
  // shared immutable entry looked up by content key; without one it is
  // compiled locally as before. Both paths produce bit-identical results
  // - the cached entry was compiled from identical inputs - so a serve
  // daemon answering from the cache matches a one-shot `nanoleak run`
  // byte for byte.
  std::shared_ptr<const engine::PlanCache::Entry> cached;
  std::optional<core::LeakageLibrary> local_library;
  std::optional<core::EstimationPlan> local_plan;
  const core::EstimationPlan* plan = nullptr;
  if (plans != nullptr) {
    const std::string key =
        engine::PlanCache::contentKey(netlist, tech, options, char_options);
    cached = plans->get(key, [&] {
      FAULT_POINT("plan_cache.build");
      auto entry = std::make_shared<engine::PlanCache::Entry>();
      entry->netlist = std::make_unique<const logic::LogicNetlist>(netlist);
      entry->library = std::make_unique<const core::LeakageLibrary>(
          runner.cache().library(tech, core::estimationKinds(*entry->netlist),
                                 char_options));
      entry->plan = std::make_unique<const core::EstimationPlan>(
          *entry->netlist, *entry->library, options);
      return std::shared_ptr<const engine::PlanCache::Entry>(std::move(entry));
    });
    plan = cached->plan.get();
  } else {
    local_library.emplace(runner.cache().library(
        tech, core::estimationKinds(netlist), char_options));
    local_plan.emplace(netlist, *local_library, options);
    plan = &*local_plan;
  }

  std::vector<core::EstimateResult> results;
  if (sc.method == Method::kPlanEstimate) {
    results = runner.runPatterns(*plan, patterns);
  } else {  // kDeltaWalk: sequential on one warm workspace
    core::EstimationWorkspace ws(*plan);
    core::EstimateResult result;
    results.reserve(patterns.size());
    for (const std::vector<bool>& pattern : patterns) {
      plan->estimateDelta(pattern, ws, result);
      results.push_back(result);
    }
  }

  device::LeakageBreakdown sum;
  double total_min = 0.0;
  double total_max = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    sum += results[i].total;
    const double total = results[i].total.total();
    if (i == 0 || total < total_min) total_min = total;
    if (i == 0 || total > total_max) total_max = total;
  }
  const double n = static_cast<double>(results.size());
  ScenarioResult out;
  out.name = sc.name;
  out.metrics = {{"gates", static_cast<double>(netlist.gateCount())},
                 {"vectors", n}};
  addBreakdownMeans(out, sum, n);
  out.metrics.push_back({"total_min_A", total_min});
  out.metrics.push_back({"total_max_A", total_max});
  return out;
}

ScenarioResult runThermal(const Scenario& sc,
                          const logic::LogicNetlist& netlist,
                          const std::vector<std::vector<bool>>& patterns,
                          engine::BatchRunner& runner) {
  thermal::ThermalSweepOptions options;
  options.grid = {sc.thermal.t_min_k, sc.thermal.t_max_k,
                  sc.thermal.points};
  options.with_loading = sc.with_loading;
  // The base technology's own temperature is ignored: the grid governs.
  const thermal::ThermalSweepEngine engine(technologyForFlavour(sc.flavour),
                                           options);
  const thermal::ThermalCurve curve = engine.run(netlist, patterns, runner);

  ScenarioResult out;
  out.name = sc.name;
  out.metrics = {
      {"gates", static_cast<double>(curve.gates)},
      {"vectors", static_cast<double>(curve.vectors)},
      {"t_points", static_cast<double>(curve.points.size())},
      {"t_min_K", curve.points.front().temperature_k},
      {"t_max_K", curve.points.back().temperature_k}};
  const thermal::ThermalPoint& cold = curve.points.front();
  const thermal::ThermalPoint& hot = curve.points.back();
  out.metrics.push_back({"sub_at_tmin_A", cold.mean.subthreshold});
  out.metrics.push_back({"gate_at_tmin_A", cold.mean.gate});
  out.metrics.push_back({"btbt_at_tmin_A", cold.mean.btbt});
  out.metrics.push_back({"total_at_tmin_A", cold.mean.total()});
  out.metrics.push_back({"sub_at_tmax_A", hot.mean.subthreshold});
  out.metrics.push_back({"gate_at_tmax_A", hot.mean.gate});
  out.metrics.push_back({"btbt_at_tmax_A", hot.mean.btbt});
  out.metrics.push_back({"total_at_tmax_A", hot.mean.total()});
  out.metrics.push_back(
      {"total_tmax_over_tmin",
       cold.mean.total() > 0.0 ? hot.mean.total() / cold.mean.total()
                               : 0.0});
  // Fit metrics in a fixed component order; the exponential rate is the
  // Sultan-style temperature sensitivity, the three max-error columns say
  // which model the component actually follows over this range.
  const std::pair<const char*, const thermal::ModelComparison*> fits[] = {
      {"sub", &curve.subthreshold},
      {"gate", &curve.gate},
      {"btbt", &curve.btbt},
      {"total", &curve.total}};
  for (const auto& [prefix, fit] : fits) {
    const std::string p(prefix);
    out.metrics.push_back({p + "_exp_rate_perK", fit->exponential.rate});
    out.metrics.push_back(
        {p + "_lin_maxerr_pct", 100.0 * fit->linear.error.max_rel});
    out.metrics.push_back(
        {p + "_exp_maxerr_pct", 100.0 * fit->exponential.error.max_rel});
    out.metrics.push_back(
        {p + "_pw_maxerr_pct", 100.0 * fit->piecewise.error.max_rel});
    out.metrics.push_back({p + "_pw_break_K", fit->piecewise.break_t});
  }
  return out;
}

ScenarioResult runOptimize(const Scenario& sc,
                           const logic::LogicNetlist& netlist,
                           engine::BatchRunner& runner) {
  const device::Technology tech = technologyFor(sc);
  core::CharacterizationOptions char_options;
  char_options.solver_path = sc.char_solver_path;
  core::EstimatorOptions options;
  options.with_loading = sc.with_loading;
  const core::LeakageLibrary library = runner.cache().library(
      tech, core::estimationKinds(netlist), char_options);
  const core::EstimationPlan plan(netlist, library, options);

  search::SearchOptions sopts;
  sopts.objective = sc.optimize.objective;
  sopts.algorithm = sc.optimize.algorithm;
  sopts.budget = sc.optimize.budget;
  sopts.seed = sc.optimize.seed;
  const search::SearchResult r = search::optimizeVector(plan, sopts);

  // The optimum vector packed into two 32-bit halves (source k in bit k,
  // low half first) so golden files pin the bit pattern itself, not just
  // its leakage; sources beyond 64 are not encoded.
  double vec_lo = 0.0;
  double vec_hi = 0.0;
  for (std::size_t i = 0; i < r.vector.size() && i < 64; ++i) {
    if (!r.vector[i]) {
      continue;
    }
    if (i < 32) {
      vec_lo += static_cast<double>(1u << i);
    } else {
      vec_hi += static_cast<double>(1u << (i - 32));
    }
  }

  ScenarioResult out;
  out.name = sc.name;
  out.metrics = {
      {"gates", static_cast<double>(netlist.gateCount())},
      {"sources", static_cast<double>(plan.sourceCount())},
      {"best_total_A", r.total},
      {"best_sub_A", r.leakage.subthreshold},
      {"best_gate_A", r.leakage.gate},
      {"best_btbt_A", r.leakage.btbt},
      {"best_vector_lo32", vec_lo},
      {"best_vector_hi32", vec_hi},
      {"exact", r.exact ? 1.0 : 0.0},
      {"nodes_expanded", static_cast<double>(r.stats.nodes_expanded)},
      {"leaf_evals", static_cast<double>(r.stats.leaf_evals)},
      {"prunes", static_cast<double>(r.stats.prunes)},
      {"restarts", static_cast<double>(r.stats.restarts)},
      {"improvements", static_cast<double>(r.stats.improvements)}};
  return out;
}

}  // namespace

const Metric* ScenarioResult::find(const std::string& metric_name) const {
  for (const Metric& metric : metrics) {
    if (metric.name == metric_name) {
      return &metric;
    }
  }
  return nullptr;
}

const ScenarioResult* SuiteResult::find(
    const std::string& scenario_name) const {
  for (const ScenarioResult& result : scenarios) {
    if (result.name == scenario_name) {
      return &result;
    }
  }
  return nullptr;
}

ScenarioResult runScenario(const Scenario& sc, engine::BatchRunner& runner,
                           engine::PlanCache* plans) {
  OBS_SPAN("scenario.run", sc.name);
  const auto start = std::chrono::steady_clock::now();
  const circuit::SolveStats solves_before = circuit::solveStats();
  const obs::Snapshot obs_before = obs::snapshot();

  ScenarioResult result;
  if (sc.method == Method::kMonteCarlo) {
    result = runMonteCarlo(sc, runner);
  } else {
    const logic::LogicNetlist netlist = buildCircuit(sc.circuit);
    if (sc.method == Method::kOptimize) {
      // The search picks its own vectors; the scenario's vector policy
      // does not apply.
      result = runOptimize(sc, netlist, runner);
    } else {
      const std::vector<std::vector<bool>> patterns =
          expandVectors(sc.vectors, netlist.sourceNets().size());
      if (sc.method == Method::kGolden) {
        result = runGolden(sc, netlist, patterns);
      } else if (sc.method == Method::kThermalSweep) {
        result = runThermal(sc, netlist, patterns, runner);
      } else {
        result = runEstimate(sc, netlist, patterns, runner, plans);
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.node_solves = circuit::solveStats().node_solves -
                       solves_before.node_solves;
  result.obs_delta = obs::snapshot().deltaSince(obs_before);
  return result;
}

SuiteResult runSuite(const Registry& registry, const std::string& name,
                     const RunOptions& options) {
  engine::BatchRunner runner(engine::BatchOptions{
      .threads = options.threads, .cache = options.table_cache});
  return runSuiteOn(registry, name, runner, options.plan_cache.get());
}

SuiteResult runSuiteOn(const Registry& registry, const std::string& name,
                       engine::BatchRunner& runner,
                       engine::PlanCache* plans) {
  OBS_SPAN("suite.run", name);
  std::vector<std::string> scenario_names;
  if (registry.hasSuite(name)) {
    scenario_names = registry.suite(name);
  } else if (registry.has(name)) {
    scenario_names = {name};
  } else {
    throw Error("unknown suite or scenario '" + name + "'");
  }
  SuiteResult out;
  out.suite = name;
  out.scenarios.reserve(scenario_names.size());
  for (const std::string& scenario_name : scenario_names) {
    // Deadline safe point between scenarios: a multi-scenario suite past
    // its budget stops before compiling/solving the next scenario.
    util::pollCancel();
    out.scenarios.push_back(
        runScenario(registry.get(scenario_name), runner, plans));
  }
  return out;
}

}  // namespace nanoleak::scenario
