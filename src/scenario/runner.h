// Scenario execution: runs registry scenarios through the sweep engine
// and reduces each one to a flat, canonically ordered metric list - the
// unit the golden framework serializes and diffs.
//
// Determinism contract: a SuiteResult is a pure function of (registry
// definitions, code); thread count never changes a bit. Pattern sweeps go
// through BatchRunner::runPatterns (bit-identical at any thread count by
// construction), Monte-Carlo populations use counter-seeded per-sample
// streams, golden solves and delta walks run sequentially, and every
// aggregation below sums in fixed vector order on the calling thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/batch_runner.h"
#include "engine/plan_cache.h"
#include "obs/metrics.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace nanoleak::scenario {

/// One named value of a scenario result.
struct Metric {
  std::string name;
  double value = 0.0;
};

/// Canonical result of one scenario: metrics in a fixed, method-defined
/// order (see runScenario).
struct ScenarioResult {
  std::string name;
  std::vector<Metric> metrics;

  /// Execution diagnostics (NOT metrics: never serialized into golden
  /// files, never compared by the checker - `nanoleak run --time` prints
  /// them so suite-level perf regressions are visible without benches).
  double wall_seconds = 0.0;
  /// Scalar node solves the scenario triggered (0 for table-driven
  /// estimates once their corner is cached).
  std::uint64_t node_solves = 0;
  /// Registry activity attributed to this scenario: the obs snapshot
  /// delta across its execution (scenarios run sequentially, so the
  /// attribution is exact). Diagnostics like wall_seconds - never part
  /// of golden serialization or comparison.
  obs::Snapshot obs_delta;

  /// Pointer to a metric by name, or nullptr when absent.
  const Metric* find(const std::string& metric_name) const;
};

/// Results of a whole suite, in suite order.
struct SuiteResult {
  std::string suite;
  std::vector<ScenarioResult> scenarios;

  const ScenarioResult* find(const std::string& scenario_name) const;
};

struct RunOptions {
  /// Engine concurrency (total, including the caller); 0 = hardware.
  int threads = 0;
  /// Characterization cache to run on; null (the default) gives the call
  /// a private cache. The serve daemon passes its shared service here so
  /// every request memoizes corners jointly.
  std::shared_ptr<engine::TableCache> table_cache = nullptr;
  /// Compiled-plan cache; null (the default) compiles each estimate
  /// scenario's plan locally - the historical one-shot behaviour.
  std::shared_ptr<engine::PlanCache> plan_cache = nullptr;
};

/// Executes one scenario on the given runner (sharing its table cache
/// across scenarios makes repeated corners characterize once). A
/// non-null `plans` additionally memoizes the compiled EstimationPlan of
/// estimate-method scenarios by content key - results are bit-identical
/// with and without it (the cached plan is compiled from the identical
/// inputs; the cache only skips recompilation).
ScenarioResult runScenario(const Scenario& sc, engine::BatchRunner& runner,
                           engine::PlanCache* plans = nullptr);

/// Executes a suite - or, when `name` names a single scenario, that
/// scenario as a suite of one. Throws nanoleak::Error for unknown names.
SuiteResult runSuite(const Registry& registry, const std::string& name,
                     const RunOptions& options = {});

/// runSuite on an existing runner: the serve executors own one runner
/// each (ThreadPool does not admit concurrent controllers) and pass the
/// shared caches through it. Same determinism contract as runSuite.
SuiteResult runSuiteOn(const Registry& registry, const std::string& name,
                       engine::BatchRunner& runner,
                       engine::PlanCache* plans = nullptr);

}  // namespace nanoleak::scenario
