#include "scenario/registry.h"

#include "util/error.h"

namespace nanoleak::scenario {

void Registry::add(Scenario sc) {
  require(!sc.name.empty(), "Registry::add: scenario name must be non-empty");
  require(index_.find(sc.name) == index_.end(),
          "Registry::add: duplicate scenario name '" + sc.name + "'");
  index_.emplace(sc.name, scenarios_.size());
  scenarios_.push_back(std::move(sc));
}

bool Registry::has(const std::string& name) const {
  return index_.find(name) != index_.end();
}

const Scenario& Registry::get(const std::string& name) const {
  const auto it = index_.find(name);
  require(it != index_.end(), "unknown scenario '" + name + "'");
  return scenarios_[it->second];
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const Scenario& sc : scenarios_) {
    out.push_back(sc.name);
  }
  return out;
}

void Registry::addSuite(const std::string& name,
                        std::vector<std::string> scenario_names) {
  require(!name.empty(), "Registry::addSuite: suite name must be non-empty");
  require(!hasSuite(name),
          "Registry::addSuite: duplicate suite name '" + name + "'");
  for (const std::string& scenario_name : scenario_names) {
    require(has(scenario_name), "Registry::addSuite: suite '" + name +
                                    "' references unknown scenario '" +
                                    scenario_name + "'");
  }
  suites_.emplace_back(name, std::move(scenario_names));
}

bool Registry::hasSuite(const std::string& name) const {
  for (const auto& [suite_name, _] : suites_) {
    if (suite_name == name) {
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& Registry::suite(
    const std::string& name) const {
  for (const auto& [suite_name, scenario_names] : suites_) {
    if (suite_name == name) {
      return scenario_names;
    }
  }
  throw Error("unknown suite '" + name + "'");
}

std::vector<std::string> Registry::suiteNames() const {
  std::vector<std::string> out;
  out.reserve(suites_.size());
  for (const auto& [suite_name, _] : suites_) {
    out.push_back(suite_name);
  }
  return out;
}

namespace {

std::string scenarioName(const Scenario& sc) {
  std::string name =
      std::string(toString(sc.method)) + "/" + sc.circuit + "/" + sc.flavour;
  if (sc.method == Method::kThermalSweep) {
    // Thermal sweeps span a range; the scalar temperature is ignored.
    name += "/" + std::to_string(static_cast<int>(sc.thermal.t_min_k)) +
            "-" + std::to_string(static_cast<int>(sc.thermal.t_max_k)) + "K";
  } else {
    name += "/" + std::to_string(static_cast<int>(sc.temperature_k)) + "K";
  }
  if (sc.method == Method::kOptimize) {
    name += std::string("/") + search::toString(sc.optimize.objective);
    if (sc.optimize.algorithm == search::Algorithm::kHeuristic) {
      name += "/heur";
    }
  }
  if (!sc.with_loading) {
    name += "/noload";
  }
  if (sc.char_solver_path ==
      core::CharacterizationOptions::SolverPath::kBatched) {
    name += "/batched";
  }
  return name;
}

/// Adds `sc` under the canonical name and returns that name.
std::string addNamed(Registry& registry, Scenario sc) {
  sc.name = scenarioName(sc);
  std::string name = sc.name;
  registry.add(std::move(sc));
  return name;
}

Scenario estimate(const std::string& circuit, const std::string& flavour,
                  double temperature_k, VectorPolicy vectors) {
  Scenario sc;
  sc.method = Method::kPlanEstimate;
  sc.circuit = circuit;
  sc.flavour = flavour;
  sc.temperature_k = temperature_k;
  sc.vectors = std::move(vectors);
  return sc;
}

}  // namespace

Registry builtinRegistry() {
  Registry registry;

  // --- "ci": the committed golden regression net ---------------------------
  // Small circuits and few vectors on purpose: the whole suite (including
  // its per-corner characterizations) must stay cheap enough to run in
  // every CI job, sanitizers included. Every method is represented.
  std::vector<std::string> ci;
  const std::string ci_estimate_c17 = addNamed(
      registry,
      estimate("c17", "d25s", 300.0, VectorPolicy::random(16, 20050307)));
  ci.push_back(ci_estimate_c17);
  ci.push_back(addNamed(
      registry, estimate("c17", "d25s", 360.0,
                         VectorPolicy::random(16, 20050307))));
  ci.push_back(addNamed(
      registry, estimate("c17", "d25g", 300.0,
                         VectorPolicy::random(16, 20050307))));
  ci.push_back(addNamed(
      registry,
      estimate("rca4", "d25s", 300.0, VectorPolicy::random(12, 42))));
  {
    Scenario noload =
        estimate("rca4", "d25s", 300.0, VectorPolicy::random(12, 42));
    noload.with_loading = false;
    ci.push_back(addNamed(registry, std::move(noload)));
  }
  ci.push_back(addNamed(
      registry,
      estimate("fanout_star6", "d25s", 300.0, VectorPolicy::fixedPattern())));
  {
    Scenario walk =
        estimate("rca4", "d25s", 300.0, VectorPolicy::walk(16, 7));
    walk.method = Method::kDeltaWalk;
    ci.push_back(addNamed(registry, std::move(walk)));
  }
  std::string ci_golden_c17;
  {
    Scenario golden =
        estimate("c17", "d25s", 300.0, VectorPolicy::random(2, 11));
    golden.method = Method::kGolden;
    ci_golden_c17 = addNamed(registry, std::move(golden));
    ci.push_back(ci_golden_c17);
  }
  {
    Scenario golden =
        estimate("inv_chain8", "d25s", 300.0, VectorPolicy::fixedPattern());
    golden.method = Method::kGolden;
    ci.push_back(addNamed(registry, std::move(golden)));
  }
  {
    Scenario mc;
    mc.method = Method::kMonteCarlo;
    mc.circuit = "inv_fixture";  // gate-level Fig. 10 fixture, not a netlist
    mc.flavour = "d25s";
    mc.temperature_k = 300.0;
    mc.mc_samples = 64;
    mc.mc_seed = 20050307;
    ci.push_back(addNamed(registry, std::move(mc)));
  }
  registry.addSuite("ci", ci);

  // --- "smoke": the cheapest useful pair (CLI sanity / quick local runs) ---
  registry.addSuite("smoke", {ci_estimate_c17, ci_golden_c17});

  // --- "batched": SIMD batch-solver smoke ----------------------------------
  // Same workload as the ci estimate scenario but characterized on the
  // lane-parallel kBatched path. Deliberately NOT golden-pinned: batched
  // tables agree with the pinned scan-order path within ~1e-6, which is
  // inside the estimator's tolerance but outside byte-stability.
  {
    Scenario batched =
        estimate("c17", "d25s", 300.0, VectorPolicy::random(16, 20050307));
    batched.char_solver_path =
        core::CharacterizationOptions::SolverPath::kBatched;
    const std::string batched_name = addNamed(registry, std::move(batched));
    registry.addSuite("batched", {batched_name});
  }

  // --- "fig12": the paper's circuit roster under the estimator -------------
  std::vector<std::string> fig12;
  for (const std::string& circuit : fig12CircuitNames()) {
    fig12.push_back(addNamed(
        registry,
        estimate(circuit, "d25s", 300.0, VectorPolicy::random(100, 12))));
  }
  registry.addSuite("fig12", fig12);

  // --- "corners": one circuit across flavours and temperatures ------------
  std::vector<std::string> corners;
  for (const char* flavour : {"d25s", "d25g", "d25jn"}) {
    for (double temperature_k : {300.0, 360.0}) {
      corners.push_back(addNamed(
          registry, estimate("rca8", flavour, temperature_k,
                             VectorPolicy::random(24, 20050307))));
    }
  }
  registry.addSuite("corners", corners);

  // --- "thermal": leakage-vs-T curves + model fits -------------------------
  // Small circuits and modest grids on purpose (like "ci"): the suite is
  // golden-pinned and runs in every CI job. The three flavours cover the
  // paper's component split - subthreshold (strong T), gate tunneling
  // (nearly flat), BTBT (band-gap-weak T) - so the fit metrics pin the
  // Sultan-style range-dependence story per dominant mechanism.
  std::vector<std::string> thermal;
  auto thermalScenario = [](const std::string& circuit,
                            const std::string& flavour, ThermalSpec spec,
                            VectorPolicy vectors) {
    Scenario sc;
    sc.method = Method::kThermalSweep;
    sc.circuit = circuit;
    sc.flavour = flavour;
    sc.thermal = spec;
    sc.vectors = std::move(vectors);
    return sc;
  };
  thermal.push_back(addNamed(
      registry, thermalScenario("c17", "d25s", {233.0, 398.0, 8},
                                VectorPolicy::random(12, 20050307))));
  thermal.push_back(addNamed(
      registry, thermalScenario("c17", "d25g", {233.0, 398.0, 6},
                                VectorPolicy::random(8, 20050307))));
  thermal.push_back(addNamed(
      registry, thermalScenario("c17", "d25jn", {233.0, 398.0, 6},
                                VectorPolicy::random(8, 20050307))));
  thermal.push_back(addNamed(
      registry, thermalScenario("rca4", "d25s", {253.0, 378.0, 6},
                                VectorPolicy::random(8, 42))));
  registry.addSuite("thermal", thermal);

  // --- "optimize": golden-pinned sleep/worst-vector searches ---------------
  // Exact scenarios pin the provably optimal vector, its leakage AND the
  // branch-and-bound work counters (nodes/prunes), so a regression in
  // either the optimum or the pruning machinery breaks the golden check.
  // The heuristic scenario pins the seeded restart search end to end.
  // Like "ci", everything here is small enough for every CI job.
  std::vector<std::string> optimize;
  auto optimizeScenario = [](const std::string& circuit,
                             const std::string& flavour,
                             double temperature_k, OptimizeSpec spec) {
    Scenario sc;
    sc.method = Method::kOptimize;
    sc.circuit = circuit;
    sc.flavour = flavour;
    sc.temperature_k = temperature_k;
    sc.optimize = spec;
    return sc;
  };
  for (const search::Objective objective :
       {search::Objective::kMin, search::Objective::kMax}) {
    OptimizeSpec spec;
    spec.objective = objective;
    optimize.push_back(
        addNamed(registry, optimizeScenario("c17", "d25s", 300.0, spec)));
    optimize.push_back(
        addNamed(registry, optimizeScenario("mult22", "d25s", 300.0, spec)));
  }
  {
    OptimizeSpec spec;  // min objective, auto = exact on rca4's 9 sources
    optimize.push_back(
        addNamed(registry, optimizeScenario("rca4", "d25s", 300.0, spec)));
  }
  {
    Scenario noload = optimizeScenario("c17", "d25s", 300.0, OptimizeSpec{});
    noload.with_loading = false;
    optimize.push_back(addNamed(registry, std::move(noload)));
  }
  {
    OptimizeSpec spec;
    spec.algorithm = search::Algorithm::kHeuristic;
    spec.budget = 48;
    optimize.push_back(
        addNamed(registry, optimizeScenario("c17", "d25g", 300.0, spec)));
  }
  registry.addSuite("optimize", optimize);

  return registry;
}

}  // namespace nanoleak::scenario
