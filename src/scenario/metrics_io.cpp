#include "scenario/metrics_io.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/golden_file.h"
#include "util/error.h"
#include "util/json.h"
#include "util/table_writer.h"

namespace nanoleak::scenario {

namespace {

/// Embeds a Snapshot::toJson(indent) block as the value of a key: the
/// first line's indent is stripped (the key provides the position),
/// subsequent lines keep theirs.
std::string embedJson(const std::string& block) {
  std::size_t start = 0;
  while (start < block.size() && block[start] == ' ') {
    ++start;
  }
  return block.substr(start);
}

/// Writes `content` to `path` atomically: the bytes land in a temp file
/// in the same directory first and are renamed over the target only
/// after a successful flush+close. Readers (check_obs_artifacts.py, the
/// serve metrics endpoint) therefore see either the previous complete
/// file or the new complete file - never a truncated artifact from a
/// process that died mid-write. The temp name carries the pid so two
/// processes writing the same target cannot clobber each other's
/// half-written bytes (last rename wins, both renames are complete
/// files).
void writeTextFile(const std::string& path, const std::string& content,
                   const char* what) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    require(out.good(), std::string(what) + ": cannot open '" + tmp_path +
                            "' for writing");
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp_path.c_str());
      throw Error(std::string(what) + ": write to '" + tmp_path + "' failed");
    }
    out.close();
    if (out.fail()) {
      std::remove(tmp_path.c_str());
      throw Error(std::string(what) + ": close of '" + tmp_path + "' failed");
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw Error(std::string(what) + ": cannot rename '" + tmp_path +
                "' to '" + path + "'");
  }
}

}  // namespace

std::string metricsJson(const SuiteResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"format\": \"" + std::string(kMetricsFormat) + "\",\n";
  out += "  \"suite\": \"" + util::escapeJson(result.suite) + "\",\n";
  out += "  \"process\": " + embedJson(obs::snapshot().toJson(2)) + ",\n";
  out += "  \"scenarios\": [";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const ScenarioResult& scenario = result.scenarios[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"name\": \"" + util::escapeJson(scenario.name) + "\",\n";
    out += "      \"wall_seconds\": " + formatCanonical(scenario.wall_seconds)
           + ",\n";
    out += "      \"node_solves\": " + std::to_string(scenario.node_solves) +
           ",\n";
    out += "      \"delta\": " + embedJson(scenario.obs_delta.toJson(6)) +
           "\n";
    out += "    }";
  }
  out += result.scenarios.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void saveMetricsFile(const std::string& path, const SuiteResult& result) {
  writeTextFile(path, metricsJson(result), "saveMetricsFile");
}

void saveTraceFile(const std::string& path) {
  writeTextFile(path, obs::chromeTraceJson(), "saveTraceFile");
}

std::string statsReport(const SuiteResult& result,
                        const std::string& format) {
  std::ostringstream out;

  TableWriter per_scenario({"scenario", "wall [ms]", "node solves", "solves",
                            "batch solves", "batch fallbacks", "cache hits",
                            "cache misses"});
  double total_ms = 0.0;
  std::uint64_t total_node_solves = 0;
  std::uint64_t total_solves = 0;
  std::uint64_t total_batch = 0;
  std::uint64_t total_fallbacks = 0;
  std::uint64_t total_hits = 0;
  std::uint64_t total_misses = 0;
  for (const ScenarioResult& scenario : result.scenarios) {
    const double ms = 1e3 * scenario.wall_seconds;
    const std::uint64_t solves =
        scenario.obs_delta.counterValue("solver.solves");
    const std::uint64_t batch =
        scenario.obs_delta.counterValue("solver.batch_solves");
    const std::uint64_t fallbacks =
        scenario.obs_delta.counterValue("solver.batch_fallbacks");
    const std::uint64_t hits =
        scenario.obs_delta.counterValue("table_cache.hits");
    const std::uint64_t misses =
        scenario.obs_delta.counterValue("table_cache.misses");
    total_ms += ms;
    total_node_solves += scenario.node_solves;
    total_solves += solves;
    total_batch += batch;
    total_fallbacks += fallbacks;
    total_hits += hits;
    total_misses += misses;
    per_scenario.addRow({scenario.name, formatDouble(ms, 1),
                         std::to_string(scenario.node_solves),
                         std::to_string(solves), std::to_string(batch),
                         std::to_string(fallbacks), std::to_string(hits),
                         std::to_string(misses)});
  }
  per_scenario.addRow({"TOTAL", formatDouble(total_ms, 1),
                       std::to_string(total_node_solves),
                       std::to_string(total_solves),
                       std::to_string(total_batch),
                       std::to_string(total_fallbacks),
                       std::to_string(total_hits),
                       std::to_string(total_misses)});
  if (format == "csv") {
    per_scenario.printCsv(out);
  } else {
    per_scenario.printText(out);
  }

  // Suite-wide counter totals, summed over the per-scenario deltas so the
  // table covers exactly this suite's work (std::map keeps it sorted and
  // deterministic for equal counts).
  std::map<std::string, std::uint64_t> totals;
  for (const ScenarioResult& scenario : result.scenarios) {
    for (const auto& [name, value] : scenario.obs_delta.counters) {
      totals[name] += value;
    }
  }
  out << "\n";
  TableWriter counters({"counter", "total"});
  for (const auto& [name, value] : totals) {
    counters.addRow({name, std::to_string(value)});
  }
  if (format == "csv") {
    counters.printCsv(out);
  } else {
    counters.printText(out);
  }
  return out.str();
}

}  // namespace nanoleak::scenario
