// Versioned golden files: canonical JSON serialization of suite results.
//
// Canonical means byte-reproducible: fixed key order, fixed 2-space
// layout, doubles printed with "%.17g" (shortest text that round-trips a
// double exactly), scenarios and metrics in run order. Two SuiteResults
// with bit-identical values serialize to bit-identical bytes - the
// property the determinism tests diff across thread counts.
#pragma once

#include <string>

#include "scenario/runner.h"

namespace nanoleak::scenario {

/// Format tag written into (and required from) every golden file; bump
/// when the schema changes.
inline constexpr const char* kGoldenFormat = "nanoleak-golden-v1";

/// "%.17g" rendering; the inverse of strtod for every finite double.
std::string formatCanonical(double value);

/// Canonical JSON of a suite result (trailing newline included). Throws
/// nanoleak::Error if any metric is non-finite (a non-finite golden value
/// is always a bug upstream).
std::string serializeSuite(const SuiteResult& result);

/// Parses serializeSuite() output (any JSON layout of the same schema is
/// accepted; only emission is canonical). Throws nanoleak::ParseError on
/// malformed JSON and nanoleak::Error on schema violations.
SuiteResult parseSuite(const std::string& json);

/// File convenience wrappers. saveSuiteFile throws nanoleak::Error when
/// the path is not writable; loadSuiteFile when it is not readable.
void saveSuiteFile(const std::string& path, const SuiteResult& result);
SuiteResult loadSuiteFile(const std::string& path);

}  // namespace nanoleak::scenario
