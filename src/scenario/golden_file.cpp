#include "scenario/golden_file.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace nanoleak::scenario {

namespace {

using util::JsonValue;
using util::escapeJson;

const JsonValue& requireField(const JsonValue& object, const std::string& key,
                              JsonValue::Type type, const char* what) {
  require(object.type == JsonValue::Type::kObject,
          std::string("golden JSON: ") + what + " must be an object");
  const JsonValue* field = object.find(key);
  require(field != nullptr, std::string("golden JSON: ") + what +
                                " is missing field '" + key + "'");
  require(field->type == type, std::string("golden JSON: ") + what +
                                   " field '" + key +
                                   "' has the wrong type");
  return *field;
}

}  // namespace

std::string formatCanonical(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string serializeSuite(const SuiteResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"format\": \"" << kGoldenFormat << "\",\n";
  out << "  \"suite\": \"" << escapeJson(result.suite) << "\",\n";
  out << "  \"scenarios\": [";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const ScenarioResult& scenario = result.scenarios[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"name\": \"" << escapeJson(scenario.name) << "\",\n";
    out << "      \"metrics\": [";
    for (std::size_t m = 0; m < scenario.metrics.size(); ++m) {
      const Metric& metric = scenario.metrics[m];
      require(std::isfinite(metric.value),
              "serializeSuite: non-finite metric '" + metric.name +
                  "' in scenario '" + scenario.name + "'");
      out << (m == 0 ? "\n" : ",\n");
      out << "        {\"name\": \"" << escapeJson(metric.name)
          << "\", \"value\": " << formatCanonical(metric.value) << "}";
    }
    out << (scenario.metrics.empty() ? "]\n" : "\n      ]\n");
    out << "    }";
  }
  out << (result.scenarios.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

SuiteResult parseSuite(const std::string& json) {
  const JsonValue root = util::parseJson(json, "golden JSON");
  const JsonValue& format =
      requireField(root, "format", JsonValue::Type::kString, "document");
  require(format.string == kGoldenFormat,
          "golden JSON: unsupported format '" + format.string + "' (want '" +
              kGoldenFormat + "')");
  SuiteResult result;
  result.suite =
      requireField(root, "suite", JsonValue::Type::kString, "document")
          .string;
  const JsonValue& scenarios =
      requireField(root, "scenarios", JsonValue::Type::kArray, "document");
  for (const JsonValue& entry : scenarios.array) {
    ScenarioResult scenario;
    scenario.name =
        requireField(entry, "name", JsonValue::Type::kString, "scenario")
            .string;
    const JsonValue& metrics =
        requireField(entry, "metrics", JsonValue::Type::kArray, "scenario");
    for (const JsonValue& metric_entry : metrics.array) {
      Metric metric;
      metric.name = requireField(metric_entry, "name",
                                 JsonValue::Type::kString, "metric")
                        .string;
      metric.value = requireField(metric_entry, "value",
                                  JsonValue::Type::kNumber, "metric")
                         .number;
      scenario.metrics.push_back(std::move(metric));
    }
    result.scenarios.push_back(std::move(scenario));
  }
  return result;
}

void saveSuiteFile(const std::string& path, const SuiteResult& result) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "saveSuiteFile: cannot open '" + path +
                          "' for writing");
  out << serializeSuite(result);
  out.flush();
  require(out.good(), "saveSuiteFile: write to '" + path + "' failed");
}

SuiteResult loadSuiteFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "loadSuiteFile: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseSuite(buffer.str());
}

}  // namespace nanoleak::scenario
