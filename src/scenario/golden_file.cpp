#include "scenario/golden_file.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace nanoleak::scenario {

namespace {

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader - just enough for the golden schema (objects, arrays,
// strings, numbers, booleans, null). Throws ParseError with a line number.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("golden JSON: " + message, line_);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consumeIf(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expectLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parseValue() {
    JsonValue value;
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parseString();
        return value;
      case 't':
        expectLiteral("true");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        expectLiteral("false");
        value.type = JsonValue::Type::kBool;
        return value;
      case 'n':
        expectLiteral("null");
        return value;
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    if (consumeIf('}')) {
      return value;
    }
    while (true) {
      if (peek() != '"') {
        fail("object key must be a string");
      }
      std::string key = parseString();
      expect(':');
      value.object.emplace_back(std::move(key), parseValue());
      if (consumeIf('}')) {
        return value;
      }
      expect(',');
    }
  }

  JsonValue parseArray() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    expect('[');
    if (consumeIf(']')) {
      return value;
    }
    while (true) {
      value.array.push_back(parseValue());
      if (consumeIf(']')) {
        return value;
      }
      expect(',');
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
          case '\\':
          case '/':
            out += escape;
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int d = 0; d < 4; ++d) {
              const char hex = text_[pos_ + static_cast<std::size_t>(d)];
              if (!std::isxdigit(static_cast<unsigned char>(hex))) {
                fail("invalid \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         hex <= '9' ? hex - '0'
                                    : std::tolower(hex) - 'a' + 10);
            }
            pos_ += 4;
            // Golden names are ASCII; anything else is schema abuse.
            if (code > 0x7f) {
              fail("non-ASCII \\u escape not supported");
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape");
        }
        continue;
      }
      if (c == '\n') {
        ++line_;
      }
      out += c;
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number '" + token + "'");
    }
    // serializeSuite never writes non-finite values; an overflowing
    // literal (e.g. 1e999 -> Inf) would make every tolerance check of
    // that metric vacuously pass, so reject it here.
    if (!std::isfinite(parsed)) {
      fail("non-finite number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

const JsonValue& requireField(const JsonValue& object, const std::string& key,
                              JsonValue::Type type, const char* what) {
  require(object.type == JsonValue::Type::kObject,
          std::string("golden JSON: ") + what + " must be an object");
  const JsonValue* field = object.find(key);
  require(field != nullptr, std::string("golden JSON: ") + what +
                                " is missing field '" + key + "'");
  require(field->type == type, std::string("golden JSON: ") + what +
                                   " field '" + key +
                                   "' has the wrong type");
  return *field;
}

}  // namespace

std::string formatCanonical(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string serializeSuite(const SuiteResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"format\": \"" << kGoldenFormat << "\",\n";
  out << "  \"suite\": \"" << escapeJson(result.suite) << "\",\n";
  out << "  \"scenarios\": [";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const ScenarioResult& scenario = result.scenarios[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"name\": \"" << escapeJson(scenario.name) << "\",\n";
    out << "      \"metrics\": [";
    for (std::size_t m = 0; m < scenario.metrics.size(); ++m) {
      const Metric& metric = scenario.metrics[m];
      require(std::isfinite(metric.value),
              "serializeSuite: non-finite metric '" + metric.name +
                  "' in scenario '" + scenario.name + "'");
      out << (m == 0 ? "\n" : ",\n");
      out << "        {\"name\": \"" << escapeJson(metric.name)
          << "\", \"value\": " << formatCanonical(metric.value) << "}";
    }
    out << (scenario.metrics.empty() ? "]\n" : "\n      ]\n");
    out << "    }";
  }
  out << (result.scenarios.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

SuiteResult parseSuite(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonValue& format =
      requireField(root, "format", JsonValue::Type::kString, "document");
  require(format.string == kGoldenFormat,
          "golden JSON: unsupported format '" + format.string + "' (want '" +
              kGoldenFormat + "')");
  SuiteResult result;
  result.suite =
      requireField(root, "suite", JsonValue::Type::kString, "document")
          .string;
  const JsonValue& scenarios =
      requireField(root, "scenarios", JsonValue::Type::kArray, "document");
  for (const JsonValue& entry : scenarios.array) {
    ScenarioResult scenario;
    scenario.name =
        requireField(entry, "name", JsonValue::Type::kString, "scenario")
            .string;
    const JsonValue& metrics =
        requireField(entry, "metrics", JsonValue::Type::kArray, "scenario");
    for (const JsonValue& metric_entry : metrics.array) {
      Metric metric;
      metric.name = requireField(metric_entry, "name",
                                 JsonValue::Type::kString, "metric")
                        .string;
      metric.value = requireField(metric_entry, "value",
                                  JsonValue::Type::kNumber, "metric")
                         .number;
      scenario.metrics.push_back(std::move(metric));
    }
    result.scenarios.push_back(std::move(scenario));
  }
  return result;
}

void saveSuiteFile(const std::string& path, const SuiteResult& result) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "saveSuiteFile: cannot open '" + path +
                          "' for writing");
  out << serializeSuite(result);
  out.flush();
  require(out.good(), "saveSuiteFile: write to '" + path + "' failed");
}

SuiteResult loadSuiteFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "loadSuiteFile: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseSuite(buffer.str());
}

}  // namespace nanoleak::scenario
