#include "scenario/serve_protocol.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/golden_file.h"
#include "util/error.h"
#include "util/json.h"

namespace nanoleak::scenario {

namespace {

using util::JsonValue;

const JsonValue& requireObject(const JsonValue& doc, const char* what) {
  require(doc.type == JsonValue::Type::kObject,
          std::string(what) + ": document is not a JSON object");
  return doc;
}

std::string getString(const JsonValue& obj, const std::string& key,
                      const std::string& fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) {
    return fallback;
  }
  require(value->type == JsonValue::Type::kString,
          "serve request: '" + key + "' must be a string");
  return value->string;
}

std::string requireString(const JsonValue& obj, const std::string& key,
                          const char* what) {
  const JsonValue* value = obj.find(key);
  require(value != nullptr && value->type == JsonValue::Type::kString &&
              !value->string.empty(),
          std::string(what) + ": requires a non-empty string '" + key + "'");
  return value->string;
}

double getNumber(const JsonValue& obj, const std::string& key,
                 double fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) {
    return fallback;
  }
  require(value->type == JsonValue::Type::kNumber,
          "serve request: '" + key + "' must be a number");
  return value->number;
}

bool getBool(const JsonValue& obj, const std::string& key, bool fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) {
    return fallback;
  }
  require(value->type == JsonValue::Type::kBool,
          "serve request: '" + key + "' must be a boolean");
  return value->boolean;
}

/// A non-negative integer-valued count/seed field (JSON numbers arrive
/// as doubles; fractional or negative values are schema violations).
std::uint64_t getCount(const JsonValue& obj, const std::string& key,
                       std::uint64_t fallback) {
  const double value =
      getNumber(obj, key, static_cast<double>(fallback));
  require(value >= 0.0 && value == std::floor(value) && value <= 1e15,
          "serve request: '" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(value);
}

/// Rejects keys outside `allowed`: a daemon silently ignoring a typoed
/// field ("vektors") would compute something other than what the client
/// asked for and still answer ok.
void requireOnlyKeys(const JsonValue& obj,
                     const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.object) {
    bool ok = false;
    for (const std::string& candidate : allowed) {
      ok = ok || candidate == key;
    }
    require(ok, "serve request: unknown field '" + key + "'");
  }
}

void requireFormat(const JsonValue& obj, const char* what) {
  const JsonValue* format = obj.find("format");
  require(format != nullptr && format->type == JsonValue::Type::kString,
          std::string(what) + ": missing 'format' tag");
  require(format->string == kServeFormat,
          std::string(what) + ": format is '" + format->string + "', want '" +
              kServeFormat + "'");
}

std::string loadingSuffix(bool with_loading) {
  return with_loading ? "/load" : "/noload";
}

/// Synthesized deterministic scenario name of an inline estimate
/// request: a pure function of its resolved fields, so identical
/// requests yield identical suite serializations byte for byte.
std::string estimateName(const Scenario& sc) {
  const char* policy =
      sc.vectors.kind == VectorPolicy::Kind::kWalk ? "walk" : "random";
  return "serve/estimate/" + sc.circuit + "/" + sc.flavour + "/T" +
         formatCanonical(sc.temperature_k) + "/" + policy +
         std::to_string(sc.vectors.count) + "s" +
         std::to_string(sc.vectors.seed) + loadingSuffix(sc.with_loading);
}

std::string mcName(const Scenario& sc) {
  return "serve/mc/" + sc.flavour + "/T" +
         formatCanonical(sc.temperature_k) + "/n" +
         std::to_string(sc.mc_samples) + "s" + std::to_string(sc.mc_seed);
}

std::string thermalName(const Scenario& sc) {
  return "serve/thermal/" + sc.circuit + "/" + sc.flavour + "/T" +
         formatCanonical(sc.thermal.t_min_k) + "-" +
         formatCanonical(sc.thermal.t_max_k) + "x" +
         std::to_string(sc.thermal.points) + "/v" +
         std::to_string(sc.vectors.count) + "s" +
         std::to_string(sc.vectors.seed) + loadingSuffix(sc.with_loading);
}

VectorPolicy decodePolicy(const JsonValue& obj, std::size_t default_count) {
  const std::string policy = getString(obj, "policy", "random");
  const auto count = static_cast<std::size_t>(
      getCount(obj, "vectors", default_count));
  require(count >= 1, "serve request: 'vectors' must be >= 1");
  const std::uint64_t seed = getCount(obj, "seed", 1);
  if (policy == "random") {
    return VectorPolicy::random(count, seed);
  }
  if (policy == "walk") {
    return VectorPolicy::walk(count, seed);
  }
  throw Error("serve request: unknown policy '" + policy +
              "' (want random|walk)");
}

}  // namespace

const char* toString(ServeOp op) {
  switch (op) {
    case ServeOp::kPing:
      return "ping";
    case ServeOp::kRun:
      return "run";
    case ServeOp::kEstimate:
      return "estimate";
    case ServeOp::kMonteCarlo:
      return "mc";
    case ServeOp::kThermal:
      return "thermal";
    case ServeOp::kStats:
      return "stats";
    case ServeOp::kShutdown:
      return "shutdown";
  }
  return "?";
}

ServeOp serveOpFromString(const std::string& name) {
  if (name == "ping") return ServeOp::kPing;
  if (name == "run") return ServeOp::kRun;
  if (name == "estimate") return ServeOp::kEstimate;
  if (name == "mc") return ServeOp::kMonteCarlo;
  if (name == "thermal") return ServeOp::kThermal;
  if (name == "stats") return ServeOp::kStats;
  if (name == "shutdown") return ServeOp::kShutdown;
  throw Error("serve: unknown op '" + name +
              "' (want ping|run|estimate|mc|thermal|stats|shutdown)");
}

const char* toString(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kError:
      return "error";
    case ServeStatus::kBusy:
      return "busy";
    case ServeStatus::kOverloaded:
      return "overloaded";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kShuttingDown:
      return "shutting_down";
  }
  return "?";
}

ServeStatus serveStatusFromString(const std::string& name) {
  if (name == "ok") return ServeStatus::kOk;
  if (name == "error") return ServeStatus::kError;
  if (name == "busy") return ServeStatus::kBusy;
  if (name == "overloaded") return ServeStatus::kOverloaded;
  if (name == "deadline_exceeded") return ServeStatus::kDeadlineExceeded;
  if (name == "shutting_down") return ServeStatus::kShuttingDown;
  throw Error("serve: unknown status '" + name + "'");
}

std::string encodeRequest(const ServeRequest& request) {
  const Scenario& sc = request.scenario;
  std::string out = "{\"format\":\"";
  out += kServeFormat;
  out += "\",\"id\":\"" + util::escapeJson(request.id) + "\"";
  out += ",\"op\":\"" + std::string(toString(request.op)) + "\"";
  switch (request.op) {
    case ServeOp::kRun:
      out += ",\"target\":\"" + util::escapeJson(request.target) + "\"";
      break;
    case ServeOp::kEstimate:
      out += ",\"circuit\":\"" + util::escapeJson(sc.circuit) + "\"";
      out += ",\"flavour\":\"" + util::escapeJson(sc.flavour) + "\"";
      out += ",\"temperature_k\":" + formatCanonical(sc.temperature_k);
      out += ",\"policy\":\"";
      out += sc.vectors.kind == VectorPolicy::Kind::kWalk ? "walk" : "random";
      out += "\",\"vectors\":" + std::to_string(sc.vectors.count);
      out += ",\"seed\":" + std::to_string(sc.vectors.seed);
      out += ",\"loading\":";
      out += sc.with_loading ? "true" : "false";
      break;
    case ServeOp::kMonteCarlo:
      out += ",\"flavour\":\"" + util::escapeJson(sc.flavour) + "\"";
      out += ",\"temperature_k\":" + formatCanonical(sc.temperature_k);
      out += ",\"samples\":" + std::to_string(sc.mc_samples);
      out += ",\"seed\":" + std::to_string(sc.mc_seed);
      break;
    case ServeOp::kThermal:
      out += ",\"circuit\":\"" + util::escapeJson(sc.circuit) + "\"";
      out += ",\"flavour\":\"" + util::escapeJson(sc.flavour) + "\"";
      out += ",\"tmin\":" + formatCanonical(sc.thermal.t_min_k);
      out += ",\"tmax\":" + formatCanonical(sc.thermal.t_max_k);
      out += ",\"points\":" + std::to_string(sc.thermal.points);
      out += ",\"vectors\":" + std::to_string(sc.vectors.count);
      out += ",\"seed\":" + std::to_string(sc.vectors.seed);
      out += ",\"loading\":";
      out += sc.with_loading ? "true" : "false";
      break;
    case ServeOp::kPing:
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      break;
  }
  if (request.op == ServeOp::kRun || request.op == ServeOp::kEstimate ||
      request.op == ServeOp::kMonteCarlo || request.op == ServeOp::kThermal) {
    // Resilience fields are emitted only when set, so requests without
    // them stay byte-identical to the original nanoleak-serve-v1 bytes.
    if (request.deadline_ms > 0) {
      out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
    }
    if (!request.tenant.empty()) {
      out += ",\"tenant\":\"" + util::escapeJson(request.tenant) + "\"";
    }
  }
  out += "}";
  return out;
}

ServeRequest decodeRequest(const std::string& json) {
  const JsonValue doc = util::parseJson(json, "serve request");
  const JsonValue& obj = requireObject(doc, "serve request");
  requireFormat(obj, "serve request");

  ServeRequest request;
  request.id = getString(obj, "id", "");
  request.op = serveOpFromString(requireString(obj, "op", "serve request"));

  Scenario& sc = request.scenario;
  switch (request.op) {
    case ServeOp::kRun:
      requireOnlyKeys(obj, {"format", "id", "op", "target", "deadline_ms",
                            "tenant"});
      request.target = requireString(obj, "target", "serve run request");
      break;
    case ServeOp::kEstimate: {
      requireOnlyKeys(obj, {"format", "id", "op", "circuit", "flavour",
                            "temperature_k", "policy", "vectors", "seed",
                            "loading", "deadline_ms", "tenant"});
      sc.method = Method::kPlanEstimate;
      sc.circuit = requireString(obj, "circuit", "serve estimate request");
      sc.flavour = getString(obj, "flavour", "d25s");
      sc.temperature_k = getNumber(obj, "temperature_k", 300.0);
      require(sc.temperature_k > 0.0,
              "serve request: 'temperature_k' must be positive");
      sc.with_loading = getBool(obj, "loading", true);
      sc.vectors = decodePolicy(obj, 16);
      sc.name = estimateName(sc);
      break;
    }
    case ServeOp::kMonteCarlo: {
      requireOnlyKeys(obj, {"format", "id", "op", "flavour", "temperature_k",
                            "samples", "seed", "deadline_ms", "tenant"});
      sc.method = Method::kMonteCarlo;
      sc.flavour = getString(obj, "flavour", "d25s");
      sc.temperature_k = getNumber(obj, "temperature_k", 300.0);
      require(sc.temperature_k > 0.0,
              "serve request: 'temperature_k' must be positive");
      sc.mc_samples =
          static_cast<std::size_t>(getCount(obj, "samples", 64));
      require(sc.mc_samples >= 1,
              "serve request: 'samples' must be >= 1");
      sc.mc_seed = getCount(obj, "seed", 20050307);
      sc.name = mcName(sc);
      break;
    }
    case ServeOp::kThermal: {
      requireOnlyKeys(obj, {"format", "id", "op", "circuit", "flavour",
                            "tmin", "tmax", "points", "vectors", "seed",
                            "loading", "deadline_ms", "tenant"});
      sc.method = Method::kThermalSweep;
      sc.circuit = requireString(obj, "circuit", "serve thermal request");
      sc.flavour = getString(obj, "flavour", "d25s");
      sc.thermal.t_min_k = getNumber(obj, "tmin", 233.0);
      sc.thermal.t_max_k = getNumber(obj, "tmax", 398.0);
      require(sc.thermal.t_min_k > 0.0,
              "serve request: 'tmin' must be positive");
      require(sc.thermal.t_max_k > sc.thermal.t_min_k,
              "serve request: 'tmax' must exceed 'tmin'");
      sc.thermal.points =
          static_cast<std::size_t>(getCount(obj, "points", 8));
      require(sc.thermal.points >= 2,
              "serve request: 'points' must be >= 2");
      sc.with_loading = getBool(obj, "loading", true);
      const auto count =
          static_cast<std::size_t>(getCount(obj, "vectors", 12));
      require(count >= 1, "serve request: 'vectors' must be >= 1");
      sc.vectors = VectorPolicy::random(count, getCount(obj, "seed", 1));
      sc.name = thermalName(sc);
      break;
    }
    case ServeOp::kPing:
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      requireOnlyKeys(obj, {"format", "id", "op"});
      break;
  }
  if (request.op == ServeOp::kRun || request.op == ServeOp::kEstimate ||
      request.op == ServeOp::kMonteCarlo || request.op == ServeOp::kThermal) {
    request.deadline_ms = getCount(obj, "deadline_ms", 0);
    request.tenant = getString(obj, "tenant", "");
  }
  return request;
}

std::string encodeResponse(const ServeResponse& response) {
  std::string out = "{\"format\":\"";
  out += kServeFormat;
  out += "\",\"id\":\"" + util::escapeJson(response.id) + "\"";
  out += ",\"status\":\"" + std::string(toString(response.status)) + "\"";
  out += ",\"message\":\"" + util::escapeJson(response.message) + "\"";
  if (response.retry_after_ms > 0) {
    // Emitted only on rejections carrying a hint: ok responses keep the
    // exact pre-resilience byte layout.
    out += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
  }
  out += ",\"payload\":\"" + util::escapeJson(response.payload) + "\"";
  out += "}";
  return out;
}

ServeResponse decodeResponse(const std::string& json) {
  const JsonValue doc = util::parseJson(json, "serve response");
  const JsonValue& obj = requireObject(doc, "serve response");
  requireFormat(obj, "serve response");
  ServeResponse response;
  response.id = getString(obj, "id", "");
  response.status = serveStatusFromString(
      requireString(obj, "status", "serve response"));
  response.message = getString(obj, "message", "");
  response.payload = getString(obj, "payload", "");
  response.retry_after_ms = getCount(obj, "retry_after_ms", 0);
  return response;
}

}  // namespace nanoleak::scenario
