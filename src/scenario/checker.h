// Golden checker: diffs a live SuiteResult against a recorded golden with
// per-metric absolute/relative tolerances and produces a readable failure
// report (scenario, metric, golden vs live, diff vs tolerance).
//
// Tolerance policy: a metric passes when
//   |live - golden| <= max(abs, rel * |golden|).
// The defaults (abs 0, rel 1e-6) absorb cross-toolchain libm drift while
// staying orders of magnitude below any real modeling regression; pass
// Tolerance{0, 0} ("--exact" in the CLI) for bitwise comparison - which
// is guaranteed to hold between runs of the same build at different
// thread counts.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "scenario/runner.h"

namespace nanoleak::scenario {

struct Tolerance {
  double abs = 0.0;
  double rel = 1e-6;
};

struct CheckOptions {
  Tolerance tolerance;
  /// Per-metric-name overrides (matched on the metric name alone, across
  /// all scenarios).
  std::map<std::string, Tolerance> metric_overrides;
};

/// One mismatch found by checkSuite.
struct CheckIssue {
  std::string scenario;
  /// Empty for scenario-level issues (missing / extra scenarios).
  std::string metric;
  std::string message;
};

struct CheckReport {
  std::size_t scenarios_checked = 0;
  std::size_t metrics_checked = 0;
  std::vector<CheckIssue> issues;

  bool passed() const { return issues.empty(); }
  /// Readable multi-line report (one header line plus one line per issue).
  std::string format() const;
};

/// Diffs `live` against `golden`. Flags scenarios or metrics missing from
/// either side, metric-order changes, and out-of-tolerance values.
CheckReport checkSuite(const SuiteResult& golden, const SuiteResult& live,
                       const CheckOptions& options = {});

}  // namespace nanoleak::scenario
