// Scenario registry: the named catalogue of workloads and suites. A suite
// is an ordered list of scenario names; golden files pin one suite each.
// builtinRegistry() holds the repo's standard catalogue - the committed
// "ci" golden suite, the paper's Fig. 12 roster, and the corner grid -
// so scenario definitions live in exactly one place.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario.h"

namespace nanoleak::scenario {

class Registry {
 public:
  /// Adds a scenario; names must be unique and non-empty. Throws
  /// nanoleak::Error otherwise.
  void add(Scenario sc);

  bool has(const std::string& name) const;
  /// Throws nanoleak::Error for unknown names.
  const Scenario& get(const std::string& name) const;
  /// Scenario names in insertion order.
  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

  /// Registers a suite; every referenced scenario must already exist and
  /// the suite name must be unique. Throws nanoleak::Error otherwise.
  void addSuite(const std::string& name,
                std::vector<std::string> scenario_names);

  bool hasSuite(const std::string& name) const;
  /// Throws nanoleak::Error for unknown suites.
  const std::vector<std::string>& suite(const std::string& name) const;
  /// Suite names in insertion order.
  std::vector<std::string> suiteNames() const;

 private:
  std::vector<Scenario> scenarios_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::pair<std::string, std::vector<std::string>>> suites_;
};

/// The repo's standard catalogue:
///  - suite "smoke": two tiny scenarios (fast CLI sanity checks);
///  - suite "ci": the committed golden regression net (small circuits,
///    three corners, every method - see tests/golden/ci.json);
///  - suite "fig12": the paper's circuit roster under the estimator;
///  - suite "corners": rca8 across device flavours and temperatures.
Registry builtinRegistry();

}  // namespace nanoleak::scenario
