#include "scenario/scenario.h"

#include "logic/bench_io.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::scenario {

namespace {

/// Seed every synthetic ISCAS89 stand-in is generated with, so "s838"
/// names the same netlist everywhere (registry, benches, goldens).
constexpr std::uint64_t kSyntheticSeed = 20050307;

bool endsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

VectorPolicy VectorPolicy::fixedPattern(std::vector<bool> bits) {
  VectorPolicy policy;
  policy.kind = Kind::kFixed;
  policy.fixed = std::move(bits);
  policy.count = 1;
  return policy;
}

VectorPolicy VectorPolicy::random(std::size_t count, std::uint64_t seed) {
  VectorPolicy policy;
  policy.kind = Kind::kRandom;
  policy.count = count;
  policy.seed = seed;
  return policy;
}

VectorPolicy VectorPolicy::walk(std::size_t steps, std::uint64_t seed) {
  VectorPolicy policy;
  policy.kind = Kind::kWalk;
  policy.count = steps;
  policy.seed = seed;
  return policy;
}

std::vector<std::vector<bool>> expandVectors(const VectorPolicy& policy,
                                             std::size_t bits) {
  require(policy.count >= 1, "expandVectors: count must be >= 1");
  std::vector<std::vector<bool>> out;
  switch (policy.kind) {
    case VectorPolicy::Kind::kFixed: {
      if (policy.fixed.empty()) {
        out.emplace_back(bits, false);
      } else {
        require(policy.fixed.size() == bits,
                "expandVectors: fixed pattern width " +
                    std::to_string(policy.fixed.size()) +
                    " does not match circuit source count " +
                    std::to_string(bits));
        out.push_back(policy.fixed);
      }
      return out;
    }
    case VectorPolicy::Kind::kRandom: {
      Rng rng(policy.seed);
      out.reserve(policy.count);
      for (std::size_t i = 0; i < policy.count; ++i) {
        out.push_back(logic::randomPattern(bits, rng));
      }
      return out;
    }
    case VectorPolicy::Kind::kWalk: {
      Rng rng(policy.seed);
      std::vector<bool> current = logic::randomPattern(bits, rng);
      out.reserve(policy.count);
      out.push_back(current);
      for (std::size_t i = 1; i < policy.count && bits > 0; ++i) {
        const std::size_t bit = (i - 1) % bits;
        current[bit] = !current[bit];
        out.push_back(current);
      }
      return out;
    }
  }
  throw Error("expandVectors: unknown policy kind");
}

const char* toString(Method method) {
  switch (method) {
    case Method::kPlanEstimate:
      return "estimate";
    case Method::kDeltaWalk:
      return "walk";
    case Method::kGolden:
      return "golden";
    case Method::kMonteCarlo:
      return "mc";
    case Method::kThermalSweep:
      return "thermal";
    case Method::kOptimize:
      return "optimize";
  }
  return "?";
}

Method methodFromString(const std::string& name) {
  if (name == "estimate") return Method::kPlanEstimate;
  if (name == "walk") return Method::kDeltaWalk;
  if (name == "golden") return Method::kGolden;
  if (name == "mc") return Method::kMonteCarlo;
  if (name == "thermal") return Method::kThermalSweep;
  if (name == "optimize") return Method::kOptimize;
  throw Error("unknown scenario method '" + name +
              "' (want estimate|walk|golden|mc|thermal|optimize)");
}

device::Technology technologyForFlavour(const std::string& flavour) {
  if (flavour == "d25s") return device::defaultTechnology();
  if (flavour == "d25g") return device::gateDominatedTechnology();
  if (flavour == "d25jn") return device::btbtDominatedTechnology();
  if (flavour == "medici") return device::mediciTechnology();
  throw Error("unknown technology flavour '" + flavour +
              "' (want d25s|d25g|d25jn|medici)");
}

const std::vector<std::string>& knownFlavours() {
  static const std::vector<std::string> flavours = {"d25s", "d25g", "d25jn",
                                                    "medici"};
  return flavours;
}

device::Technology technologyFor(const Scenario& sc) {
  device::Technology tech = technologyForFlavour(sc.flavour);
  tech.temperature_k = sc.temperature_k;
  return tech;
}

logic::LogicNetlist buildCircuit(const std::string& name) {
  if (name == "c17") return logic::c17();
  if (name == "inv_chain8") return logic::inverterChain(8);
  if (name == "inv_chain32") return logic::inverterChain(32);
  if (name == "fanout_star6") return logic::fanoutStar(6);
  if (name == "rca4") return logic::rippleCarryAdder(4);
  if (name == "rca8") return logic::rippleCarryAdder(8);
  if (name == "mult22") return logic::arrayMultiplier(2);
  if (name == "mult88") return logic::arrayMultiplier(8);
  if (name == "alu88") return logic::alu8();
  if (endsWith(name, ".bench")) return logic::parseBenchFile(name);
  // iscasSpec throws a descriptive nanoleak::Error for unknown names.
  return logic::synthesizeIscasLike(logic::iscasSpec(name), kSyntheticSeed);
}

std::vector<std::string> builtinCircuitNames() {
  std::vector<std::string> names = {"c17",  "inv_chain8", "inv_chain32",
                                    "fanout_star6", "rca4", "rca8",
                                    "mult22", "alu88", "mult88"};
  for (const std::string& iscas : logic::knownIscasNames()) {
    names.push_back(iscas);
  }
  return names;
}

std::vector<std::string> fig12CircuitNames() {
  std::vector<std::string> names = logic::knownIscasNames();
  names.push_back("alu88");
  names.push_back("mult88");
  return names;
}

}  // namespace nanoleak::scenario
