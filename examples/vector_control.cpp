// Input-vector control (IVC): find a low-leakage standby vector for the
// 8x8 multiplier - and show why ignoring the loading effect can make IVC
// pick the wrong vector (paper section 6).
#include <algorithm>
#include <iostream>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  const device::Technology tech = device::defaultTechnology();
  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const core::LeakageLibrary library =
      core::Characterizer(tech, copts).characterize();

  const logic::LogicNetlist netlist = logic::arrayMultiplier(8);
  const logic::LogicSimulator sim(netlist);
  const core::LeakageEstimator with_loading(netlist, library);
  core::EstimatorOptions off;
  off.with_loading = false;
  const core::LeakageEstimator no_loading(netlist, library, off);

  // Random search; a production IVC flow would use the same estimator
  // inside a SAT/greedy loop - the estimator cost (~0.5 ms) is what makes
  // that feasible at all.
  Rng rng(99);
  const int budget = 400;
  std::vector<bool> best_aware;
  std::vector<bool> best_naive;
  double best_aware_na = 1e300;
  double best_naive_na = 1e300;
  for (int i = 0; i < budget; ++i) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const double aware = toNanoAmps(with_loading.estimate(vec).total.total());
    const double naive = toNanoAmps(no_loading.estimate(vec).total.total());
    if (aware < best_aware_na) {
      best_aware_na = aware;
      best_aware = vec;
    }
    if (naive < best_naive_na) {
      best_naive_na = naive;
      best_naive = vec;
    }
  }

  auto bits = [](const std::vector<bool>& vec) {
    std::string s;
    for (bool b : vec) {
      s += b ? '1' : '0';
    }
    return s;
  };

  std::cout << "searched " << budget << " random standby vectors on mult88 ("
            << netlist.gateCount() << " gates)\n\n";
  TableWriter table({"method", "chosen vector (a,b interleaved)",
                     "naive metric [nA]", "true (loading-aware) [nA]"});
  table.addRow({"no-loading IVC", bits(best_naive),
                formatDouble(best_naive_na, 1),
                formatDouble(toNanoAmps(
                                 with_loading.estimate(best_naive)
                                     .total.total()),
                             1)});
  table.addRow({"loading-aware IVC", bits(best_aware), "-",
                formatDouble(best_aware_na, 1)});
  table.printText(std::cout);

  const double penalty_pct =
      100.0 *
      (toNanoAmps(with_loading.estimate(best_naive).total.total()) -
       best_aware_na) /
      best_aware_na;
  std::cout << "\nstandby leakage penalty of ignoring loading in IVC: "
            << formatDouble(penalty_pct, 2) << " %\n";
  return 0;
}
