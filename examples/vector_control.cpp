// Input-vector control (IVC): find a low-leakage standby vector for the
// 8x8 multiplier - and show why ignoring the loading effect can make IVC
// pick the wrong vector (paper section 6).
//
// The candidate sweep runs on the engine: one compiled EstimationPlan per
// estimator mode, shared across the BatchRunner's workers with per-thread
// workspaces - the compile-once / execute-many split that makes a
// SAT/greedy IVC loop over thousands of candidates feasible.
#include <algorithm>
#include <iostream>

#include "core/characterizer.h"
#include "core/estimation_plan.h"
#include "engine/batch_runner.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  const device::Technology tech = device::defaultTechnology();
  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const core::LeakageLibrary library =
      core::Characterizer(tech, copts).characterize();

  const logic::LogicNetlist netlist = logic::arrayMultiplier(8);
  const core::EstimationPlan with_loading(netlist, library);
  core::EstimatorOptions off;
  off.with_loading = false;
  const core::EstimationPlan no_loading(netlist, library, off);

  // Random search; a production IVC flow would run the same batched sweep
  // inside a SAT/greedy loop - at tens of microseconds per candidate on
  // the plan path, that is what makes it feasible at all.
  Rng rng(99);
  const std::size_t budget = 400;
  std::vector<std::vector<bool>> candidates;
  candidates.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i) {
    candidates.push_back(
        logic::randomPattern(with_loading.sourceCount(), rng));
  }

  engine::BatchRunner runner;
  const std::vector<core::EstimateResult> aware_results =
      runner.runPatterns(with_loading, candidates);
  const std::vector<core::EstimateResult> naive_results =
      runner.runPatterns(no_loading, candidates);

  std::size_t best_aware = 0;
  std::size_t best_naive = 0;
  for (std::size_t i = 1; i < budget; ++i) {
    if (aware_results[i].total.total() <
        aware_results[best_aware].total.total()) {
      best_aware = i;
    }
    if (naive_results[i].total.total() <
        naive_results[best_naive].total.total()) {
      best_naive = i;
    }
  }
  const double best_aware_na = toNanoAmps(aware_results[best_aware].total.total());
  const double best_naive_na = toNanoAmps(naive_results[best_naive].total.total());
  // The naive pick's *actual* (loading-aware) leakage.
  const double naive_true_na =
      toNanoAmps(aware_results[best_naive].total.total());

  auto bits = [](const std::vector<bool>& vec) {
    std::string s;
    for (bool b : vec) {
      s += b ? '1' : '0';
    }
    return s;
  };

  std::cout << "searched " << budget << " random standby vectors on mult88 ("
            << netlist.gateCount() << " gates, "
            << runner.pool().threadCount() << " threads)\n\n";
  TableWriter table({"method", "chosen vector (a,b interleaved)",
                     "naive metric [nA]", "true (loading-aware) [nA]"});
  table.addRow({"no-loading IVC", bits(candidates[best_naive]),
                formatDouble(best_naive_na, 1),
                formatDouble(naive_true_na, 1)});
  table.addRow({"loading-aware IVC", bits(candidates[best_aware]), "-",
                formatDouble(best_aware_na, 1)});
  table.printText(std::cout);

  const double penalty_pct =
      100.0 * (naive_true_na - best_aware_na) / best_aware_na;
  std::cout << "\nstandby leakage penalty of ignoring loading in IVC: "
            << formatDouble(penalty_pct, 2) << " %\n";
  return 0;
}
