// Quickstart: estimate the leakage of a small circuit, with and without
// the loading effect, and cross-check against the full transistor-level
// solve.
//
//   1. build (or parse) a gate-level netlist
//   2. characterize the leakage library once for your technology
//   3. estimate per input vector - roughly three orders of magnitude
//      faster than re-solving the transistor netlist
#include <iostream>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "logic/bench_io.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  // A small circuit in ISCAS89 .bench syntax.
  const char* bench_text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
n4 = AND(n1, c)
y  = NAND(n3, n4)
)";
  const logic::LogicNetlist netlist = logic::parseBenchString(bench_text);
  std::cout << "circuit: " << netlist.gateCount() << " gates, "
            << netlist.netCount() << " nets\n";

  // One-time characterization of the (gate kind, vector) leakage tables.
  const device::Technology tech = device::defaultTechnology();
  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const core::LeakageLibrary library =
      core::Characterizer(tech, copts).characterize();

  const core::LeakageEstimator with_loading(netlist, library);
  core::EstimatorOptions no_loading_opts;
  no_loading_opts.with_loading = false;
  const core::LeakageEstimator no_loading(netlist, library,
                                          no_loading_opts);

  TableWriter table({"vector abcd", "traditional [nA]",
                     "loading-aware [nA]", "delta [%]", "golden [nA]",
                     "est. error [%]"});
  for (unsigned v = 0; v < 16; v += 3) {
    const std::vector<bool> vec{(v & 1) != 0, (v & 2) != 0, (v & 4) != 0,
                                (v & 8) != 0};
    const double base = no_loading.estimate(vec).total.total();
    const double loaded = with_loading.estimate(vec).total.total();
    const double golden = core::goldenLeakage(netlist, tech, vec)
                              .total.total();
    std::string bits;
    for (bool bit : vec) {
      bits += bit ? '1' : '0';
    }
    table.addRow({bits, formatDouble(toNanoAmps(base), 1),
                  formatDouble(toNanoAmps(loaded), 1),
                  formatDouble(100.0 * (loaded - base) / base, 2),
                  formatDouble(toNanoAmps(golden), 1),
                  formatDouble(100.0 * (loaded - golden) / golden, 2)});
  }
  table.printText(std::cout);
  std::cout << "\nThe loading-aware estimate tracks the transistor-level "
               "golden solve within a few percent, while the traditional "
               "accumulation misses the loading-induced increase.\n";
  return 0;
}
