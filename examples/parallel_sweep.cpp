// Quickstart for the parallel sweep engine: one BatchRunner drives a
// Monte-Carlo population, a (flavour x temperature) corner sweep, and a
// multi-pattern circuit estimate - all on the same thread pool, sharing
// characterized tables through the corner cache.
//
// Every result is bit-identical no matter how many threads run it: work
// is partitioned into fixed chunks, per-sample RNG streams come from
// counter-based seeding, and reductions merge in chunk order.
//
// Usage: example_parallel_sweep [threads]   (0/absent = all hardware)
#include <cstdlib>
#include <iostream>

#include "core/estimation_plan.h"
#include "engine/batch_runner.h"
#include "logic/generators.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  int threads = 0;
  if (argc > 1) {
    threads = static_cast<int>(std::strtol(argv[1], nullptr, 10));
  }
  engine::BatchRunner runner(engine::BatchOptions{.threads = threads});
  std::cout << "sweep engine on " << runner.pool().threadCount()
            << " thread(s)\n";

  // --- 1. Monte-Carlo population (the paper's Fig. 10/11 workload) --------
  engine::McSweep mc_sweep;
  mc_sweep.technology = device::defaultTechnology();
  mc_sweep.samples = 200;
  mc_sweep.seed = 20050307;
  const engine::McBatchResult mc = runner.run(mc_sweep);
  std::cout << "\nMC population of " << mc.samples.size()
            << " paired solves:\n  mean total with loading    "
            << formatDouble(toNanoAmps(mc.summary.mean_with), 1)
            << " nA\n  mean total without loading "
            << formatDouble(toNanoAmps(mc.summary.mean_without), 1)
            << " nA\n  loading widens sigma by    "
            << formatDouble(mc.summary.std_shift_pct, 2) << " %\n";

  // --- 2. Corner sweep: device flavours x temperatures --------------------
  engine::CornerSweep corners;
  corners.kind = gates::GateKind::kInv;
  corners.input_vector = {false};
  corners.technologies = {device::defaultTechnology(),
                          device::gateDominatedTechnology(),
                          device::btbtDominatedTechnology()};
  corners.temperatures_k = {300.0, 350.0, 400.0};
  corners.input_loading_amps = nA(2000.0);
  corners.output_loading_amps = nA(2000.0);
  const std::vector<engine::CornerResult> grid = runner.run(corners);

  const char* flavour_names[] = {"D25-S", "D25-G", "D25-JN"};
  TableWriter table({"flavour", "T [K]", "nominal [nA]", "LDALL [%]"});
  for (const engine::CornerResult& corner : grid) {
    table.addRow({flavour_names[corner.technology_index],
                  formatDouble(corner.temperature_k, 0),
                  formatDouble(toNanoAmps(corner.nominal.total()), 1),
                  formatDouble(corner.effect.total_pct, 2)});
  }
  std::cout << "\nLoading effect across " << grid.size() << " corners:\n";
  table.printText(std::cout);

  // --- 3. Pattern sweep over a circuit with a shared cached library -------
  // Estimation is compiled once into an immutable EstimationPlan; the
  // runner shares it across all workers, giving each thread its own
  // workspace and walking chunks through the incremental delta path.
  const logic::LogicNetlist netlist = logic::c17();
  core::CharacterizationOptions options;
  options.kinds = {gates::GateKind::kNand2, gates::GateKind::kInv};
  const core::LeakageLibrary library = runner.cache().library(
      device::defaultTechnology(), options.kinds, options);
  const core::EstimationPlan plan(netlist, library);

  std::vector<std::vector<bool>> patterns;
  for (std::size_t value = 0; value < (1u << plan.sourceCount()); ++value) {
    std::vector<bool> pattern(plan.sourceCount());
    for (std::size_t bit = 0; bit < pattern.size(); ++bit) {
      pattern[bit] = (value >> bit) & 1;
    }
    patterns.push_back(std::move(pattern));
  }
  const std::vector<core::EstimateResult> estimates =
      runner.runPatterns(plan, patterns);

  double best = 0.0;
  std::size_t best_index = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    const double total = estimates[i].total.total();
    if (i == 0 || total < best) {
      best = total;
      best_index = i;
    }
    worst = std::max(worst, total);
  }
  std::cout << "\nc17 vector sweep over " << patterns.size()
            << " patterns: min " << formatDouble(toNanoAmps(best), 1)
            << " nA (pattern " << best_index << "), max "
            << formatDouble(toNanoAmps(worst), 1)
            << " nA -> best-vector standby saves "
            << formatDouble(100.0 * (worst - best) / worst, 1) << " %\n";

  const engine::TableCache::Stats stats = runner.cache().stats();
  std::cout << "\ncorner cache: " << stats.misses << " characterizations, "
            << stats.hits << " reuses\n";
  return 0;
}
