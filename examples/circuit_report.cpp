// Circuit leakage report tool: reads an ISCAS89 .bench file (or generates
// a built-in circuit), characterizes the library, and prints a per-gate
// and per-component leakage report over random vectors.
//
// Usage:
//   circuit_report                       (built-in c17)
//   circuit_report path/to/circuit.bench (your own netlist)
//   circuit_report mult88|alu88|s838     (built-in generators)
#include <algorithm>
#include <iostream>
#include <string>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/bench_io.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/statistics.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

namespace {

logic::LogicNetlist loadCircuit(const std::string& spec) {
  if (spec.empty() || spec == "c17") {
    return logic::c17();
  }
  if (spec == "mult88") {
    return logic::arrayMultiplier(8);
  }
  if (spec == "alu88") {
    return logic::alu8();
  }
  if (spec.find(".bench") != std::string::npos) {
    return logic::parseBenchFile(spec);
  }
  return logic::synthesizeIscasLike(logic::iscasSpec(spec), 20050307);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string spec = argc > 1 ? argv[1] : "c17";
    const logic::LogicNetlist netlist = loadCircuit(spec);
    const logic::NetlistStats stats = logic::computeStats(netlist);
    std::cout << "circuit '" << spec << "': " << stats.gates << " gates, "
              << stats.dffs << " DFFs, " << stats.primary_inputs << " PIs, "
              << stats.primary_outputs << " POs, depth " << stats.logic_depth
              << ", mean fanout " << formatDouble(stats.mean_fanout, 2)
              << "\n";

    const device::Technology tech = device::defaultTechnology();
    core::CharacterizationOptions copts;
    copts.kinds = core::generatorGateKinds();
    const core::LeakageLibrary library =
        core::Characterizer(tech, copts).characterize();
    const core::LeakageEstimator estimator(netlist, library);

    const logic::LogicSimulator sim(netlist);
    Rng rng(1);
    RunningStats sub;
    RunningStats gate;
    RunningStats btbt;
    RunningStats total;
    const int vectors = 50;
    core::EstimateResult last;
    for (int i = 0; i < vectors; ++i) {
      const auto vec = logic::randomPattern(sim.sourceCount(), rng);
      last = estimator.estimate(vec);
      sub.add(toNanoAmps(last.total.subthreshold));
      gate.add(toNanoAmps(last.total.gate));
      btbt.add(toNanoAmps(last.total.btbt));
      total.add(toNanoAmps(last.total.total()));
    }

    std::cout << "\nleakage over " << vectors << " random vectors [nA]:\n";
    TableWriter table({"component", "mean", "min", "max"});
    auto row = [&](const char* name, const RunningStats& stats_row) {
      table.addRow({name, formatDouble(stats_row.mean(), 1),
                    formatDouble(stats_row.min(), 1),
                    formatDouble(stats_row.max(), 1)});
    };
    row("subthreshold", sub);
    row("gate tunneling", gate);
    row("junction BTBT", btbt);
    row("total", total);
    table.printText(std::cout);

    // Worst gates on the last vector.
    std::vector<std::pair<double, logic::GateId>> ranked;
    for (logic::GateId g = 0; g < last.per_gate.size(); ++g) {
      ranked.emplace_back(last.per_gate[g].leakage.total(), g);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::cout << "\nhottest gates (last vector):\n";
    TableWriter hot({"gate", "kind", "leakage [nA]", "IL [nA]", "OL [nA]"});
    for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
      const logic::GateId g = ranked[i].second;
      hot.addRow({netlist.gate(g).name,
                  gates::toString(netlist.gate(g).kind),
                  formatDouble(toNanoAmps(ranked[i].first), 1),
                  formatDouble(toNanoAmps(last.per_gate[g].il), 1),
                  formatDouble(toNanoAmps(last.per_gate[g].ol), 1)});
    }
    hot.printText(std::cout);
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
