// Circuit leakage report tool: reads an ISCAS89 .bench file (or builds a
// named circuit from the scenario registry's catalogue), characterizes
// the library, and prints a per-gate and per-component leakage report
// over random vectors.
//
// Usage:
//   circuit_report                       (built-in c17)
//   circuit_report path/to/circuit.bench (your own netlist)
//   circuit_report mult88|alu88|s838     (any scenario::buildCircuit name)
#include <algorithm>
#include <iostream>
#include <string>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/logic_sim.h"
#include "scenario/scenario.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/statistics.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  try {
    const std::string spec = argc > 1 ? argv[1] : "c17";
    // Circuit names resolve through the scenario registry's catalogue, so
    // examples, benches, and golden suites agree on what "s838" means.
    const logic::LogicNetlist netlist = scenario::buildCircuit(spec);
    const logic::NetlistStats stats = logic::computeStats(netlist);
    std::cout << "circuit '" << spec << "': " << stats.gates << " gates, "
              << stats.dffs << " DFFs, " << stats.primary_inputs << " PIs, "
              << stats.primary_outputs << " POs, depth " << stats.logic_depth
              << ", mean fanout " << formatDouble(stats.mean_fanout, 2)
              << "\n";

    const device::Technology tech = device::defaultTechnology();
    core::CharacterizationOptions copts;
    copts.kinds = core::generatorGateKinds();
    const core::LeakageLibrary library =
        core::Characterizer(tech, copts).characterize();
    const core::LeakageEstimator estimator(netlist, library);

    const logic::LogicSimulator sim(netlist);
    Rng rng(1);
    RunningStats sub;
    RunningStats gate;
    RunningStats btbt;
    RunningStats total;
    const int vectors = 50;
    core::EstimateResult last;
    for (int i = 0; i < vectors; ++i) {
      const auto vec = logic::randomPattern(sim.sourceCount(), rng);
      last = estimator.estimate(vec);
      sub.add(toNanoAmps(last.total.subthreshold));
      gate.add(toNanoAmps(last.total.gate));
      btbt.add(toNanoAmps(last.total.btbt));
      total.add(toNanoAmps(last.total.total()));
    }

    std::cout << "\nleakage over " << vectors << " random vectors [nA]:\n";
    TableWriter table({"component", "mean", "min", "max"});
    auto row = [&](const char* name, const RunningStats& stats_row) {
      table.addRow({name, formatDouble(stats_row.mean(), 1),
                    formatDouble(stats_row.min(), 1),
                    formatDouble(stats_row.max(), 1)});
    };
    row("subthreshold", sub);
    row("gate tunneling", gate);
    row("junction BTBT", btbt);
    row("total", total);
    table.printText(std::cout);

    // Worst gates on the last vector.
    std::vector<std::pair<double, logic::GateId>> ranked;
    for (logic::GateId g = 0; g < last.per_gate.size(); ++g) {
      ranked.emplace_back(last.per_gate[g].leakage.total(), g);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::cout << "\nhottest gates (last vector):\n";
    TableWriter hot({"gate", "kind", "leakage [nA]", "IL [nA]", "OL [nA]"});
    for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
      const logic::GateId g = ranked[i].second;
      hot.addRow({netlist.gate(g).name,
                  gates::toString(netlist.gate(g).kind),
                  formatDouble(toNanoAmps(ranked[i].first), 1),
                  formatDouble(toNanoAmps(last.per_gate[g].il), 1),
                  formatDouble(toNanoAmps(last.per_gate[g].ol), 1)});
    }
    hot.printText(std::cout);
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
