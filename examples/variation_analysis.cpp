// Process-variation analysis: how the loading effect changes the leakage
// distribution of a loaded gate (paper section 5.3). A signoff flow that
// budgets leakage from the no-loading distribution underestimates both
// the mean and - far more dangerously - the spread and the tail.
#include <algorithm>
#include <iostream>
#include <vector>

#include "mc/monte_carlo.h"
#include "util/statistics.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  std::size_t samples = 2000;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) {
      samples = static_cast<std::size_t>(parsed);
    }
  }

  // The paper's Fig. 10 fixture: inverter at input '0' with 6 input- and
  // 6 output-loading inverters, default sigmas (see mc/variation.h).
  const mc::MonteCarloEngine engine(device::defaultTechnology(),
                                    mc::VariationSigmas{},
                                    mc::McFixtureConfig{});
  std::cout << "sampling " << samples << " process corners...\n";
  const auto run = engine.run(samples, 4242);

  std::vector<double> with;
  std::vector<double> without;
  for (const mc::McSample& s : run) {
    with.push_back(toNanoAmps(s.with_loading.total()));
    without.push_back(toNanoAmps(s.without_loading.total()));
  }
  const SampleSummary sw = summarize(with);
  const SampleSummary swo = summarize(without);

  TableWriter table({"statistic", "no loading [nA]", "with loading [nA]",
                     "shift [%]"});
  auto row = [&](const char* name, double a, double b) {
    table.addRow({name, formatDouble(a, 1), formatDouble(b, 1),
                  formatDouble(100.0 * (b - a) / a, 2)});
  };
  row("mean", swo.mean, sw.mean);
  row("stddev", swo.stddev, sw.stddev);
  row("median", swo.median, sw.median);
  row("p95", swo.p95, sw.p95);
  row("p99", swo.p99, sw.p99);
  row("max", swo.max, sw.max);
  table.printText(std::cout);

  std::cout << "\nTakeaway: under parameter variation the loading effect "
               "inflates the spread and upper percentiles of the leakage "
               "distribution far more than the mean - leakage signoff "
               "without loading awareness is optimistic exactly where it "
               "hurts.\n";
  return 0;
}
