// Fig. 4: variation of the leakage components of a single (50 nm, MEDICI-
// like) device with (a) halo doping, (b) oxide thickness and (c)
// temperature. Prints one series per component, as the paper plots.
#include <iostream>

#include "bench_util.h"
#include "device/device_params.h"
#include "device/models.h"
#include "device/mosfet.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

namespace {

// Off-state leakage components of one NMOS (gate 0, drain VDD).
device::LeakageBreakdown offLeakage(const device::DeviceParams& params,
                                    double width, double vdd,
                                    double temperature_k) {
  const device::Mosfet mosfet(params, width);
  return mosfet.leakage({0.0, vdd, 0.0, 0.0},
                        device::Environment{temperature_k});
}

}  // namespace

int main() {
  const double width = 100e-9;
  const double vdd = 1.0;

  bench::banner("Fig. 4a: leakage components vs halo doping (NMOS, off)");
  {
    TableWriter table({"halo [1e18 cm^-3]", "Isub [nA]", "Igate [nA]",
                       "Ibtbt [nA]", "Itotal [nA]"});
    for (double halo_cm3 : {4.0, 6.0, 8.0, 12.0, 16.0, 24.0}) {
      device::DeviceParams p = device::d50MediciNmos();
      p.halo_doping = halo_cm3 * 1e24;  // 1e18 cm^-3 = 1e24 m^-3
      const auto leak = offLeakage(p, width, vdd, 300.0);
      table.addNumericRow({halo_cm3, toNanoAmps(leak.subthreshold),
                           toNanoAmps(leak.gate), toNanoAmps(leak.btbt),
                           toNanoAmps(leak.total())},
                          2);
    }
    table.printText(std::cout);
    std::cout << "(expected shape: Isub falls, Ibtbt rises, Igate flat)\n";
  }

  bench::banner("Fig. 4b: leakage components vs oxide thickness");
  {
    TableWriter table({"Tox [nm]", "Isub [nA]", "Igate [nA]", "Ibtbt [nA]",
                       "Itotal [nA]"});
    for (double tox_nm : {1.0, 1.1, 1.2, 1.3, 1.4, 1.5}) {
      device::DeviceParams p = device::d50MediciNmos();
      p.tox = tox_nm * 1e-9;
      const auto leak = offLeakage(p, width, vdd, 300.0);
      table.addNumericRow({tox_nm, toNanoAmps(leak.subthreshold),
                           toNanoAmps(leak.gate), toNanoAmps(leak.btbt),
                           toNanoAmps(leak.total())},
                          2);
    }
    table.printText(std::cout);
    std::cout << "(expected shape: Igate falls ~1 decade/2A, Isub rises "
                 "(worse SCE), Ibtbt flat)\n";
  }

  bench::banner("Fig. 4c: leakage components vs temperature");
  {
    TableWriter table({"T [K]", "Isub [nA]", "Igate [nA]", "Ibtbt [nA]",
                       "Itotal [nA]"});
    for (double t : {250.0, 275.0, 300.0, 325.0, 350.0, 375.0, 400.0}) {
      const auto leak = offLeakage(device::d50MediciNmos(), width, vdd, t);
      table.addNumericRow({t, toNanoAmps(leak.subthreshold),
                           toNanoAmps(leak.gate), toNanoAmps(leak.btbt),
                           toNanoAmps(leak.total())},
                          2);
    }
    table.printText(std::cout);
    std::cout << "(expected shape: gate+BTBT dominate at 300 K, Isub "
                 "exponential in T and dominant when hot)\n";
  }
  return 0;
}
