// Sleep-vector search bench: exhaustive enumeration vs branch-and-bound
// vs the heuristic engine on the small-circuit roster, reporting wall
// clock, pruning effectiveness (leaf evaluations vs 2^n) and bound
// quality (the root interval vs the true leakage range).
//
// Doubles as a correctness gate: EXITS NON-ZERO when
//  - exact branch-and-bound disagrees with exhaustive enumeration on any
//    circuit (bit-identical optimum required, min and max), or
//  - the exact engine fails to prune (leaf evals not below 2^n), or
//  - the heuristic misses the optimum by more than the pinned quality
//    ratio (min: <= 1.05x the true minimum; max: >= 0.95x the true
//    maximum) under the default budget.
// CI runs `bench_optimize --quick` and fails the build on any of these.
//
// Emits bench/out/BENCH_optimize.json.
//
// usage: bench_optimize [--quick]
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/characterizer.h"
#include "logic/generators.h"
#include "search/optimizer.h"
#include "util/table_writer.h"

namespace {

using nanoleak::TableWriter;
using nanoleak::formatDouble;
using namespace nanoleak;

using Clock = std::chrono::steady_clock;

template <typename Fn>
double timedSeconds(Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

logic::LogicNetlist buildByName(const std::string& name) {
  if (name == "c17") return logic::c17();
  if (name == "mult22") return logic::arrayMultiplier(2);
  if (name == "rca4") return logic::rippleCarryAdder(4);
  if (name == "rca8") return logic::rippleCarryAdder(8);
  if (name == "fanout_star6") return logic::fanoutStar(6);
  return logic::inverterChain(8);
}

struct CircuitReport {
  std::string name;
  std::size_t sources = 0;
  std::uint64_t exhaustive_evals = 0;
  double exhaustive_s = 0.0;
  std::uint64_t exact_min_evals = 0;
  std::uint64_t exact_min_prunes = 0;
  double exact_s = 0.0;
  double heuristic_s = 0.0;
  double min_total = 0.0;
  double max_total = 0.0;
  double heur_min_total = 0.0;
  double heur_max_total = 0.0;
  double bound_cover_min = 0.0;  // root_min / true min (<= 1, closer = tighter)
  double bound_cover_max = 0.0;  // root_max / true max (>= 1, closer = tighter)
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick = quick || std::strcmp(argv[i], "--quick") == 0;
  }

  std::vector<std::string> circuits = {"c17", "mult22", "rca4"};
  if (!quick) {
    circuits.push_back("fanout_star6");
    circuits.push_back("inv_chain8");
    circuits.push_back("rca8");
  }

  bench::banner("sleep-vector search: exhaustive vs B&B vs heuristic");
  std::cout << "characterizing d25s tables...\n";
  core::CharacterizationOptions char_options;
  char_options.kinds = core::generatorGateKinds();
  const core::LeakageLibrary library =
      core::Characterizer(device::defaultTechnology(), char_options)
          .characterize();

  std::vector<std::string> failures;
  std::vector<CircuitReport> reports;

  for (const std::string& name : circuits) {
    const logic::LogicNetlist netlist = buildByName(name);
    const core::EstimationPlan plan(netlist, library, {});
    CircuitReport report;
    report.name = name;
    report.sources = plan.sourceCount();

    search::ExhaustiveResult oracle;
    report.exhaustive_s =
        timedSeconds([&] { oracle = search::exhaustiveSearch(plan); });
    report.exhaustive_evals = oracle.min.stats.leaf_evals;
    report.min_total = oracle.min.total;
    report.max_total = oracle.max.total;

    search::SearchResult exact_min;
    search::SearchResult exact_max;
    report.exact_s = timedSeconds([&] {
      exact_min = search::exactSearch(plan, search::Objective::kMin);
      exact_max = search::exactSearch(plan, search::Objective::kMax);
    });
    report.exact_min_evals = exact_min.stats.leaf_evals;
    report.exact_min_prunes = exact_min.stats.prunes;
    report.bound_cover_min =
        exact_min.stats.root_min_bound / oracle.min.total;
    report.bound_cover_max =
        exact_max.stats.root_max_bound / oracle.max.total;

    if (exact_min.total != oracle.min.total ||
        exact_min.vector != oracle.min.vector) {
      failures.push_back(name + ": exact min disagrees with exhaustive (" +
                         formatDouble(exact_min.total * 1e6, 9) + "e-6 vs " +
                         formatDouble(oracle.min.total * 1e6, 9) + "e-6 A)");
    }
    if (exact_max.total != oracle.max.total ||
        exact_max.vector != oracle.max.vector) {
      failures.push_back(name + ": exact max disagrees with exhaustive");
    }
    if (report.sources >= 4 &&
        exact_min.stats.leaf_evals >= report.exhaustive_evals) {
      failures.push_back(name + ": exact search did not prune (" +
                         std::to_string(exact_min.stats.leaf_evals) + " of " +
                         std::to_string(report.exhaustive_evals) +
                         " leaves evaluated)");
    }

    search::SearchOptions heur;
    heur.algorithm = search::Algorithm::kHeuristic;
    heur.budget = 128;
    heur.seed = 20050307;
    search::SearchResult heur_min;
    search::SearchResult heur_max;
    report.heuristic_s = timedSeconds([&] {
      heur.objective = search::Objective::kMin;
      heur_min = search::heuristicSearch(plan, heur);
      heur.objective = search::Objective::kMax;
      heur_max = search::heuristicSearch(plan, heur);
    });
    report.heur_min_total = heur_min.total;
    report.heur_max_total = heur_max.total;
    if (heur_min.total > 1.05 * oracle.min.total) {
      failures.push_back(name + ": heuristic min quality regressed (" +
                         formatDouble(heur_min.total / oracle.min.total, 4) +
                         "x the true minimum, limit 1.05x)");
    }
    if (heur_max.total < 0.95 * oracle.max.total) {
      failures.push_back(name + ": heuristic max quality regressed (" +
                         formatDouble(heur_max.total / oracle.max.total, 4) +
                         "x the true maximum, limit 0.95x)");
    }
    reports.push_back(report);
  }

  TableWriter table({"circuit", "n", "2^n", "B&B evals", "prunes",
                     "exh [ms]", "B&B [ms]", "heur [ms]", "range [x]",
                     "root cover"});
  for (const CircuitReport& r : reports) {
    table.addRow(
        {r.name, std::to_string(r.sources),
         std::to_string(std::uint64_t{1} << r.sources),
         std::to_string(r.exact_min_evals),
         std::to_string(r.exact_min_prunes),
         formatDouble(r.exhaustive_s * 1e3, 1),
         formatDouble(r.exact_s * 1e3, 1),
         formatDouble(r.heuristic_s * 1e3, 1),
         formatDouble(r.max_total / r.min_total, 2),
         formatDouble(r.bound_cover_min, 3) + ".." +
             formatDouble(r.bound_cover_max, 3)});
  }
  table.printText(std::cout);
  std::cout << "range [x] = true max/min leakage ratio (the sleep-vector "
               "payoff); root cover = root bound interval relative to the "
               "true extremes (1.000 = tight).\n";

  std::ostringstream json;
  json << "{\n  \"workload\": \"optimize\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CircuitReport& r = reports[i];
    json << "    {\"circuit\": \"" << r.name << "\", \"sources\": "
         << r.sources << ", \"exhaustive_evals\": " << r.exhaustive_evals
         << ", \"bnb_evals\": " << r.exact_min_evals << ", \"bnb_prunes\": "
         << r.exact_min_prunes << ",\n     \"exhaustive_s\": "
         << formatDouble(r.exhaustive_s, 5) << ", \"bnb_s\": "
         << formatDouble(r.exact_s, 5) << ", \"heuristic_s\": "
         << formatDouble(r.heuristic_s, 5) << ",\n     \"min_total_A\": "
         << r.min_total << ", \"max_total_A\": " << r.max_total
         << ", \"heur_min_ratio\": "
         << formatDouble(r.heur_min_total / r.min_total, 6)
         << ", \"heur_max_ratio\": "
         << formatDouble(r.heur_max_total / r.max_total, 6)
         << ",\n     \"root_cover_min\": "
         << formatDouble(r.bound_cover_min, 6) << ", \"root_cover_max\": "
         << formatDouble(r.bound_cover_max, 6) << "}"
         << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"failures\": " << failures.size() << "\n}\n";
  const std::string out_path = bench::outPath("BENCH_optimize.json");
  std::ofstream out(out_path);
  if (out) {
    out << json.str();
    std::cout << "\nwrote " << out_path << "\n";
  } else {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }

  if (!failures.empty()) {
    std::cerr << "\nSEARCH GATE FAILURES:\n";
    for (const std::string& failure : failures) {
      std::cerr << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "all search gates passed (exact == exhaustive, pruning "
               "live, heuristic within quality limits)\n";
  return 0;
}
