// Fig. 11: loading-induced change of the mean and standard deviation of
// an inverter's total leakage vs the inter-die Vth sigma (30/40/50 mV).
//
// Usage: bench_fig11_mc_spread [samples]   (default 10000 per sigma)
#include <iostream>

#include "bench_util.h"
#include "mc/monte_carlo.h"
#include "util/table_writer.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  const std::size_t samples = bench::sampleCount(argc, argv, 10000);
  std::cout << "Monte-Carlo with " << samples
            << " samples per sigma (seed 41), sigma_L=2nm, sigma_Tox=0.67A,"
               " sigma_VDD=333mV, sigma_Vt_intra=30mV\n";

  bench::banner("Fig. 11: loading effect on mean / std of total leakage");
  TableWriter table({"sigma_Vt_inter [mV]", "mean shift [%]",
                     "std shift [%]", "max shift [%]"});
  for (double sigma_mv : {30.0, 40.0, 50.0}) {
    mc::VariationSigmas sigmas;
    sigmas.sigma_vth_inter = sigma_mv * 1e-3;
    const mc::MonteCarloEngine engine(device::defaultTechnology(), sigmas,
                                      mc::McFixtureConfig{});
    const mc::McSummary summary =
        mc::MonteCarloEngine::summarizeTotals(engine.run(samples, 41));
    table.addNumericRow({sigma_mv, summary.mean_shift_pct,
                         summary.std_shift_pct, summary.max_shift_pct},
                        2);
  }
  table.printText(std::cout);
  std::cout << "(expected shape: loading raises the mean a few percent and "
               "the standard deviation considerably more; see "
               "EXPERIMENTS.md for the sigma_Vt trend discussion)\n";
  return 0;
}
