// Fig. 9: impact of temperature on the overall loading effect (LDALL) of
// an inverter (input '0', output '1'), per component contribution.
//
// The temperature corners run as one engine CornerSweep: every corner is
// an independent task, and results come back in temperature order
// regardless of which worker solved them.
//
// Usage: bench_fig9_temperature [ignored] [threads]
#include <iostream>

#include "bench_util.h"
#include "engine/batch_runner.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  // Fixed loading configuration (~6 inverter pins on each side).
  const double il = nA(2000.0);
  const double ol = nA(2000.0);
  const std::vector<double> celsius_points = {0.0,   25.0,  50.0, 75.0,
                                              100.0, 125.0, 150.0};

  engine::BatchRunner runner(
      engine::BatchOptions{.threads = bench::threadCount(argc, argv)});
  engine::CornerSweep sweep;
  sweep.kind = gates::GateKind::kInv;
  sweep.input_vector = {false};
  sweep.technologies = {device::mediciTechnology()};
  for (double celsius : celsius_points) {
    sweep.temperatures_k.push_back(celsiusToKelvin(celsius));
  }
  sweep.input_loading_amps = il;
  sweep.output_loading_amps = ol;
  const std::vector<engine::CornerResult> results = runner.run(sweep);

  bench::banner(
      "Fig. 9: LDALL vs temperature, inverter input '0' "
      "(component contributions normalized by nominal total)");
  TableWriter table({"T [C]", "sub [%]", "gate [%]", "btbt [%]",
                     "total [%]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::LoadingEffect& e = results[i].contribution;
    table.addNumericRow({celsius_points[i], e.subthreshold_pct, e.gate_pct,
                         e.btbt_pct, e.total_pct},
                        3);
  }
  table.printText(std::cout);
  std::cout << "(expected shape: subthreshold contribution grows strongly "
               "with T, gate/BTBT drift the other way, total changes much "
               "less - component cancellation)\n";
  return 0;
}
