// Fig. 9: impact of temperature on the overall loading effect (LDALL) of
// an inverter (input '0', output '1'), per component contribution.
#include <iostream>

#include "bench_util.h"
#include "core/loading_analyzer.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  // Fixed loading configuration (~6 inverter pins on each side).
  const double il = nA(2000.0);
  const double ol = nA(2000.0);

  bench::banner(
      "Fig. 9: LDALL vs temperature, inverter input '0' "
      "(component contributions normalized by nominal total)");
  TableWriter table({"T [C]", "sub [%]", "gate [%]", "btbt [%]",
                     "total [%]"});
  for (double celsius : {0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0}) {
    device::Technology tech = device::mediciTechnology();
    tech.temperature_k = celsiusToKelvin(celsius);
    core::LoadingAnalyzer analyzer(gates::GateKind::kInv, {false}, tech);
    const core::LoadingEffect e =
        analyzer.combinedLoadingContribution(il, ol);
    table.addNumericRow(
        {celsius, e.subthreshold_pct, e.gate_pct, e.btbt_pct, e.total_pct},
        3);
  }
  table.printText(std::cout);
  std::cout << "(expected shape: subthreshold contribution grows strongly "
               "with T, gate/BTBT drift the other way, total changes much "
               "less - component cancellation)\n";
  return 0;
}
