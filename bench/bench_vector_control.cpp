// Section 6 observation: "The input pattern for which we obtain the
// minimum total leakage changes due to the loading effect. This has
// significant impact on input vector control based leakage control."
//
// Random-search input-vector control on the 8-bit ALU with and without
// loading-aware estimation; reports how often the rankings disagree and
// whether the chosen minimum-leakage vectors differ.
//
// The candidate evaluations run on the engine's BatchRunner: one compiled
// EstimationPlan per estimator mode shared across all workers, one
// workspace per thread, incremental deltas inside chunks - bit-identical
// to a sequential per-call loop at any thread count.
//
// Usage: bench_vector_control [vectors] [threads]   (default 512, all
// hardware threads)
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/characterizer.h"
#include "core/estimation_plan.h"
#include "engine/batch_runner.h"
#include "logic/logic_sim.h"
#include "scenario/scenario.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  const std::size_t trials = bench::sampleCount(argc, argv, 512);
  // Circuit, flavour, and candidate vectors come from the scenario layer
  // (same definitions the registry suites and golden files use).
  const device::Technology tech = scenario::technologyForFlavour("d25s");

  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const core::LeakageLibrary lib =
      core::Characterizer(tech, copts).characterize();

  const logic::LogicNetlist nl = scenario::buildCircuit("alu88");
  const core::EstimationPlan with(nl, lib);
  core::EstimatorOptions off;
  off.with_loading = false;
  const core::EstimationPlan without(nl, lib, off);

  engine::BatchRunner runner(
      engine::BatchOptions{.threads = bench::threadCount(argc, argv)});
  std::cout << "evaluating " << trials << " candidate vectors on "
            << runner.pool().threadCount() << " thread(s)\n";

  const std::vector<std::vector<bool>> patterns = scenario::expandVectors(
      scenario::VectorPolicy::random(trials, 20050307), with.sourceCount());
  const std::vector<core::EstimateResult> with_results =
      runner.runPatterns(with, patterns);
  const std::vector<core::EstimateResult> without_results =
      runner.runPatterns(without, patterns);

  struct Candidate {
    std::vector<bool> vec;
    double with_na;
    double without_na;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    candidates.push_back({patterns[i],
                          toNanoAmps(with_results[i].total.total()),
                          toNanoAmps(without_results[i].total.total())});
  }

  auto by_with = candidates;
  std::sort(by_with.begin(), by_with.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.with_na < b.with_na;
            });
  auto by_without = candidates;
  std::sort(by_without.begin(), by_without.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.without_na < b.without_na;
            });

  bench::banner("Input-vector control on alu88 (" +
                std::to_string(trials) + " random vectors)");
  TableWriter table({"rank", "no-loading pick [nA]",
                     "same vector under loading?",
                     "loading-aware pick [nA]"});
  for (std::size_t rank = 0; rank < 5 && rank < candidates.size(); ++rank) {
    const bool same = by_with[rank].vec == by_without[rank].vec;
    table.addRow({std::to_string(rank + 1),
                  formatDouble(by_without[rank].without_na, 1),
                  same ? "yes" : "NO",
                  formatDouble(by_with[rank].with_na, 1)});
  }
  table.printText(std::cout);

  // Count pairwise ranking disagreements on a subsample.
  std::size_t disagreements = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < candidates.size(); i += 7) {
    for (std::size_t j = i + 1; j < candidates.size(); j += 13) {
      ++pairs;
      const bool order_with = candidates[i].with_na < candidates[j].with_na;
      const bool order_without =
          candidates[i].without_na < candidates[j].without_na;
      if (order_with != order_without) {
        ++disagreements;
      }
    }
  }
  std::cout << "pairwise ranking disagreements (loading-aware vs not): "
            << disagreements << " / " << pairs << " sampled pairs\n";
  const bool argmin_moved = by_with.front().vec != by_without.front().vec;
  std::cout << "minimum-leakage vector changes under loading: "
            << (argmin_moved ? "YES" : "no (for this sample)") << "\n";
  std::cout << "(the paper's point: IVC decisions made without loading "
               "awareness can pick a vector that is not actually minimal)\n";
  return 0;
}
