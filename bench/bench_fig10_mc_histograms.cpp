// Fig. 10: Monte-Carlo distributions of each leakage component of an
// inverter (input '0', 6 input-loading + 6 output-loading inverters) with
// and without loading, under process variation.
//
// Usage: bench_fig10_mc_histograms [samples]   (default 10000, the paper's
// count; pass a smaller value for a quick run)
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "mc/monte_carlo.h"
#include "util/histogram.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

namespace {

void printComponent(const char* name,
                    const std::vector<mc::McSample>& samples,
                    double device::LeakageBreakdown::*member) {
  std::vector<double> with;
  std::vector<double> without;
  with.reserve(samples.size());
  without.reserve(samples.size());
  for (const mc::McSample& s : samples) {
    with.push_back(toNanoAmps(s.with_loading.*member));
    without.push_back(toNanoAmps(s.without_loading.*member));
  }
  // Shared binning across the union of both samples.
  std::vector<double> all = with;
  all.insert(all.end(), without.begin(), without.end());
  const Histogram span = Histogram::fromData(all, 20);
  Histogram h_with(span.lo(), span.hi(), 20);
  Histogram h_without(span.lo(), span.hi(), 20);
  h_with.addAll(with);
  h_without.addAll(without);

  bench::banner(std::string("Fig. 10 ") + name + " leakage histogram [nA]");
  TableWriter table({"bin center [nA]", "no loading", "with loading"});
  for (std::size_t bin = 0; bin < h_with.binCount(); ++bin) {
    table.addRow({formatDouble(h_with.binCenter(bin), 1),
                  std::to_string(h_without.count(bin)),
                  std::to_string(h_with.count(bin))});
  }
  table.printText(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t samples = bench::sampleCount(argc, argv, 10000);
  std::cout << "Monte-Carlo with " << samples
            << " samples (seed 20050307), sigmas: L=2nm Tox=0.67A "
               "Vt_inter=30mV Vt_intra=30mV VDD=333mV\n";
  const mc::MonteCarloEngine engine(device::defaultTechnology(),
                                    mc::VariationSigmas{},
                                    mc::McFixtureConfig{});
  const auto run = engine.run(samples, 20050307);

  printComponent("subthreshold", run,
                 &device::LeakageBreakdown::subthreshold);
  printComponent("gate", run, &device::LeakageBreakdown::gate);
  printComponent("junction BTBT", run, &device::LeakageBreakdown::btbt);

  std::vector<mc::McSample> totals = run;
  // Total = sum; reuse printComponent by materializing totals in sub slot.
  for (mc::McSample& s : totals) {
    s.with_loading.subthreshold = s.with_loading.total();
    s.without_loading.subthreshold = s.without_loading.total();
  }
  printComponent("total", totals, &device::LeakageBreakdown::subthreshold);

  const mc::McSummary summary = mc::MonteCarloEngine::summarizeTotals(run);
  bench::banner("Fig. 10 summary (totals)");
  std::cout << "mean without loading: "
            << formatDouble(toNanoAmps(summary.mean_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.mean_with), 1) << " nA ("
            << formatDouble(summary.mean_shift_pct, 2) << " %)\n"
            << "std  without loading: "
            << formatDouble(toNanoAmps(summary.std_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.std_with), 1) << " nA ("
            << formatDouble(summary.std_shift_pct, 2) << " %)\n"
            << "max  without loading: "
            << formatDouble(toNanoAmps(summary.max_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.max_with), 1) << " nA ("
            << formatDouble(summary.max_shift_pct, 2) << " %)\n";
  std::cout << "(expected shape: loading shifts the subthreshold "
               "distribution right, gate/BTBT slightly left, and fattens "
               "the total's right tail)\n";
  return 0;
}
