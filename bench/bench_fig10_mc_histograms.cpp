// Fig. 10: Monte-Carlo distributions of each leakage component of an
// inverter (input '0', 6 input-loading + 6 output-loading inverters) with
// and without loading, under process variation.
//
// Runs on the sweep engine: samples are distributed over worker threads
// with counter-based per-sample RNG streams, so the histograms are
// bit-identical for any thread count.
//
// Usage: bench_fig10_mc_histograms [samples] [threads]   (default 10000,
// the paper's count, on all hardware threads; pass a smaller sample count
// for a quick run)
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "engine/accumulator.h"
#include "engine/batch_runner.h"
#include "mc/monte_carlo.h"
#include "util/histogram.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

namespace {

void printComponent(const char* name,
                    const std::vector<mc::McSample>& samples,
                    double device::LeakageBreakdown::*member) {
  std::vector<double> with;
  std::vector<double> without;
  with.reserve(samples.size());
  without.reserve(samples.size());
  for (const mc::McSample& s : samples) {
    with.push_back(toNanoAmps(s.with_loading.*member));
    without.push_back(toNanoAmps(s.without_loading.*member));
  }
  // Shared binning across the union of both samples; the populations fill
  // mergeable accumulators (the engine's chunk-reduction primitive).
  std::vector<double> all = with;
  all.insert(all.end(), without.begin(), without.end());
  const Histogram span = Histogram::fromData(all, 20);
  engine::HistogramAccumulator acc_with(span.lo(), span.hi(), 20);
  engine::HistogramAccumulator acc_without(span.lo(), span.hi(), 20);
  for (double value : with) {
    acc_with.add(value);
  }
  for (double value : without) {
    acc_without.add(value);
  }
  const Histogram& h_with = acc_with.histogram();
  const Histogram& h_without = acc_without.histogram();

  bench::banner(std::string("Fig. 10 ") + name + " leakage histogram [nA]");
  TableWriter table({"bin center [nA]", "no loading", "with loading"});
  for (std::size_t bin = 0; bin < h_with.binCount(); ++bin) {
    table.addRow({formatDouble(h_with.binCenter(bin), 1),
                  std::to_string(h_without.count(bin)),
                  std::to_string(h_with.count(bin))});
  }
  table.printText(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t samples = bench::sampleCount(argc, argv, 10000);
  engine::BatchRunner runner(
      engine::BatchOptions{.threads = bench::threadCount(argc, argv)});
  std::cout << "Monte-Carlo with " << samples
            << " samples (seed 20050307, batched on "
            << runner.pool().threadCount()
            << " threads), sigmas: L=2nm Tox=0.67A "
               "Vt_inter=30mV Vt_intra=30mV VDD=333mV\n";
  engine::McSweep sweep;
  sweep.technology = device::defaultTechnology();
  sweep.samples = samples;
  sweep.seed = 20050307;
  const engine::McBatchResult batch = runner.run(sweep);
  const std::vector<mc::McSample>& run = batch.samples;

  printComponent("subthreshold", run,
                 &device::LeakageBreakdown::subthreshold);
  printComponent("gate", run, &device::LeakageBreakdown::gate);
  printComponent("junction BTBT", run, &device::LeakageBreakdown::btbt);

  std::vector<mc::McSample> totals = run;
  // Total = sum; reuse printComponent by materializing totals in sub slot.
  for (mc::McSample& s : totals) {
    s.with_loading.subthreshold = s.with_loading.total();
    s.without_loading.subthreshold = s.without_loading.total();
  }
  printComponent("total", totals, &device::LeakageBreakdown::subthreshold);

  const mc::McSummary& summary = batch.summary;
  bench::banner("Fig. 10 summary (totals)");
  std::cout << "mean without loading: "
            << formatDouble(toNanoAmps(summary.mean_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.mean_with), 1) << " nA ("
            << formatDouble(summary.mean_shift_pct, 2) << " %)\n"
            << "std  without loading: "
            << formatDouble(toNanoAmps(summary.std_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.std_with), 1) << " nA ("
            << formatDouble(summary.std_shift_pct, 2) << " %)\n"
            << "max  without loading: "
            << formatDouble(toNanoAmps(summary.max_without), 1)
            << " nA, with loading: "
            << formatDouble(toNanoAmps(summary.max_with), 1) << " nA ("
            << formatDouble(summary.max_shift_pct, 2) << " %)\n";
  std::cout << "(expected shape: loading shifts the subthreshold "
               "distribution right, gate/BTBT slightly left, and fattens "
               "the total's right tail)\n";
  return 0;
}
