// Fig. 7: loading effect (per input pin, and output) on the total leakage
// of a 2-input NAND under each input vector.
//
// The four input vectors run as one engine job: each vector is a parallel
// task owning its LoadingAnalyzer, and the printed numbers are identical
// to the former one-analyzer-at-a-time loop for any thread count.
//
// Usage: bench_fig7_nand_vectors [ignored] [threads]
#include <iostream>

#include "bench_util.h"
#include "engine/batch_runner.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main(int argc, char** argv) {
  engine::BatchRunner runner(
      engine::BatchOptions{.threads = bench::threadCount(argc, argv)});

  engine::GateVectorSweep sweep;
  sweep.kind = gates::GateKind::kNand2;
  sweep.technology = device::defaultTechnology();
  sweep.loading_amps = {0.0,       nA(500.0),  nA(1000.0), nA(1500.0),
                        nA(2000.0), nA(2500.0), nA(3000.0)};
  // sweep.vectors left empty: all four NAND2 vectors in vectorIndex order.
  const std::vector<engine::GateVectorResult> results = runner.run(sweep);

  for (const engine::GateVectorResult& result : results) {
    bench::banner("Fig. 7 NAND2 input = \"" +
                  std::string(result.input_vector[0] ? "1" : "0") +
                  std::string(result.input_vector[1] ? "1" : "0") +
                  "\", output = '" + (result.output_level ? "1" : "0") +
                  "' (total leakage LD [%])");
    TableWriter table({"I_load [nA]", "input-1 [%]", "input-2 [%]",
                       "output [%]"});
    for (const auto& point : result.points) {
      table.addNumericRow({toNanoAmps(point.amps), point.pins[0].total_pct,
                           point.pins[1].total_pct, point.output.total_pct},
                          3);
    }
    table.printText(std::cout);
  }
  std::cout << "(expected shape: input loading strongest when the loaded "
               "pin is at '0'; weakened at \"00\" by stacking; output "
               "loading negative, strongest at output '0')\n";
  return 0;
}
