// Fig. 7: loading effect (per input pin, and output) on the total leakage
// of a 2-input NAND under each input vector.
#include <iostream>

#include "bench_util.h"
#include "core/loading_analyzer.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  const device::Technology tech = device::defaultTechnology();
  const double points[] = {0, 500, 1000, 1500, 2000, 2500, 3000};

  for (std::size_t v = 0; v < 4; ++v) {
    const std::vector<bool> vec{(v & 1) != 0, (v & 2) != 0};
    core::LoadingAnalyzer analyzer(gates::GateKind::kNand2, vec, tech);
    const bool out = !(vec[0] && vec[1]);
    bench::banner("Fig. 7 NAND2 input = \"" +
                  std::string(vec[0] ? "1" : "0") +
                  std::string(vec[1] ? "1" : "0") + "\", output = '" +
                  (out ? "1" : "0") + "' (total leakage LD [%])");
    TableWriter table({"I_load [nA]", "input-1 [%]", "input-2 [%]",
                       "output [%]"});
    for (double amps : points) {
      const double in1 = analyzer.pinLoadingEffect(0, nA(amps)).total_pct;
      const double in2 = analyzer.pinLoadingEffect(1, nA(amps)).total_pct;
      const double outp = analyzer.outputLoadingEffect(nA(amps)).total_pct;
      table.addNumericRow({amps, in1, in2, outp}, 3);
    }
    table.printText(std::cout);
  }
  std::cout << "(expected shape: input loading strongest when the loaded "
               "pin is at '0'; weakened at \"00\" by stacking; output "
               "loading negative, strongest at output '0')\n";
  return 0;
}
