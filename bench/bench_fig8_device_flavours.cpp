// Fig. 8: input/output loading effect of an inverter built in the D25-S
// (subthreshold-dominated), D25-G (gate-dominated) and D25-JN
// (BTBT-dominated) device flavours.
#include <iostream>

#include "bench_util.h"
#include "core/loading_analyzer.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  struct Flavour {
    const char* name;
    device::Technology tech;
  };
  const Flavour flavours[] = {
      {"D25-S", device::defaultTechnology()},
      {"D25-G", device::gateDominatedTechnology()},
      {"D25-JN", device::btbtDominatedTechnology()},
  };
  const double points[] = {0, 500, 1000, 1500, 2000, 2500, 3000};

  for (bool input : {false, true}) {
    const char* label = input ? "input='1', output='0'"
                              : "input='0', output='1'";
    bench::banner(std::string("Fig. 8 LDIN [%] (") + label + ")");
    {
      TableWriter table({"IL-IN [nA]", "D25-S", "D25-G", "D25-JN"});
      std::vector<core::LoadingAnalyzer> analyzers;
      for (const Flavour& f : flavours) {
        analyzers.emplace_back(gates::GateKind::kInv,
                               std::vector<bool>{input}, f.tech);
      }
      for (double il : points) {
        std::vector<double> row = {il};
        for (auto& an : analyzers) {
          row.push_back(an.inputLoadingEffect(nA(il)).total_pct);
        }
        table.addNumericRow(row, 3);
      }
      table.printText(std::cout);
    }
    bench::banner(std::string("Fig. 8 LDOUT [%] (") + label + ")");
    {
      TableWriter table({"IL-OUT [nA]", "D25-S", "D25-G", "D25-JN"});
      std::vector<core::LoadingAnalyzer> analyzers;
      for (const Flavour& f : flavours) {
        analyzers.emplace_back(gates::GateKind::kInv,
                               std::vector<bool>{input}, f.tech);
      }
      for (double ol : points) {
        std::vector<double> row = {ol};
        for (auto& an : analyzers) {
          row.push_back(an.outputLoadingEffect(nA(ol)).total_pct);
        }
        table.addNumericRow(row, 3);
      }
      table.printText(std::cout);
    }
  }
  std::cout << "(expected shape: LDIN strongest for D25-S, LDOUT strongest "
               "for D25-JN, both weakest for D25-G)\n";
  return 0;
}
