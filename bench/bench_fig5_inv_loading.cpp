// Fig. 5: input (LDIN) and output (LDOUT) loading effect of an inverter,
// per leakage component, for inputs '0' and '1', IL-IN/IL-OUT = 0..3000 nA.
#include <iostream>

#include "bench_util.h"
#include "core/loading_analyzer.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  const device::Technology tech = device::defaultTechnology();
  const double points[] = {0, 250, 500, 1000, 1500, 2000, 2500, 3000};

  for (bool input : {false, true}) {
    core::LoadingAnalyzer analyzer(gates::GateKind::kInv, {input}, tech);
    const char* label = input ? "input='1', output='0'"
                              : "input='0', output='1'";

    bench::banner(std::string("Fig. 5 LDIN (") + label + ")");
    TableWriter in_table({"IL-IN [nA]", "sub [%]", "gate [%]", "btbt [%]",
                          "total [%]"});
    for (double il : points) {
      const core::LoadingEffect e = analyzer.inputLoadingEffect(nA(il));
      in_table.addNumericRow({il, e.subthreshold_pct, e.gate_pct, e.btbt_pct,
                              e.total_pct},
                             3);
    }
    in_table.printText(std::cout);

    bench::banner(std::string("Fig. 5 LDOUT (") + label + ")");
    TableWriter out_table({"IL-OUT [nA]", "sub [%]", "gate [%]", "btbt [%]",
                           "total [%]"});
    for (double ol : points) {
      const core::LoadingEffect e = analyzer.outputLoadingEffect(nA(ol));
      out_table.addNumericRow({ol, e.subthreshold_pct, e.gate_pct,
                               e.btbt_pct, e.total_pct},
                              3);
    }
    out_table.printText(std::cout);
  }
  std::cout << "(expected shape: LDIN > 0 and subthreshold-dominated, "
               "larger at input '0'; LDOUT < 0 for all components, BTBT "
               "most sensitive, larger in magnitude at output '0')\n";
  return 0;
}
