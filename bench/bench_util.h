// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <string>

namespace nanoleak::bench {

/// Strict integer parse: the whole argument must be a number in
/// [min, max] ("100x" is rejected, not silently read as 100; overflowing
/// values are rejected, not saturated or wrapped). Returns fallback with
/// a stderr warning on malformed or out-of-range input.
inline long parseIntArg(const char* arg, long min, long max, long fallback,
                        const char* what) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || parsed < min ||
      parsed > max) {
    std::cerr << "warning: ignoring malformed " << what << " argument '"
              << arg << "' (want an integer in [" << min << ", " << max
              << "]); using " << fallback << "\n";
    return fallback;
  }
  return parsed;
}

/// Scale factor for sample counts: pass a positive integer argv[1] to
/// override the paper-scale default (useful for quick smoke runs).
inline std::size_t sampleCount(int argc, char** argv, std::size_t fallback) {
  if (argc > 1) {
    return static_cast<std::size_t>(
        parseIntArg(argv[1], 1, LONG_MAX, static_cast<long>(fallback),
                    "sample count"));
  }
  return fallback;
}

/// Engine concurrency: pass argv[index] to pick a thread count (total,
/// including the caller); 0 or absent = all hardware threads.
inline int threadCount(int argc, char** argv, int index = 2) {
  if (argc > index) {
    return static_cast<int>(
        parseIntArg(argv[index], 0, INT_MAX, 0, "thread count"));
  }
  return 0;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace nanoleak::bench
