// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <system_error>

namespace nanoleak::bench {

/// Where bench artifacts (BENCH_*.json, fig12_throughput.json,
/// speedup.json) are written: bench/out/ relative to the working
/// directory (the repo root in CI), which is gitignored. Creates the
/// directory on first use and falls back to the bare filename when it
/// cannot be created (e.g. a read-only cwd), so benches still emit their
/// artifact somewhere rather than failing.
inline std::string outPath(const std::string& filename) {
  const std::filesystem::path dir = std::filesystem::path("bench") / "out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "warning: could not create " << dir.string() << " ("
              << ec.message() << "); writing " << filename
              << " to the working directory\n";
    return filename;
  }
  return (dir / filename).string();
}

/// Strict integer parse: the whole argument must be a number in
/// [min, max] ("100x" is rejected, not silently read as 100; overflowing
/// values are rejected, not saturated or wrapped). Returns fallback with
/// a stderr warning on malformed or out-of-range input.
inline long parseIntArg(const char* arg, long min, long max, long fallback,
                        const char* what) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || parsed < min ||
      parsed > max) {
    std::cerr << "warning: ignoring malformed " << what << " argument '"
              << arg << "' (want an integer in [" << min << ", " << max
              << "]); using " << fallback << "\n";
    return fallback;
  }
  return parsed;
}

/// Scale factor for sample counts: pass a positive integer argv[1] to
/// override the paper-scale default (useful for quick smoke runs).
inline std::size_t sampleCount(int argc, char** argv, std::size_t fallback) {
  if (argc > 1) {
    return static_cast<std::size_t>(
        parseIntArg(argv[1], 1, LONG_MAX, static_cast<long>(fallback),
                    "sample count"));
  }
  return fallback;
}

/// Engine concurrency: pass argv[index] to pick a thread count (total,
/// including the caller); 0 or absent = all hardware threads.
inline int threadCount(int argc, char** argv, int index = 2) {
  if (argc > index) {
    return static_cast<int>(
        parseIntArg(argv[index], 0, INT_MAX, 0, "thread count"));
  }
  return 0;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace nanoleak::bench
