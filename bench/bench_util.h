// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace nanoleak::bench {

/// Scale factor for sample counts: pass a positive integer argv[1] to
/// override the paper-scale default (useful for quick smoke runs).
inline std::size_t sampleCount(int argc, char** argv, std::size_t fallback) {
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

/// Engine concurrency: pass argv[index] to pick a thread count (total,
/// including the caller); 0 or absent = all hardware threads.
inline int threadCount(int argc, char** argv, int index = 2) {
  if (argc > index) {
    const long parsed = std::strtol(argv[index], nullptr, 10);
    if (parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return 0;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace nanoleak::bench
