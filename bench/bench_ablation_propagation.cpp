// Ablation for the paper's central approximation (section 6): "the
// propagation of the loading effect beyond one level is negligible".
//
// Compares 0-level (no loading), 1-level (the paper), and k-level
// (iterated pin currents) estimation against the golden full solve, and
// also ablates the characterization grid resolution.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"
#include "util/table_writer.h"

using namespace nanoleak;

namespace {

double meanAbsErrorPct(const logic::LogicNetlist& nl,
                       const core::LeakageLibrary& lib,
                       const core::EstimatorOptions& options, int vectors,
                       Rng rng) {
  const device::Technology tech = device::defaultTechnology();
  const core::LeakageEstimator est(nl, lib, options);
  const logic::LogicSimulator sim(nl);
  double sum = 0.0;
  for (int i = 0; i < vectors; ++i) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const double golden = core::goldenLeakage(nl, tech, vec).total.total();
    const double estimate = est.estimate(vec).total.total();
    sum += std::abs(estimate - golden) / golden * 100.0;
  }
  return sum / vectors;
}

}  // namespace

int main() {
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicNetlist nl =
      logic::synthesizeIscasLike(logic::iscasSpec("s838"), 20050307);
  const int vectors = 3;

  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const core::LeakageLibrary lib =
      core::Characterizer(tech, copts).characterize();

  bench::banner("Ablation: propagation depth (s838-shaped, " +
                std::to_string(vectors) + " vectors, error vs golden)");
  {
    TableWriter table({"mode", "mean |error| vs golden [%]"});
    core::EstimatorOptions none;
    none.with_loading = false;
    table.addRow({"no loading (traditional)",
                  formatDouble(meanAbsErrorPct(nl, lib, none, vectors,
                                               Rng(5)),
                               3)});
    for (int levels : {1, 2, 4}) {
      core::EstimatorOptions options;
      options.propagation_iterations = levels;
      table.addRow({std::to_string(levels) + "-level propagation",
                    formatDouble(meanAbsErrorPct(nl, lib, options, vectors,
                                                 Rng(5)),
                                 3)});
    }
    table.printText(std::cout);
    std::cout << "(expected: one level removes most of the no-loading "
                 "error; deeper levels change almost nothing - the paper's "
                 "justification for the Fig. 13 algorithm)\n";
  }

  bench::banner("Ablation: characterization grid resolution");
  {
    TableWriter table({"grid points", "char time [ms]",
                       "mean |error| vs golden [%]"});
    struct GridCase {
      const char* label;
      std::vector<double> grid;
    };
    const GridCase cases[] = {
        {"3", {0.0, 2.0e-6, 6.0e-6}},
        {"5", {0.0, 1.0e-6, 2.0e-6, 4.0e-6, 6.0e-6}},
        {"8 (default)",
         {0.0, 0.25e-6, 0.5e-6, 1.0e-6, 2.0e-6, 3.0e-6, 4.5e-6, 6.0e-6}},
    };
    for (const GridCase& grid_case : cases) {
      core::CharacterizationOptions options;
      options.kinds = core::generatorGateKinds();
      options.loading_grid = grid_case.grid;
      const auto t0 = std::chrono::steady_clock::now();
      const core::LeakageLibrary grid_lib =
          core::Characterizer(tech, options).characterize();
      const auto t1 = std::chrono::steady_clock::now();
      table.addRow(
          {grid_case.label,
           formatDouble(
               std::chrono::duration<double, std::milli>(t1 - t0).count(),
               0),
           formatDouble(meanAbsErrorPct(nl, grid_lib,
                                        core::EstimatorOptions{}, vectors,
                                        Rng(5)),
                        3)});
    }
    table.printText(std::cout);
  }
  return 0;
}
