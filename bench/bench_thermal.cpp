// Thermal sweep bench: how much the ThermalCharacterizer's fixture reuse
// and temperature-continuation warm starts buy over per-temperature fresh
// characterization, across three modes:
//  1. fresh/cold  - a new core::Characterizer per temperature, compiled
//                   kernels, cold seeds (the reference),
//  2. reuse/cold  - ThermalCharacterizer Mode::kCold: fixtures compiled
//                   once, coefficients re-bound per temperature, cold
//                   seeds. MUST be bit-identical to mode 1 (the
//                   DeviceCoeffs re-bind-at-T equivalence),
//  3. reuse/warm  - Mode::kWarmStart: adds the temperature-continuation
//                   seeds. Must agree with mode 1 within solver tolerance.
//
// Emits bench/out/BENCH_thermal.json (wall-clock, node solves and
// throughput per mode, plus the equivalence outcomes) and EXITS NON-ZERO
// when an equivalence check fails: reuse/cold not bit-identical, or
// reuse/warm drifting beyond 1e-6 relative. CI runs
// `bench_thermal --quick` and fails the build on a mismatch.
//
// Also prints one end-to-end ThermalSweepEngine curve (circuit leakage vs
// T with the per-component model fits) so the bench doubles as a smoke
// run of the full subsystem.
//
// usage: bench_thermal [--quick]
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/solver_stats.h"
#include "core/characterizer.h"
#include "engine/batch_runner.h"
#include "scenario/scenario.h"
#include "thermal/thermal_characterizer.h"
#include "thermal/thermal_sweep.h"
#include "util/table_writer.h"

namespace {

using nanoleak::TableWriter;
using nanoleak::formatDouble;
using namespace nanoleak;

using Clock = std::chrono::steady_clock;
using PerTemperatureTables = std::vector<std::vector<core::VectorTable>>;

struct ModeResult {
  double seconds = 0.0;
  std::uint64_t node_solves = 0;

  double nodeSolvesPerSec() const {
    return seconds > 0.0 ? static_cast<double>(node_solves) / seconds : 0.0;
  }
};

template <typename Fn>
ModeResult timed(Fn&& fn) {
  const circuit::SolveStats before = circuit::solveStats();
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  const circuit::SolveStats after = circuit::solveStats();
  return {std::chrono::duration<double>(t1 - t0).count(),
          after.node_solves - before.node_solves};
}

double relDiff(double a, double b) {
  const double denom = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) / denom;
}

struct Failure {
  std::string what;
};

/// Fresh per-temperature characterization, compiled kernels, cold seeds:
/// the reference the thermal modes are gated against. Layout matches
/// ThermalCharacterizer::characterizeKind: result[kind][t][vec].
std::vector<PerTemperatureTables> freshColdTables(
    const device::Technology& base,
    const std::vector<gates::GateKind>& kinds,
    const std::vector<double>& temperatures,
    const core::CharacterizationOptions& base_options) {
  std::vector<PerTemperatureTables> out(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    out[k].resize(temperatures.size());
  }
  for (std::size_t t = 0; t < temperatures.size(); ++t) {
    device::Technology tech = base;
    tech.temperature_k = temperatures[t];
    core::CharacterizationOptions options = base_options;
    options.solver_path =
        core::CharacterizationOptions::SolverPath::kCompiled;
    const core::Characterizer chr(tech, options);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      out[k][t] = chr.characterizeKind(kinds[k]);
    }
  }
  return out;
}

bool bitIdentical(const core::VectorTable& a, const core::VectorTable& b) {
  if (a.subthreshold.values() != b.subthreshold.values() ||
      a.gate.values() != b.gate.values() ||
      a.btbt.values() != b.btbt.values() ||
      a.pin_current != b.pin_current ||
      a.isolated_nominal.total() != b.isolated_nominal.total() ||
      a.pin_current_grid.size() != b.pin_current_grid.size()) {
    return false;
  }
  // The pin-current surfaces feed iterative propagation and are part of
  // the seeded cache entries - a stale-rebind bug there must fail the
  // gate too.
  for (std::size_t pin = 0; pin < a.pin_current_grid.size(); ++pin) {
    if (a.pin_current_grid[pin].values() !=
        b.pin_current_grid[pin].values()) {
      return false;
    }
  }
  return true;
}

double maxRelDiff(const core::VectorTable& a, const core::VectorTable& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.subthreshold.values().size(); ++i) {
    worst = std::max(
        {worst, relDiff(a.subthreshold.values()[i], b.subthreshold.values()[i]),
         relDiff(a.gate.values()[i], b.gate.values()[i]),
         relDiff(a.btbt.values()[i], b.btbt.values()[i])});
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "warning: ignoring unknown argument '" << argv[i]
                << "'\n";
    }
  }

  const device::Technology base = device::defaultTechnology();
  const std::vector<gates::GateKind> kinds =
      quick ? std::vector<gates::GateKind>{gates::GateKind::kInv,
                                           gates::GateKind::kNand2}
            : std::vector<gates::GateKind>{
                  gates::GateKind::kInv, gates::GateKind::kNand2,
                  gates::GateKind::kNand4, gates::GateKind::kNor2,
                  gates::GateKind::kXor2};
  core::CharacterizationOptions char_options;
  if (quick) {
    char_options.loading_grid = {0.0, 0.5e-6, 2.0e-6, 6.0e-6};
  }
  thermal::ThermalGrid grid;
  grid.t_min_k = 233.0;
  grid.t_max_k = 398.0;
  grid.points = quick ? 5 : 8;
  const std::vector<double> temperatures = grid.temperatures();

  std::vector<Failure> failures;

  std::cout << "bench_thermal (" << (quick ? "quick" : "full")
            << " workload): " << kinds.size() << " kinds, "
            << char_options.loading_grid.size() << "^2 loading grid, "
            << temperatures.size() << " temperatures "
            << formatDouble(grid.t_min_k, 0) << "-"
            << formatDouble(grid.t_max_k, 0) << " K\n";

  // Mode 1: fresh per-temperature characterization (reference).
  std::vector<PerTemperatureTables> fresh;
  const ModeResult fresh_mode = timed([&] {
    fresh = freshColdTables(base, kinds, temperatures, char_options);
  });

  // Mode 2: fixture reuse, cold seeds - must be bit-identical to fresh.
  std::vector<PerTemperatureTables> reuse_cold;
  const ModeResult reuse_cold_mode = timed([&] {
    const thermal::ThermalCharacterizer chr(
        base, char_options, thermal::ThermalCharacterizer::Mode::kCold);
    for (gates::GateKind kind : kinds) {
      reuse_cold.push_back(chr.characterizeKind(kind, temperatures));
    }
  });

  // Mode 3: fixture reuse + temperature continuation.
  std::vector<PerTemperatureTables> reuse_warm;
  const ModeResult reuse_warm_mode = timed([&] {
    const thermal::ThermalCharacterizer chr(
        base, char_options,
        thermal::ThermalCharacterizer::Mode::kWarmStart);
    for (gates::GateKind kind : kinds) {
      reuse_warm.push_back(chr.characterizeKind(kind, temperatures));
    }
  });

  bool cold_bit_identical = true;
  double warm_max_rel_diff = 0.0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (std::size_t t = 0; t < temperatures.size(); ++t) {
      for (std::size_t v = 0; v < fresh[k][t].size(); ++v) {
        if (!bitIdentical(fresh[k][t][v], reuse_cold[k][t][v])) {
          if (cold_bit_identical) {
            failures.push_back(
                {"reuse/cold tables not bit-identical to fresh (kind " +
                 std::string(gates::toString(kinds[k])) + ", T " +
                 formatDouble(temperatures[t], 1) + " K, vector " +
                 std::to_string(v) + ")"});
          }
          cold_bit_identical = false;
        }
        warm_max_rel_diff = std::max(
            warm_max_rel_diff, maxRelDiff(fresh[k][t][v], reuse_warm[k][t][v]));
      }
    }
  }
  if (warm_max_rel_diff > 1e-6) {
    failures.push_back({"reuse/warm tables drift " +
                        formatDouble(warm_max_rel_diff, 12) +
                        " > 1e-6 from fresh"});
  }

  nanoleak::bench::banner("Thermal-grid characterization");
  TableWriter table(
      {"mode", "wall [s]", "node solves", "node-solves/s", "speedup"});
  const auto addMode = [&](const char* name, const ModeResult& mode) {
    table.addRow({name, formatDouble(mode.seconds, 3),
                  std::to_string(mode.node_solves),
                  formatDouble(mode.nodeSolvesPerSec(), 0),
                  formatDouble(fresh_mode.seconds /
                                   std::max(1e-12, mode.seconds),
                               2)});
  };
  addMode("fresh per-T (cold)", fresh_mode);
  addMode("reuse (cold)", reuse_cold_mode);
  addMode("reuse + T-continuation", reuse_warm_mode);
  table.printText(std::cout);
  std::cout << "reuse/cold bit-identical to fresh: "
            << (cold_bit_identical ? "yes" : "NO") << "\n"
            << "reuse/warm max rel diff vs fresh: "
            << formatDouble(warm_max_rel_diff, 12) << "\n";

  // End-to-end smoke: one circuit curve through the full engine.
  nanoleak::bench::banner("ThermalSweepEngine end-to-end (c17 x d25s)");
  thermal::ThermalSweepOptions sweep_options;
  sweep_options.grid = grid;
  sweep_options.characterization = char_options;
  const thermal::ThermalSweepEngine engine(base, sweep_options);
  engine::BatchRunner runner;
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  const std::vector<std::vector<bool>> patterns = scenario::expandVectors(
      scenario::VectorPolicy::random(quick ? 6 : 16, 20050307),
      netlist.sourceNets().size());
  thermal::ThermalCurve curve;
  const ModeResult sweep_mode =
      timed([&] { curve = engine.run(netlist, patterns, runner); });
  TableWriter curve_table({"T [K]", "total [A]", "sub share [%]"});
  for (const thermal::ThermalPoint& point : curve.points) {
    curve_table.addRow(
        {formatDouble(point.temperature_k, 1),
         formatDouble(point.mean.total() * 1e6, 4) + "e-6",
         formatDouble(100.0 * point.mean.subthreshold /
                          std::max(1e-30, point.mean.total()),
                      1)});
  }
  curve_table.printText(std::cout);
  std::cout << "best model: total " << curve.total.bestModel()
            << " (linear max err "
            << formatDouble(100.0 * curve.total.linear.error.max_rel, 1)
            << "%), sweep wall " << formatDouble(sweep_mode.seconds, 3)
            << " s\n";

  const double warm_speedup =
      fresh_mode.seconds / std::max(1e-12, reuse_warm_mode.seconds);

  // BENCH_thermal.json.
  std::ostringstream json;
  json << "{\n  \"workload\": \"thermal\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"kinds\": " << kinds.size()
       << ",\n  \"grid\": " << char_options.loading_grid.size()
       << ",\n  \"temperatures\": " << temperatures.size()
       << ",\n  \"t_min_k\": " << formatDouble(grid.t_min_k, 1)
       << ",\n  \"t_max_k\": " << formatDouble(grid.t_max_k, 1)
       << ",\n  \"modes\": [\n";
  const auto emitMode = [&](const char* name, const ModeResult& mode,
                            bool trailing_comma) {
    json << "    {\"mode\": \"" << name << "\", \"wall_s\": "
         << formatDouble(mode.seconds, 4) << ", \"node_solves\": "
         << mode.node_solves << ", \"node_solves_per_s\": "
         << formatDouble(mode.nodeSolvesPerSec(), 0) << "}"
         << (trailing_comma ? "," : "") << "\n";
  };
  emitMode("fresh_cold", fresh_mode, true);
  emitMode("reuse_cold", reuse_cold_mode, true);
  emitMode("reuse_warm", reuse_warm_mode, false);
  json << "  ],\n  \"speedup_reuse_cold\": "
       << formatDouble(fresh_mode.seconds /
                           std::max(1e-12, reuse_cold_mode.seconds),
                       3)
       << ",\n  \"speedup_reuse_warm\": " << formatDouble(warm_speedup, 3)
       << ",\n  \"cold_bit_identical\": "
       << (cold_bit_identical ? "true" : "false")
       << ",\n  \"warm_max_rel_diff\": "
       << formatDouble(warm_max_rel_diff, 12)
       << ",\n  \"sweep\": {\n    \"circuit\": \"c17\", \"vectors\": "
       << patterns.size() << ", \"wall_s\": "
       << formatDouble(sweep_mode.seconds, 4)
       << ",\n    \"total_best_model\": \"" << curve.total.bestModel()
       << "\", \"total_lin_maxerr_pct\": "
       << formatDouble(100.0 * curve.total.linear.error.max_rel, 3)
       << "\n  },\n  \"equivalence_failures\": " << failures.size()
       << "\n}\n";
  const std::string out_path = nanoleak::bench::outPath("BENCH_thermal.json");
  std::ofstream out(out_path);
  if (out) {
    out << json.str();
    std::cout << "\nwrote " << out_path << "\n";
  } else {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }

  std::cout << "\nthermal characterization speedup (reuse+continuation vs "
               "fresh per-T): "
            << formatDouble(warm_speedup, 2) << "x\n";

  if (!failures.empty()) {
    std::cerr << "\nEQUIVALENCE FAILURES:\n";
    for (const Failure& failure : failures) {
      std::cerr << "  " << failure.what << "\n";
    }
    return 1;
  }
  return 0;
}
