// SolverKernel bench: legacy (interpreted DcSolver) vs compiled kernel vs
// kernel + warm-started continuation vs the SIMD lane-parallel batch
// kernel, across the three workloads the kernels accelerate:
//  1. full-library characterization (the tentpole target: >= 3x compiled,
//     >= 2x batched-over-scalar-compiled at lane width > 1),
//  2. golden full-circuit re-solves over repeated vectors,
//  3. paired Monte-Carlo trials (scalar compiled vs lane-parallel batched).
//
// Emits BENCH_solver.json (node-solves/sec and wall-clock per mode, plus
// the configured SIMD backend and lane width) and EXITS NON-ZERO when the
// built-in equivalence checks fail: the compiled cold path must be
// bit-identical to legacy, and warm-started / lane-batched paths must
// agree within solver tolerance. CI runs `bench_solver_kernel --quick` and
// fails the build on a mismatch.
//
// With --obs-overhead it additionally measures the cost of the obs
// instrumentation layer (metrics counters + gated trace spans) on a warm
// golden re-solve loop - tracing off vs coarse tracing, min-of-repeats -
// and fails when the overhead exceeds 3%.
//
// usage: bench_solver_kernel [--quick] [--obs-overhead] [threads]
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/solver_stats.h"
#include "core/characterizer.h"
#include "core/golden.h"
#include "engine/batch_runner.h"
#include "engine/sweep.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "mc/monte_carlo.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/table_writer.h"

namespace {

using nanoleak::TableWriter;
using nanoleak::formatDouble;
using namespace nanoleak;

using Clock = std::chrono::steady_clock;

struct ModeResult {
  double seconds = 0.0;
  std::uint64_t node_solves = 0;

  double nodeSolvesPerSec() const {
    return seconds > 0.0 ? static_cast<double>(node_solves) / seconds : 0.0;
  }
};

template <typename Fn>
ModeResult timed(Fn&& fn) {
  const circuit::SolveStats before = circuit::solveStats();
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  const circuit::SolveStats after = circuit::solveStats();
  return {std::chrono::duration<double>(t1 - t0).count(),
          after.node_solves - before.node_solves};
}

double relDiff(double a, double b) {
  const double denom = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) / denom;
}

struct Failure {
  std::string what;
};

// ---------------------------------------------------------------------------
// 1. Characterization.
// ---------------------------------------------------------------------------

struct CharBench {
  ModeResult legacy;
  ModeResult compiled;
  ModeResult warm;
  ModeResult batched;
  bool compiled_bit_identical = false;
  double warm_max_rel_diff = 0.0;
  double batched_max_rel_diff = 0.0;
};

CharBench benchCharacterization(const device::Technology& tech,
                                const std::vector<gates::GateKind>& kinds,
                                const std::vector<double>& grid,
                                std::vector<Failure>& failures) {
  using SolverPath = core::CharacterizationOptions::SolverPath;
  auto optionsFor = [&](SolverPath path) {
    core::CharacterizationOptions options;
    options.kinds = kinds;
    options.loading_grid = grid;
    options.solver_path = path;
    return options;
  };

  std::vector<std::vector<core::VectorTable>> tables_by_mode;
  CharBench result;
  for (SolverPath path : {SolverPath::kLegacy, SolverPath::kCompiled,
                          SolverPath::kCompiledWarmStart,
                          SolverPath::kBatched}) {
    std::vector<core::VectorTable> tables;
    const ModeResult mode = timed([&] {
      const core::Characterizer chr(tech, optionsFor(path));
      for (gates::GateKind kind : kinds) {
        auto kind_tables = chr.characterizeKind(kind);
        tables.insert(tables.end(),
                      std::make_move_iterator(kind_tables.begin()),
                      std::make_move_iterator(kind_tables.end()));
      }
    });
    tables_by_mode.push_back(std::move(tables));
    switch (path) {
      case SolverPath::kLegacy:
        result.legacy = mode;
        break;
      case SolverPath::kCompiled:
        result.compiled = mode;
        break;
      case SolverPath::kCompiledWarmStart:
        result.warm = mode;
        break;
      case SolverPath::kBatched:
        result.batched = mode;
        break;
    }
  }

  // Equivalence: compiled-cold must reproduce legacy bit-for-bit; warm
  // within solver tolerance.
  result.compiled_bit_identical = true;
  const auto& legacy = tables_by_mode[0];
  const auto& compiled = tables_by_mode[1];
  const auto& warm = tables_by_mode[2];
  for (std::size_t v = 0; v < legacy.size(); ++v) {
    if (legacy[v].subthreshold.values() != compiled[v].subthreshold.values() ||
        legacy[v].gate.values() != compiled[v].gate.values() ||
        legacy[v].btbt.values() != compiled[v].btbt.values()) {
      result.compiled_bit_identical = false;
      failures.push_back({"characterization: compiled table " +
                          std::to_string(v) + " differs from legacy"});
      break;
    }
  }
  for (std::size_t v = 0; v < legacy.size(); ++v) {
    const auto& a = legacy[v];
    const auto& b = warm[v];
    for (std::size_t i = 0; i < a.subthreshold.values().size(); ++i) {
      result.warm_max_rel_diff = std::max(
          {result.warm_max_rel_diff,
           relDiff(a.subthreshold.values()[i], b.subthreshold.values()[i]),
           relDiff(a.gate.values()[i], b.gate.values()[i]),
           relDiff(a.btbt.values()[i], b.btbt.values()[i])});
    }
  }
  if (result.warm_max_rel_diff > 1e-6) {
    failures.push_back(
        {"characterization: warm-start tables drift " +
         formatDouble(result.warm_max_rel_diff, 12) + " > 1e-6 from legacy"});
  }
  const auto& batched = tables_by_mode[3];
  for (std::size_t v = 0; v < legacy.size(); ++v) {
    const auto& a = legacy[v];
    const auto& b = batched[v];
    for (std::size_t i = 0; i < a.subthreshold.values().size(); ++i) {
      result.batched_max_rel_diff = std::max(
          {result.batched_max_rel_diff,
           relDiff(a.subthreshold.values()[i], b.subthreshold.values()[i]),
           relDiff(a.gate.values()[i], b.gate.values()[i]),
           relDiff(a.btbt.values()[i], b.btbt.values()[i])});
    }
  }
  if (result.batched_max_rel_diff > 1e-6) {
    failures.push_back(
        {"characterization: lane-batched tables drift " +
         formatDouble(result.batched_max_rel_diff, 12) +
         " > 1e-6 from legacy"});
  }
  return result;
}

// ---------------------------------------------------------------------------
// 2. Golden re-solves.
// ---------------------------------------------------------------------------

struct GoldenBenchRow {
  std::string name;
  std::size_t gates = 0;
  std::size_t vectors = 0;
  ModeResult legacy;
  ModeResult warm;
  double max_rel_diff = 0.0;
};

GoldenBenchRow benchGolden(const std::string& name,
                           const logic::LogicNetlist& netlist,
                           std::size_t vectors,
                           const device::Technology& tech,
                           std::vector<Failure>& failures) {
  GoldenBenchRow row;
  row.name = name;
  row.gates = netlist.gateCount();
  row.vectors = vectors;

  const logic::LogicSimulator sim(netlist);
  Rng rng(1234);
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(vectors);
  for (std::size_t i = 0; i < vectors; ++i) {
    patterns.push_back(logic::randomPattern(sim.sourceCount(), rng));
  }

  std::vector<double> legacy_totals;
  row.legacy = timed([&] {
    for (const auto& pattern : patterns) {
      legacy_totals.push_back(
          core::goldenLeakage(netlist, tech, pattern).total.total());
    }
  });

  std::vector<double> warm_totals;
  row.warm = timed([&] {
    core::GoldenSolver solver(netlist, tech);
    for (const auto& pattern : patterns) {
      warm_totals.push_back(solver.solve(pattern).total.total());
    }
  });

  for (std::size_t i = 0; i < vectors; ++i) {
    row.max_rel_diff =
        std::max(row.max_rel_diff, relDiff(legacy_totals[i], warm_totals[i]));
  }
  if (row.max_rel_diff > 1e-6) {
    failures.push_back({"golden re-solve (" + name + "): warm totals drift " +
                        formatDouble(row.max_rel_diff, 12) + " > 1e-6"});
  }
  return row;
}

// ---------------------------------------------------------------------------
// 3. Monte-Carlo trials.
// ---------------------------------------------------------------------------

struct McBench {
  std::size_t samples = 0;
  ModeResult legacy;
  ModeResult compiled;
  ModeResult batched;
  double max_rel_diff = 0.0;
  double batched_max_rel_diff = 0.0;
};

McBench benchMonteCarlo(const device::Technology& tech, std::size_t samples,
                        std::vector<Failure>& failures) {
  McBench result;
  result.samples = samples;
  const mc::VariationSigmas sigmas;

  mc::MonteCarloEngine legacy(tech, sigmas);
  legacy.setUseCompiledFixtures(false);
  std::vector<mc::McSample> legacy_samples;
  result.legacy =
      timed([&] { legacy_samples = legacy.runBatched(samples, 97); });

  // Scalar compiled path: one warm-started solve per trial.
  mc::MonteCarloEngine compiled(tech, sigmas);
  compiled.setUseBatchedSolves(false);
  std::vector<mc::McSample> compiled_samples;
  result.compiled =
      timed([&] { compiled_samples = compiled.runBatched(samples, 97); });

  // Lane-parallel path (the default): kLaneWidth trials per lockstep solve.
  mc::MonteCarloEngine batched(tech, sigmas);
  std::vector<mc::McSample> batched_samples;
  result.batched =
      timed([&] { batched_samples = batched.runBatched(samples, 97); });

  for (std::size_t i = 0; i < samples; ++i) {
    result.max_rel_diff =
        std::max({result.max_rel_diff,
                  relDiff(legacy_samples[i].with_loading.total(),
                          compiled_samples[i].with_loading.total()),
                  relDiff(legacy_samples[i].without_loading.total(),
                          compiled_samples[i].without_loading.total())});
    result.batched_max_rel_diff =
        std::max({result.batched_max_rel_diff,
                  relDiff(compiled_samples[i].with_loading.total(),
                          batched_samples[i].with_loading.total()),
                  relDiff(compiled_samples[i].without_loading.total(),
                          batched_samples[i].without_loading.total())});
  }
  if (result.max_rel_diff > 1e-6) {
    failures.push_back({"monte-carlo: compiled trials drift " +
                        formatDouble(result.max_rel_diff, 12) + " > 1e-6"});
  }
  if (result.batched_max_rel_diff > 1e-6) {
    failures.push_back({"monte-carlo: lane-batched trials drift " +
                        formatDouble(result.batched_max_rel_diff, 12) +
                        " > 1e-6 from the scalar compiled path"});
  }
  return result;
}

// ---------------------------------------------------------------------------
// 4. Observability overhead (--obs-overhead).
// ---------------------------------------------------------------------------

struct ObsOverhead {
  double off_seconds = 0.0;  ///< min-of-repeats, tracing disabled
  double on_seconds = 0.0;   ///< min-of-repeats, coarse tracing enabled

  double overheadPct() const {
    return off_seconds > 0.0
               ? 100.0 * (on_seconds - off_seconds) / off_seconds
               : 0.0;
  }
};

/// Times a warm golden re-solve loop (the hottest instrumented path:
/// every solve crosses the solver_stats counters and the gated span
/// checks) with tracing off and with coarse tracing on. Min-of-repeats
/// filters scheduler noise; the same pattern set is used throughout so
/// both modes do bit-identical work.
ObsOverhead benchObsOverhead(const device::Technology& tech,
                             std::size_t vectors, int repeats,
                             std::vector<Failure>& failures) {
  const logic::LogicNetlist netlist = logic::c17();
  const logic::LogicSimulator sim(netlist);
  Rng rng(4321);
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(vectors);
  for (std::size_t i = 0; i < vectors; ++i) {
    patterns.push_back(logic::randomPattern(sim.sourceCount(), rng));
  }
  auto workload = [&] {
    core::GoldenSolver solver(netlist, tech);
    double sum = 0.0;
    for (const auto& pattern : patterns) {
      sum += solver.solve(pattern).total.total();
    }
    return sum;
  };
  (void)workload();  // warm up tables and allocator before timing

  ObsOverhead result;
  auto minOfRepeats = [&] {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      (void)workload();
      const auto t1 = Clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  obs::disableTracing();
  result.off_seconds = minOfRepeats();
  // Re-enable per measurement so trace buffers are cleared between
  // repeats instead of growing across the whole probe.
  obs::enableTracing(obs::TraceLevel::kCoarse);
  result.on_seconds = minOfRepeats();
  obs::disableTracing();

  if (result.overheadPct() > 3.0) {
    failures.push_back(
        {"obs overhead: coarse tracing costs " +
         formatDouble(result.overheadPct(), 2) + "% > 3% on the warm "
         "golden re-solve loop"});
  }
  return result;
}

void printModeTable(const std::string& title,
                    const std::vector<std::pair<std::string, ModeResult>>&
                        modes,
                    double baseline_seconds) {
  nanoleak::bench::banner(title);
  TableWriter table(
      {"mode", "wall [s]", "node solves", "node-solves/s", "speedup"});
  for (const auto& [name, mode] : modes) {
    table.addRow({name, formatDouble(mode.seconds, 3),
                  std::to_string(mode.node_solves),
                  formatDouble(mode.nodeSolvesPerSec(), 0),
                  formatDouble(baseline_seconds /
                                   std::max(1e-12, mode.seconds),
                               2)});
  }
  table.printText(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool obs_overhead = false;
  std::vector<char*> rest;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--obs-overhead") == 0) {
      obs_overhead = true;
    } else {
      rest.push_back(argv[i]);
    }
  }

  const device::Technology tech = device::defaultTechnology();
  const std::vector<gates::GateKind> kinds =
      quick ? std::vector<gates::GateKind>{gates::GateKind::kInv,
                                           gates::GateKind::kNand4,
                                           gates::GateKind::kNor2}
            : core::generatorGateKinds();
  const std::vector<double> grid =
      quick ? std::vector<double>{0.0, 0.5e-6, 2.0e-6, 6.0e-6}
            : core::CharacterizationOptions{}.loading_grid;
  const std::size_t golden_vectors = quick ? 6 : 20;
  const std::size_t mc_samples = quick ? 24 : 200;

  std::vector<Failure> failures;

  std::cout << "bench_solver_kernel (" << (quick ? "quick" : "full")
            << " workload)\n"
            << "simd backend: " << util::backendName() << ", lane width "
            << util::kNativeLaneWidth << "\n";

  // 1. Characterization: the full-library tentpole measurement.
  const CharBench chr = benchCharacterization(tech, kinds, grid, failures);
  printModeTable("Characterization: " + std::to_string(kinds.size()) +
                     " kinds, " + std::to_string(grid.size()) + "^2 grid",
                 {{"legacy (DcSolver)", chr.legacy},
                  {"kernel (cold)", chr.compiled},
                  {"kernel + warm-start", chr.warm},
                  {"batched (lane-parallel)", chr.batched}},
                 chr.legacy.seconds);
  std::cout << "kernel bit-identical to legacy: "
            << (chr.compiled_bit_identical ? "yes" : "NO") << "\n"
            << "warm-start max rel diff vs legacy: "
            << formatDouble(chr.warm_max_rel_diff, 12) << "\n"
            << "batched max rel diff vs legacy: "
            << formatDouble(chr.batched_max_rel_diff, 12) << "\n";

  // 2. Golden re-solves over INV-chain / NAND-tree / generator circuits.
  nanoleak::bench::banner("Golden full-circuit re-solves (random vectors)");
  std::vector<GoldenBenchRow> golden_rows;
  golden_rows.push_back(benchGolden("inv_chain16", logic::inverterChain(16),
                                    golden_vectors, tech, failures));
  golden_rows.push_back(benchGolden("c17", logic::c17(), golden_vectors,
                                    tech, failures));
  golden_rows.push_back(benchGolden("rca8", logic::rippleCarryAdder(8),
                                    golden_vectors, tech, failures));
  if (!quick) {
    golden_rows.push_back(benchGolden("mult5", logic::arrayMultiplier(5),
                                      golden_vectors, tech, failures));
  }
  {
    TableWriter table({"circuit", "gates", "vectors", "legacy [s]",
                       "compiled+warm [s]", "speedup", "max rel diff"});
    for (const GoldenBenchRow& row : golden_rows) {
      table.addRow(
          {row.name, std::to_string(row.gates), std::to_string(row.vectors),
           formatDouble(row.legacy.seconds, 3),
           formatDouble(row.warm.seconds, 3),
           formatDouble(row.legacy.seconds /
                            std::max(1e-12, row.warm.seconds),
                        2),
           formatDouble(row.max_rel_diff, 12)});
    }
    table.printText(std::cout);
  }

  // 3. Monte-Carlo paired trials.
  const McBench mcb = benchMonteCarlo(tech, mc_samples, failures);
  printModeTable("Monte-Carlo paired trials (" +
                     std::to_string(mc_samples) + " samples)",
                 {{"legacy (rebuild/trial)", mcb.legacy},
                  {"compiled + warm-start", mcb.compiled},
                  {"batched (lane-parallel)", mcb.batched}},
                 mcb.legacy.seconds);
  std::cout << "max rel diff vs legacy: "
            << formatDouble(mcb.max_rel_diff, 12) << "\n"
            << "batched max rel diff vs scalar compiled: "
            << formatDouble(mcb.batched_max_rel_diff, 12) << "\n";

  // 4. Observability overhead (opt-in: timing probes add bench time).
  ObsOverhead obs;
  if (obs_overhead) {
    obs = benchObsOverhead(tech, quick ? 30 : 100, quick ? 7 : 9, failures);
    nanoleak::bench::banner("Observability overhead (warm golden re-solves)");
    TableWriter table({"tracing", "wall [s] (min of repeats)"});
    table.addRow({"off", formatDouble(obs.off_seconds, 4)});
    table.addRow({"coarse", formatDouble(obs.on_seconds, 4)});
    table.printText(std::cout);
    std::cout << "obs overhead: " << formatDouble(obs.overheadPct(), 2)
              << "% (gate: < 3%)\n";
  }

  const double char_speedup =
      chr.legacy.seconds / std::max(1e-12, chr.warm.seconds);
  // The lane-parallel acceptance ratios: batched vs the scalar compiled
  // path doing the same work (warm-started characterization scan, scalar
  // per-trial MC).
  const double char_batched_vs_warm =
      chr.warm.seconds / std::max(1e-12, chr.batched.seconds);
  const double mc_batched_vs_compiled =
      mcb.compiled.seconds / std::max(1e-12, mcb.batched.seconds);

  // BENCH_solver.json.
  std::ostringstream json;
  json << "{\n  \"workload\": \"solver_kernel\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"simd_backend\": \""
       << util::backendName() << "\",\n  \"lane_width\": "
       << util::kNativeLaneWidth << ",\n";
  auto emitMode = [&](const char* name, const ModeResult& mode,
                      bool trailing_comma) {
    json << "      {\"mode\": \"" << name << "\", \"wall_s\": "
         << formatDouble(mode.seconds, 4) << ", \"node_solves\": "
         << mode.node_solves << ", \"node_solves_per_s\": "
         << formatDouble(mode.nodeSolvesPerSec(), 0) << "}"
         << (trailing_comma ? "," : "") << "\n";
  };
  json << "  \"characterization\": {\n    \"kinds\": " << kinds.size()
       << ",\n    \"grid\": " << grid.size() << ",\n    \"modes\": [\n";
  emitMode("legacy", chr.legacy, true);
  emitMode("kernel", chr.compiled, true);
  emitMode("kernel_warm", chr.warm, true);
  emitMode("batched", chr.batched, false);
  json << "    ],\n    \"speedup_kernel\": "
       << formatDouble(chr.legacy.seconds /
                           std::max(1e-12, chr.compiled.seconds),
                       3)
       << ",\n    \"speedup_kernel_warm\": " << formatDouble(char_speedup, 3)
       << ",\n    \"speedup_batched_vs_warm\": "
       << formatDouble(char_batched_vs_warm, 3)
       << ",\n    \"kernel_bit_identical\": "
       << (chr.compiled_bit_identical ? "true" : "false")
       << ",\n    \"warm_max_rel_diff\": "
       << formatDouble(chr.warm_max_rel_diff, 12)
       << ",\n    \"batched_max_rel_diff\": "
       << formatDouble(chr.batched_max_rel_diff, 12) << "\n  },\n";
  json << "  \"golden\": [\n";
  for (std::size_t i = 0; i < golden_rows.size(); ++i) {
    const GoldenBenchRow& row = golden_rows[i];
    json << "    {\"circuit\": \"" << row.name << "\", \"gates\": "
         << row.gates << ", \"vectors\": " << row.vectors
         << ", \"legacy_s\": " << formatDouble(row.legacy.seconds, 4)
         << ", \"warm_s\": " << formatDouble(row.warm.seconds, 4)
         << ", \"speedup\": "
         << formatDouble(row.legacy.seconds /
                             std::max(1e-12, row.warm.seconds),
                         3)
         << ", \"max_rel_diff\": " << formatDouble(row.max_rel_diff, 12)
         << "}" << (i + 1 < golden_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"monte_carlo\": {\n    \"samples\": " << mcb.samples
       << ",\n    \"legacy_s\": " << formatDouble(mcb.legacy.seconds, 4)
       << ",\n    \"compiled_s\": " << formatDouble(mcb.compiled.seconds, 4)
       << ",\n    \"batched_s\": " << formatDouble(mcb.batched.seconds, 4)
       << ",\n    \"speedup\": "
       << formatDouble(mcb.legacy.seconds /
                           std::max(1e-12, mcb.compiled.seconds),
                       3)
       << ",\n    \"speedup_batched_vs_compiled\": "
       << formatDouble(mc_batched_vs_compiled, 3)
       << ",\n    \"max_rel_diff\": " << formatDouble(mcb.max_rel_diff, 12)
       << ",\n    \"batched_max_rel_diff\": "
       << formatDouble(mcb.batched_max_rel_diff, 12) << "\n  },\n";
  if (obs_overhead) {
    json << "  \"obs_overhead_pct\": " << formatDouble(obs.overheadPct(), 3)
         << ",\n";
  }
  json << "  \"equivalence_failures\": " << failures.size() << "\n}\n";
  const std::string out_path = nanoleak::bench::outPath("BENCH_solver.json");
  std::ofstream out(out_path);
  if (out) {
    out << json.str();
    std::cout << "\nwrote " << out_path << "\n";
  } else {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }

  std::cout << "\ncharacterization speedup (kernel+warm vs legacy): "
            << formatDouble(char_speedup, 2) << "x (target >= 3x on the "
            << "full workload)\n"
            << "lane-parallel speedup vs scalar compiled path "
            << "(characterization " << formatDouble(char_batched_vs_warm, 2)
            << "x, monte-carlo " << formatDouble(mc_batched_vs_compiled, 2)
            << "x; target >= 2x on one of them at lane width > 1)\n";

  if (!failures.empty()) {
    std::cerr << "\nEQUIVALENCE FAILURES:\n";
    for (const Failure& failure : failures) {
      std::cerr << "  " << failure.what << "\n";
    }
    return 1;
  }
  return 0;
}
