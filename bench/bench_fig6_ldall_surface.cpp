// Fig. 6: LDALL(IL-IN, IL-OUT) surface of an inverter for inputs '0'/'1'.
#include <iostream>

#include "bench_util.h"
#include "core/loading_analyzer.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;

int main() {
  const device::Technology tech = device::defaultTechnology();
  const double axis[] = {0, 500, 1000, 1500, 2000, 2500, 3000};

  for (bool input : {false, true}) {
    core::LoadingAnalyzer analyzer(gates::GateKind::kInv, {input}, tech);
    bench::banner(std::string("Fig. 6 LDALL [%] surface (input='") +
                  (input ? "1" : "0") + "'), rows = IL-IN, cols = IL-OUT");
    std::vector<std::string> header = {"IL-IN\\IL-OUT [nA]"};
    for (double ol : axis) {
      header.push_back(formatDouble(ol, 0));
    }
    TableWriter table(header);
    for (double il : axis) {
      std::vector<std::string> row = {formatDouble(il, 0)};
      for (double ol : axis) {
        const core::LoadingEffect e =
            analyzer.combinedLoadingEffect(nA(il), nA(ol));
        row.push_back(formatDouble(e.total_pct, 2));
      }
      table.addRow(row);
    }
    table.printText(std::cout);
  }
  std::cout << "(expected shape: rises along IL-IN, falls along IL-OUT; "
               "overall higher at input '0')\n";
  return 0;
}
