// Section 6 claim: the table-driven estimator is orders of magnitude
// faster than the full ("SPICE-role") nonlinear solve. google-benchmark
// timings for both paths on two circuits, plus an engine-scaling section
// reporting wall time / throughput of the Fig. 10 Monte-Carlo workload at
// 1/2/4/8 threads (as a text table and as JSON on stdout; also written to
// speedup.json).
//
// Env: NANOLEAK_SCALING_SAMPLES overrides the MC population (default 192).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "engine/batch_runner.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"
#include "util/table_writer.h"

using namespace nanoleak;

namespace {

struct Setup {
  logic::LogicNetlist netlist;
  core::LeakageLibrary library;
  std::vector<bool> vector;

  explicit Setup(logic::LogicNetlist nl) : netlist(std::move(nl)) {
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    library = core::Characterizer(device::defaultTechnology(), options)
                  .characterize();
    Rng rng(77);
    const logic::LogicSimulator sim(netlist);
    vector = logic::randomPattern(sim.sourceCount(), rng);
  }
};

Setup& mult88() {
  static Setup setup(logic::arrayMultiplier(8));
  return setup;
}

Setup& s838() {
  static Setup setup(
      logic::synthesizeIscasLike(logic::iscasSpec("s838"), 20050307));
  return setup;
}

void BM_GoldenSolve_Mult88(benchmark::State& state) {
  Setup& setup = mult88();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::goldenLeakage(
        setup.netlist, device::defaultTechnology(), setup.vector));
  }
}
BENCHMARK(BM_GoldenSolve_Mult88)->Unit(benchmark::kMillisecond);

void BM_Estimator_Mult88(benchmark::State& state) {
  Setup& setup = mult88();
  const core::LeakageEstimator estimator(setup.netlist, setup.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(setup.vector));
  }
}
BENCHMARK(BM_Estimator_Mult88)->Unit(benchmark::kMicrosecond);

void BM_GoldenSolve_S838(benchmark::State& state) {
  Setup& setup = s838();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::goldenLeakage(
        setup.netlist, device::defaultTechnology(), setup.vector));
  }
}
BENCHMARK(BM_GoldenSolve_S838)->Unit(benchmark::kMillisecond);

void BM_Estimator_S838(benchmark::State& state) {
  Setup& setup = s838();
  const core::LeakageEstimator estimator(setup.netlist, setup.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(setup.vector));
  }
}
BENCHMARK(BM_Estimator_S838)->Unit(benchmark::kMicrosecond);

void BM_Characterization_FullLibrary(benchmark::State& state) {
  core::CharacterizationOptions options;
  options.kinds = core::generatorGateKinds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Characterizer(device::defaultTechnology(), options)
            .characterize());
  }
}
BENCHMARK(BM_Characterization_FullLibrary)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_LogicSimulation_S838(benchmark::State& state) {
  Setup& setup = s838();
  const logic::LogicSimulator sim(setup.netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(setup.vector));
  }
}
BENCHMARK(BM_LogicSimulation_S838)->Unit(benchmark::kMicrosecond);

// --- Engine scaling: Fig. 10 MC workload at 1/2/4/8 threads ----------------

struct ScalingPoint {
  int threads = 0;
  double wall_s = 0.0;
  double throughput_sps = 0.0;  // samples per second
  double speedup = 0.0;         // vs 1 thread
};

std::size_t scalingSamples() {
  if (const char* env = std::getenv("NANOLEAK_SCALING_SAMPLES")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return 192;
}

std::string scalingJson(const std::vector<ScalingPoint>& points,
                        std::size_t samples) {
  std::ostringstream json;
  json << "{\n  \"workload\": \"fig10_mc\",\n  \"samples\": " << samples
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    json << "    {\"threads\": " << p.threads << ", \"wall_s\": " << p.wall_s
         << ", \"throughput_sps\": " << p.throughput_sps
         << ", \"speedup\": " << p.speedup << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  return json.str();
}

void runEngineScaling() {
  const std::size_t samples = scalingSamples();
  engine::McSweep sweep;
  sweep.technology = device::defaultTechnology();
  sweep.samples = samples;
  sweep.seed = 20050307;

  std::cout << "\n=== Engine scaling: Fig. 10 MC workload (" << samples
            << " samples, hardware threads: "
            << std::thread::hardware_concurrency() << ") ===\n";

  std::vector<ScalingPoint> points;
  double reference_total = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    engine::BatchRunner runner(engine::BatchOptions{.threads = threads});
    const auto t0 = std::chrono::steady_clock::now();
    const engine::McBatchResult result = runner.run(sweep);
    const auto t1 = std::chrono::steady_clock::now();

    // The determinism contract, checked live: every thread count produces
    // the same population.
    const double total = result.stats.withLoading().total().mean();
    if (threads == 1) {
      reference_total = total;
    } else if (total != reference_total) {
      std::cerr << "ERROR: thread count changed the MC result\n";
      std::exit(1);
    }

    ScalingPoint point;
    point.threads = threads;
    point.wall_s = std::chrono::duration<double>(t1 - t0).count();
    point.throughput_sps =
        point.wall_s > 0.0 ? static_cast<double>(samples) / point.wall_s : 0.0;
    point.speedup = points.empty() ? 1.0 : points.front().wall_s / point.wall_s;
    points.push_back(point);
  }

  TableWriter table({"threads", "wall [s]", "samples/s", "speedup"});
  for (const ScalingPoint& p : points) {
    table.addNumericRow(
        {static_cast<double>(p.threads), p.wall_s, p.throughput_sps,
         p.speedup},
        3);
  }
  table.printText(std::cout);

  const std::string json = scalingJson(points, samples);
  std::cout << "\n--- speedup.json ---\n" << json;
  std::ofstream out(nanoleak::bench::outPath("speedup.json"));
  if (out.good()) {
    out << json;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Introspection-only invocations must stay side-effect free: no MC
  // workload, no speedup.json overwrite.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark_list_tests", 0) == 0 || arg == "--help") {
      list_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!list_only) {
    runEngineScaling();
  }
  return 0;
}
