// Section 6 claim: the table-driven estimator is orders of magnitude
// faster than the full ("SPICE-role") nonlinear solve. google-benchmark
// timings for both paths on two circuits.
#include <benchmark/benchmark.h>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"

using namespace nanoleak;

namespace {

struct Setup {
  logic::LogicNetlist netlist;
  core::LeakageLibrary library;
  std::vector<bool> vector;

  explicit Setup(logic::LogicNetlist nl) : netlist(std::move(nl)) {
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    library = core::Characterizer(device::defaultTechnology(), options)
                  .characterize();
    Rng rng(77);
    const logic::LogicSimulator sim(netlist);
    vector = logic::randomPattern(sim.sourceCount(), rng);
  }
};

Setup& mult88() {
  static Setup setup(logic::arrayMultiplier(8));
  return setup;
}

Setup& s838() {
  static Setup setup(
      logic::synthesizeIscasLike(logic::iscasSpec("s838"), 20050307));
  return setup;
}

void BM_GoldenSolve_Mult88(benchmark::State& state) {
  Setup& setup = mult88();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::goldenLeakage(
        setup.netlist, device::defaultTechnology(), setup.vector));
  }
}
BENCHMARK(BM_GoldenSolve_Mult88)->Unit(benchmark::kMillisecond);

void BM_Estimator_Mult88(benchmark::State& state) {
  Setup& setup = mult88();
  const core::LeakageEstimator estimator(setup.netlist, setup.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(setup.vector));
  }
}
BENCHMARK(BM_Estimator_Mult88)->Unit(benchmark::kMicrosecond);

void BM_GoldenSolve_S838(benchmark::State& state) {
  Setup& setup = s838();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::goldenLeakage(
        setup.netlist, device::defaultTechnology(), setup.vector));
  }
}
BENCHMARK(BM_GoldenSolve_S838)->Unit(benchmark::kMillisecond);

void BM_Estimator_S838(benchmark::State& state) {
  Setup& setup = s838();
  const core::LeakageEstimator estimator(setup.netlist, setup.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(setup.vector));
  }
}
BENCHMARK(BM_Estimator_S838)->Unit(benchmark::kMicrosecond);

void BM_Characterization_FullLibrary(benchmark::State& state) {
  core::CharacterizationOptions options;
  options.kinds = core::generatorGateKinds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Characterizer(device::defaultTechnology(), options)
            .characterize());
  }
}
BENCHMARK(BM_Characterization_FullLibrary)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_LogicSimulation_S838(benchmark::State& state) {
  Setup& setup = s838();
  const logic::LogicSimulator sim(setup.netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(setup.vector));
  }
}
BENCHMARK(BM_LogicSimulation_S838)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
