// Fig. 12: circuit-level evaluation on the paper's benchmark suite
// (ISCAS89-shaped synthetics + the exact mult88/alu88 reconstructions).
//
//  (a) total leakage: golden full solve ("SPICE") vs the Fig. 13 estimator
//  (b) average % leakage variation due to loading, per component
//  (c) maximum % variation over the random-vector set
//
// Also reports pattern-sweep throughput per circuit: the per-call
// estimator facade (the pre-refactor shape - every call re-derives vector
// indices, re-resolves tables, and allocates fresh buffers) against the
// compiled EstimationPlan with a reused workspace and incremental deltas.
// The comparison lands in the table below and in fig12_throughput.json.
//
// Usage: bench_fig12_circuits [vectors]   (default 100, the paper's count;
// golden cross-checks always use 3 vectors per circuit)
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "core/characterizer.h"
#include "core/estimation_plan.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "logic/logic_sim.h"
#include "scenario/scenario.h"
#include "util/rng.h"
#include "util/table_writer.h"
#include "util/units.h"

using namespace nanoleak;
using Clock = std::chrono::steady_clock;

namespace {

struct Row {
  std::string name;
  std::size_t gates;
  double golden_ua = 0.0;
  double estimated_ua = 0.0;
  double error_pct = 0.0;
  double golden_ms = 0.0;
  double estimate_ms = 0.0;
  device::LeakageBreakdown avg_delta_pct;  // loading vs isolated, percent
  double avg_total_pct = 0.0;
  device::LeakageBreakdown max_delta_pct;
  double max_total_pct = 0.0;
  double per_call_pps = 0.0;  // patterns/sec, per-call facade
  double plan_pps = 0.0;      // patterns/sec, plan path, random vectors
  double walk_pps = 0.0;      // patterns/sec, plan path, 1-bit-flip walk
};

double pct(double now, double base) {
  return base > 0.0 ? 100.0 * (now - base) / base : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t vectors = bench::sampleCount(argc, argv, 100);
  const device::Technology tech = device::defaultTechnology();

  std::cout << "Characterizing leakage library..." << std::flush;
  core::CharacterizationOptions copts;
  copts.kinds = core::generatorGateKinds();
  const auto t_char0 = Clock::now();
  const core::LeakageLibrary lib =
      core::Characterizer(tech, copts).characterize();
  const auto t_char1 = Clock::now();
  std::cout << " done ("
            << formatDouble(std::chrono::duration<double, std::milli>(
                                t_char1 - t_char0)
                                .count(),
                            0)
            << " ms, one-time cost)\n";

  // The roster lives in the scenario registry (scenario::fig12CircuitNames
  // is the single source of truth for the paper's circuit table).
  struct Bench {
    std::string name;
    logic::LogicNetlist netlist;
  };
  std::vector<Bench> benches;
  for (const std::string& name : scenario::fig12CircuitNames()) {
    benches.push_back({name, scenario::buildCircuit(name)});
  }

  std::vector<Row> rows;
  Rng rng(12);
  for (Bench& bench : benches) {
    Row row;
    row.name = bench.name;
    row.gates = bench.netlist.gateCount();
    const logic::LogicSimulator sim(bench.netlist);
    const core::LeakageEstimator with(bench.netlist, lib);
    core::EstimatorOptions off;
    off.with_loading = false;
    const core::LeakageEstimator without(bench.netlist, lib, off);

    // (a) golden vs estimated on a few vectors (the golden side is the
    // expensive full nonlinear solve).
    const int golden_vectors = 3;
    double golden_sum = 0.0;
    double est_sum = 0.0;
    for (int i = 0; i < golden_vectors; ++i) {
      const auto vec = logic::randomPattern(sim.sourceCount(), rng);
      const auto g0 = Clock::now();
      const core::GoldenResult golden =
          core::goldenLeakage(bench.netlist, tech, vec);
      const auto g1 = Clock::now();
      const core::EstimateResult est = with.estimate(vec);
      const auto g2 = Clock::now();
      golden_sum += golden.total.total();
      est_sum += est.total.total();
      row.golden_ms +=
          std::chrono::duration<double, std::milli>(g1 - g0).count();
      row.estimate_ms +=
          std::chrono::duration<double, std::milli>(g2 - g1).count();
    }
    row.golden_ms /= golden_vectors;
    row.estimate_ms /= golden_vectors;
    row.golden_ua = golden_sum / golden_vectors * 1e6;
    row.estimated_ua = est_sum / golden_vectors * 1e6;
    row.error_pct = pct(est_sum, golden_sum);

    // (b)/(c) loading-vs-isolated variation over the full vector set,
    // via the (fast) estimator - the paper's Fig. 12b/c methodology -
    // timed both through the per-call facade and through the compiled
    // plan with a reused workspace and incremental deltas.
    std::vector<std::vector<bool>> vecs;
    vecs.reserve(vectors);
    for (std::size_t i = 0; i < vectors; ++i) {
      vecs.push_back(logic::randomPattern(sim.sourceCount(), rng));
    }

    // Pre-refactor shape: one facade call per pattern (fresh buffers and
    // table resolution every call).
    double call_checksum = 0.0;
    const auto c0 = Clock::now();
    for (const auto& vec : vecs) {
      call_checksum += with.estimate(vec).total.total();
    }
    const auto c1 = Clock::now();

    // Compile-once / execute-many: shared plan, one workspace, deltas.
    std::vector<device::LeakageBreakdown> with_totals;
    std::vector<device::LeakageBreakdown> without_totals;
    with_totals.reserve(vectors);
    without_totals.reserve(vectors);
    double plan_checksum = 0.0;
    core::EstimationWorkspace with_ws(with.plan());
    core::EstimateResult est;
    const auto p0 = Clock::now();
    for (const auto& vec : vecs) {
      with.plan().estimateDelta(vec, with_ws, est);
      plan_checksum += est.total.total();
      with_totals.push_back(est.total);
    }
    const auto p1 = Clock::now();
    if (call_checksum != plan_checksum) {
      std::cout << "  WARNING: plan path diverged from per-call path on "
                << bench.name << "\n";
    }
    const double call_s =
        std::chrono::duration<double>(c1 - c0).count();
    const double plan_s =
        std::chrono::duration<double>(p1 - p0).count();
    row.per_call_pps = static_cast<double>(vectors) / std::max(1e-12, call_s);
    row.plan_pps = static_cast<double>(vectors) / std::max(1e-12, plan_s);

    // Single-bit-flip walk (the IVC neighbour-search shape): the delta
    // path's home turf - each step re-estimates only the flipped cone.
    // One untimed call first: the workspace is warm from the random set's
    // last vector, and jumping to the walk's base pattern would otherwise
    // count a full-evaluation fallback as walk time.
    std::vector<bool> walk_vec = vecs.front();
    with.plan().estimateDelta(walk_vec, with_ws, est);
    const auto w0 = Clock::now();
    for (std::size_t i = 0; i < vectors; ++i) {
      walk_vec[i % walk_vec.size()] = !walk_vec[i % walk_vec.size()];
      with.plan().estimateDelta(walk_vec, with_ws, est);
    }
    const auto w1 = Clock::now();
    const double walk_s =
        std::chrono::duration<double>(w1 - w0).count();
    row.walk_pps = static_cast<double>(vectors) / std::max(1e-12, walk_s);

    core::EstimationWorkspace without_ws(without.plan());
    for (const auto& vec : vecs) {
      without.plan().estimateDelta(vec, without_ws, est);
      without_totals.push_back(est.total);
    }

    for (std::size_t i = 0; i < vectors; ++i) {
      const auto& w = with_totals[i];
      const auto& wo = without_totals[i];
      const double d_sub = pct(w.subthreshold, wo.subthreshold);
      const double d_gate = pct(w.gate, wo.gate);
      const double d_btbt = pct(w.btbt, wo.btbt);
      const double d_total = pct(w.total(), wo.total());
      row.avg_delta_pct.subthreshold += d_sub;
      row.avg_delta_pct.gate += d_gate;
      row.avg_delta_pct.btbt += d_btbt;
      row.avg_total_pct += d_total;
      if (std::abs(d_sub) > std::abs(row.max_delta_pct.subthreshold)) {
        row.max_delta_pct.subthreshold = d_sub;
      }
      if (std::abs(d_gate) > std::abs(row.max_delta_pct.gate)) {
        row.max_delta_pct.gate = d_gate;
      }
      if (std::abs(d_btbt) > std::abs(row.max_delta_pct.btbt)) {
        row.max_delta_pct.btbt = d_btbt;
      }
      if (std::abs(d_total) > std::abs(row.max_total_pct)) {
        row.max_total_pct = d_total;
      }
    }
    const auto n = static_cast<double>(vectors);
    row.avg_delta_pct.subthreshold /= n;
    row.avg_delta_pct.gate /= n;
    row.avg_delta_pct.btbt /= n;
    row.avg_total_pct /= n;
    rows.push_back(std::move(row));
    std::cout << "  " << bench.name << " done\n";
  }

  bench::banner("Fig. 12a: total leakage, golden full solve vs estimator");
  {
    TableWriter table({"circuit", "gates", "golden [uA]", "estimated [uA]",
                       "error [%]", "golden [ms]", "estimator [ms]",
                       "speedup"});
    for (const Row& row : rows) {
      table.addRow({row.name, std::to_string(row.gates),
                    formatDouble(row.golden_ua, 1),
                    formatDouble(row.estimated_ua, 1),
                    formatDouble(row.error_pct, 2),
                    formatDouble(row.golden_ms, 1),
                    formatDouble(row.estimate_ms, 3),
                    formatDouble(row.golden_ms /
                                     std::max(1e-6, row.estimate_ms),
                                 0)});
    }
    table.printText(std::cout);
  }

  bench::banner(
      "Fig. 12b: average % leakage variation due to loading (" +
      std::to_string(vectors) + " random vectors)");
  {
    TableWriter table({"circuit", "sub [%]", "gate [%]", "btbt [%]",
                       "total [%]"});
    for (const Row& row : rows) {
      table.addRow({row.name,
                    formatDouble(row.avg_delta_pct.subthreshold, 2),
                    formatDouble(row.avg_delta_pct.gate, 2),
                    formatDouble(row.avg_delta_pct.btbt, 2),
                    formatDouble(row.avg_total_pct, 2)});
    }
    table.printText(std::cout);
  }

  bench::banner("Fig. 12c: maximum % variation over the vector set");
  {
    TableWriter table({"circuit", "sub [%]", "gate [%]", "btbt [%]",
                       "total [%]"});
    for (const Row& row : rows) {
      table.addRow({row.name,
                    formatDouble(row.max_delta_pct.subthreshold, 2),
                    formatDouble(row.max_delta_pct.gate, 2),
                    formatDouble(row.max_delta_pct.btbt, 2),
                    formatDouble(row.max_total_pct, 2)});
    }
    table.printText(std::cout);
  }
  bench::banner("Pattern-sweep throughput: per-call facade vs compiled plan");
  {
    TableWriter table({"circuit", "gates", "per-call [pat/s]",
                       "plan random [pat/s]", "speedup",
                       "plan 1-bit walk [pat/s]", "speedup"});
    for (const Row& row : rows) {
      table.addRow({row.name, std::to_string(row.gates),
                    formatDouble(row.per_call_pps, 0),
                    formatDouble(row.plan_pps, 0),
                    formatDouble(row.plan_pps /
                                     std::max(1e-12, row.per_call_pps),
                                 2),
                    formatDouble(row.walk_pps, 0),
                    formatDouble(row.walk_pps /
                                     std::max(1e-12, row.per_call_pps),
                                 2)});
    }
    table.printText(std::cout);
  }

  std::ostringstream json;
  json << "{\n  \"workload\": \"fig12_patterns\",\n  \"vectors\": "
       << vectors << ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"name\": \"" << row.name << "\", \"gates\": " << row.gates
         << ", \"per_call_patterns_per_s\": "
         << formatDouble(row.per_call_pps, 1)
         << ", \"plan_patterns_per_s\": " << formatDouble(row.plan_pps, 1)
         << ", \"plan_walk_patterns_per_s\": "
         << formatDouble(row.walk_pps, 1) << ", \"speedup\": "
         << formatDouble(row.plan_pps / std::max(1e-12, row.per_call_pps), 3)
         << ", \"walk_speedup\": "
         << formatDouble(row.walk_pps / std::max(1e-12, row.per_call_pps), 3)
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  const std::string out_path =
      nanoleak::bench::outPath("fig12_throughput.json");
  std::ofstream out(out_path);
  if (out) {
    out << json.str();
    std::cout << "\nwrote " << out_path << "\n";
  }

  std::cout << "(expected shape: estimator within a few % of golden; "
               "average loading effect on total ~5%, subthreshold largest "
               "and positive, gate/BTBT negative; large speedup, and the "
               "compiled plan path well above the per-call path)\n";
  return 0;
}
