#include "device/mosfet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "device/device_params.h"
#include "util/error.h"

namespace nanoleak::device {
namespace {

const Environment kRoom{300.0};

Mosfet makeN() { return Mosfet(d25SNmos(), 100e-9); }
Mosfet makeP() { return Mosfet(d25SPmos(), 200e-9); }

TEST(MosfetTest, RejectsNonPositiveWidth) {
  EXPECT_THROW(Mosfet(d25SNmos(), 0.0), Error);
  EXPECT_THROW(Mosfet(d25SNmos(), -1e-9), Error);
}

TEST(MosfetTest, TerminalCurrentsConserveCharge) {
  const Mosfet n = makeN();
  const Mosfet p = makeP();
  for (const BiasPoint& bias :
       {BiasPoint{0.0, 1.0, 0.0, 0.0}, BiasPoint{1.0, 0.2, 0.0, 0.0},
        BiasPoint{0.3, 0.7, 0.1, 0.0}, BiasPoint{1.0, 1.0, 1.0, 1.0}}) {
    const TerminalCurrents in = n.currents(bias, kRoom);
    EXPECT_NEAR(in.sum(), 0.0, 1e-18 + 1e-9 * std::abs(in.drain));
    const TerminalCurrents ip = p.currents(bias, kRoom);
    EXPECT_NEAR(ip.sum(), 0.0, 1e-18 + 1e-9 * std::abs(ip.drain));
  }
}

TEST(MosfetTest, OffNmosLeaksDrainToSource) {
  const Mosfet n = makeN();
  // Gate 0, drain 1: subthreshold flows drain -> source.
  const TerminalCurrents tc = n.currents({0.0, 1.0, 0.0, 0.0}, kRoom);
  EXPECT_GT(tc.drain, 0.0);   // current into drain terminal
  EXPECT_LT(tc.source, 0.0);  // out of source terminal
}

TEST(MosfetTest, PmosMirrorsNmos) {
  // A PMOS with NMOS parameters mirrored should produce exactly opposite
  // currents at mirrored bias.
  DeviceParams pparams = d25SNmos();
  pparams.polarity = Polarity::kPmos;
  const Mosfet n(d25SNmos(), 100e-9);
  const Mosfet p(pparams, 100e-9);
  const BiasPoint nb{0.3, 0.8, 0.1, 0.0};
  const BiasPoint pb{-0.3, -0.8, -0.1, 0.0};
  const TerminalCurrents in = n.currents(nb, kRoom);
  const TerminalCurrents ip = p.currents(pb, kRoom);
  EXPECT_NEAR(in.gate, -ip.gate, 1e-18);
  EXPECT_NEAR(in.drain, -ip.drain, 1e-18);
  EXPECT_NEAR(in.source, -ip.source, 1e-18);
  EXPECT_NEAR(in.bulk, -ip.bulk, 1e-18);
}

TEST(MosfetTest, SourceDrainSymmetry) {
  // Swapping drain and source voltages flips the channel current.
  const Mosfet n = makeN();
  const TerminalCurrents fwd = n.currents({0.4, 0.9, 0.1, 0.0}, kRoom);
  const TerminalCurrents rev = n.currents({0.4, 0.1, 0.9, 0.0}, kRoom);
  EXPECT_NEAR(fwd.drain, rev.source, 1e-15);
  EXPECT_NEAR(fwd.source, rev.drain, 1e-15);
}

TEST(MosfetTest, IsOffTracksGateDrive) {
  const Mosfet n = makeN();
  EXPECT_TRUE(n.isOff({0.0, 1.0, 0.0, 0.0}, kRoom));
  EXPECT_FALSE(n.isOff({1.0, 1.0, 0.0, 0.0}, kRoom));
  const Mosfet p = makeP();
  // PMOS: gate at VDD with source at VDD -> off; gate at 0 -> on.
  EXPECT_TRUE(p.isOff({1.0, 0.0, 1.0, 1.0}, kRoom));
  EXPECT_FALSE(p.isOff({0.0, 0.0, 1.0, 1.0}, kRoom));
}

TEST(MosfetTest, LeakageCountsSubthresholdOnlyWhenOff) {
  const Mosfet n = makeN();
  const LeakageBreakdown off = n.leakage({0.0, 1.0, 0.0, 0.0}, kRoom);
  EXPECT_GT(off.subthreshold, 0.0);
  const LeakageBreakdown on = n.leakage({1.0, 1.0, 0.0, 0.0}, kRoom);
  EXPECT_DOUBLE_EQ(on.subthreshold, 0.0);
  EXPECT_GT(on.gate, 0.0);  // tunneling counted regardless of state
}

TEST(MosfetTest, OffStateBtbtComesFromBiasedJunction) {
  const Mosfet n = makeN();
  // Drain at VDD vs grounded bulk: one junction tunnels.
  const LeakageBreakdown drain_hi = n.leakage({0.0, 1.0, 0.0, 0.0}, kRoom);
  EXPECT_GT(drain_hi.btbt, 0.0);
  // Both diffusions at bulk potential: no junction bias, ~no BTBT.
  const LeakageBreakdown unbiased = n.leakage({0.0, 0.0, 0.0, 0.0}, kRoom);
  EXPECT_LT(unbiased.btbt, 0.01 * drain_hi.btbt);
}

TEST(MosfetTest, LeakageScalesWithWidth) {
  const Mosfet w1(d25SNmos(), 100e-9);
  const Mosfet w2(d25SNmos(), 200e-9);
  const BiasPoint off{0.0, 1.0, 0.0, 0.0};
  const double r_sub = w2.leakage(off, kRoom).subthreshold /
                       w1.leakage(off, kRoom).subthreshold;
  EXPECT_NEAR(r_sub, 2.0, 0.01);
  const double r_gate =
      w2.leakage(off, kRoom).gate / w1.leakage(off, kRoom).gate;
  EXPECT_NEAR(r_gate, 2.0, 0.01);
}

TEST(MosfetTest, VariationShiftsLeakage) {
  DeviceVariation lower_vth{};
  lower_vth.delta_vth = -0.03;
  const Mosfet nominal(d25SNmos(), 100e-9);
  const Mosfet leaky(d25SNmos(), 100e-9, lower_vth);
  const BiasPoint off{0.0, 1.0, 0.0, 0.0};
  EXPECT_GT(leaky.leakage(off, kRoom).subthreshold,
            1.5 * nominal.leakage(off, kRoom).subthreshold);
}

TEST(MosfetTest, InverterEquation6Inventory) {
  // Paper Eq. (6): with input '0' / output '1', the PMOS junctions sit at
  // n-well potential, so the BTBT must come from the NMOS drain only.
  const Mosfet n = makeN();
  const Mosfet p = makeP();
  // NMOS: g=0, d=out=1, s=0, b=0. PMOS: g=0, d=out=1, s=1, b=1.
  const LeakageBreakdown ln = n.leakage({0.0, 1.0, 0.0, 0.0}, kRoom);
  const LeakageBreakdown lp = p.leakage({0.0, 1.0, 1.0, 1.0}, kRoom);
  EXPECT_GT(ln.btbt, 0.0);
  EXPECT_LT(lp.btbt, 0.01 * ln.btbt);
  // The ON PMOS dominates the gate tunneling (channel at |Vox| ~ VDD).
  EXPECT_GT(lp.gate, ln.gate);
}

}  // namespace
}  // namespace nanoleak::device
