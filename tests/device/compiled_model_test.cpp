// Pins the compiled device evaluation bit-identical to the interpreted
// Mosfet path across flavours, polarities, temperatures, variations and
// randomized biases - the contract the SolverKernel's equivalence with
// DcSolver rests on.
#include "device/compiled_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "device/device_params.h"
#include "device/mosfet.h"
#include "util/rng.h"

namespace nanoleak::device {
namespace {

std::vector<DeviceParams> allFlavours() {
  return {d25SNmos(),  d25SPmos(),  d25GNmos(),      d25GPmos(),
          d25JnNmos(), d25JnPmos(), d50MediciNmos(), d50MediciPmos()};
}

DeviceVariation randomVariation(Rng& rng) {
  return DeviceVariation{rng.uniform(-4e-9, 4e-9), rng.uniform(-2e-10, 2e-10),
                         rng.uniform(-0.09, 0.09)};
}

BiasPoint randomBias(Rng& rng) {
  // Leakage-mode biases plus bracket excursions the solver probes.
  return BiasPoint{rng.uniform(-0.3, 1.3), rng.uniform(-0.3, 1.3),
                   rng.uniform(-0.3, 1.3), rng.uniform(0.0, 1.0)};
}

TEST(CompiledModelTest, CurrentsBitIdenticalToMosfet) {
  Rng rng(20260729);
  for (const DeviceParams& params : allFlavours()) {
    for (double t : {300.0, 380.0, 412.7}) {
      const Environment env{t};
      for (int rep = 0; rep < 40; ++rep) {
        const DeviceVariation var = randomVariation(rng);
        const double width = rng.uniform(80e-9, 400e-9);
        const Mosfet mosfet(params, width, var);
        const DeviceCoeffs coeffs = compileDevice(mosfet, env);
        const BiasPoint bias = randomBias(rng);

        const TerminalCurrents want = mosfet.currents(bias, env);
        const TerminalCurrents got = compiledCurrents(coeffs, bias);
        EXPECT_EQ(want.gate, got.gate) << params.name << " T=" << t;
        EXPECT_EQ(want.drain, got.drain) << params.name << " T=" << t;
        EXPECT_EQ(want.source, got.source) << params.name << " T=" << t;
        EXPECT_EQ(want.bulk, got.bulk) << params.name << " T=" << t;
      }
    }
  }
}

TEST(CompiledModelTest, SingleTerminalCurrentsBitIdenticalToFullEval) {
  Rng rng(424242);
  for (const DeviceParams& params : allFlavours()) {
    for (double t : {300.0, 380.0}) {
      const Environment env{t};
      for (int rep = 0; rep < 30; ++rep) {
        const DeviceVariation var = randomVariation(rng);
        const double width = rng.uniform(80e-9, 400e-9);
        const Mosfet mosfet(params, width, var);
        const DeviceCoeffs coeffs = compileDevice(mosfet, env);
        const BiasPoint bias = randomBias(rng);

        const TerminalCurrents full = compiledCurrents(coeffs, bias);
        EXPECT_EQ(full.gate, compiledTerminalCurrent(
                                 coeffs, bias, CompiledTerminal::kGate));
        EXPECT_EQ(full.drain, compiledTerminalCurrent(
                                  coeffs, bias, CompiledTerminal::kDrain));
        EXPECT_EQ(full.source, compiledTerminalCurrent(
                                   coeffs, bias, CompiledTerminal::kSource));
        EXPECT_EQ(full.bulk, compiledTerminalCurrent(
                                 coeffs, bias, CompiledTerminal::kBulk));
      }
    }
  }
}

TEST(CompiledModelTest, LeakageAndIsOffBitIdenticalToMosfet) {
  Rng rng(777);
  for (const DeviceParams& params : allFlavours()) {
    for (double t : {300.0, 380.0}) {
      const Environment env{t};
      for (int rep = 0; rep < 40; ++rep) {
        const DeviceVariation var = randomVariation(rng);
        const double width = rng.uniform(80e-9, 400e-9);
        const Mosfet mosfet(params, width, var);
        const DeviceCoeffs coeffs = compileDevice(mosfet, env);
        const BiasPoint bias = randomBias(rng);

        EXPECT_EQ(mosfet.isOff(bias, env), compiledIsOff(coeffs, bias));
        const LeakageBreakdown want = mosfet.leakage(bias, env);
        const LeakageBreakdown got = compiledLeakage(coeffs, bias);
        EXPECT_EQ(want.subthreshold, got.subthreshold) << params.name;
        EXPECT_EQ(want.gate, got.gate) << params.name;
        EXPECT_EQ(want.btbt, got.btbt) << params.name;
      }
    }
  }
}

/// Rail-exact and degenerate biases (equal drain/source, negative vrev,
/// zero vox) exercise every branch of the compiled evaluation.
TEST(CompiledModelTest, EdgeBiasesBitIdentical) {
  const Environment env{300.0};
  for (const DeviceParams& params : allFlavours()) {
    const Mosfet mosfet(params, 150e-9);
    const DeviceCoeffs coeffs = compileDevice(mosfet, env);
    for (const BiasPoint& bias :
         {BiasPoint{0.0, 0.0, 0.0, 0.0}, BiasPoint{1.0, 1.0, 1.0, 1.0},
          BiasPoint{0.0, 1.0, 0.0, 0.0}, BiasPoint{1.0, 0.0, 1.0, 0.0},
          BiasPoint{0.5, 0.5, 0.5, 0.0}, BiasPoint{1.0, 0.3, 0.3, 0.0},
          BiasPoint{-0.3, 1.3, -0.3, 0.0}}) {
      const TerminalCurrents want = mosfet.currents(bias, env);
      const TerminalCurrents got = compiledCurrents(coeffs, bias);
      EXPECT_EQ(want.gate, got.gate) << params.name;
      EXPECT_EQ(want.drain, got.drain) << params.name;
      EXPECT_EQ(want.source, got.source) << params.name;
      EXPECT_EQ(want.bulk, got.bulk) << params.name;
    }
  }
}

}  // namespace
}  // namespace nanoleak::device
